/**
 * @file
 * Figure 8: profiling stability — quantized accuracy after
 * re-profiling the same model with 17 different random sample
 * batches is essentially constant. Also sweeps the profiling batch
 * size (the paper notes "even fewer input samples proved enough").
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Profiling-trial stability of quantized accuracy",
                  "Figure 8");

    const auto quantizer = bench::standardQuantizer();
    const ModelConfig cfg = reduced(bertBase(), 12);
    const Transformer model(cfg, 2024);
    const TaskEvaluator task(model, TaskKind::Classification, 48,
                             24, 555);
    const double fp = task.evaluateReference();
    std::printf("FP reference score: %.2f\n\n", fp);

    std::printf("%-8s %10s\n", "Trial", "Accuracy");
    RunningStats st;
    for (int trial = 1; trial <= 17; ++trial) {
        QuantizedTransformer pipe(model, quantizer);
        pipe.quantizeWeights();
        pipe.profileActivations(
            task.profilingBatch(8, 7000 + trial * 100));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });
        st.add(acc);
        std::printf("%-8d %9.2f%%\n", trial, acc);
    }
    std::printf("\nAcross trials: mean %.2f, stddev %.2f "
                "(paper: visually flat)\n", st.mean(), st.stddev());

    std::printf("\nProfiling batch-size sweep:\n%-12s %10s\n",
                "BatchSize", "Accuracy");
    for (int bs : {1, 2, 4, 8, 16}) {
        QuantizedTransformer pipe(model, quantizer);
        pipe.quantizeWeights();
        pipe.profileActivations(
            task.profilingBatch(static_cast<size_t>(bs), 9000));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });
        std::printf("%-12d %9.2f%%\n", bs, acc);
    }
    return 0;
}
