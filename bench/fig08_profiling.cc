/**
 * @file
 * Figure 8: profiling stability — quantized accuracy after
 * re-profiling the same model with 17 different random sample
 * batches is essentially constant. Also sweeps the profiling batch
 * size (the paper notes "even fewer input samples proved enough").
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Profiling-trial stability of quantized accuracy",
                  "Figure 8");

    const auto quantizer = bench::standardQuantizer();
    const ModelConfig cfg = reduced(bertBase(), 12);
    const Transformer model(cfg, 2024);
    const TaskEvaluator task(model, TaskKind::Classification, 48,
                             24, 555);
    const double fp = task.evaluateReference();
    std::printf("FP reference score: %.2f\n\n", fp);

    std::printf("%-8s %10s\n", "Trial", "Accuracy");
    RunningStats st;
    double worst = 1e300, best = -1e300;
    for (int trial = 1; trial <= 17; ++trial) {
        QuantizedTransformer pipe(model, quantizer);
        pipe.quantizeWeights();
        pipe.profileActivations(
            task.profilingBatch(8, 7000 + trial * 100));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });
        st.add(acc);
        worst = acc < worst ? acc : worst;
        best = acc > best ? acc : best;
        std::printf("%-8d %9.2f%%\n", trial, acc);
    }
    std::printf("\nAcross trials: mean %.2f, stddev %.2f "
                "(paper: visually flat)\n", st.mean(), st.stddev());

    // Machine-readable record for the CI bench gate. Both ratios are
    // deterministic (fixed seeds, bit-stable pipeline): trial
    // stability = worst/best accuracy across the 17 re-profilings
    // (Fig. 8's "visually flat" claim), and accuracy retention =
    // mean quantized accuracy over the FP reference score.
    bench::BenchJson json("fig08");
    json.add({"profiling_trial_stability", 17, cfg.hidden, cfg.layers,
              0.0, 0.0, best > 0.0 ? worst / best : 0.0});
    json.add({"quantized_vs_fp_accuracy", 17, cfg.hidden, cfg.layers,
              0.0, 0.0, fp > 0.0 ? st.mean() / fp : 0.0});

    std::printf("\nProfiling batch-size sweep:\n%-12s %10s\n",
                "BatchSize", "Accuracy");
    for (int bs : {1, 2, 4, 8, 16}) {
        QuantizedTransformer pipe(model, quantizer);
        pipe.quantizeWeights();
        pipe.profileActivations(
            task.profilingBatch(static_cast<size_t>(bs), 9000));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });
        std::printf("%-12d %9.2f%%\n", bs, acc);
        // Informational rows (speedup 0): the batch-size sweep's
        // accuracy-retention trend, not gated.
        json.add({"accuracy_batch_size", static_cast<size_t>(bs),
                  cfg.hidden, cfg.layers, 0.0, 0.0, 0.0});
    }
    return json.write() ? 0 : 1;
}
