/**
 * @file
 * Table IV: comparing quantization methods for BERT-Base on the
 * MNLI analogue — bits, accuracy/error, integer compute,
 * post-training, and total compression ratio.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/config.hh"
#include "model/tasks.hh"
#include "quant/baselines.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Quantization method comparison, BERT-Base MNLI "
                  "analogue", "Table IV");

    const auto quantizer = bench::standardQuantizer();
    const ModelConfig cfg = reduced(bertBase(), 12);
    const Transformer model(cfg, 4242);
    const TaskEvaluator task(model, TaskKind::Classification, 48,
                             24, 777);
    const double fp = task.evaluateReference();

    // Footprint ratios use the full BERT-Base geometry at seq 128.
    const auto full = bertBase();
    const size_t w_values = full.totalParams();
    const size_t a_values =
        full.activationBytes(128, 8) /* bytes at 8 b */ * 1;

    std::printf("%-14s %6s %6s %9s %7s %4s %5s %7s\n", "Method",
                "W-bit", "A-bit", "Score", "Err", "INT", "PT",
                "Comp");

    const auto lineup = makeTable4Lineup(quantizer);
    for (const auto &method : lineup) {
        // Quantize weights once; quantize activations on the fly
        // inside the forward pass.
        Transformer qmodel(model);
        for (auto &layer : qmodel.weights()) {
            for (Tensor *t : {&layer.wq, &layer.wk, &layer.wv,
                              &layer.wo, &layer.w1, &layer.w2})
                *t = method->quantizeWeights(*t);
        }
        const double score = task.evaluate([&](const Tensor &in) {
            return qmodel.forward(
                in, nullptr,
                [&](const TensorId &, Tensor &t) {
                    t = method->quantizeActivations(t);
                });
        });
        std::printf("%-14s %6.1f %6.1f %9.2f %+7.2f %4s %5s %6.1fx"
                    "\n",
                    method->name().c_str(), method->weightBits(),
                    method->activationBits(), score, fp - score,
                    method->integerCompute() ? "yes" : "no",
                    method->postTraining() ? "yes" : "no",
                    method->compressionRatio(w_values, a_values));
    }
    std::printf("\nFP reference score: %.2f. Paper ordering: Mokey "
                "matches/bests 8 b methods at 4 b/4 b with a ~7.9x "
                "footprint reduction.\n", fp);
    return 0;
}
