/**
 * @file
 * Figures 12 and 13: Mokey speedup and energy efficiency over the
 * GOBO accelerator.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Mokey vs GOBO: speedup (Fig. 12) and energy "
                  "efficiency (Fig. 13)", "Figures 12-13");

    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto cs = sweepComparison(goboMachine(), mokeyMachine(),
                                    pts, bufs);

    std::printf("Speedup over GOBO:\n%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf(" %8s", bufferLabel(b).c_str());
    std::printf("\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (const auto &c : cs) {
            if (c.label == p.label)
                std::printf(" %7.2fx", c.speedup());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf(" %7.2fx", geomeanSpeedup(cs, b));
    std::printf("   (paper: fastest on long sequences / small "
                "buffers)\n");

    std::printf("\nEnergy efficiency (perf/J) over GOBO:\n%-22s",
                "Model/Task");
    for (size_t b : bufs)
        std::printf(" %8s", bufferLabel(b).c_str());
    std::printf("\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (const auto &c : cs) {
            if (c.label == p.label)
                std::printf(" %7.2fx", c.energyEfficiency());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf(" %7.2fx", geomeanEnergyEff(cs, b));
    std::printf("   (paper: 9x small buffers -> 2x at 4MB)\n");
    return 0;
}
