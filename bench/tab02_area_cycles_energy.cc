/**
 * @file
 * Table II: compute-unit count, area, cycle count and energy for
 * BERT-Base with a 512 KB on-chip buffer — Tensor Cores vs GOBO vs
 * Mokey.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/accelerator.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Area / cycles / energy for BERT-Base (512 KB "
                  "buffer)", "Table II");

    const auto w = modelWorkload(bertBase(), 128);
    std::printf("%-14s %8s %12s %14s %10s\n", "Architecture",
                "Units", "Area(mm2)", "CycleCount", "Energy(J)");
    struct
    {
        MachineConfig m;
        const char *paper;
    } rows[] = {
        {tensorCoresMachine(), "167M / 0.36J"},
        {goboMachine(), " 52M / 0.17J"},
        {mokeyMachine(), " 29M / 0.09J"},
    };
    for (const auto &row : rows) {
        const auto r = simulate(row.m, w, 512 * 1024);
        std::printf("%-14s %8zu %12.1f %11.0fM %10.3f   (paper: %s)"
                    "\n",
                    row.m.name.c_str(), row.m.lanes,
                    r.computeAreaMm2, r.totalCycles / 1e6, r.totalJ,
                    row.paper);
    }
    std::printf("\nMokey PE advantage: 3072 lanes in less area than "
                "2048 FP16 lanes (39%% smaller per-lane).\n");
    return 0;
}
