/**
 * @file
 * Table II: compute-unit count, area, cycle count and energy for
 * BERT-Base with a 512 KB on-chip buffer — Tensor Cores vs GOBO vs
 * Mokey.
 *
 * Besides the printed table, the bench flushes BENCH_tab02.json:
 * per-architecture simulator cycle counts (raw records) plus
 * Mokey's/GOBO's cycle and energy advantages over the Tensor Cores
 * baseline as gateable ratios — the simulator is deterministic, so
 * the CI regression gate pins the paper's headline speedups.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/accelerator.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Area / cycles / energy for BERT-Base (512 KB "
                  "buffer)", "Table II");

    const auto w = modelWorkload(bertBase(), 128);
    std::printf("%-14s %8s %12s %14s %10s\n", "Architecture",
                "Units", "Area(mm2)", "CycleCount", "Energy(J)");
    struct
    {
        MachineConfig m;
        const char *paper;
    } rows[] = {
        {tensorCoresMachine(), "167M / 0.36J"},
        {goboMachine(), " 52M / 0.17J"},
        {mokeyMachine(), " 29M / 0.09J"},
    };
    bench::BenchJson json("tab02");
    double tc_cycles = 0.0, tc_joules = 0.0;
    for (const auto &row : rows) {
        const auto r = simulate(row.m, w, 512 * 1024);
        std::printf("%-14s %8zu %12.1f %11.0fM %10.3f   (paper: %s)"
                    "\n",
                    row.m.name.c_str(), row.m.lanes,
                    r.computeAreaMm2, r.totalCycles / 1e6, r.totalJ,
                    row.paper);
        if (tc_cycles == 0.0) {
            tc_cycles = r.totalCycles; // first row: the TC baseline
            tc_joules = r.totalJ;
        }
        // Raw cycle record (speedup 0 = not gated) plus the two
        // deterministic vs-Tensor-Cores ratios under the gate.
        json.add({"tab02_cycles_" + row.m.name, row.m.lanes, 0, 0,
                  r.totalCycles, 0.0, 0.0});
        json.add({"tab02_cycle_adv_" + row.m.name, row.m.lanes, 0,
                  0, r.totalCycles, 0.0, tc_cycles / r.totalCycles});
        json.add({"tab02_energy_adv_" + row.m.name, row.m.lanes, 0,
                  0, r.totalJ * 1e9, 0.0, tc_joules / r.totalJ});
    }
    json.write();
    std::printf("\nMokey PE advantage: 3072 lanes in less area than "
                "2048 FP16 lanes (39%% smaller per-lane).\n");
    return 0;
}
