/**
 * @file
 * Figure 3: fitting the exponential curve a^i + b to the positive
 * half of the Golden Dictionary (paper: a = 1.179, b = -0.977).
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "fit/expfit.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Exponential fit to the Golden Dictionary",
                  "Figure 3");

    const auto gd = GoldenDictionary::generate({});
    const auto exp = ExpDictionary::fit(gd);

    std::printf("Fitted: a = %.4f, b = %.4f   (paper: a = 1.179, "
                "b = -0.977)\n\n", exp.a(), exp.b());
    std::printf("%-5s %12s %12s %10s %8s\n", "idx", "GD half",
                "a^i + b", "error", "weight");
    const auto ws = paperFitWeights(gd.half().size());
    for (size_t i = 0; i < gd.half().size(); ++i) {
        const double fit_v = exp.magnitude(i);
        std::printf("%-5zu %12.4f %12.4f %+10.4f %8.0f\n", i,
                    gd.half()[i], fit_v, fit_v - gd.half()[i],
                    ws[i]);
    }
    std::printf("\nSummed-exponent bases a^e for the SoI reduction "
                "(e in [0,14]):\n  ");
    for (size_t e = 0; e < exp.powerCount(); ++e)
        std::printf("%.3f ", exp.power(e));
    std::printf("\n");
    return 0;
}
