/**
 * @file
 * Ablation: the outlier threshold. Widening the Gaussian range
 * (otCutScale up) trades fewer outliers (cheaper OPP traffic,
 * Fig. 6) against coarser tail reconstruction; narrowing it does
 * the reverse — the balance §II-E strikes at ~2% / ~5%.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"
#include "sim/gpe.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Ablation: outlier threshold scale",
                  "paper §II-E");

    const auto quantizer = bench::standardQuantizer();
    std::printf("%-10s %8s %8s %12s %14s\n", "CutScale", "W-OT%",
                "A-OT%", "TaskScore", "TilePairs/cyc");

    for (double cut : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        TensorDictConfig dcfg;
        dcfg.otCutScale = cut;

        const ModelConfig cfg = reduced(bertBase(), 12);
        const Transformer model(cfg, 3030);
        const TaskEvaluator task(model, TaskKind::Classification,
                                 48, 24, 321);
        QuantizedTransformer pipe(model, quantizer, dcfg);
        pipe.quantizeWeights();
        pipe.profileActivations(task.profilingBatch(8, 500));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });

        // Tile throughput at the observed pair rate.
        const double w_ot = pipe.weightOutlierFraction();
        const double a_ot = pipe.activationOutlierFraction();
        const double pair =
            1.0 - (1.0 - w_ot) * (1.0 - a_ot);
        TileConfig tc;
        tc.oppPerCycle = 4;
        const TileSim tile(tc);
        const auto run = tile.runSynthetic(20000, pair, 0, 99);

        std::printf("%-10.2f %7.2f%% %7.2f%% %11.2f%% %14.1f\n",
                    cut, 100.0 * w_ot, 100.0 * a_ot, acc,
                    run.throughput());
    }
    std::printf("\nExpected: small scales flood the OPP; large "
                "scales keep throughput at peak but eventually "
                "cost accuracy.\n");
    return 0;
}
