/**
 * @file
 * Figures 10 and 11: Mokey accelerator speedup and energy
 * efficiency (performance per joule) over the Tensor-Cores baseline
 * across models and buffer capacities.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Mokey vs Tensor Cores: speedup (Fig. 10) and "
                  "energy efficiency (Fig. 11)", "Figures 10-11");

    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto cs = sweepComparison(tensorCoresMachine(),
                                    mokeyMachine(), pts, bufs);

    std::printf("Speedup over Tensor Cores:\n%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf(" %8s", bufferLabel(b).c_str());
    std::printf("\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (const auto &c : cs) {
            if (c.label == p.label)
                std::printf(" %7.2fx", c.speedup());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf(" %7.2fx", geomeanSpeedup(cs, b));
    std::printf("   (paper: 11x small buffers -> 4.1x at 4MB)\n");

    std::printf("\nEnergy efficiency (perf/J) over Tensor "
                "Cores:\n%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf(" %8s", bufferLabel(b).c_str());
    std::printf("\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (const auto &c : cs) {
            if (c.label == p.label)
                std::printf(" %7.1fx", c.energyEfficiency());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf(" %7.1fx", geomeanEnergyEff(cs, b));
    std::printf("   (paper: 78x at 256KB -> 13x at 4MB)\n");
    return 0;
}
