/**
 * @file
 * Table III: area, performance and energy breakdown for Tensor
 * Cores vs Mokey running BERT-Large on SQuAD (seq 384), at 256 KB /
 * 512 KB / 1 MB buffers.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Breakdown: Tensor Cores vs Mokey, BERT-Large on "
                  "SQuAD", "Table III");

    const auto w = modelWorkload(bertLarge(), 384);
    const OutlierRates rates{0.0154, 0.017};

    for (size_t buf : {256 * 1024, 512 * 1024, 1024 * 1024}) {
        std::printf("\n--- %s on-chip buffer ---\n",
                    bufferLabel(buf).c_str());
        std::printf("%-28s %14s %14s\n", "", "Tensor Cores",
                    "Mokey");
        const auto tc = simulate(tensorCoresMachine(), w, buf,
                                 rates);
        const auto mk = simulate(mokeyMachine(), w, buf, rates);
        std::printf("%-28s %14.1f %14.1f\n", "On-chip buffer (mm2)",
                    tc.bufferAreaMm2, mk.bufferAreaMm2);
        std::printf("%-28s %14.1f %14.1f\n", "Compute area (mm2)",
                    tc.computeAreaMm2, mk.computeAreaMm2);
        std::printf("%-28s %14.1f %14.1f\n", "Total chip area (mm2)",
                    tc.totalAreaMm2, mk.totalAreaMm2);
        std::printf("%-28s %13.0fM %13.0fM\n",
                    "Memory transfer cycles", tc.memCycles / 1e6,
                    mk.memCycles / 1e6);
        std::printf("%-28s %13.0fM %13.0fM\n", "Compute cycles",
                    tc.computeCycles / 1e6, mk.computeCycles / 1e6);
        std::printf("%-28s %13.0fM %13.0fM\n", "Total cycles",
                    tc.totalCycles / 1e6, mk.totalCycles / 1e6);
        std::printf("%-28s %13.1f%% %13.1f%%\n",
                    "Compute/Memory overlap",
                    100.0 * tc.overlapFraction,
                    100.0 * mk.overlapFraction);
        std::printf("%-28s %14.2f %14.2f\n", "Off-chip energy (J)",
                    tc.dramJ, mk.dramJ);
        std::printf("%-28s %14.3f %14.3f\n", "On-chip energy (J)",
                    tc.sramJ, mk.sramJ);
        std::printf("%-28s %14.2f %14.2f\n", "Compute energy (J)",
                    tc.computeJ, mk.computeJ);
        std::printf("%-28s %14.2f %14.2f\n", "Total energy (J)",
                    tc.totalJ, mk.totalJ);
    }
    std::printf("\nPaper anchors (256KB): TC 3734M cycles / 6.84J, "
                "Mokey 249M / 0.84J; areas 13.2 vs 4.7 mm2.\n");
    return 0;
}
