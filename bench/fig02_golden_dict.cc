/**
 * @file
 * Figure 2: the Golden Dictionary generated from a random N(0,1)
 * distribution by agglomerative clustering — histogram plus the 16
 * resulting centroids.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "quant/golden_dictionary.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Golden Dictionary from N(0,1) via agglomerative "
                  "clustering", "Figure 2");

    // The source histogram (one trial's samples).
    Rng rng(0x600D);
    Histogram h(-4.0, 4.0, 32);
    for (float v : rng.gaussianVector(50000, 0.0, 1.0))
        h.add(v);
    std::printf("Sample histogram (ASCII, 50k draws):\n");
    for (size_t i = 0; i < h.size(); ++i) {
        std::printf("%+5.2f |", h.binCenter(i));
        const auto stars = h.binCount(i) / 80;
        for (size_t s = 0; s < stars; ++s)
            std::printf("*");
        std::printf("\n");
    }

    const auto gd = GoldenDictionary::generate({});
    std::printf("\n16 Golden Dictionary centroids (averaged over 5 "
                "trials):\n");
    for (size_t i = 0; i < gd.size(); ++i)
        std::printf("  [%2zu] %+8.4f\n", i, gd.centroids()[i]);
    std::printf("\nSymmetrized positive half (the 3 b index "
                "magnitudes):\n");
    for (size_t i = 0; i < gd.half().size(); ++i)
        std::printf("  idx %zu -> %7.4f sigma\n", i, gd.half()[i]);
    return 0;
}
