/**
 * @file
 * Figure 1: BERT-Large weight and activation memory footprint as a
 * function of sequence length, absolute (MB) and relative (%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/config.hh"

int
main()
{
    using namespace mokey;
    bench::banner("BERT-Large weight/activation footprint vs "
                  "sequence length", "Figure 1");

    const auto cfg = bertLarge();
    std::printf("%-8s %12s %14s %10s %10s\n", "SeqLen",
                "Weights(MB)", "Activations(MB)", "Weights%",
                "Acts%");
    for (size_t seq : {128, 256, 512, 1024, 2048}) {
        const double wb = static_cast<double>(cfg.weightBytes(16)) /
            (1024.0 * 1024.0);
        const double ab =
            static_cast<double>(cfg.activationBytes(seq, 16)) /
            (1024.0 * 1024.0);
        const double total = wb + ab;
        std::printf("%-8zu %12.1f %14.1f %9.1f%% %9.1f%%\n", seq, wb,
                    ab, 100.0 * wb / total, 100.0 * ab / total);
    }
    std::printf("\nPaper shape: activations overtake weights past "
                "512 tokens.\n");
    return 0;
}
