/**
 * @file
 * Ablation: dictionary size (8 / 16 / 32 entries) vs reconstruction
 * fidelity and task accuracy — the "dictionary size affects overall
 * accuracy" trade-off the paper discusses in §II-C.
 *
 * 8- and 16-entry dictionaries run the full quantized pipeline;
 * the 32-entry point exceeds the 3 b code index the hardware
 * containers assume, so it reports reconstruction fidelity through
 * a direct nearest-centroid pass (no 4 b container, no task run) —
 * exactly the overhead argument the paper uses against larger
 * dictionaries.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"
#include "tensor/ops.hh"

namespace
{

using namespace mokey;

double
reconstructionMse(const Quantizer &quantizer, const Tensor &probe)
{
    const auto dict = quantizer.buildDictionary(probe);
    double mse = 0.0;
    for (float v : probe.raw()) {
        double rec;
        if (dict.isOutlierValue(v) &&
            !dict.outlierCentroids().empty()) {
            rec = dict.outlierValue(dict.nearestOutlierIndex(v));
        } else {
            const double u =
                (v - dict.mean()) / dict.scale();
            const size_t idx =
                dict.exp().nearestIndex(std::abs(u));
            rec = dict.gaussianValue(u < 0.0, idx);
        }
        mse += (v - rec) * (v - rec);
    }
    return mse / static_cast<double>(probe.size());
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: dictionary size", "paper §II-C");

    std::printf("%-10s %10s %12s %12s %10s\n", "Entries", "a-fit",
                "ReconMSE", "TaskScore", "A-OT%");

    Rng rng(808);
    Tensor probe(128, 128, rng.gaussianVector(16384, 0.0, 1.0));

    for (size_t entries : {8u, 16u, 32u}) {
        GoldenDictionaryConfig gcfg;
        gcfg.entries = entries;
        const auto gd = GoldenDictionary::generate(gcfg);
        const Quantizer quantizer(ExpDictionary::fit(gd));
        const double mse = reconstructionMse(quantizer, probe);

        if (entries > 16) {
            std::printf("%-10zu %10.4f %12.6f %12s %10s   "
                        "(exceeds 3 b index: no container/task "
                        "path)\n",
                        entries, quantizer.exp().a(), mse, "n/a",
                        "n/a");
            continue;
        }

        const ModelConfig cfg = reduced(bertBase(), 12);
        const Transformer model(cfg, 2025);
        const TaskEvaluator task(model, TaskKind::Classification,
                                 48, 24, 321);
        QuantizedTransformer pipe(model, quantizer);
        pipe.quantizeWeights();
        pipe.profileActivations(task.profilingBatch(8, 600));
        const double acc = task.evaluate([&](const Tensor &in) {
            return pipe.forward(in,
                                QuantMode::WeightsAndActivations);
        });
        std::printf("%-10zu %10.4f %12.6f %11.2f%% %9.2f%%\n",
                    entries, quantizer.exp().a(), mse, acc,
                    100.0 * pipe.activationOutlierFraction());
    }
    std::printf("\nExpected: MSE falls as entries grow; 16 entries "
                "(the paper's pick) already saturates task "
                "accuracy.\n");
    return 0;
}
