/**
 * @file
 * Shared plumbing for the table/figure bench binaries: the standard
 * quantizer construction and table printing helpers. Every bench
 * prints the same rows/series the paper reports so EXPERIMENTS.md
 * can cite paper-vs-measured side by side.
 */

#ifndef MOKEY_BENCH_BENCH_UTIL_HH
#define MOKEY_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/quantizer.hh"

namespace mokey::bench
{

/** The standard generation -> fit -> quantizer chain. */
inline Quantizer
standardQuantizer()
{
    const auto gd = GoldenDictionary::generate({});
    return Quantizer(ExpDictionary::fit(gd));
}

/** Print a bench header banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s\n  (reproduces %s)\n", title.c_str(),
                paper_ref.c_str());
    std::printf("==================================================="
                "=========\n");
}

// ---- machine-readable perf output -----------------------------------
//
// Each bench binary can append BenchRecords and flush them to a
// BENCH_<name>.json file, so the perf trajectory of the hot kernels
// is tracked in version-controlled artifacts from PR to PR instead
// of scrollback.

/** One measured kernel configuration. */
struct BenchRecord
{
    std::string kernel; ///< e.g. "index_gemm_engine"
    size_t m = 0, n = 0, k = 0;
    double ns_per_op = 0.0; ///< wall time per kernel invocation
    double gb_per_s = 0.0;  ///< operand+result bytes over wall time
    double speedup_vs_seed = 0.0; ///< 0 when not a comparison row
};

/**
 * Best-of-reps wall-clock timer: runs @p fn until both @p min_reps
 * and @p min_seconds are spent, returns the *minimum* observed ns per
 * call (the least-noise estimator for a deterministic kernel).
 */
inline double
timeKernelNs(const std::function<void()> &fn, int min_reps = 5,
             double min_seconds = 0.2)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm caches and the thread pool
    double best = 1e300;
    double spent = 0.0;
    for (int rep = 0; rep < min_reps || spent < min_seconds; ++rep) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        best = ns < best ? ns : best;
        spent += ns * 1e-9;
        if (rep > 10000)
            break;
    }
    return best;
}

/** Collects BenchRecords and writes them as one JSON document. */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench_name)
        : name(std::move(bench_name))
    {
    }

    void add(const BenchRecord &r) { records.push_back(r); }

    /** Write BENCH_<name>.json into the working directory. */
    bool
    write() const
    {
        const std::string path = "BENCH_" + name + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                     name.c_str());
        for (size_t i = 0; i < records.size(); ++i) {
            const BenchRecord &r = records[i];
            std::fprintf(
                f,
                "    {\"kernel\": \"%s\", \"m\": %zu, \"n\": %zu, "
                "\"k\": %zu, \"ns_per_op\": %.1f, "
                "\"gb_per_s\": %.3f, \"speedup_vs_seed\": %.2f}%s\n",
                r.kernel.c_str(), r.m, r.n, r.k, r.ns_per_op,
                r.gb_per_s, r.speedup_vs_seed,
                i + 1 < records.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string name;
    std::vector<BenchRecord> records;
};

} // namespace mokey::bench

#endif // MOKEY_BENCH_BENCH_UTIL_HH
