/**
 * @file
 * Shared plumbing for the table/figure bench binaries: the standard
 * quantizer construction and table printing helpers. Every bench
 * prints the same rows/series the paper reports so EXPERIMENTS.md
 * can cite paper-vs-measured side by side.
 */

#ifndef MOKEY_BENCH_BENCH_UTIL_HH
#define MOKEY_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/quantizer.hh"

namespace mokey::bench
{

/** The standard generation -> fit -> quantizer chain. */
inline Quantizer
standardQuantizer()
{
    const auto gd = GoldenDictionary::generate({});
    return Quantizer(ExpDictionary::fit(gd));
}

/** Print a bench header banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s\n  (reproduces %s)\n", title.c_str(),
                paper_ref.c_str());
    std::printf("==================================================="
                "=========\n");
}

} // namespace mokey::bench

#endif // MOKEY_BENCH_BENCH_UTIL_HH
