/**
 * @file
 * Figure 9: baseline Tensor-Cores accelerator inference cycle
 * counts per model/task across on-chip buffer capacities.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Baseline (Tensor Cores) inference cycle counts",
                  "Figure 9");

    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto tc = tensorCoresMachine();

    std::printf("%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf(" %9s", bufferLabel(b).c_str());
    std::printf("   (cycles, millions)\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (size_t b : bufs) {
            const auto r = simulate(tc, p.workload, b, p.rates);
            std::printf(" %8.0fM", r.totalCycles / 1e6);
        }
        std::printf("\n");
    }
    std::printf("\nPaper shape: cycles fall monotonically with "
                "buffer capacity; SQuAD (seq 384) points are the "
                "most memory-bound.\n");
    return 0;
}
