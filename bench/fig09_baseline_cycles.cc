/**
 * @file
 * Figure 9: baseline Tensor-Cores accelerator inference cycle
 * counts per model/task across on-chip buffer capacities.
 *
 * Besides the printed table, the bench flushes BENCH_fig09.json so
 * the CI bench gate covers a paper-figure reproduction: per point it
 * records the raw cycle counts (ns_per_op column reused for cycles)
 * and one comparison row whose speedup field is the smallest-buffer
 * over largest-buffer cycle ratio — the figure's monotone
 * "more buffer, fewer cycles" shape as a single gateable number.
 * The simulator is deterministic, so these records are exact and
 * host-independent.
 */

#include <cctype>
#include <cstdio>
#include <string>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

namespace
{

/** "BERT-Large/SQuAD" -> "bert_large_squad" (JSON/env friendly). */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    for (const char c : label) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

} // anonymous namespace

int
main()
{
    using namespace mokey;
    bench::banner("Baseline (Tensor Cores) inference cycle counts",
                  "Figure 9");

    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto tc = tensorCoresMachine();
    bench::BenchJson json("fig09");

    std::printf("%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf(" %9s", bufferLabel(b).c_str());
    std::printf("   (cycles, millions)\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        const std::string name = sanitizeLabel(p.label);
        double first_cycles = 0.0, last_cycles = 0.0;
        for (size_t b : bufs) {
            const auto r = simulate(tc, p.workload, b, p.rates);
            std::printf(" %8.0fM", r.totalCycles / 1e6);
            if (b == bufs.front())
                first_cycles = r.totalCycles;
            if (b == bufs.back())
                last_cycles = r.totalCycles;
            json.add({"fig09_cycles_" + name, b >> 10, 0, 0,
                      r.totalCycles, 0.0, 0.0});
        }
        // One gateable ratio per point: cycles at the smallest
        // buffer over cycles at the largest.
        json.add({"fig09_buffer_benefit_" + name, bufs.front() >> 10,
                  bufs.back() >> 10, 0, last_cycles, 0.0,
                  last_cycles > 0.0 ? first_cycles / last_cycles
                                    : 0.0});
        std::printf("\n");
    }
    json.write();
    std::printf("\nPaper shape: cycles fall monotonically with "
                "buffer capacity; SQuAD (seq 384) points are the "
                "most memory-bound.\n");
    return 0;
}
