/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: float GEMM,
 * index-domain GEMM, fixed-point GEMM, encode, pack/unpack, and the
 * golden-dictionary clustering.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "quant/fixed_pipeline.hh"
#include "quant/index_matmul.hh"
#include "quant/memory_codec.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

namespace
{

using namespace mokey;

struct Setup
{
    Setup()
        : exp(1.179, -0.977, 8), quantizer(exp)
    {
        Rng rng(31337);
        a = Tensor(64, 256, rng.gaussianVector(64 * 256, 0.0, 1.0));
        w = Tensor(64, 256,
                   rng.gaussianVector(64 * 256, 0.0, 0.05));
        da = quantizer.buildDictionary(a);
        dw = quantizer.buildDictionary(w);
        qa = quantizer.encode(a, da);
        qw = quantizer.encode(w, dw);
    }

    ExpDictionary exp;
    Quantizer quantizer;
    Tensor a, w;
    TensorDictionary da{}, dw{};
    QuantizedTensor qa, qw;
};

Setup &
setup()
{
    static Setup s;
    return s;
}

void
BM_FloatGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulTransB(s.a, s.w));
}
BENCHMARK(BM_FloatGemm)->Unit(benchmark::kMillisecond);

void
BM_IndexGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(indexMatmulTransB(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemm)->Unit(benchmark::kMillisecond);

void
BM_FixedGemm(benchmark::State &state)
{
    auto &s = setup();
    const FixedFormat fmt{16, 8};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fixedIndexMatmulTransB(s.qa, s.qw, fmt));
}
BENCHMARK(BM_FixedGemm)->Unit(benchmark::kMillisecond);

void
BM_Encode(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.quantizer.encode(s.a, s.da));
}
BENCHMARK(BM_Encode)->Unit(benchmark::kMicrosecond);

void
BM_PackUnpack(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state) {
        const auto packed = packTensor(s.qa);
        benchmark::DoNotOptimize(
            unpackTensor(packed, s.qa.dictionary()));
    }
}
BENCHMARK(BM_PackUnpack)->Unit(benchmark::kMicrosecond);

void
BM_GoldenDictionaryClustering(benchmark::State &state)
{
    Rng rng(99);
    const auto samples = rng.gaussianVector(
        static_cast<size_t>(state.range(0)), 0.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(agglomerative1d(samples, 16));
}
BENCHMARK(BM_GoldenDictionaryClustering)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
