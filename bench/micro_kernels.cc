/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: float GEMM,
 * index-domain GEMM, fixed-point GEMM, encode, pack/unpack, and the
 * golden-dictionary clustering.
 *
 * main() additionally times the engine kernels against replicas of
 * the *seed* scalar kernels and writes BENCH_micro_kernels.json
 * (kernel, shape, ns/op, GB/s, speedup), so the perf trajectory of
 * the index-domain engine is tracked from this PR onward.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "quant/fixed_pipeline.hh"
#include "quant/index_matmul.hh"
#include "quant/memory_codec.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

namespace
{

using namespace mokey;

struct Setup
{
    Setup()
        : exp(1.179, -0.977, 8), quantizer(exp)
    {
        Rng rng(31337);
        a = Tensor(64, 256, rng.gaussianVector(64 * 256, 0.0, 1.0));
        w = Tensor(64, 256,
                   rng.gaussianVector(64 * 256, 0.0, 0.05));
        da = quantizer.buildDictionary(a);
        dw = quantizer.buildDictionary(w);
        qa = quantizer.encode(a, da);
        qw = quantizer.encode(w, dw);
    }

    ExpDictionary exp;
    Quantizer quantizer;
    Tensor a, w;
    TensorDictionary da{}, dw{};
    QuantizedTensor qa, qw;
};

Setup &
setup()
{
    static Setup s;
    return s;
}

/**
 * Replica of the seed matmulTransB: single-threaded single-lane
 * double accumulation. The library kernel evolves; this baseline
 * stays frozen so speedups stay comparable across PRs.
 */
Tensor
seedMatmulTransB(const Tensor &a, const Tensor &b)
{
    Tensor c(a.rows(), b.rows());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += static_cast<double>(arow[p]) * brow[p];
            c.at(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

void
BM_FloatGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulTransB(s.a, s.w));
}
BENCHMARK(BM_FloatGemm)->Unit(benchmark::kMillisecond);

void
BM_FloatGemmSeed(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(seedMatmulTransB(s.a, s.w));
}
BENCHMARK(BM_FloatGemmSeed)->Unit(benchmark::kMillisecond);

void
BM_IndexGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(indexMatmulTransB(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemm)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmScalar(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBScalar(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmScalar)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmCounting(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBCounting(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmCounting)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmReference(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBReference(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmReference)->Unit(benchmark::kMillisecond);

void
BM_FixedGemm(benchmark::State &state)
{
    auto &s = setup();
    const FixedFormat fmt{16, 8};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fixedIndexMatmulTransB(s.qa, s.qw, fmt));
}
BENCHMARK(BM_FixedGemm)->Unit(benchmark::kMillisecond);

void
BM_Encode(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.quantizer.encode(s.a, s.da));
}
BENCHMARK(BM_Encode)->Unit(benchmark::kMicrosecond);

void
BM_PackUnpack(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state) {
        const auto packed = packTensor(s.qa);
        benchmark::DoNotOptimize(
            unpackTensor(packed, s.qa.dictionary()));
    }
}
BENCHMARK(BM_PackUnpack)->Unit(benchmark::kMicrosecond);

void
BM_GoldenDictionaryClustering(benchmark::State &state)
{
    Rng rng(99);
    const auto samples = rng.gaussianVector(
        static_cast<size_t>(state.range(0)), 0.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(agglomerative1d(samples, 16));
}
BENCHMARK(BM_GoldenDictionaryClustering)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/**
 * The serving claim: dispatching a micro-batch of requests as one
 * stacked index-GEMM beats per-request dispatch, because the
 * weight-side work (per-column constant fold, context setup, pool
 * fan-out) is paid once per batch instead of once per request.
 * Decode-style single-token requests (m = 1 row each) make that
 * per-request overhead visible the way an autoregressive serving
 * loop would; records land in BENCH_micro_kernels.json as
 * index_gemm_batch8_{sequential,batched}, where the batched row's
 * speedup_vs_seed field holds batched-vs-sequential throughput.
 */
void
writeBatchedServingReport(bench::BenchJson &json)
{
    constexpr size_t kBatch = 8, kM = 1, kN = 256, kK = 256;
    Rng rng(424242);
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);

    // One shared activation dictionary — the serving scenario: every
    // request's activation re-quantizes against the tensor id's
    // profiled dictionary.
    Tensor sample(kBatch * kM, kK,
                  rng.gaussianVector(kBatch * kM * kK, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(sample);
    Tensor w(kN, kK, rng.gaussianVector(kN * kK, 0.0, 0.05));
    const auto qw = quantizer.encode(w, quantizer.buildDictionary(w));

    std::vector<QuantizedTensor> requests;
    std::vector<const QuantizedTensor *> parts;
    for (size_t b = 0; b < kBatch; ++b) {
        Tensor a(kM, kK, rng.gaussianVector(kM * kK, 0.0, 1.0));
        requests.push_back(quantizer.encode(a, dict));
    }
    for (const auto &r : requests)
        parts.push_back(&r);

    const double seq_ns = bench::timeKernelNs([&] {
        for (const auto &r : requests)
            indexMatmulTransB(r, qw);
    });
    const double batch_ns = bench::timeKernelNs(
        [&] { indexMatmulTransBBatched(parts, qw); });

    const double bytes =
        static_cast<double>(kBatch * kM * kK + kN * kK) * 1.0 +
        static_cast<double>(kBatch * kM * kN) * 4.0;
    json.add({"index_gemm_batch8_sequential", kM, kN, kK, seq_ns,
              bytes / seq_ns, 0.0});
    json.add({"index_gemm_batch8_batched", kBatch * kM, kN, kK,
              batch_ns, bytes / batch_ns, seq_ns / batch_ns});
    std::printf("batch %zu x (%zux%zux%zu): batched dispatch %.2fx "
                "vs sequential (threads=%zu)\n",
                kBatch, kM, kN, kK, seq_ns / batch_ns,
                threadCount());
}

/**
 * Time engine vs seed kernels on GEMM shapes from the transformer
 * workloads and flush BENCH_micro_kernels.json. GB/s counts operand
 * reads plus result writes at their in-memory width: 4 B floats for
 * the float path, 1 B codes for the seed index path, and the planes
 * the two index engines actually stream — 8 B/element mag planes
 * for index_gemm_mag versus 2 B/element byte planes for
 * index_gemm_count (the counting engine's whole point).
 */
void
writeSpeedupReport()
{
    bench::BenchJson json("micro_kernels");

    struct GemmShape
    {
        size_t m, n, k;
    };
    for (const GemmShape shape :
         {GemmShape{64, 64, 256}, GemmShape{128, 128, 768}}) {
        const size_t m = shape.m, n = shape.n, k = shape.k;
        Rng rng(31337 + m);
        ExpDictionary exp(1.179, -0.977, 8);
        Quantizer quantizer(exp);
        Tensor a(m, k, rng.gaussianVector(m * k, 0.0, 1.0));
        Tensor w(n, k, rng.gaussianVector(n * k, 0.0, 0.05));
        const auto qa =
            quantizer.encode(a, quantizer.buildDictionary(a));
        const auto qw =
            quantizer.encode(w, quantizer.buildDictionary(w));

        const double fbytes =
            static_cast<double>(m * k + n * k + m * n) * 4.0;
        const double ibytes =
            static_cast<double>(m * k + n * k) * 1.0 +
            static_cast<double>(m * n) * 4.0;
        const double mag_bytes =
            static_cast<double>(m * k + n * k) * 8.0 +
            static_cast<double>(m * n) * 4.0;
        const double count_bytes =
            static_cast<double>(m * k + n * k) * 2.0 +
            static_cast<double>(m * n) * 4.0;

        const double seed_f = bench::timeKernelNs(
            [&] { seedMatmulTransB(a, w); });
        const double fast_f = bench::timeKernelNs(
            [&] { matmulTransB(a, w); });
        const double seed_i = bench::timeKernelNs(
            [&] { indexMatmulTransBReference(qa, qw); });
        const double fast_i = bench::timeKernelNs(
            [&] { indexMatmulTransBMag(qa, qw); });
        const double fast_c = bench::timeKernelNs(
            [&] { indexMatmulTransBCounting(qa, qw); });

        json.add({"float_gemm_seed", m, n, k, seed_f,
                  fbytes / seed_f, 0.0});
        json.add({"float_gemm_engine", m, n, k, fast_f,
                  fbytes / fast_f, seed_f / fast_f});
        json.add({"index_gemm_seed", m, n, k, seed_i,
                  ibytes / seed_i, 0.0});
        json.add({"index_gemm_mag", m, n, k, fast_i,
                  mag_bytes / fast_i, seed_i / fast_i});
        json.add({"index_gemm_count", m, n, k, fast_c,
                  count_bytes / fast_c, seed_i / fast_c});

        std::printf("shape %zux%zux%zu: float %.2fx, index mag "
                    "%.2fx, index count %.2fx (threads=%zu)\n",
                    m, n, k, seed_f / fast_f, seed_i / fast_i,
                    seed_i / fast_c, threadCount());
    }
    writeBatchedServingReport(json);
    json.write();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // The seed-vs-engine report costs a couple of seconds and
    // rewrites BENCH_micro_kernels.json in the CWD; developers
    // iterating on one benchmark can turn it off.
    if (std::getenv("MOKEY_NO_SPEEDUP_REPORT") == nullptr)
        writeSpeedupReport();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
