/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: float GEMM,
 * index-domain GEMM, fixed-point GEMM, encode, pack/unpack, and the
 * golden-dictionary clustering.
 *
 * main() additionally times the engine kernels against replicas of
 * the *seed* scalar kernels and writes BENCH_micro_kernels.json
 * (kernel, shape, ns/op, GB/s, speedup), so the perf trajectory of
 * the index-domain engine is tracked from this PR onward.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "quant/fixed_pipeline.hh"
#include "quant/index_matmul.hh"
#include "quant/memory_codec.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

namespace
{

using namespace mokey;

struct Setup
{
    Setup()
        : exp(1.179, -0.977, 8), quantizer(exp)
    {
        Rng rng(31337);
        a = Tensor(64, 256, rng.gaussianVector(64 * 256, 0.0, 1.0));
        w = Tensor(64, 256,
                   rng.gaussianVector(64 * 256, 0.0, 0.05));
        da = quantizer.buildDictionary(a);
        dw = quantizer.buildDictionary(w);
        qa = quantizer.encode(a, da);
        qw = quantizer.encode(w, dw);
    }

    ExpDictionary exp;
    Quantizer quantizer;
    Tensor a, w;
    TensorDictionary da{}, dw{};
    QuantizedTensor qa, qw;
};

Setup &
setup()
{
    static Setup s;
    return s;
}

/**
 * Replica of the seed matmulTransB: single-threaded single-lane
 * double accumulation. The library kernel evolves; this baseline
 * stays frozen so speedups stay comparable across PRs.
 */
Tensor
seedMatmulTransB(const Tensor &a, const Tensor &b)
{
    Tensor c(a.rows(), b.rows());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += static_cast<double>(arow[p]) * brow[p];
            c.at(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

void
BM_FloatGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulTransB(s.a, s.w));
}
BENCHMARK(BM_FloatGemm)->Unit(benchmark::kMillisecond);

void
BM_FloatGemmSeed(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(seedMatmulTransB(s.a, s.w));
}
BENCHMARK(BM_FloatGemmSeed)->Unit(benchmark::kMillisecond);

void
BM_IndexGemm(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(indexMatmulTransB(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemm)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmScalar(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBScalar(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmScalar)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmCounting(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBCounting(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmCounting)->Unit(benchmark::kMillisecond);

void
BM_IndexGemmReference(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexMatmulTransBReference(s.qa, s.qw));
}
BENCHMARK(BM_IndexGemmReference)->Unit(benchmark::kMillisecond);

void
BM_FixedGemm(benchmark::State &state)
{
    auto &s = setup();
    const FixedFormat fmt{16, 8};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fixedIndexMatmulTransB(s.qa, s.qw, fmt));
}
BENCHMARK(BM_FixedGemm)->Unit(benchmark::kMillisecond);

void
BM_Encode(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.quantizer.encode(s.a, s.da));
}
BENCHMARK(BM_Encode)->Unit(benchmark::kMicrosecond);

void
BM_EncodeFused(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            s.quantizer.encodeToPlanes(s.a, s.da));
}
BENCHMARK(BM_EncodeFused)->Unit(benchmark::kMicrosecond);

void
BM_PackUnpack(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state) {
        const auto packed = packTensor(s.qa);
        benchmark::DoNotOptimize(
            unpackTensor(packed, s.qa.dictionary()));
    }
}
BENCHMARK(BM_PackUnpack)->Unit(benchmark::kMicrosecond);

void
BM_GoldenDictionaryClustering(benchmark::State &state)
{
    Rng rng(99);
    const auto samples = rng.gaussianVector(
        static_cast<size_t>(state.range(0)), 0.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(agglomerative1d(samples, 16));
}
BENCHMARK(BM_GoldenDictionaryClustering)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/**
 * The serving claim: dispatching a micro-batch of requests as one
 * stacked index-GEMM beats per-request dispatch, because the
 * weight-side work (per-column constant fold, context setup, pool
 * fan-out) is paid once per batch instead of once per request.
 * Decode-style single-token requests (m = 1 row each) make that
 * per-request overhead visible the way an autoregressive serving
 * loop would; records land in BENCH_micro_kernels.json as
 * index_gemm_batch8_{sequential,batched}, where the batched row's
 * speedup_vs_seed field holds batched-vs-sequential throughput.
 */
void
writeBatchedServingReport(bench::BenchJson &json)
{
    constexpr size_t kBatch = 8, kM = 1, kN = 256, kK = 256;
    Rng rng(424242);
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);

    // One shared activation dictionary — the serving scenario: every
    // request's activation re-quantizes against the tensor id's
    // profiled dictionary.
    Tensor sample(kBatch * kM, kK,
                  rng.gaussianVector(kBatch * kM * kK, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(sample);
    Tensor w(kN, kK, rng.gaussianVector(kN * kK, 0.0, 0.05));
    const auto qw = quantizer.encode(w, quantizer.buildDictionary(w));

    std::vector<QuantizedTensor> requests;
    std::vector<const QuantizedTensor *> parts;
    for (size_t b = 0; b < kBatch; ++b) {
        Tensor a(kM, kK, rng.gaussianVector(kM * kK, 0.0, 1.0));
        requests.push_back(quantizer.encode(a, dict));
    }
    for (const auto &r : requests)
        parts.push_back(&r);

    const double seq_ns = bench::timeKernelNs([&] {
        for (const auto &r : requests)
            indexMatmulTransB(r, qw);
    });
    const double batch_ns = bench::timeKernelNs(
        [&] { indexMatmulTransBBatched(parts, qw); });

    const double bytes =
        static_cast<double>(kBatch * kM * kK + kN * kK) * 1.0 +
        static_cast<double>(kBatch * kM * kN) * 4.0;
    json.add({"index_gemm_batch8_sequential", kM, kN, kK, seq_ns,
              bytes / seq_ns, 0.0});
    json.add({"index_gemm_batch8_batched", kBatch * kM, kN, kK,
              batch_ns, bytes / batch_ns, seq_ns / batch_ns});
    std::printf("batch %zu x (%zux%zux%zu): batched dispatch %.2fx "
                "vs sequential (threads=%zu)\n",
                kBatch, kM, kN, kK, seq_ns / batch_ns,
                threadCount());
}

/**
 * Frozen replica of the seed activation-quantization path: a scalar
 * per-element nearest-centroid encode into a full QCode tensor
 * (pass 1), then the complete derivePlanes walk building the
 * index/theta/mag planes and the outlier sidecars from those codes
 * (passes 2-3). This is exactly what the serving path paid per
 * activation tensor before the fused encoder; it stays frozen here
 * so act_encode_fused speedups remain comparable across PRs.
 */
void
seedEncodeToPlanes(const Tensor &t, const TensorDictionary &dict,
                   const Quantizer &quantizer)
{
    const size_t rows = t.rows(), cols = t.cols();
    std::vector<QCode> codes(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
        const float *src = t.row(r);
        QCode *dst = codes.data() + r * cols;
        for (size_t c = 0; c < cols; ++c)
            dst[c] = quantizer.encodeValue(src[c], dict);
    }
    // The derivePlanes pass the engines forced before every GEMM.
    std::vector<uint8_t> index(rows * cols);
    std::vector<int8_t> theta(rows * cols);
    std::vector<double> mag(rows * cols);
    std::vector<std::pair<uint32_t, double>> outliers;
    std::vector<uint32_t> row_start(rows + 1, 0);
    for (size_t r = 0; r < rows; ++r) {
        const QCode *src = codes.data() + r * cols;
        for (size_t c = 0; c < cols; ++c) {
            const QCode q = src[c];
            const size_t i = r * cols + c;
            if (q.isOutlier()) {
                index[i] = 0;
                theta[i] = 0;
                mag[i] = 0.0;
                outliers.emplace_back(
                    static_cast<uint32_t>(c),
                    dict.outlierValue(q.outlierIndex()));
            } else {
                index[i] = q.index();
                theta[i] = static_cast<int8_t>(q.theta());
                mag[i] =
                    q.theta() * dict.exp().magnitude(q.index());
            }
        }
        row_start[r + 1] = static_cast<uint32_t>(outliers.size());
    }
    benchmark::DoNotOptimize(mag.data());
    benchmark::DoNotOptimize(outliers.data());
}

/**
 * The tentpole claim of the fused activation path: encoding straight
 * into planes in one SIMD walk beats the seed's three passes (scalar
 * encode, code materialization, derivePlanes) by >= 3x single
 * threaded. Activation-shaped tensor (a BERT-base hidden GEMM input
 * slab) with a realistic outlier tail. GB/s counts the float source
 * read plus the 10 B/element plane writes; the seed row additionally
 * pays the 1 B/element code store + reload.
 */
void
writeActEncodeReport(bench::BenchJson &json)
{
    constexpr size_t kRows = 128, kCols = 768;
    Rng rng(515151);
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    std::vector<float> v =
        rng.gaussianVector(kRows * kCols, 0.0, 1.0);
    for (size_t i = 0; i < v.size() / 64; ++i)
        v[rng.uniformInt(v.size())] =
            static_cast<float>(rng.gaussian(0.0, 6.0));
    Tensor t(kRows, kCols, v);
    const auto dict = quantizer.buildDictionary(t);

    // The seed replica is strictly serial, so pin the pool to one
    // thread for the fused side too: the recorded (and CI-gated)
    // ratio must measure the kernel, not the host's core count.
    const size_t prior_threads = threadCount();
    setThreadCount(1);
    const double seed_ns = bench::timeKernelNs(
        [&] { seedEncodeToPlanes(t, dict, quantizer); });
    const double fused_ns = bench::timeKernelNs([&] {
        benchmark::DoNotOptimize(
            quantizer.encodeToPlanes(t, dict, PlaneSet::All));
    });
    setThreadCount(prior_threads);

    const double n = static_cast<double>(kRows * kCols);
    const double seed_bytes = n * (4.0 + 2.0 * 1.0 + 10.0);
    const double fused_bytes = n * (4.0 + 10.0);
    json.add({"act_encode_seed", kRows, kCols, 0, seed_ns,
              seed_bytes / seed_ns, 0.0});
    json.add({"act_encode_fused", kRows, kCols, 0, fused_ns,
              fused_bytes / fused_ns, seed_ns / fused_ns});
    std::printf("act encode %zux%zu: fused %.2fx vs seed three-pass "
                "(threads=%zu)\n",
                kRows, kCols, seed_ns / fused_ns, threadCount());
}

/**
 * Time engine vs seed kernels on GEMM shapes from the transformer
 * workloads and flush BENCH_micro_kernels.json. GB/s counts operand
 * reads plus result writes at their in-memory width: 4 B floats for
 * the float path, 1 B codes for the seed index path, and the planes
 * the two index engines actually stream — 8 B/element mag planes
 * for index_gemm_mag versus 2 B/element byte planes for
 * index_gemm_count (the counting engine's whole point).
 */
void
writeSpeedupReport()
{
    bench::BenchJson json("micro_kernels");

    struct GemmShape
    {
        size_t m, n, k;
    };
    for (const GemmShape shape :
         {GemmShape{64, 64, 256}, GemmShape{128, 128, 768}}) {
        const size_t m = shape.m, n = shape.n, k = shape.k;
        Rng rng(31337 + m);
        ExpDictionary exp(1.179, -0.977, 8);
        Quantizer quantizer(exp);
        Tensor a(m, k, rng.gaussianVector(m * k, 0.0, 1.0));
        Tensor w(n, k, rng.gaussianVector(n * k, 0.0, 0.05));
        const auto qa =
            quantizer.encode(a, quantizer.buildDictionary(a));
        const auto qw =
            quantizer.encode(w, quantizer.buildDictionary(w));

        const double fbytes =
            static_cast<double>(m * k + n * k + m * n) * 4.0;
        const double ibytes =
            static_cast<double>(m * k + n * k) * 1.0 +
            static_cast<double>(m * n) * 4.0;
        const double mag_bytes =
            static_cast<double>(m * k + n * k) * 8.0 +
            static_cast<double>(m * n) * 4.0;
        const double count_bytes =
            static_cast<double>(m * k + n * k) * 2.0 +
            static_cast<double>(m * n) * 4.0;

        const double seed_f = bench::timeKernelNs(
            [&] { seedMatmulTransB(a, w); });
        const double fast_f = bench::timeKernelNs(
            [&] { matmulTransB(a, w); });
        const double seed_i = bench::timeKernelNs(
            [&] { indexMatmulTransBReference(qa, qw); });
        const double fast_i = bench::timeKernelNs(
            [&] { indexMatmulTransBMag(qa, qw); });
        const double fast_c = bench::timeKernelNs(
            [&] { indexMatmulTransBCounting(qa, qw); });

        json.add({"float_gemm_seed", m, n, k, seed_f,
                  fbytes / seed_f, 0.0});
        json.add({"float_gemm_engine", m, n, k, fast_f,
                  fbytes / fast_f, seed_f / fast_f});
        json.add({"index_gemm_seed", m, n, k, seed_i,
                  ibytes / seed_i, 0.0});
        json.add({"index_gemm_mag", m, n, k, fast_i,
                  mag_bytes / fast_i, seed_i / fast_i});
        json.add({"index_gemm_count", m, n, k, fast_c,
                  count_bytes / fast_c, seed_i / fast_c});

        std::printf("shape %zux%zux%zu: float %.2fx, index mag "
                    "%.2fx, index count %.2fx (threads=%zu)\n",
                    m, n, k, seed_f / fast_f, seed_i / fast_i,
                    seed_i / fast_c, threadCount());
    }
    writeActEncodeReport(json);
    writeBatchedServingReport(json);
    json.write();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // The seed-vs-engine report costs a couple of seconds and
    // rewrites BENCH_micro_kernels.json in the CWD; developers
    // iterating on one benchmark can turn it off.
    if (std::getenv("MOKEY_NO_SPEEDUP_REPORT") == nullptr)
        writeSpeedupReport();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
