/**
 * @file
 * Serving front-end load generator: measures what the epoll HTTP
 * layer costs on top of direct BatchScheduler calls, and what the
 * served latency distribution looks like under open-loop load.
 *
 * Three phases, one shared quantized pipeline (reduced BERT-Base):
 *
 *  1. Closed-loop direct baseline — C client threads submit futures
 *     straight into a BatchScheduler and wait; measures the
 *     scheduler's own sustainable QPS with zero network in the path.
 *  2. Closed-loop HTTP — the same offered pattern through
 *     InferenceServer over loopback keep-alive connections. The
 *     ratio http_qps / direct_qps is the gated record
 *     ("serving_http_vs_direct_qps"): it is a same-machine,
 *     same-run ratio, so it is comparable across hosts to first
 *     order, and it regresses when the serving layer grows
 *     per-request overhead.
 *  3. Open-loop arrivals — fixed-seed exponential inter-arrival
 *     times at ~70% of the measured closed-loop HTTP capacity, with
 *     a ragged request-length mix. Latency is measured from the
 *     *scheduled* arrival (so queueing delay from late sends counts),
 *     giving honest p50/p99 under load. These rows are raw timings
 *     (speedup_vs_seed = 0): absolute latency is machine-dependent
 *     and is tracked, not gated.
 *  4. Continuous vs run-to-completion on a ragged mix — the same
 *     fixed-seed open-loop trace (1/8 long prefills, 7/8 one-to-two
 *     row decodes) submitted scheduler-level (no HTTP) to a
 *     BatchScheduler and to a ContinuousScheduler. The gated record
 *     ("serving_ragged_decode_p99_batch_vs_continuous") is the
 *     decode-class p99 ratio batch/continuous — the head-of-line
 *     number iteration-level batching exists to improve: under
 *     run-to-completion a decode arriving behind a dispatched
 *     prefill waits a whole multi-layer pass; continuously it waits
 *     at most one layer step.
 *
 * Phases 2 and 3 pin cfg.continuous = false so their records keep
 * measuring the HTTP layer against the same run-to-completion
 * scheduler as when they were first recorded.
 *
 * Writes BENCH_serving.json for tools/check_bench_regression.py.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/fault.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/scheduler.hh"
#include "net/http_client.hh"
#include "net/inference_server.hh"

using namespace mokey;
using namespace mokey::bench;
using namespace mokey::net;
using clock_t_ = std::chrono::steady_clock;

namespace
{

constexpr size_t kClients = 4;
constexpr size_t kClosedLoopRequests = 64; // per phase, total
constexpr size_t kOpenLoopRequests = 96;
constexpr unsigned kSeed = 7; // fixes arrivals + request mix

/** Ragged request mix: sequence lengths cycled per request. */
constexpr size_t kLens[] = {4, 24, 8, 32, 16, 12, 28, 6};
constexpr size_t kLenCount = sizeof(kLens) / sizeof(kLens[0]);

double
elapsedSeconds(clock_t_::time_point t0)
{
    return std::chrono::duration<double>(clock_t_::now() - t0)
        .count();
}

double
percentileMs(std::vector<double> sorted_ms, double p)
{
    if (sorted_ms.empty())
        return 0.0;
    std::sort(sorted_ms.begin(), sorted_ms.end());
    const double idx = p * (sorted_ms.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
    const double frac = idx - lo;
    return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

BatchSchedulerConfig
schedulerConfig()
{
    BatchSchedulerConfig scfg;
    scfg.maxBatch = 4;
    scfg.maxTokens = 96;
    scfg.flushTimeout = std::chrono::milliseconds(2);
    return scfg;
}

} // namespace

int
main()
{
    banner("Serving front-end: HTTP layer overhead and open-loop "
           "latency",
           "the serving configuration of Sec. 6 at reduced "
           "geometry");

    const ModelConfig cfg = reduced(bertBase(), 8);
    const Transformer model(cfg, 42);
    const Quantizer quantizer = standardQuantizer();
    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> profile_batch;
    for (int i = 0; i < 8; ++i)
        profile_batch.push_back(model.makeInput(32, 100 + i));
    pipe.profileActivations(profile_batch);

    // One input per closed-loop request, reused across both phases
    // so direct and HTTP see the identical offered work.
    std::vector<Tensor> inputs;
    size_t total_rows = 0;
    for (size_t i = 0; i < kClosedLoopRequests; ++i) {
        const size_t len = kLens[i % kLenCount];
        inputs.push_back(model.makeInput(len, 900 + (int)i));
        total_rows += len;
    }

    // ---- phase 1: closed-loop direct scheduler baseline ----------
    double direct_qps = 0.0;
    {
        BatchScheduler sched(pipe,
                             QuantMode::WeightsAndActivations,
                             schedulerConfig());
        std::atomic<size_t> next{0};
        const auto t0 = clock_t_::now();
        std::vector<std::thread> clients;
        for (size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&] {
                for (size_t i = next.fetch_add(1);
                     i < kClosedLoopRequests;
                     i = next.fetch_add(1))
                    sched.submit(inputs[i]).get();
            });
        for (auto &t : clients)
            t.join();
        direct_qps = kClosedLoopRequests / elapsedSeconds(t0);
        sched.drain();
    }
    std::printf("\nclosed-loop direct:  %6.1f req/s "
                "(%zu clients, %zu requests)\n",
                direct_qps, kClients, kClosedLoopRequests);

    // ---- phase 2: closed-loop HTTP over loopback -----------------
    double http_qps = 0.0;
    double http_bytes = 0.0;
    {
        InferenceServerConfig icfg;
        icfg.continuous = false; // keep the PR 7 comparison basis
        icfg.scheduler = schedulerConfig();
        icfg.maxQueueDepth = 64;
        InferenceServer server(pipe, icfg);
        server.start();

        std::atomic<size_t> next{0};
        std::atomic<uint64_t> bytes{0};
        const auto t0 = clock_t_::now();
        std::vector<std::thread> clients;
        for (size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&] {
                HttpClient cli("127.0.0.1", server.port());
                for (size_t i = next.fetch_add(1);
                     i < kClosedLoopRequests;
                     i = next.fetch_add(1)) {
                    const std::string body =
                        encodeTensorBody(inputs[i]);
                    const HttpResponse rsp =
                        cli.post("/v1/forward", body);
                    if (rsp.status != 200) {
                        std::fprintf(stderr,
                                     "unexpected status %d\n",
                                     rsp.status);
                        std::exit(1);
                    }
                    bytes += body.size() + rsp.body.size();
                }
            });
        for (auto &t : clients)
            t.join();
        const double secs = elapsedSeconds(t0);
        http_qps = kClosedLoopRequests / secs;
        http_bytes = double(bytes.load()) / secs;
        server.drain();
    }
    const double ratio = http_qps / direct_qps;
    std::printf("closed-loop HTTP:    %6.1f req/s  -> %.2fx of "
                "direct (the gated ratio)\n",
                http_qps, ratio);

    // ---- phase 3: open-loop arrivals at ~70%% of capacity ---------
    // Arrivals are scheduled up front from a fixed seed so the
    // offered trace is identical run to run; latency counts from the
    // scheduled arrival so send-side queueing is not hidden.
    std::vector<double> arrival_s;
    std::vector<size_t> open_lens;
    {
        std::mt19937 rng(kSeed);
        const double rate = 0.70 * http_qps;
        std::exponential_distribution<double> gap(rate);
        std::uniform_int_distribution<size_t> pick(0,
                                                   kLenCount - 1);
        double t = 0.0;
        for (size_t i = 0; i < kOpenLoopRequests; ++i) {
            t += gap(rng);
            arrival_s.push_back(t);
            open_lens.push_back(kLens[pick(rng)]);
        }
    }

    double open_qps = 0.0;
    std::vector<double> latency_ms(kOpenLoopRequests, 0.0);
    {
        InferenceServerConfig icfg;
        icfg.continuous = false; // keep the PR 7 comparison basis
        icfg.scheduler = schedulerConfig();
        icfg.maxQueueDepth = 64;
        InferenceServer server(pipe, icfg);
        server.start();

        std::vector<Tensor> open_inputs;
        for (size_t i = 0; i < kOpenLoopRequests; ++i)
            open_inputs.push_back(
                model.makeInput(open_lens[i], 500 + (int)i));

        // A worker pool large enough that sends almost never lag
        // their scheduled arrival; any residual lag is charged to
        // latency anyway.
        constexpr size_t kWorkers = 8;
        std::atomic<size_t> next{0};
        const auto t0 = clock_t_::now();
        std::vector<std::thread> workers;
        for (size_t w = 0; w < kWorkers; ++w)
            workers.emplace_back([&] {
                HttpClient cli("127.0.0.1", server.port());
                for (size_t i = next.fetch_add(1);
                     i < kOpenLoopRequests;
                     i = next.fetch_add(1)) {
                    const auto due =
                        t0 + std::chrono::duration_cast<
                                 clock_t_::duration>(
                                 std::chrono::duration<double>(
                                     arrival_s[i]));
                    std::this_thread::sleep_until(due);
                    const HttpResponse rsp = cli.post(
                        "/v1/forward",
                        encodeTensorBody(open_inputs[i]));
                    if (rsp.status != 200 && rsp.status != 503) {
                        std::fprintf(stderr,
                                     "unexpected status %d\n",
                                     rsp.status);
                        std::exit(1);
                    }
                    latency_ms[i] =
                        std::chrono::duration<double,
                                              std::milli>(
                            clock_t_::now() - due)
                            .count();
                }
            });
        for (auto &t : workers)
            t.join();
        open_qps = kOpenLoopRequests / elapsedSeconds(t0);
        server.drain();
    }

    const double p50 = percentileMs(latency_ms, 0.50);
    const double p99 = percentileMs(latency_ms, 0.99);
    std::printf("open-loop @70%% cap:  %6.1f req/s sustained, "
                "p50 %.2f ms, p99 %.2f ms\n",
                open_qps, p50, p99);

    // ---- phase 4: ragged mix, batch vs continuous scheduler ------
    // Scheduler-level (no HTTP): the same fixed-seed open-loop trace
    // against both schedulers; decode-class p99 from the scheduled
    // arrival is the head-of-line metric iteration-level batching
    // targets (the overall p99 would just be a long prefill).
    constexpr size_t kRaggedRequests = 64;
    constexpr size_t kPrefillRows = 96;
    std::vector<double> rag_arrival;
    std::vector<size_t> rag_lens;
    {
        std::mt19937 rng(kSeed + 1);
        std::exponential_distribution<double> gap(0.70 * direct_qps);
        double t = 0.0;
        for (size_t i = 0; i < kRaggedRequests; ++i) {
            t += gap(rng);
            rag_arrival.push_back(t);
            rag_lens.push_back(i % 8 == 0 ? kPrefillRows
                                          : 1 + i % 2);
        }
    }
    std::vector<Tensor> rag_inputs;
    for (size_t i = 0; i < kRaggedRequests; ++i)
        rag_inputs.push_back(
            model.makeInput(rag_lens[i], 1500 + (int)i));

    // One paced submitter replays the trace; completions stamp the
    // latency slot for their request. drain() orders the reads.
    const auto runTrace = [&](ServingScheduler &sched) {
        std::vector<double> lat(kRaggedRequests, 0.0);
        const auto t0 = clock_t_::now();
        for (size_t i = 0; i < kRaggedRequests; ++i) {
            const auto due =
                t0 + std::chrono::duration_cast<clock_t_::duration>(
                         std::chrono::duration<double>(
                             rag_arrival[i]));
            std::this_thread::sleep_until(due);
            double *slot = &lat[i];
            sched.submit(Tensor(rag_inputs[i]),
                         [slot, due](Tensor, std::exception_ptr) {
                             *slot = std::chrono::duration<
                                         double, std::milli>(
                                         clock_t_::now() - due)
                                         .count();
                         });
        }
        sched.drain();
        return lat;
    };
    const auto classP99 = [&](const std::vector<double> &lat,
                              bool decode) {
        std::vector<double> cls;
        for (size_t i = 0; i < kRaggedRequests; ++i)
            if ((rag_lens[i] < kPrefillRows) == decode)
                cls.push_back(lat[i]);
        return percentileMs(cls, 0.99);
    };

    double batch_decode_p99 = 0.0, batch_prefill_p99 = 0.0;
    {
        BatchScheduler sched(pipe, QuantMode::WeightsAndActivations,
                             schedulerConfig());
        const auto lat = runTrace(sched);
        batch_decode_p99 = classP99(lat, true);
        batch_prefill_p99 = classP99(lat, false);
    }
    double cont_decode_p99 = 0.0, cont_prefill_p99 = 0.0;
    {
        ContinuousSchedulerConfig ccfg;
        ccfg.maxBatch = 8;
        ccfg.decodeMaxRows = 4;
        ccfg.chunkTokens = 96;
        ContinuousScheduler sched(
            pipe, QuantMode::WeightsAndActivations, ccfg);
        const auto lat = runTrace(sched);
        cont_decode_p99 = classP99(lat, true);
        cont_prefill_p99 = classP99(lat, false);
    }
    const double decode_ratio = batch_decode_p99 / cont_decode_p99;
    std::printf(
        "ragged mix decode p99: %6.2f ms batch -> %6.2f ms "
        "continuous (%.2fx, the gated ratio); prefill p99 "
        "%6.2f -> %6.2f ms\n",
        batch_decode_p99, cont_decode_p99, decode_ratio,
        batch_prefill_p99, cont_prefill_p99);

    // ---- phase 5: chaos — deterministic fault injection ----------
    // Engine-dispatch faults at a fixed seed against the batch-mode
    // server, one request per batch, serial client: a request fails
    // (500) iff a fault fired during it, so every injected fault
    // maps onto exactly the request it poisoned — and the server
    // keeps serving afterwards. Honors an externally-armed
    // MOKEY_FAULT (then the 1:1 mapping check is skipped, since the
    // armed site may not be the engine).
    {
        auto &inj = FaultInjector::instance();
        const bool armed_here = !faultsArmed();
        if (armed_here)
            inj.configure("engine:0.05:1337");

        InferenceServerConfig icfg;
        icfg.continuous = false;
        icfg.scheduler = schedulerConfig();
        icfg.scheduler.maxBatch = 1;
        InferenceServer server(pipe, icfg);
        server.start();
        HttpClient cli("127.0.0.1", server.port());

        constexpr size_t kChaosRequests = 32;
        size_t chaos_ok = 0, chaos_failed = 0, mismatches = 0;
        for (size_t i = 0; i < kChaosRequests; ++i) {
            const uint64_t before =
                inj.fired(FaultSite::EngineDispatch);
            HttpResponse rsp;
            try {
                rsp = cli.post(
                    "/v1/forward",
                    encodeTensorBody(inputs[i % inputs.size()]));
            } catch (const std::exception &) {
                ++chaos_failed; // injected connection reset
                continue;
            }
            const uint64_t hits =
                inj.fired(FaultSite::EngineDispatch) - before;
            if (rsp.status == 200) {
                ++chaos_ok;
                if (armed_here && hits != 0)
                    ++mismatches;
            } else {
                ++chaos_failed;
                if (armed_here && hits == 0)
                    ++mismatches;
            }
        }
        server.drain();
        if (armed_here)
            inj.disarm();

        std::printf("chaos (engine:0.05): %zu served, %zu failed, "
                    "%zu fault<->failure mismatches\n",
                    chaos_ok, chaos_failed, mismatches);
        if (mismatches != 0 || chaos_ok == 0) {
            std::fprintf(stderr,
                         "chaos phase failed: injected faults did "
                         "not map 1:1 onto failed requests\n");
            return 1;
        }
    }

    // ---- machine-readable records --------------------------------
    const size_t mean_rows = total_rows / kClosedLoopRequests;
    BenchJson json("serving");
    // Gated ratio row: same-run, same-machine comparison.
    json.add({"serving_http_vs_direct_qps", kClients, mean_rows,
              cfg.hidden, 1e9 / http_qps, http_bytes * 1e-9,
              ratio});
    // Raw rows: tracked, not gated (machine-dependent absolutes).
    json.add({"serving_direct_qps_closed_loop", kClients, mean_rows,
              cfg.hidden, 1e9 / direct_qps, 0.0, 0.0});
    json.add({"serving_http_qps_closed_loop", kClients, mean_rows,
              cfg.hidden, 1e9 / http_qps, http_bytes * 1e-9, 0.0});
    json.add({"serving_open_loop_p50_ms", kOpenLoopRequests,
              mean_rows, cfg.hidden, p50 * 1e6, 0.0, 0.0});
    json.add({"serving_open_loop_p99_ms", kOpenLoopRequests,
              mean_rows, cfg.hidden, p99 * 1e6, 0.0, 0.0});
    json.add({"serving_open_loop_sustained_qps", kOpenLoopRequests,
              mean_rows, cfg.hidden, 1e9 / open_qps, 0.0, 0.0});
    // Gated ratio row: decode-class p99, run-to-completion over
    // continuous, same trace, same machine, same run.
    json.add({"serving_ragged_decode_p99_batch_vs_continuous",
              kRaggedRequests, kPrefillRows, cfg.hidden,
              cont_decode_p99 * 1e6, 0.0, decode_ratio});
    // Raw rows for the same phase (tracked, not gated).
    json.add({"serving_ragged_decode_p99_batch_ms", kRaggedRequests,
              kPrefillRows, cfg.hidden, batch_decode_p99 * 1e6, 0.0,
              0.0});
    json.add({"serving_ragged_prefill_p99_continuous_ms",
              kRaggedRequests, kPrefillRows, cfg.hidden,
              cont_prefill_p99 * 1e6, 0.0, 0.0});
    return json.write() ? 0 : 1;
}
