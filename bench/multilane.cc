/**
 * @file
 * Multi-lane dispatch throughput bench: the tentpole claim of the
 * lane executor, measured three ways and flushed to
 * BENCH_multilane.json for the CI regression gate.
 *
 * 1. *Executor dispatch.* The many-small-GEMM attention pattern —
 *    a stream of tiny top-level loops, each a few microseconds of
 *    work — submitted from 1/2/4 concurrent lanes. The baseline is a
 *    frozen replica of the seed pool (PR 1/2): one run_mu-guarded
 *    FIFO whose every loop pays a full worker wake + acknowledgement
 *    round before the caller may return, and under which concurrent
 *    submitters serialize. The lane executor completes a loop the
 *    moment its iterations have executed (the owner drains its own
 *    lane), and lanes progress concurrently, so speedup_vs_seed
 *    reflects pure dispatch-path wins — visible even on one core,
 *    where the seed design burns context switches per loop.
 * 2. *Persistent wave vs parked.* The same 2-lane pattern with
 *    workers spinning briefly (setWaveSpin) before parking.
 * 3. *Work stealing on imbalanced lanes.* Two concurrent lanes, one
 *    submitting 8x-sized loops: makespan with stealing off (the
 *    frozen PR 3 round-robin sharing schedule) over makespan with
 *    stealing on (idle workers back-claim whole chunks from the
 *    busiest lane, lane owners assist once their own range is fully
 *    claimed). Chunk boundaries are identical either way, so the
 *    ratio is pure schedule win; it needs parallel hardware to rise
 *    much above 1.0.
 * 4. *Scheduler lanes.* Aggregate request throughput of one
 *    BatchScheduler with laneCount=2 vs laneCount=1 on an identical
 *    closed-loop burst. This row's speedup field is 2-lane over
 *    1-lane throughput; it needs parallel hardware to rise much
 *    above 1.0 (on a single-core host both configurations are
 *    compute-bound on the same core).
 *
 * The executor benches pin the pool at 2 threads so the recorded
 * ratios are comparable across hosts.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "model/config.hh"
#include "model/scheduler.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"

namespace
{

using namespace mokey;

/**
 * Replica of the seed thread pool (PR 1/2): one job slot, one
 * run_mu-serialized top-level loop at a time, and a caller that
 * cannot return until every worker has woken and decremented the
 * pending count. The library executor evolves; this baseline stays
 * frozen so the recorded dispatch speedups stay comparable across
 * PRs.
 */
class SeedPool
{
  public:
    explicit SeedPool(size_t threads)
    {
        nThreads = threads < 1 ? 1 : threads;
        const uint64_t gen = generation;
        for (size_t t = 0; t + 1 < nThreads; ++t)
            workers.emplace_back([this, gen] { workerLoop(gen); });
    }

    ~SeedPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
            ++generation;
        }
        cv_work.notify_all();
        for (auto &w : workers)
            w.join();
    }

    void run(size_t begin, size_t end, size_t grain,
             const RangeBody &body)
    {
        if (begin >= end)
            return;
        const size_t range = end - begin;
        if (nThreads == 1 || range <= grain) {
            body(begin, end);
            return;
        }
        const size_t target =
            (range + nThreads * 4 - 1) / (nThreads * 4);
        const size_t chunk = std::max(grain, target);

        std::lock_guard<std::mutex> run_lk(run_mu);
        {
            std::unique_lock<std::mutex> lk(mu);
            job = &body;
            job_end = end;
            job_grain = chunk;
            cursor.store(begin, std::memory_order_relaxed);
            pending = workers.size();
            ++generation;
        }
        cv_work.notify_all();
        drain(body);
        std::unique_lock<std::mutex> lk(mu);
        cv_done.wait(lk, [this] { return pending == 0; });
        job = nullptr;
    }

  private:
    void drain(const RangeBody &body)
    {
        const size_t end = job_end, grain = job_grain;
        for (;;) {
            const size_t lo =
                cursor.fetch_add(grain, std::memory_order_relaxed);
            if (lo >= end)
                break;
            body(lo, std::min(lo + grain, end));
        }
    }

    void workerLoop(uint64_t seen)
    {
        for (;;) {
            const RangeBody *body;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv_work.wait(lk, [this, seen] {
                    return generation != seen;
                });
                seen = generation;
                if (stopping)
                    return;
                body = job;
            }
            if (body)
                drain(*body);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (pending > 0 && --pending == 0)
                    cv_done.notify_all();
            }
        }
    }

    std::mutex run_mu;
    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::vector<std::thread> workers;
    size_t nThreads = 1;
    const RangeBody *job = nullptr;
    size_t job_end = 0, job_grain = 1;
    std::atomic<size_t> cursor{0};
    size_t pending = 0;
    uint64_t generation = 0;
    bool stopping = false;
};

/** Attention-decode-sized loop: kRows tiny dot products per GEMM. */
constexpr size_t kRows = 32;      ///< output rows per small GEMM
constexpr size_t kInner = 64;     ///< MACs per row
constexpr size_t kLoopsPerLane = 512;
constexpr size_t kPoolThreads = 2;

/** One small-GEMM-shaped loop body iteration. */
inline void
rowWork(size_t i, volatile double *sink)
{
    double acc = 0.0;
    for (size_t p = 0; p < kInner; ++p)
        acc += static_cast<double>(i * 31 + p) * 1e-3;
    *sink = acc;
}

/**
 * Run @p lanes concurrent submitters of kLoopsPerLane small loops
 * each through the lane executor; returns aggregate ns per loop.
 */
double
timeLaneDispatch(size_t lanes)
{
    return bench::timeKernelNs([lanes] {
        std::vector<std::thread> callers;
        for (size_t c = 0; c < lanes; ++c) {
            callers.emplace_back([c] {
                const Lane lane = Lane::ofIndex(c);
                volatile double sink = 0.0;
                for (size_t rep = 0; rep < kLoopsPerLane; ++rep)
                    parallelFor(lane, 0, kRows, 1,
                                [&](size_t i) { rowWork(i, &sink); });
            });
        }
        for (auto &t : callers)
            t.join();
    }) / static_cast<double>(lanes * kLoopsPerLane);
}

/** Same workload through the frozen seed pool replica. */
double
timeSeedDispatch(size_t submitters, SeedPool &pool)
{
    return bench::timeKernelNs([submitters, &pool] {
        std::vector<std::thread> callers;
        for (size_t c = 0; c < submitters; ++c) {
            callers.emplace_back([&pool] {
                volatile double sink = 0.0;
                for (size_t rep = 0; rep < kLoopsPerLane; ++rep)
                    pool.run(0, kRows, 1,
                             [&](size_t lo, size_t hi) {
                                 for (size_t i = lo; i < hi; ++i)
                                     rowWork(i, &sink);
                             });
            });
        }
        for (auto &t : callers)
            t.join();
    }) / static_cast<double>(submitters * kLoopsPerLane);
}

/**
 * Imbalanced two-lane pattern: lane 0 submits 8x-range loops (the
 * long-prefill shape), lane 1 the small decode-sized loops. Returns
 * makespan ns for one joint run — the steal scenario's metric, since
 * stealing moves tail chunks of the heavy loops onto whoever is
 * idle without changing any chunk boundary.
 */
double
timeImbalancedLanes()
{
    constexpr size_t kHeavyMult = 8;
    constexpr size_t kJointLoops = kLoopsPerLane / 4;
    return bench::timeKernelNs([] {
        std::vector<std::thread> callers;
        for (size_t c = 0; c < 2; ++c) {
            callers.emplace_back([c] {
                const Lane lane = Lane::ofIndex(c);
                const size_t rows =
                    c == 0 ? kRows * kHeavyMult : kRows;
                volatile double sink = 0.0;
                for (size_t rep = 0; rep < kJointLoops; ++rep)
                    parallelFor(lane, 0, rows, 1,
                                [&](size_t i) { rowWork(i, &sink); });
            });
        }
        for (auto &t : callers)
            t.join();
    });
}

constexpr size_t kClients = 4;      ///< closed-loop client threads
constexpr size_t kReqsPerClient = 4; ///< requests each client runs

/**
 * Closed-loop serving burst: kClients client threads each running
 * kReqsPerClient requests back-to-back against one scheduler.
 * Returns aggregate requests per second.
 */
double
schedulerThroughput(const QuantizedTransformer &pipe, size_t laneCount,
                    const Transformer &model)
{
    const double ns = bench::timeKernelNs(
        [&] {
            BatchSchedulerConfig cfg;
            cfg.maxBatch = 2;
            cfg.flushTimeout = std::chrono::microseconds(500);
            cfg.laneCount = laneCount;
            BatchScheduler sched(
                pipe, QuantMode::WeightsAndActivations, cfg);
            std::vector<std::thread> clients;
            for (size_t c = 0; c < kClients; ++c) {
                clients.emplace_back([&, c] {
                    for (size_t r = 0; r < kReqsPerClient; ++r) {
                        auto f = sched.submit(model.makeInput(
                            4 + (c + r) % 4, 3000 + c * 10 + r));
                        f.get();
                    }
                });
            }
            for (auto &cl : clients)
                cl.join();
            sched.drain();
        },
        3, 0.5);
    return static_cast<double>(kClients * kReqsPerClient) /
        (ns * 1e-9);
}

} // anonymous namespace

int
main()
{
    bench::banner("Multi-lane executor dispatch throughput",
                  "the PR 3 lane executor vs the seed FIFO pool");
    bench::BenchJson json("multilane");

    setThreadCount(kPoolThreads);
    setWaveSpin(0);

    SeedPool seed(kPoolThreads);
    const double seed1 = timeSeedDispatch(1, seed);
    const double seed2 = timeSeedDispatch(2, seed);
    const double seed4 = timeSeedDispatch(4, seed);

    const double lane1 = timeLaneDispatch(1);
    const double lane2 = timeLaneDispatch(2);
    const double lane4 = timeLaneDispatch(4);

    setWaveSpin(100);
    const double lane2w = timeLaneDispatch(2);
    setWaveSpin(0);

    std::printf("\nsmall-GEMM loop (%zu rows x %zu MACs), pool=%zu "
                "threads, %zu loops/lane:\n",
                kRows, kInner, kPoolThreads, kLoopsPerLane);
    std::printf("  seed FIFO : %8.0f / %8.0f / %8.0f ns/loop "
                "(1/2/4 submitters)\n", seed1, seed2, seed4);
    std::printf("  lanes     : %8.0f / %8.0f / %8.0f ns/loop "
                "(1/2/4 lanes)\n", lane1, lane2, lane4);
    std::printf("  2-lane wave(100us): %8.0f ns/loop (%.2fx vs "
                "parked)\n", lane2w, lane2 / lane2w);
    std::printf("  dispatch speedup vs seed: %.2fx (1 lane), "
                "%.2fx (2 lanes), %.2fx (4 lanes)\n",
                seed1 / lane1, seed2 / lane2, seed4 / lane4);

    json.add({"multilane_dispatch_1lane", kRows, kInner,
              kLoopsPerLane, lane1, 0.0, seed1 / lane1});
    json.add({"multilane_dispatch_2lane", kRows, kInner,
              kLoopsPerLane, lane2, 0.0, seed2 / lane2});
    json.add({"multilane_dispatch_4lane", kRows, kInner,
              kLoopsPerLane, lane4, 0.0, seed4 / lane4});
    json.add({"multilane_dispatch_2lane_wave", kRows, kInner,
              kLoopsPerLane, lane2w, 0.0, seed2 / lane2w});

    // Work stealing on imbalanced lanes: same workload, same chunk
    // boundaries, only the chunk->thread schedule differs.
    const bool priorSteal = laneStealing();
    setLaneStealing(false);
    const double imbOff = timeImbalancedLanes();
    setLaneStealing(true);
    const double imbOn = timeImbalancedLanes();
    setLaneStealing(priorSteal);
    std::printf("\nimbalanced lanes (8x vs 1x loops): %8.0f ns off "
                "-> %8.0f ns on, steal speedup %.2fx\n",
                imbOff, imbOn, imbOff / imbOn);
    json.add({"lane_steal_speedup", kRows * 8, kInner,
              kLoopsPerLane / 4, imbOn, 0.0, imbOff / imbOn});

    // Scheduler-level: identical closed-loop burst, 2 lanes vs 1.
    const ModelConfig cfg{"tiny", 2, 32, 2, 128, 256};
    const Transformer model(cfg, 23);
    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));
    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> profile;
    for (int i = 0; i < 4; ++i)
        profile.push_back(model.makeInput(16, 100 + i));
    pipe.profileActivations(profile);

    const double thr1 = schedulerThroughput(pipe, 1, model);
    const double thr2 = schedulerThroughput(pipe, 2, model);
    std::printf("\nscheduler closed-loop burst: %.0f req/s (1 lane) "
                "-> %.0f req/s (2 lanes), %.2fx\n",
                thr1, thr2, thr2 / thr1);
    json.add({"scheduler_2lanes_vs_1lane", kClients * kReqsPerClient,
              cfg.hidden, 2,
              1e9 * static_cast<double>(kClients * kReqsPerClient) /
                  thr2,
              0.0, thr2 / thr1});

    json.write();
    return 0;
}
