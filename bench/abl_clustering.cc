/**
 * @file
 * Ablation: agglomerative clustering vs k-means for golden
 * dictionary generation — the paper's §II-B argument that
 * agglomerative clustering avoids k-means' initialization
 * sensitivity and quantizes more accurately.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "clustering/kmeans1d.hh"
#include "common/rng.hh"
#include "quant/golden_dictionary.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Ablation: agglomerative vs k-means dictionary "
                  "generation", "paper §II-B");

    Rng rng(606);
    const auto samples = rng.gaussianVector(50000, 0.0, 1.0);

    const auto ac = agglomerative1d(samples, 16);
    std::printf("%-24s inertia %10.1f\n", "Agglomerative (Ward)",
                ac.inertia);

    std::printf("%-24s", "k-means (5 seeds)");
    double km_min = 1e300, km_max = 0.0;
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const auto km = kmeans1d(samples, 16, 100, seed);
        km_min = std::min(km_min, km.inertia);
        km_max = std::max(km_max, km.inertia);
    }
    std::printf(" inertia %10.1f .. %.1f (seed spread %.2f%%)\n",
                km_min, km_max, 100.0 * (km_max - km_min) / km_min);

    // Downstream: reconstruction error through the exponential fit.
    Tensor probe(128, 128, rng.gaussianVector(16384, 0.0, 1.0));
    for (const bool use_ac : {true, false}) {
        const auto &res =
            use_ac ? ac : kmeans1d(samples, 16, 100, 0);
        const auto gd = GoldenDictionary::fromCentroids(
            res.centroids);
        const Quantizer qz(ExpDictionary::fit(gd));
        const auto dict = qz.buildDictionary(probe);
        const Tensor rec = qz.encode(probe, dict).decode();
        double mse = 0.0;
        for (size_t i = 0; i < probe.size(); ++i) {
            const double d = probe.raw()[i] - rec.raw()[i];
            mse += d * d;
        }
        mse /= static_cast<double>(probe.size());
        std::printf("Reconstruction MSE (%s): %.6f\n",
                    use_ac ? "agglomerative" : "k-means", mse);
    }
    return 0;
}
