/**
 * @file
 * Figures 14 and 15: the Tensor-Cores baseline with Mokey used
 * purely as a memory-compression assist — off-chip only (OC) and
 * off-chip plus on-chip (OC+ON). Speedup and energy efficiency
 * relative to the uncompressed baseline.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/compression.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Tensor Cores with Mokey memory compression",
                  "Figures 14-15");

    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto oc = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOffChip(), pts,
                                    bufs);
    const auto on = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOnChip(), pts,
                                    bufs);

    std::printf("Speedup (Fig. 14):\n%-22s", "Model/Task");
    for (size_t b : bufs)
        std::printf("  OC@%-5s OCON@%-5s", bufferLabel(b).c_str(),
                    bufferLabel(b).c_str());
    std::printf("\n");
    for (const auto &p : pts) {
        std::printf("%-22s", p.label.c_str());
        for (size_t b : bufs) {
            double s_oc = 0, s_on = 0;
            for (const auto &c : oc)
                if (c.label == p.label && c.bufferBytes == b)
                    s_oc = c.speedup();
            for (const auto &c : on)
                if (c.label == p.label && c.bufferBytes == b)
                    s_on = c.speedup();
            std::printf("  %7.2fx %8.2fx", s_oc, s_on);
        }
        std::printf("\n");
    }
    std::printf("%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf("  %7.2fx %8.2fx", geomeanSpeedup(oc, b),
                    geomeanSpeedup(on, b));
    std::printf("\n  (paper: OC ~3.9x at 256KB to ~4.3x at 4MB)\n");

    std::printf("\nEnergy efficiency (Fig. 15):\n%-22s", "");
    for (size_t b : bufs)
        std::printf("  OC@%-5s OCON@%-5s", bufferLabel(b).c_str(),
                    bufferLabel(b).c_str());
    std::printf("\n%-22s", "GEOMEAN");
    for (size_t b : bufs)
        std::printf("  %7.2fx %8.2fx", geomeanEnergyEff(oc, b),
                    geomeanEnergyEff(on, b));
    std::printf("\n  (paper: OC 11x at 256KB, 7.8x at 4MB; OC+ON "
                "54x at 256KB, 8x at 4MB)\n");
    return 0;
}
