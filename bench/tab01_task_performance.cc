/**
 * @file
 * Table I: the effect of Mokey quantization on task performance —
 * FP score, weight-only quantization, weight+activation
 * quantization, and outlier fractions, for every model/task pair.
 *
 * Models run at reduced geometry (see DESIGN.md substitution table);
 * scores are synthetic-task analogues, so the comparable quantity is
 * the *Err* columns (degradation), not absolute scores.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"

namespace
{

using namespace mokey;

struct Row
{
    ModelConfig model;
    TaskKind task;
    uint64_t seed;
};

void
runRow(const Row &row, const Quantizer &quantizer)
{
    const ModelConfig cfg = reduced(row.model, 12);
    const Transformer model(cfg, row.seed);

    const TaskEvaluator task(model, row.task, 48, 24,
                             row.seed * 17 + 3);

    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    // Paper: one profiling batch of 8 task samples, disjoint from
    // the evaluation set.
    pipe.profileActivations(task.profilingBatch(8,
                                                row.seed * 31));
    const double fp = task.evaluateReference();
    const double w_only = task.evaluate([&](const Tensor &in) {
        return pipe.forward(in, QuantMode::WeightsOnly);
    });
    const double w_a = task.evaluate([&](const Tensor &in) {
        return pipe.forward(in, QuantMode::WeightsAndActivations);
    });

    std::printf("%-14s %-6s %-9s %8.2f %6.2f %8.2f %6.2f %6.2f "
                "%8.2f %6.2f\n",
                row.model.name.c_str(), taskName(row.task),
                taskMetric(row.task), fp,
                100.0 * pipe.weightOutlierFraction(), w_only,
                fp - w_only,
                100.0 * pipe.activationOutlierFraction(), w_a,
                fp - w_a);
}

} // anonymous namespace

int
main()
{
    using namespace mokey;
    bench::banner("Task performance under Mokey quantization",
                  "Table I");
    std::printf("(reduced-geometry models; compare Err columns "
                "against the paper's)\n\n");
    std::printf("%-14s %-6s %-9s %8s %6s %8s %6s %6s %8s %6s\n",
                "Model", "Task", "Metric", "FPScore", "W-OT%",
                "W-Score", "W-Err", "A-OT%", "WA-Score", "WA-Err");

    const auto quantizer = bench::standardQuantizer();
    const Row rows[] = {
        {bertBase(), TaskKind::Classification, 101},
        {bertLarge(), TaskKind::Classification, 102},
        {bertLarge(), TaskKind::Regression, 103},
        {bertLarge(), TaskKind::Span, 104},
        {robertaLarge(), TaskKind::Classification, 105},
        {robertaLarge(), TaskKind::Regression, 106},
        {robertaLarge(), TaskKind::Span, 107},
        {debertaXl(), TaskKind::Classification, 108},
    };
    for (const auto &row : rows)
        runRow(row, quantizer);

    std::printf("\nPaper: W-Err within +-0.4, WA-Err within +1.0, "
                "W-OT ~1.2-1.6%%, A-OT ~1.7-4.5%%.\n");
    return 0;
}
