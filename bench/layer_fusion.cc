/**
 * @file
 * Layer-graph fusion forward latency: the plane-to-plane fused walk
 * (MOKEY_GRAPH_FUSE=1, the default) against the seed layer-at-a-time
 * sequence, single-threaded, at decode (seq=1), small-batch (seq=8),
 * and prefill (seq=64) shapes. The fused path reads each plane's
 * precomputed fold sums (one multiply per row/column term instead of
 * an O(K) re-fold per GEMM), hoists the per-site GEMM constants into
 * the GraphPlan, and chains every epilogue and the next GEMM's
 * re-quantization into the band walk — so the win is largest exactly
 * where serving hurts most: the m=1 decode step, where the column
 * fold is ~half the arithmetic of the whole GEMM.
 *
 * Records land in BENCH_layer_fusion.json; the decode and seq=8 rows
 * carry fused-vs-unfused speedups that the CI bench-regression gate
 * compares against the committed baseline. Outputs of the two paths
 * are bit-identical (test_graph_fusion pins this), so the ratio is a
 * pure like-for-like latency comparison.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "model/config.hh"
#include "model/pipeline.hh"

int
main()
{
    using namespace mokey;
    bench::banner("Plane-to-plane layer-graph fusion forward latency",
                  "tentpole: fused forward >= 1.3x at decode shapes");

    // Single-threaded and on the default engine: the ratio compares
    // the two walks, not the pool or an engine choice.
    setThreadCount(1);
    const auto quantizer = bench::standardQuantizer();
    const ModelConfig cfg = reduced(bertBase(), 2);
    const Transformer model(cfg, 4242);
    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> batch;
    for (int i = 0; i < 4; ++i)
        batch.push_back(model.makeInput(16, 300 + i));
    pipe.profileActivations(batch);

    bench::BenchJson json("layer_fusion");
    std::printf("%-6s %14s %14s %10s\n", "seq", "unfused ns",
                "fused ns", "speedup");
    for (const size_t seq : {size_t{1}, size_t{8}, size_t{64}}) {
        const Tensor in = model.makeInput(seq, 1234);
        const auto fwd = [&] {
            pipe.forward(in, QuantMode::WeightsAndActivations);
        };
        setGraphFuse(false);
        const double unfused_ns = bench::timeKernelNs(fwd);
        setGraphFuse(true);
        const double fused_ns = bench::timeKernelNs(fwd);
        const double speedup = unfused_ns / fused_ns;
        std::printf("%-6zu %14.0f %14.0f %9.2fx\n", seq, unfused_ns,
                    fused_ns, speedup);
        // seq=64 (prefill) is informational: the per-call folds the
        // fusion removes amortize over m there, so the ratio hugs
        // 1.0 and would only add gate noise.
        json.add({"graph_fused_forward", seq, cfg.hidden, cfg.layers,
                  fused_ns, 0.0, seq <= 8 ? speedup : 0.0});
        json.add({"layer_at_a_time_forward", seq, cfg.hidden,
                  cfg.layers, unfused_ns, 0.0, 0.0});
    }
    return json.write() ? 0 : 1;
}
