/**
 * @file
 * Batched multi-request serving: stand up a quantized pipeline, put
 * a BatchScheduler in front of it, and fire a burst of ragged-length
 * requests from several client threads. The scheduler coalesces them
 * into micro-batches (capacity- or timeout-flushed) that run as one
 * stacked forward pass — and every response is bit-identical to an
 * unbatched forward of that request, which this example verifies.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "model/config.hh"
#include "model/scheduler.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;

    const ModelConfig cfg = reduced(bertBase(), 8);
    const Transformer model(cfg, 42);
    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));

    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> profile_batch;
    for (int i = 0; i < 8; ++i)
        profile_batch.push_back(model.makeInput(32, 100 + i));
    pipe.profileActivations(profile_batch);

    // Scheduler knobs: up to 4 requests or 96 stacked rows per
    // micro-batch; a lone request waits at most 2 ms for company.
    // Compute inside a batch fans out over the process-wide pool
    // (sized by MOKEY_THREADS), so the scheduler itself adds only
    // its dispatcher thread.
    BatchSchedulerConfig scfg;
    scfg.maxBatch = 4;
    scfg.maxTokens = 96;
    scfg.flushTimeout = std::chrono::milliseconds(2);
    BatchScheduler sched(pipe, QuantMode::WeightsAndActivations,
                         scfg);

    // A burst of 8 clients with ragged sequence lengths.
    const size_t lens[] = {24, 7, 32, 15, 9, 32, 3, 20};
    std::vector<std::thread> clients;
    std::vector<double> max_err(8, -1.0);
    for (int i = 0; i < 8; ++i) {
        clients.emplace_back([&, i] {
            const Tensor in = model.makeInput(lens[i], 900 + i);
            auto fut = sched.submit(in);
            const Tensor out = fut.get();
            const Tensor ref = pipe.forward(
                in, QuantMode::WeightsAndActivations);
            max_err[i] = maxAbsDiff(out, ref);
        });
    }
    for (auto &c : clients)
        c.join();
    sched.drain();

    bool all_exact = true;
    for (int i = 0; i < 8; ++i) {
        std::printf("request %d (%2zu tokens): |batched - direct| "
                    "= %g\n", i, lens[i], max_err[i]);
        all_exact = all_exact && max_err[i] == 0.0;
    }

    const auto st = sched.stats();
    std::printf("\n%llu requests -> %llu micro-batches "
                "(%llu capacity-flushed, %llu timeout-flushed); "
                "%llu total rows\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.capacityFlushes),
                static_cast<unsigned long long>(st.timeoutFlushes),
                static_cast<unsigned long long>(st.batchedRows));
    std::printf("batch sizes:");
    for (const size_t s : sched.batchSizes())
        std::printf(" %zu", s);
    std::printf("\nbatched == sequential bit-for-bit: %s\n",
                all_exact ? "yes" : "NO (bug!)");
    return all_exact ? 0 : 1;
}
