/**
 * @file
 * Batched multi-request serving: stand up a quantized pipeline, put
 * a BatchScheduler in front of it, and fire a burst of ragged-length
 * requests from several client threads. The scheduler coalesces them
 * into micro-batches (capacity- or timeout-flushed) that run as one
 * stacked forward pass — and every response is bit-identical to an
 * unbatched forward of that request, which this example verifies.
 *
 * This walkthrough runs the scheduler with TWO concurrent batch
 * lanes: two dispatcher threads, each owning a private executor
 * lane, dispatch independent micro-batches simultaneously over the
 * shared MOKEY_THREADS worker set, and the per-lane dispatch
 * counters are printed at the end.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "model/config.hh"
#include "model/scheduler.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;

    const ModelConfig cfg = reduced(bertBase(), 8);
    const Transformer model(cfg, 42);
    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));

    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> profile_batch;
    for (int i = 0; i < 8; ++i)
        profile_batch.push_back(model.makeInput(32, 100 + i));
    pipe.profileActivations(profile_batch);

    // Scheduler knobs: up to 4 requests or 96 stacked rows per
    // micro-batch; a lone request waits at most 2 ms for company;
    // TWO batch lanes dispatch micro-batches concurrently. Compute
    // inside each batch fans out over the process-wide executor
    // (sized by MOKEY_THREADS) on the dispatching lane.
    BatchSchedulerConfig scfg;
    scfg.maxBatch = 4;
    scfg.maxTokens = 96;
    scfg.flushTimeout = std::chrono::milliseconds(2);
    scfg.laneCount = 2;
    BatchScheduler sched(pipe, QuantMode::WeightsAndActivations,
                         scfg);

    // A burst of 8 clients with ragged sequence lengths. The
    // reference forwards for verification run after the timed
    // window, so the printed latency/throughput measures only the
    // scheduled traffic.
    const size_t lens[] = {24, 7, 32, 15, 9, 32, 3, 20};
    std::vector<std::thread> clients;
    std::vector<Tensor> ins;
    std::vector<Tensor> outs(8);
    std::vector<double> latency_ms(8, 0.0);
    for (int i = 0; i < 8; ++i)
        ins.push_back(model.makeInput(lens[i], 900 + i));
    const auto burst_t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 8; ++i) {
        clients.emplace_back([&, i] {
            const auto t0 = std::chrono::steady_clock::now();
            auto fut = sched.submit(ins[i]);
            outs[i] = fut.get();
            latency_ms[i] =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        });
    }
    for (auto &c : clients)
        c.join();
    sched.drain();
    const double burst_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - burst_t0)
            .count();

    std::vector<double> max_err(8, -1.0);
    for (int i = 0; i < 8; ++i) {
        const Tensor ref = pipe.forward(
            ins[i], QuantMode::WeightsAndActivations);
        max_err[i] = maxAbsDiff(outs[i], ref);
    }

    bool all_exact = true;
    size_t total_rows = 0;
    for (int i = 0; i < 8; ++i) {
        std::printf("request %d (%2zu tokens): latency %6.2f ms, "
                    "|batched - direct| = %g\n",
                    i, lens[i], latency_ms[i], max_err[i]);
        all_exact = all_exact && max_err[i] == 0.0;
        total_rows += lens[i];
    }

    const auto st = sched.stats();
    std::printf("\n%llu requests -> %llu micro-batches "
                "(%llu capacity-flushed, %llu timeout-flushed); "
                "%llu total rows\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.capacityFlushes),
                static_cast<unsigned long long>(st.timeoutFlushes),
                static_cast<unsigned long long>(st.batchedRows));
    std::printf("batch sizes:");
    for (const size_t s : sched.batchSizes())
        std::printf(" %zu", s);

    // Per-lane accounting: how the two dispatcher lanes split the
    // burst, and each lane's processing throughput while busy.
    std::printf("\n\nper-lane dispatch (%zu lanes):\n",
                sched.laneCount());
    for (const SchedulerLaneUsage &u : sched.laneUsage()) {
        const double rows_per_s =
            u.busySeconds > 0.0
                ? static_cast<double>(u.rows) / u.busySeconds
                : 0.0;
        std::printf("  lane %2zu: %llu batches, %llu rows, "
                    "busy %.2f ms, %.0f rows/s\n",
                    u.laneId,
                    static_cast<unsigned long long>(u.batches),
                    static_cast<unsigned long long>(u.rows),
                    u.busySeconds * 1e3, rows_per_s);
    }
    std::printf("aggregate: %zu rows in %.2f ms (%.0f rows/s)\n",
                total_rows, burst_s * 1e3,
                static_cast<double>(total_rows) / burst_s);

    std::printf("batched == sequential bit-for-bit: %s\n",
                all_exact ? "yes" : "NO (bug!)");
    return all_exact ? 0 : 1;
}
