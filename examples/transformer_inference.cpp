/**
 * @file
 * End-to-end quantized transformer inference: quantize a synthetic
 * BERT-style encoder stack out of the box (no fine-tuning), profile
 * activations on a small batch, and compare weight-only and
 * weight+activation quantized forward passes against FP32.
 */

#include <cstdio>

#include "model/config.hh"
#include "model/pipeline.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;

    const ModelConfig cfg = reduced(bertBase(), 8);
    std::printf("Model: %s — %zu layers, hidden %zu, %zu heads\n",
                cfg.name.c_str(), cfg.layers, cfg.hidden,
                cfg.heads);
    const Transformer model(cfg, 42);

    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));

    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights(); // Step 1: offline weight encoding
    std::printf("Weight outliers: %.2f%%\n",
                100.0 * pipe.weightOutlierFraction());

    // Step 2: one profiling batch of 8 random inputs (paper §II).
    std::vector<Tensor> batch;
    for (int i = 0; i < 8; ++i)
        batch.push_back(model.makeInput(32, 100 + i));
    pipe.profileActivations(batch);

    // Step 3: inference. Fresh inputs, never profiled.
    for (int i = 0; i < 3; ++i) {
        const Tensor input = model.makeInput(32, 900 + i);
        const Tensor fp = model.forward(input);
        const Tensor w_only =
            pipe.forward(input, QuantMode::WeightsOnly);
        const Tensor w_a =
            pipe.forward(input, QuantMode::WeightsAndActivations);
        std::printf("input %d: mean|err| weight-only %.4f, "
                    "weight+act %.4f (hidden states are "
                    "layer-normed, scale ~1)\n",
                    i, meanAbsDiff(w_only, fp),
                    meanAbsDiff(w_a, fp));
    }
    std::printf("Activation outliers observed: %.2f%% | outlier "
                "multiply pairs: %.2f%%\n",
                100.0 * pipe.activationOutlierFraction(),
                100.0 * pipe.matmulStats().outlierPairFraction());
    return 0;
}
