/**
 * @file
 * Simulating the Mokey accelerator against its published
 * comparators: run BERT-Base through all three machines at two
 * buffer sizes, then drive the cycle-level tile model with a real
 * quantized code stream.
 */

#include <cstdio>

#include "common/rng.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/quantizer.hh"
#include "sim/accelerator.hh"
#include "sim/gpe.hh"

int
main()
{
    using namespace mokey;

    const auto w = modelWorkload(bertBase(), 128);
    std::printf("Workload: %s seq %zu — %.1f G MACs, %zu GEMMs\n\n",
                w.model.c_str(), w.seq,
                static_cast<double>(w.totalMacs()) / 1e9,
                w.ops.size());

    for (size_t buf : {512 * 1024, 4 * 1024 * 1024}) {
        std::printf("--- %zu KB buffer ---\n", buf / 1024);
        for (const auto &m : {tensorCoresMachine(), goboMachine(),
                              mokeyMachine()}) {
            const auto r = simulate(m, w, buf);
            std::printf("  %-13s %7.1fM cycles  %.3f J  "
                        "(%5.1f MB traffic, %4.1f mm2 buffers)\n",
                        m.name.c_str(), r.totalCycles / 1e6,
                        r.totalJ, r.trafficBytes / 1e6,
                        r.bufferAreaMm2);
        }
    }

    // Drive one tile cycle-accurately with a real code stream.
    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));
    Rng rng(5);
    Tensor a(8, 2048, rng.gaussianVector(8 * 2048, 0.0, 1.0));
    Tensor wt(8, 2048, rng.gaussianVector(8 * 2048, 0.0, 1.0));
    const auto qa = quantizer.encode(a, quantizer.buildDictionary(a));
    const auto qw = quantizer.encode(wt,
                                     quantizer.buildDictionary(wt));

    std::vector<std::vector<PairEvent>> streams(8);
    for (size_t g = 0; g < 8; ++g) {
        for (size_t i = 0; i < 2048; ++i) {
            const QCode ca = qa.at(g, i), cw = qw.at(g, i);
            PairEvent e;
            e.isOutlier = ca.isOutlier() || cw.isOutlier();
            e.idxA = ca.index();
            e.idxW = cw.index();
            e.sumIndex = static_cast<uint8_t>(ca.index() +
                                              cw.index());
            e.sign = (ca.negative() != cw.negative()) ? -1 : 1;
            streams[g].push_back(e);
        }
    }
    TileConfig tc;
    tc.oppPerCycle = 4;
    const TileSim tile(tc);
    const auto res = tile.run(streams, 8);
    std::printf("\nCycle-level tile on a real code stream:\n"
                "  %llu pairs in %llu cycles (%.1f pairs/cycle; "
                "peak 64)\n  %llu outliers through the OPP, "
                "%llu hold cycles, %llu CRF drains\n",
                static_cast<unsigned long long>(res.pairsProcessed),
                static_cast<unsigned long long>(res.cycles),
                res.throughput(),
                static_cast<unsigned long long>(res.outlierPairs),
                static_cast<unsigned long long>(res.holdCycles),
                static_cast<unsigned long long>(res.crfDrains));
    return 0;
}
