/**
 * @file
 * HTTP serving walkthrough: stand up the epoll front-end around a
 * quantized pipeline, fire a mix of loopback requests through
 * keep-alive connections, and verify every served response is
 * bit-identical to an in-process forward() of the same input.
 *
 * Also demonstrates the failure-path contract end to end: a request
 * wider than the model's hidden size gets a 400, offered load past
 * the admission cap gets 503 + Retry-After (not a growing queue),
 * and graceful drain flushes every in-flight response before the
 * process exits. Exits 0 only if all of that held — the ASan CI job
 * runs this binary as the serving smoke test.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "model/config.hh"
#include "model/pipeline.hh"
#include "net/http_client.hh"
#include "net/inference_server.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"

int
main()
{
    using namespace mokey;
    using namespace mokey::net;

    const ModelConfig cfg = reduced(bertBase(), 8);
    const Transformer model(cfg, 42);
    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));

    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> profile_batch;
    for (int i = 0; i < 8; ++i)
        profile_batch.push_back(model.makeInput(32, 100 + i));
    pipe.profileActivations(profile_batch);

    InferenceServerConfig icfg;
    icfg.socket.drainOnSigterm = true; // kill -TERM drains cleanly
    icfg.scheduler.maxBatch = 4;
    icfg.maxQueueDepth = 16;
    InferenceServer server(pipe, icfg);
    server.start();
    std::printf("serving %s on 127.0.0.1:%u\n", cfg.name.c_str(),
                server.port());

    bool ok = true;
    HttpClient cli("127.0.0.1", server.port());

    // Health first, then a ragged burst of forwards over the SAME
    // keep-alive connection, each checked byte-for-byte against the
    // in-process pipeline.
    ok = ok && cli.get("/healthz").status == 200;
    const size_t lens[] = {24, 7, 32, 15, 9, 3};
    for (int i = 0; i < 6; ++i) {
        const Tensor in = model.makeInput(lens[i], 900 + i);
        const HttpResponse rsp =
            cli.post("/v1/forward", encodeTensorBody(in));
        const Tensor ref = pipe.forward(
            in, QuantMode::WeightsAndActivations);
        const std::string want = encodeTensorBody(ref);
        const bool exact =
            rsp.status == 200 && rsp.body == want;
        std::printf("request %d (%2zu tokens): status %d, "
                    "%zu bytes, bit-identical to forward(): %s\n",
                    i, lens[i], rsp.status, rsp.body.size(),
                    exact ? "yes" : "NO");
        ok = ok && exact;
    }
    ok = ok && cli.dials() == 1; // keep-alive actually reused

    // Malformed width -> 400, not a crash and not a forward.
    {
        const Tensor wide(3, cfg.hidden + 1,
                          std::vector<float>(3 * (cfg.hidden + 1),
                                             0.5f));
        const int status =
            cli.post("/v1/forward", encodeTensorBody(wide)).status;
        std::printf("wrong-width request -> %d\n", status);
        ok = ok && status == 400;
    }

    std::printf("\n/v1/stats:\n%s",
                cli.get("/v1/stats").body.c_str());

    // Graceful drain: every accepted request already answered, all
    // connections flushed and closed, scheduler stopped.
    server.drain();
    const auto st = server.stats();
    const auto ss = server.socketStats();
    std::printf("drained: %llu completed, %llu shed, %llu failed, "
                "%llu connections closed\n",
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.failed),
                static_cast<unsigned long long>(ss.closed));
    ok = ok && st.completed == 6 && st.failed == 0;

    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
