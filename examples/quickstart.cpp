/**
 * @file
 * Quickstart: quantize a tensor pair with Mokey, multiply in the
 * index domain, and verify against the float reference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/index_matmul.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;

    // 1. Build the shared machinery once: golden dictionary ->
    //    exponential fit -> quantizer.
    const auto gd = GoldenDictionary::generate({});
    const ExpDictionary exp = ExpDictionary::fit(gd);
    const Quantizer quantizer(exp);
    std::printf("Exponential dictionary: a = %.3f, b = %.3f\n",
                exp.a(), exp.b());

    // 2. Make an "activation" and a "weight" tensor.
    Rng rng(7);
    Tensor act(32, 256, rng.gaussianVector(32 * 256, 0.0, 1.0));
    Tensor wt(64, 256, rng.gaussianVector(64 * 256, 0.0, 0.05));

    // 3. Per-tensor dictionaries (a linear transform of the golden
    //    dictionary) and 4 b encoding.
    const auto act_dict = quantizer.buildDictionary(act);
    const auto wt_dict = quantizer.buildDictionary(wt);
    const auto q_act = quantizer.encode(act, act_dict);
    const auto q_wt = quantizer.encode(wt, wt_dict);
    std::printf("Outliers: activations %.2f%%, weights %.2f%%\n",
                100.0 * q_act.outlierFraction(),
                100.0 * q_wt.outlierFraction());

    // 4. Multiply using only index additions + histograms.
    IndexMatmulStats stats;
    const Tensor out = indexMatmulTransB(q_act, q_wt, &stats);
    std::printf("Index-domain GEMM: %llu Gaussian pairs, %llu "
                "outlier pairs (%.2f%% through the OPP)\n",
                static_cast<unsigned long long>(stats.gaussianPairs),
                static_cast<unsigned long long>(stats.outlierPairs),
                100.0 * stats.outlierPairFraction());

    // 5. Compare against the FP32 GEMM of the original tensors.
    const Tensor ref = matmulTransB(act, wt);
    std::printf("Quantization error: mean |diff| = %.4f "
                "(output scale ~%.3f)\n", meanAbsDiff(out, ref),
                frobeniusNorm(ref) / std::sqrt(32.0 * 64.0));

    // 6. And against the decoded-operand reference: these agree to
    //    float rounding — the index-domain algebra is exact.
    const Tensor decoded = decodedMatmulTransB(q_act, q_wt);
    std::printf("Index domain vs decoded reference: max |diff| = "
                "%.2e (exact up to FP rounding)\n",
                maxAbsDiff(out, decoded));
    return 0;
}
