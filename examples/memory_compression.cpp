/**
 * @file
 * Mokey as a memory-compression plug-in: pack a quantized tensor
 * into the DRAM-friendly container of Fig. 5 (4 b value stream +
 * outlier-pointer stream), inspect both streams, and unpack.
 */

#include <cstdio>

#include "common/rng.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/memory_codec.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace mokey;

    const auto gd = GoldenDictionary::generate({});
    const Quantizer quantizer(ExpDictionary::fit(gd));

    Rng rng(11);
    std::vector<float> v = rng.gaussianVector(256 * 64, 0.0, 1.0);
    // Salt in a few large outliers.
    for (int i = 0; i < 200; ++i)
        v[rng.uniformInt(v.size())] =
            static_cast<float>(rng.gaussian(0.0, 6.0));
    Tensor t(256, 64, v);

    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    const PackedTensor packed = packTensor(q);

    std::printf("Tensor: %zu values\n", q.size());
    std::printf("FP16 footprint:      %8zu bytes\n",
                t.footprintBytes(16));
    std::printf("Packed value stream: %8zu bytes (4 b/value)\n",
                packed.values.size());
    std::printf("OT pointer stream:   %8zu bytes\n",
                packed.otPointers.size());
    std::printf("Compression vs FP16: %.2fx | vs FP32: %.2fx\n",
                packed.compressionRatio(16),
                packed.compressionRatio(32));

    // Peek at the pointer stream for the first few groups.
    BitReader ptr(packed.otPointers);
    std::printf("\nFirst four 64-value groups:\n");
    for (int g = 0; g < 4; ++g) {
        const auto count = ptr.get(kCodecCountBits);
        std::printf("  group%d: %llu outliers at positions [",
                    g, static_cast<unsigned long long>(count));
        for (uint64_t i = 0; i < count; ++i)
            std::printf("%s%llu", i ? ", " : "",
                        static_cast<unsigned long long>(
                            ptr.get(kCodecPosBits)));
        std::printf("]\n");
    }

    // Round-trip and verify bit-exactness of codes.
    const auto back = unpackTensor(packed, dict);
    bool exact = true;
    for (size_t i = 0; i < q.size(); ++i)
        exact &= back.raw()[i] == q.raw()[i];
    std::printf("\nRound-trip exact: %s | decode error vs "
                "original: mean %.4f\n", exact ? "yes" : "NO",
                meanAbsDiff(back.decode(), t));
    return 0;
}
