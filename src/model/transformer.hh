/**
 * @file
 * A from-scratch transformer encoder stack with synthetic weights.
 *
 * The FP32 forward pass is the reference model of the reproduction:
 * Mokey's task-performance experiments (Table I) measure how far a
 * quantized forward pass drifts from it. Weights are drawn from the
 * Gaussian-bulk + heavy-tail mixtures observed in published
 * transformer checkpoints, which is the property Mokey's quantizer
 * actually depends on (see DESIGN.md).
 */

#ifndef MOKEY_MODEL_TRANSFORMER_HH
#define MOKEY_MODEL_TRANSFORMER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "model/config.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/** Weights of one encoder layer. */
struct EncoderWeights
{
    // All projection matrices are stored transposed (out x in) so
    // both the float and the quantized paths run X * W^T.
    Tensor wq, wk, wv, wo; ///< H x H
    Tensor w1;             ///< FFN up projection, 4H x H
    Tensor w2;             ///< FFN down projection, H x 4H
    std::vector<float> bq, bk, bv, bo, b1, b2;
};

/**
 * Identifies one GEMM input tensor inside the model — the
 * granularity at which Mokey builds dictionaries.
 */
struct TensorId
{
    size_t layer;
    std::string tensor; ///< "x", "q", "k", "v", "p", "ctx", "mid"

    std::string str() const;
    bool operator==(const TensorId &o) const
    {
        return layer == o.layer && tensor == o.tensor;
    }
};

/**
 * Observation hook: the float forward pass reports every GEMM input
 * activation so the profiler can sample it.
 */
using ActivationHook =
    std::function<void(const TensorId &, const Tensor &)>;

/**
 * Mutation hook: lets a quantization method rewrite every GEMM
 * input activation in place (used by the Table IV baseline
 * comparison, where each method's activation quantizer runs inside
 * the float forward pass).
 */
using ActivationTransform =
    std::function<void(const TensorId &, Tensor &)>;

/** The synthetic transformer encoder stack. */
class Transformer
{
  public:
    /**
     * Build with synthetic weights.
     *
     * @param cfg   geometry
     * @param seed  weight-generation seed
     * @param tail_frac fraction of weights drawn from the wide
     *        (outlier) mixture component
     */
    Transformer(const ModelConfig &cfg, uint64_t seed,
                double tail_frac = 0.02);

    const ModelConfig &config() const { return cfg; }

    const std::vector<EncoderWeights> &weights() const { return enc; }
    std::vector<EncoderWeights> &weights() { return enc; }

    /**
     * FP32 forward pass over one input of shape seq x hidden.
     *
     * @param input     embedded input sequence
     * @param hook      optional activation observer
     * @param transform optional in-place activation rewriter
     */
    Tensor forward(const Tensor &input,
                   const ActivationHook &hook = nullptr,
                   const ActivationTransform &transform = nullptr,
                   Lane lane = {}) const;

    /**
     * Batched FP32 forward over several (possibly ragged-length)
     * sequences at once: all row-space GEMMs run on the stacked
     * B x T row space; attention stays per-sequence. Each output is
     * bit-identical to forward() on that sequence alone. Hooks are
     * not supported — this is the serving path, profiling uses
     * forward(). Compute fans out over the executor on @p lane, so
     * concurrent batch lanes make progress simultaneously.
     */
    std::vector<Tensor>
    forwardBatch(const std::vector<Tensor> &inputs,
                 Lane lane = {}) const;

    /**
     * Forward pass for one encoder layer (used by the quantized
     * pipeline to share the non-GEMM plumbing).
     */
    Tensor forwardLayer(size_t layer, const Tensor &input,
                        const ActivationHook &hook = nullptr,
                        const ActivationTransform &transform = nullptr,
                        Lane lane = {}) const;

    /** Generate a plausible embedded input (seq x hidden). */
    Tensor makeInput(size_t seq, uint64_t seed) const;

    /**
     * One encoder layer over a stacked row space; @p starts holds
     * B+1 row offsets delimiting the sequences (attention must not
     * mix rows of different requests). Public because the step-wise
     * serving path (QuantizedTransformer::forwardStep under
     * WeightsOnly) advances stacked batches one layer at a time.
     */
    Tensor forwardLayerBatch(size_t layer, const Tensor &input,
                             const std::vector<size_t> &starts,
                             Lane lane = {}) const;

  private:
    ModelConfig cfg;
    std::vector<EncoderWeights> enc;
};

} // namespace mokey

#endif // MOKEY_MODEL_TRANSFORMER_HH
