/**
 * @file
 * Synthetic task analogues of MNLI / STS-B / SQuAD (Table I).
 *
 * The paper's datasets are not redistributable here, so each task is
 * replaced by a synthetic analogue whose *score-degradation*
 * semantics match (see DESIGN.md):
 *
 *  - Classification (MNLI, metric Acc-m): 3-way labels derived from
 *    the float model's own logits, with label noise injected so the
 *    float model scores in the published 84-92 % band rather than a
 *    vacuous 100 %.
 *  - Regression (STS-B, metric Spearman): scalar similarity targets
 *    equal to the float model's output plus noise.
 *  - Span extraction (SQuAD, metric F1): start/end token spans from
 *    the float model's position scores, noise-perturbed.
 *
 * A quantized model is scored by running the *same* harness with its
 * forward function; the score difference is the Table I "Err".
 */

#ifndef MOKEY_MODEL_TASKS_HH
#define MOKEY_MODEL_TASKS_HH

#include <functional>

#include "model/transformer.hh"

namespace mokey
{

/** Task families of Table I. */
enum class TaskKind
{
    Classification, ///< MNLI analogue, accuracy
    Regression,     ///< STS-B analogue, Spearman correlation
    Span,           ///< SQuAD analogue, token F1
};

/** Name of the paper task a kind stands in for. */
const char *taskName(TaskKind kind);

/** Metric name as printed in Table I. */
const char *taskMetric(TaskKind kind);

/** A model forward function: embedded input -> final hidden states. */
using ForwardFn = std::function<Tensor(const Tensor &)>;

/**
 * Deterministic synthetic task bound to one reference model.
 *
 * Construction freezes the task: inputs, read-out heads, and gold
 * labels (derived from the reference model's float forward pass plus
 * noise) are all fixed by the seed, so every evaluated model sees an
 * identical benchmark.
 */
class TaskEvaluator
{
  public:
    /**
     * @param model     reference float model
     * @param kind      task family
     * @param n_samples benchmark size
     * @param seq       tokens per input
     * @param seed      task-generation seed
     * @param label_noise fraction of corrupted gold labels
     */
    TaskEvaluator(const Transformer &model, TaskKind kind,
                  size_t n_samples = 200, size_t seq = 32,
                  uint64_t seed = 0xBEEF, double label_noise = 0.15);

    /** Score an arbitrary forward function on the frozen benchmark. */
    double evaluate(const ForwardFn &fn) const;

    /**
     * Fresh inputs drawn from the task's own input distribution
     * (signal injection included), disjoint from the benchmark —
     * what a profiling run should consume, mirroring the paper's
     * use of training-set samples for profiling and a
     * non-overlapping validation set for scoring.
     */
    std::vector<Tensor> profilingBatch(size_t n,
                                       uint64_t seed) const;

    /** Score the reference float model itself. */
    double evaluateReference() const;

    TaskKind kind() const { return taskKind; }
    size_t size() const { return inputs.size(); }

  private:
    const Transformer &model;
    TaskKind taskKind;
    size_t seqLen;
    std::vector<float> taskSignal;
    std::vector<Tensor> inputs;
    Tensor headCls;  ///< 3 x H classification read-out
    Tensor headReg;  ///< 1 x H regression read-out
    Tensor headSpan; ///< 2 x H span read-out (start, end rows)

    std::vector<int> goldLabels;
    std::vector<double> goldTargets;
    std::vector<std::pair<size_t, size_t>> goldSpans;

    /** Mean-pool rows of the final hidden states. */
    std::vector<float> pool(const Tensor &out) const;

    /** Decision confidence of the reference output (see .cc). */
    double predictionMargin(const Tensor &out) const;

    int predictLabel(const Tensor &out) const;
    double predictScore(const Tensor &out) const;
    std::pair<size_t, size_t> predictSpan(const Tensor &out) const;
};

/** Spearman rank correlation of two equally long sequences. */
double spearman(const std::vector<double> &a,
                const std::vector<double> &b);

/** Token-overlap F1 of two [start, end] spans (inclusive). */
double spanF1(std::pair<size_t, size_t> pred,
              std::pair<size_t, size_t> gold);

} // namespace mokey

#endif // MOKEY_MODEL_TASKS_HH
