/**
 * @file
 * GEMM workload extraction for the accelerator simulator.
 *
 * The simulator does not execute tensors — it executes *shapes*. This
 * module flattens a model geometry at a given sequence length into
 * the ordered list of GEMMs one inference performs, tagging each
 * operand as a static weight or a runtime activation so the memory
 * system can account for reuse and datatype width correctly.
 */

#ifndef MOKEY_MODEL_WORKLOAD_HH
#define MOKEY_MODEL_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.hh"

namespace mokey
{

/** One GEMM of the inference pass: out(m x n) = A(m x k) * B(k x n). */
struct GemmOp
{
    std::string name;
    size_t m, n, k;
    size_t repeats = 1;     ///< e.g. one per attention head
    bool weightStatic = true; ///< B is a weight (reusable, off-line
                              ///< quantized); false for act x act

    /** Multiply-accumulate count including repeats. */
    uint64_t macs() const;

    /** Elements of the B operand (weights or second activation). */
    uint64_t bValues() const;

    /** Elements of the A operand. */
    uint64_t aValues() const;

    /** Elements of the output. */
    uint64_t outValues() const;
};

/** A full-inference workload. */
struct Workload
{
    std::string model;
    size_t seq = 0;
    size_t batch = 1;
    std::vector<GemmOp> ops;

    uint64_t totalMacs() const;

    /** Distinct weight values (loaded once, reused across rows). */
    uint64_t weightValues() const;

    /** Activation values produced during the pass. */
    uint64_t activationValues() const;
};

/**
 * The GEMM list of a model at sequence length @p seq and batch size
 * @p batch. Weight GEMMs fold the batch into their row dimension;
 * attention GEMMs repeat per sample.
 */
Workload modelWorkload(const ModelConfig &cfg, size_t seq,
                       size_t batch = 1);

} // namespace mokey

#endif // MOKEY_MODEL_WORKLOAD_HH
