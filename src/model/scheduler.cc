#include "model/scheduler.hh"

#include "common/logging.hh"

namespace mokey
{

BatchScheduler::BatchScheduler(const QuantizedTransformer &eng,
                               QuantMode m, BatchSchedulerConfig c)
    : engine(eng), mode(m), cfg(c)
{
    MOKEY_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    MOKEY_ASSERT(cfg.maxTokens >= 1, "maxTokens must be >= 1");
    const size_t n = cfg.laneCount < 1 ? 1 : cfg.laneCount;
    usage.resize(n);
    lanes.reserve(n);
    dispatchers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        lanes.push_back(Lane::acquire());
        usage[i].laneId = lanes[i].id();
    }
    for (size_t i = 0; i < n; ++i)
        dispatchers.emplace_back([this, i] { dispatchLoop(i); });
}

BatchScheduler::~BatchScheduler()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &d : dispatchers)
        d.join();
}

std::future<Tensor>
BatchScheduler::submit(Tensor input)
{
    MOKEY_ASSERT(input.rows() > 0, "empty request");
    std::future<Tensor> fut;
    {
        std::lock_guard<std::mutex> lk(mu);
        MOKEY_ASSERT(!stopping, "submit() on a stopping scheduler");
        queue.push_back(Request{std::move(input), {},
                                std::chrono::steady_clock::now()});
        fut = queue.back().result.get_future();
        queuedRows += queue.back().input.rows();
        ++st.requests;
    }
    cvWork.notify_all();
    return fut;
}

bool
BatchScheduler::batchReady() const
{
    return queue.size() >= cfg.maxBatch || queuedRows >= cfg.maxTokens;
}

void
BatchScheduler::drain()
{
    // While any drain() waits, the dispatchers flush partial
    // batches immediately — including requests submitted
    // concurrently with the drain — instead of sitting out the
    // flush timeout.
    std::unique_lock<std::mutex> lk(mu);
    ++drainWaiters;
    cvWork.notify_all();
    cvDone.wait(lk, [this] {
        return queue.empty() && inFlight == 0;
    });
    --drainWaiters;
}

BatchSchedulerStats
BatchScheduler::stats() const
{
    std::lock_guard<std::mutex> lk(mu);
    return st;
}

std::vector<size_t>
BatchScheduler::batchSizes() const
{
    std::lock_guard<std::mutex> lk(mu);
    return sizes;
}

std::vector<SchedulerLaneUsage>
BatchScheduler::laneUsage() const
{
    std::lock_guard<std::mutex> lk(mu);
    return usage;
}

void
BatchScheduler::dispatchLoop(size_t laneIdx)
{
    const Lane lane = lanes[laneIdx];
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cvWork.wait(lk, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            if (stopping)
                return;
            continue; // spurious wake
        }

        // Coalesce: wait for the batch to fill, but never keep the
        // oldest request waiting beyond the flush timeout; drain()
        // and shutdown flush a partial batch immediately. The front
        // (and with it the deadline) is re-read every iteration —
        // another lane may have dispatched it while we waited.
        bool timed_out = false;
        while (!queue.empty() && !batchReady() && !stopping &&
               drainWaiters == 0) {
            const auto deadline =
                queue.front().arrival + cfg.flushTimeout;
            if (cvWork.wait_until(lk, deadline) ==
                std::cv_status::timeout) {
                timed_out = true;
                break;
            }
        }
        if (queue.empty())
            continue; // another lane took the whole queue

        const bool was_full = batchReady();

        // Pop FIFO up to the capacity caps. A single request larger
        // than maxTokens still dispatches alone rather than
        // starving.
        std::vector<Request> batch;
        size_t rows = 0;
        while (!queue.empty() && batch.size() < cfg.maxBatch &&
               (batch.empty() ||
                rows + queue.front().input.rows() <= cfg.maxTokens)) {
            rows += queue.front().input.rows();
            queuedRows -= queue.front().input.rows();
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
        }

        ++st.batches;
        st.batchedRows += rows;
        if (was_full)
            ++st.capacityFlushes;
        else if (timed_out)
            ++st.timeoutFlushes;
        else
            ++st.drainFlushes;
        sizes.push_back(batch.size());
        inFlight += batch.size();

        // If requests remain, wake another lane to start forming the
        // next batch while this one computes.
        if (!queue.empty())
            cvWork.notify_all();

        // Run the batch outside the lock on this dispatcher's own
        // executor lane: submitters keep queueing, and other lanes'
        // batches run concurrently over the shared worker set.
        lk.unlock();
        std::vector<Tensor> inputs;
        inputs.reserve(batch.size());
        for (Request &r : batch)
            inputs.push_back(std::move(r.input));
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<Tensor> outs =
            engine.forwardBatch(inputs, mode, lane);
        const double busy =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        for (size_t i = 0; i < batch.size(); ++i)
            batch[i].result.set_value(std::move(outs[i]));
        lk.lock();

        usage[laneIdx].batches += 1;
        usage[laneIdx].rows += rows;
        usage[laneIdx].busySeconds += busy;
        inFlight -= batch.size();
        cvDone.notify_all();
    }
}

} // namespace mokey
