#include "model/scheduler.hh"

#include <stdexcept>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/watchdog.hh"

namespace mokey
{

BatchScheduler::BatchScheduler(const QuantizedTransformer &eng,
                               QuantMode m, BatchSchedulerConfig c)
    : BatchScheduler(
          [&eng](const std::vector<Tensor> &inputs, QuantMode mode,
                 Lane lane) {
              return eng.forwardBatch(inputs, mode, lane);
          },
          m, c)
{
}

BatchScheduler::BatchScheduler(BatchForwardFn fwd, QuantMode m,
                               BatchSchedulerConfig c)
    : forward(std::move(fwd)), mode(m), cfg(c)
{
    MOKEY_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    MOKEY_ASSERT(cfg.maxTokens >= 1, "maxTokens must be >= 1");
    MOKEY_ASSERT(static_cast<bool>(forward),
                 "scheduler needs a forward function");
    const size_t n = cfg.laneCount < 1 ? 1 : cfg.laneCount;
    usage.resize(n);
    lanes.reserve(n);
    dispatchers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        lanes.push_back(Lane::acquire());
        usage[i].laneId = lanes[i].id();
    }
    for (size_t i = 0; i < n; ++i)
        dispatchers.emplace_back([this, i] { dispatchLoop(i); });
}

BatchScheduler::~BatchScheduler()
{
    stop();
}

void
BatchScheduler::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
        if (joined)
            return;
        joined = true;
    }
    cvWork.notify_all();
    for (auto &d : dispatchers)
        d.join();
}

bool
BatchScheduler::enqueue(Request &&req)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (stopping || req.input.rows() == 0) {
            ++st.rejected;
            return false;
        }
        queuedRows += req.input.rows();
        queue.push_back(std::move(req));
        ++st.requests;
    }
    cvWork.notify_all();
    return true;
}

std::future<Tensor>
BatchScheduler::submit(Tensor input, Deadline deadline)
{
    const bool empty = input.rows() == 0;
    Request req{std::move(input), {}, nullptr,
                std::chrono::steady_clock::now(), deadline};
    std::future<Tensor> fut = req.result.get_future();
    if (!enqueue(std::move(req))) {
        // Rejected: the promise is still ours (enqueue only moves
        // the request on success), so hand the reason back through
        // the future instead of panicking the process.
        req.result.set_exception(std::make_exception_ptr(
            std::runtime_error(empty
                                   ? "BatchScheduler: empty request"
                                   : "BatchScheduler: submit() on a "
                                     "stopped scheduler")));
    }
    return fut;
}

bool
BatchScheduler::submit(Tensor input, BatchCompletion done,
                       Deadline deadline)
{
    MOKEY_ASSERT(static_cast<bool>(done),
                 "callback submit needs a callback");
    Request req{std::move(input), {}, std::move(done),
                std::chrono::steady_clock::now(), deadline};
    return enqueue(std::move(req));
}

bool
BatchScheduler::batchReady() const
{
    return queue.size() >= cfg.maxBatch || queuedRows >= cfg.maxTokens;
}

void
BatchScheduler::drain()
{
    // While any drain() waits, the dispatchers flush partial
    // batches immediately — including requests submitted
    // concurrently with the drain — instead of sitting out the
    // flush timeout.
    std::unique_lock<std::mutex> lk(mu);
    ++drainWaiters;
    cvWork.notify_all();
    cvDone.wait(lk, [this] {
        return queue.empty() && inFlight == 0;
    });
    --drainWaiters;
}

size_t
BatchScheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mu);
    return queue.size() + inFlight;
}

BatchSchedulerStats
BatchScheduler::stats() const
{
    std::lock_guard<std::mutex> lk(mu);
    return st;
}

double
BatchScheduler::recentBatchSeconds() const
{
    std::lock_guard<std::mutex> lk(mu);
    return recentBatch;
}

std::vector<size_t>
BatchScheduler::batchSizes() const
{
    std::lock_guard<std::mutex> lk(mu);
    return sizes;
}

std::vector<SchedulerLaneUsage>
BatchScheduler::laneUsage() const
{
    std::lock_guard<std::mutex> lk(mu);
    return usage;
}

void
BatchScheduler::complete(Request &req, Tensor &&out,
                         const std::exception_ptr &err)
{
    // Completion must never take the dispatcher down: a broken
    // promise (caller dropped the future) or a throwing callback is
    // the caller's bug, and the other requests in the batch still
    // deserve their results.
    try {
        if (req.done) {
            req.done(std::move(out), err);
        } else if (err) {
            req.result.set_exception(err);
        } else {
            req.result.set_value(std::move(out));
        }
    } catch (const std::exception &e) {
        warn("BatchScheduler: completion failed: %s", e.what());
    } catch (...) {
        warn("BatchScheduler: completion failed");
    }
}

void
BatchScheduler::dispatchLoop(size_t laneIdx)
{
    const Lane lane = lanes[laneIdx];
    Watchdog::Task wdt =
        Watchdog::instance().monitor("batch-dispatcher");
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        wdt.idle();
        cvWork.wait(lk, [this] { return stopping || !queue.empty(); });
        wdt.beat();
        if (queue.empty()) {
            if (stopping)
                return;
            continue; // spurious wake
        }

        // Coalesce: wait for the batch to fill, but never keep the
        // oldest request waiting beyond the flush timeout; drain()
        // and shutdown flush a partial batch immediately. The front
        // (and with it the deadline) is re-read every iteration —
        // another lane may have dispatched it while we waited.
        bool timed_out = false;
        while (!queue.empty() && !batchReady() && !stopping &&
               drainWaiters == 0) {
            wdt.beat();
            const auto deadline =
                queue.front().arrival + cfg.flushTimeout;
            if (cvWork.wait_until(lk, deadline) ==
                std::cv_status::timeout) {
                timed_out = true;
                break;
            }
        }
        wdt.beat();
        if (queue.empty())
            continue; // another lane took the whole queue

        const bool was_full = batchReady();

        // Pop FIFO up to the capacity caps. A single request larger
        // than maxTokens still dispatches alone rather than
        // starving. Requests whose deadline already passed while
        // queued are dropped here — before their rows are stacked —
        // and complete with DeadlineExpired instead of burning a
        // batch slot on a client that gave up.
        std::vector<Request> batch, expired;
        size_t rows = 0;
        const auto popNow = std::chrono::steady_clock::now();
        while (!queue.empty() && batch.size() < cfg.maxBatch) {
            Request &front = queue.front();
            if (front.deadline <= popNow) {
                queuedRows -= front.input.rows();
                ++st.expiredRequests;
                expired.push_back(std::move(front));
                queue.pop_front();
                continue;
            }
            if (!batch.empty() &&
                rows + front.input.rows() > cfg.maxTokens)
                break;
            rows += front.input.rows();
            queuedRows -= front.input.rows();
            batch.push_back(std::move(front));
            queue.pop_front();
        }

        if (!batch.empty()) {
            ++st.batches;
            st.batchedRows += rows;
            if (was_full)
                ++st.capacityFlushes;
            else if (timed_out)
                ++st.timeoutFlushes;
            else
                ++st.drainFlushes;
            sizes.push_back(batch.size());
        }
        // Expired requests count as in flight until their
        // completions have run, so drain() keeps its contract that
        // every submitted request has fully completed.
        inFlight += batch.size() + expired.size();

        // If requests remain, wake another lane to start forming the
        // next batch while this one computes.
        if (!queue.empty())
            cvWork.notify_all();

        // Run the batch outside the lock on this dispatcher's own
        // executor lane: submitters keep queueing, and other lanes'
        // batches run concurrently over the shared worker set.
        lk.unlock();
        for (Request &r : expired)
            complete(r, Tensor{},
                     std::make_exception_ptr(DeadlineExpired()));
        if (batch.empty()) {
            lk.lock();
            inFlight -= expired.size();
            cvDone.notify_all();
            continue;
        }
        faultDelayPoint(FaultSite::SchedDelay);
        std::vector<Tensor> inputs;
        inputs.reserve(batch.size());
        for (Request &r : batch)
            inputs.push_back(std::move(r.input));

        // A throwing engine fails THIS batch, not the process: every
        // request in it observes the exception, counters are
        // restored below, and this dispatcher goes back to waiting
        // for the next batch.
        std::vector<Tensor> outs;
        std::exception_ptr err;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            outs = forward(inputs, mode, lane);
            if (outs.size() != batch.size())
                throw std::runtime_error(
                    "batched forward returned " +
                    std::to_string(outs.size()) + " outputs for " +
                    std::to_string(batch.size()) + " inputs");
        } catch (...) {
            err = std::current_exception();
        }
        const double busy =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        for (size_t i = 0; i < batch.size(); ++i)
            complete(batch[i], err ? Tensor{} : std::move(outs[i]),
                     err);
        lk.lock();

        if (err)
            ++st.failedBatches;
        usage[laneIdx].batches += 1;
        usage[laneIdx].rows += rows;
        usage[laneIdx].busySeconds += busy;
        recentBatch =
            recentBatch == 0 ? busy : 0.75 * recentBatch + 0.25 * busy;
        inFlight -= batch.size() + expired.size();
        cvDone.notify_all();
    }
}

} // namespace mokey
