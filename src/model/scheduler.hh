/**
 * @file
 * Multi-request batch scheduler — the serving front end of the
 * quantized pipeline.
 *
 * Requests (one embedded sequence each) are queued FIFO and
 * coalesced into micro-batches that QuantizedTransformer::
 * forwardBatch() executes in one stacked pass, so per-request costs
 * (activation re-quantization, CodePlanes derivation, pool fan-out)
 * are paid once per batch. A batch is dispatched as soon as it is
 * full — maxBatch requests or maxTokens stacked rows — or when the
 * oldest queued request has waited flushTimeout (the classic
 * latency/throughput knob of batched serving systems).
 *
 * One dispatcher thread runs the batches; the heavy lifting inside
 * forwardBatch() fans out over the process-wide pool (sized by
 * MOKEY_THREADS), so the scheduler adds one thread, not a second
 * pool. Batching never changes results: each response is
 * bit-identical to an unbatched forward() of that request.
 */

#ifndef MOKEY_MODEL_SCHEDULER_HH
#define MOKEY_MODEL_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "model/pipeline.hh"

namespace mokey
{

/** Coalescing knobs. */
struct BatchSchedulerConfig
{
    /** Maximum requests per micro-batch. */
    size_t maxBatch = 8;

    /** Maximum stacked rows (tokens) per micro-batch. */
    size_t maxTokens = 2048;

    /**
     * Maximum time the oldest queued request waits for the batch to
     * fill before it is flushed anyway.
     */
    std::chrono::microseconds flushTimeout{2000};
};

/** Counters exposed for tests and monitoring. */
struct BatchSchedulerStats
{
    uint64_t requests = 0;        ///< submitted
    uint64_t batches = 0;         ///< dispatched micro-batches
    uint64_t batchedRows = 0;     ///< total rows across batches
    uint64_t capacityFlushes = 0; ///< dispatched full (batch/tokens)
    uint64_t timeoutFlushes = 0;  ///< dispatched on flushTimeout
    uint64_t drainFlushes = 0;    ///< dispatched by drain()/shutdown
};

/** FIFO request queue + micro-batch dispatcher for one pipeline. */
class BatchScheduler
{
  public:
    /**
     * @param engine quantized pipeline (must be ready() for the
     *               requested mode and outlive the scheduler)
     * @param mode   quantization mode every batch runs under
     * @param cfg    coalescing knobs
     */
    BatchScheduler(const QuantizedTransformer &engine, QuantMode mode,
                   BatchSchedulerConfig cfg = {});

    /** Flushes the queue, finishes in-flight work, joins. */
    ~BatchScheduler();

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /**
     * Queue one request (seq x hidden embedded input). The future
     * resolves to the forward result when its batch completes.
     */
    std::future<Tensor> submit(Tensor input);

    /** Block until every submitted request has completed. */
    void drain();

    BatchSchedulerStats stats() const;

    /** Size of every dispatched batch, in dispatch order. */
    std::vector<size_t> batchSizes() const;

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> result;
        std::chrono::steady_clock::time_point arrival;
    };

    void dispatchLoop();

    /** Queue holds a full batch (call with mu held). */
    bool batchReady() const;

    const QuantizedTransformer &engine;
    const QuantMode mode;
    const BatchSchedulerConfig cfg;

    mutable std::mutex mu;
    std::condition_variable cvWork; ///< queue grew / stopping
    std::condition_variable cvDone; ///< batch finished
    std::deque<Request> queue;
    size_t queuedRows = 0;
    size_t inFlight = 0;
    bool stopping = false;
    size_t drainWaiters = 0; ///< drain() calls wanting instant flush
    BatchSchedulerStats st;
    std::vector<size_t> sizes;

    std::thread dispatcher;
};

} // namespace mokey

#endif // MOKEY_MODEL_SCHEDULER_HH
