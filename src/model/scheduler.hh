/**
 * @file
 * Multi-request batch scheduler — the run-to-completion serving
 * front end of the quantized pipeline.
 *
 * Two schedulers implement the ServingScheduler surface below:
 *
 *  - BatchScheduler (this file): classic run-to-completion batching.
 *    Requests coalesce into a micro-batch, the whole batch runs all
 *    encoder layers, then the next batch forms. Simple, but a long
 *    prefill holds every later arrival hostage for a full pass.
 *
 *  - ContinuousScheduler (continuous_scheduler.hh): iteration-level
 *    batching with a two-class policy. The running batch re-forms
 *    every layer step; requests join and leave between steps. Short
 *    requests (<= decodeMaxRows rows — the "decode" class) are
 *    scheduled ahead of long "prefill" requests each iteration, and
 *    prefill work is metered by a per-step token budget so a large
 *    prefill advances one budgeted layer slice at a time instead of
 *    monopolising the engine. See that header for the full policy.
 *
 * Requests (one embedded sequence each) are queued FIFO and
 * coalesced into micro-batches that QuantizedTransformer::
 * forwardBatch() executes in one stacked pass, so per-request costs
 * (activation re-quantization, CodePlanes derivation, pool fan-out)
 * are paid once per batch. A batch is dispatched as soon as it is
 * full — maxBatch requests or maxTokens stacked rows — or when the
 * oldest queued request has waited flushTimeout (the classic
 * latency/throughput knob of batched serving systems).
 *
 * laneCount dispatcher threads pull from the shared queue, each
 * owning a private executor lane (Lane::acquire()): while one lane's
 * micro-batch computes, the next dispatcher is already forming and
 * running the following batch on its own lane, and the multi-lane
 * executor interleaves both batches' chunks over one worker set
 * (sized by MOKEY_THREADS). Batching and lane placement never change
 * results: each response is bit-identical to an unbatched forward()
 * of that request.
 *
 * Failure semantics (what a serving deployment relies on):
 *  - A batch whose forward throws fails *only that batch*: every
 *    request in it observes the exception through its future (or
 *    completion callback), the scheduler's counters are restored,
 *    and the dispatcher keeps serving subsequent batches. The
 *    process never terminates because an engine threw.
 *  - submit() on a stopped/stopping scheduler is rejected
 *    gracefully: the future carries a std::runtime_error (the
 *    callback overload returns false) so a draining server can shed
 *    the request with a 503 instead of crashing on the race.
 */

#ifndef MOKEY_MODEL_SCHEDULER_HH
#define MOKEY_MODEL_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "model/pipeline.hh"

namespace mokey
{

/** Coalescing knobs. */
struct BatchSchedulerConfig
{
    /** Maximum requests per micro-batch. */
    size_t maxBatch = 8;

    /** Maximum stacked rows (tokens) per micro-batch. */
    size_t maxTokens = 2048;

    /**
     * Maximum time the oldest queued request waits for the batch to
     * fill before it is flushed anyway.
     */
    std::chrono::microseconds flushTimeout{2000};

    /**
     * Concurrent batch lanes: dispatcher threads, each dispatching
     * independent micro-batches onto its own executor lane (clamped
     * to >= 1).
     */
    size_t laneCount = 1;
};

/** Counters exposed for tests and monitoring. */
struct BatchSchedulerStats
{
    uint64_t requests = 0;        ///< submitted
    uint64_t rejected = 0;        ///< submits refused (stopped/empty)
    uint64_t batches = 0;         ///< dispatched micro-batches
    uint64_t failedBatches = 0;   ///< batches whose forward threw
    uint64_t batchedRows = 0;     ///< total rows across batches
    uint64_t capacityFlushes = 0; ///< dispatched full (batch/tokens)
    uint64_t timeoutFlushes = 0;  ///< dispatched on flushTimeout
    uint64_t drainFlushes = 0;    ///< dispatched by drain()/shutdown
    uint64_t expiredRequests = 0; ///< dropped: deadline passed queued
};

/** Per-lane dispatch accounting (one entry per dispatcher thread). */
struct SchedulerLaneUsage
{
    size_t laneId = 0;      ///< executor lane the dispatcher owns
    uint64_t batches = 0;   ///< micro-batches this lane dispatched
    uint64_t rows = 0;      ///< stacked rows this lane processed
    double busySeconds = 0; ///< wall time inside forwardBatch()
};

/**
 * The batched forward a scheduler dispatches: ragged inputs in,
 * one output per input (same order). May throw — the scheduler
 * converts a throw into per-request failures, never a crash.
 */
using BatchForwardFn = std::function<std::vector<Tensor>(
    const std::vector<Tensor> &inputs, QuantMode mode, Lane lane)>;

/**
 * Per-request completion callback (the async alternative to the
 * future API, used by the network front-end). Invoked exactly once
 * from a dispatcher thread: on success with the output tensor and a
 * null exception pointer, on failure with an empty tensor and the
 * exception that failed the batch.
 */
using BatchCompletion =
    std::function<void(Tensor output, std::exception_ptr error)>;

/**
 * Absolute per-request deadline on the steady clock; kNoDeadline
 * (the default) means the request never expires. The serving
 * front-end stamps one from the client's X-Mokey-Deadline-Ms header.
 */
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

/**
 * The error an expired request observes: its deadline passed while
 * it sat queued (both schedulers drop expired work before stacking
 * it) or, in the continuous scheduler, between layer steps — the
 * client already gave up, so finishing the work would only burn
 * engine time. The HTTP front-end maps this to 504.
 */
class DeadlineExpired : public std::runtime_error
{
  public:
    DeadlineExpired()
        : std::runtime_error("request deadline expired")
    {
    }
};

/**
 * The scheduler surface the serving front end programs against, so
 * an InferenceServer can sit on either the run-to-completion
 * BatchScheduler or the iteration-level ContinuousScheduler without
 * caring which (the wire protocol is identical either way).
 */
class ServingScheduler
{
  public:
    virtual ~ServingScheduler() = default;

    /**
     * Callback-style submit; false = rejected (stopping/empty). A
     * request whose @p deadline passes before its work is stacked
     * (or, continuous mode, between layer steps) completes with
     * DeadlineExpired instead of running.
     */
    virtual bool submit(Tensor input, BatchCompletion done,
                        Deadline deadline) = 0;

    /** Deadline-less convenience overload. */
    bool submit(Tensor input, BatchCompletion done)
    {
        return submit(std::move(input), std::move(done),
                      kNoDeadline);
    }

    /** Requests admitted but not yet completed (queued + active). */
    virtual size_t queueDepth() const = 0;

    /** Block until every submitted request has completed. */
    virtual void drain() = 0;

    /** Stop accepting work, flush what is queued, join threads. */
    virtual void stop() = 0;

    /**
     * EWMA of the recent per-request service latency, in seconds
     * (time from dispatch to completion for the work unit the
     * scheduler runs: one whole batch forward for BatchScheduler,
     * a full pass of layer steps for ContinuousScheduler). Zero
     * until the first unit completes. The serving front end sizes
     * 503 Retry-After hints from this instead of a constant.
     */
    virtual double recentBatchSeconds() const = 0;
};

/** FIFO request queue + micro-batch dispatcher for one pipeline. */
class BatchScheduler : public ServingScheduler
{
  public:
    /**
     * @param engine quantized pipeline (must be ready() for the
     *               requested mode and outlive the scheduler)
     * @param mode   quantization mode every batch runs under
     * @param cfg    coalescing knobs
     */
    BatchScheduler(const QuantizedTransformer &engine, QuantMode mode,
                   BatchSchedulerConfig cfg = {});

    /**
     * Dispatch onto an arbitrary batched forward. Serving stacks
     * use this to interpose (and tests to inject failures); the
     * pipeline constructor above is the common case wrapper.
     */
    BatchScheduler(BatchForwardFn forward, QuantMode mode,
                   BatchSchedulerConfig cfg = {});

    /** Flushes the queue, finishes in-flight work, joins. */
    ~BatchScheduler();

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /**
     * Queue one request (seq x hidden embedded input). The future
     * resolves to the forward result when its batch completes, or
     * carries the exception that failed its batch. A submit racing
     * stop() (and an empty input) resolves to a std::runtime_error
     * instead of panicking — the caller sheds, the process lives.
     * A non-default @p deadline that passes while the request is
     * queued resolves to DeadlineExpired without running.
     */
    std::future<Tensor> submit(Tensor input,
                               Deadline deadline = kNoDeadline);

    using ServingScheduler::submit;

    /**
     * Queue one request with a completion callback instead of a
     * future (no promise/future allocation, no waiter thread — the
     * event-loop front-end's path). Returns false without invoking
     * @p done when the scheduler is stopped/stopping or the input
     * is empty; otherwise @p done fires exactly once from a
     * dispatcher thread. The callback must not block for long (it
     * runs on the dispatcher) and must not re-enter the scheduler.
     */
    bool submit(Tensor input, BatchCompletion done,
                Deadline deadline) override;

    /** Block until every submitted request has completed. */
    void drain() override;

    /**
     * Stop accepting work, flush the queue, join the dispatchers.
     * Queued requests still complete (shutdown flushes them);
     * submits after (or racing) the stop are rejected gracefully.
     * Idempotent; the destructor calls it.
     */
    void stop() override;

    /**
     * Requests admitted but not yet completed (queued + in-flight).
     * The admission-control signal: a server sheds with 503 when
     * this exceeds its queue-depth cap.
     */
    size_t queueDepth() const override;

    /** EWMA of recent per-batch forward wall time (seconds). */
    double recentBatchSeconds() const override;

    BatchSchedulerStats stats() const;

    /** Size of every dispatched batch, in dispatch order. */
    std::vector<size_t> batchSizes() const;

    /** Per-lane dispatch counters, one entry per lane. */
    std::vector<SchedulerLaneUsage> laneUsage() const;

    /** Number of dispatcher lanes (cfg.laneCount clamped to >= 1). */
    size_t laneCount() const { return lanes.size(); }

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> result; ///< unused when done is set
        BatchCompletion done;        ///< callback path when non-null
        std::chrono::steady_clock::time_point arrival;
        Deadline deadline = kNoDeadline;
    };

    void dispatchLoop(size_t laneIdx);

    /** Enqueue under the common submit checks; false = rejected. */
    bool enqueue(Request &&req);

    /** Resolve one request with a result or an error, never throw. */
    static void complete(Request &req, Tensor &&out,
                         const std::exception_ptr &err);

    /** Queue holds a full batch (call with mu held). */
    bool batchReady() const;

    const BatchForwardFn forward;
    const QuantMode mode;
    const BatchSchedulerConfig cfg;

    mutable std::mutex mu;
    std::condition_variable cvWork; ///< queue grew / stopping
    std::condition_variable cvDone; ///< batch finished
    std::deque<Request> queue;
    size_t queuedRows = 0;
    size_t inFlight = 0;
    bool stopping = false;
    bool joined = false;     ///< dispatchers joined (stop() ran)
    size_t drainWaiters = 0; ///< drain() calls wanting instant flush
    BatchSchedulerStats st;
    double recentBatch = 0; ///< EWMA of batch forward seconds (mu)
    std::vector<size_t> sizes;
    std::vector<SchedulerLaneUsage> usage; ///< guarded by mu

    std::vector<Lane> lanes;
    std::vector<std::thread> dispatchers;
};

} // namespace mokey

#endif // MOKEY_MODEL_SCHEDULER_HH
