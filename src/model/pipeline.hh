/**
 * @file
 * End-to-end quantized inference (paper §II-G summary flow).
 *
 * The pipeline owns the whole Mokey recipe for one model:
 *   1. quantize weights offline against their own dictionaries;
 *   2. profile activations over a small batch and build their
 *      dictionaries;
 *   3. run inference where every GEMM goes through the index-domain
 *      histogram path, activations are re-quantized on the fly, and
 *      only softmax / layer-norm / GELU stay in the float domain
 *      (exactly the operators the paper leaves to dedicated units).
 *
 * Two quantization modes mirror Table I's two columns: WeightsOnly
 * and WeightsAndActivations.
 */

#ifndef MOKEY_MODEL_PIPELINE_HH
#define MOKEY_MODEL_PIPELINE_HH

#include <atomic>
#include <map>
#include <memory>

#include "model/graph_plan.hh"
#include "model/profiler.hh"
#include "model/transformer.hh"
#include "quant/index_matmul.hh"
#include "quant/quantizer.hh"

namespace mokey
{

/** Which tensor classes are quantized (Table I columns). */
enum class QuantMode
{
    WeightsOnly,
    WeightsAndActivations,
};

/**
 * Whether activation re-quantization uses the fused single-pass
 * encodeToPlanes() path (the default) or the seed two-pass
 * encode() + derivePlanes path. Process-wide, initialized from
 * MOKEY_FUSED_ENCODE (unset/1/on -> fused; 0/off -> seed path).
 * Outputs are bit-identical either way — the knob exists for parity
 * tests, benchmarking, and as a rollback lever.
 */
bool fusedActEncode();

/** Flip the activation-encode path (tests restore the prior value). */
void setFusedActEncode(bool fused);

/**
 * Whether the fully-quantized forward pass runs plane-to-plane layer-
 * graph fusion (the default) or the seed layer-at-a-time sequence.
 * Fused: every weight-site GEMM chains its epilogue (bias, residual,
 * norm, GELU, attention scale+softmax) and the next consumer's
 * activation quantization into the GEMM's own row-band walk, reads
 * the planes' precomputed fold sums, and uses the GraphPlan's hoisted
 * per-site constants — no intermediate float tensor or per-call
 * re-fold between chained GEMMs. Process-wide, initialized from
 * MOKEY_GRAPH_FUSE (unset/1/on -> fused; 0/off -> layer-at-a-time).
 * Outputs are bit-identical either way — the knob is the rollback
 * lever and what the parity tests and the fusion benchmark flip.
 */
bool graphFuse();

/** Flip the graph-fusion path (tests restore the prior value). */
void setGraphFuse(bool fused);

/**
 * Aggregate quantization statistics for reporting. The embedded
 * matmul counters are atomic (see IndexMatmulStats), so snapshots
 * taken while batched forwards are in flight are safe.
 */
struct PipelineStats
{
    double weightOutlierFraction = 0.0;
    double activationOutlierFraction = 0.0;
    IndexMatmulStats matmul;
};

/** A Mokey-quantized transformer. */
class QuantizedTransformer
{
  public:
    /**
     * @param model the float reference model (kept by reference;
     *              must outlive the pipeline)
     * @param quantizer shared exponential-dictionary quantizer
     * @param cfg   per-tensor dictionary knobs
     */
    QuantizedTransformer(const Transformer &model,
                         const Quantizer &quantizer,
                         const TensorDictConfig &cfg = {});

    /** Step 1: encode every weight matrix (offline). */
    void quantizeWeights();

    /** Steps 2-3: profile activations and build their dictionaries. */
    void profileActivations(const std::vector<Tensor> &batch);

    /** True once both weight and activation dictionaries exist. */
    bool ready() const;

    /** Geometry of the wrapped model (serving layers validate
     *  request width against config().hidden before submitting). */
    const ModelConfig &modelConfig() const { return model.config(); }

    /**
     * Quantized forward pass.
     *
     * @param input seq x hidden embedded input
     * @param mode  which tensors are quantized
     * @param lane  executor lane the pass's loops occupy
     */
    Tensor forward(const Tensor &input, QuantMode mode,
                   Lane lane = {}) const;

    /**
     * Batched forward over several (possibly ragged-length)
     * sequences: activations of the whole batch are re-quantized
     * batch-at-once through the batched encode(), every row-space
     * GEMM runs on the stacked B x T rows (one weight-side
     * CodePlanes derivation per GEMM), and attention heads of all
     * requests fan out over the pool together. Each output is
     * bit-identical to forward() on that sequence alone. The pass
     * runs on @p lane, so independent micro-batches dispatched on
     * different lanes execute concurrently over one worker set.
     */
    std::vector<Tensor> forwardBatch(const std::vector<Tensor> &inputs,
                                     QuantMode mode,
                                     Lane lane = {}) const;

    /**
     * Number of sequential steps a request needs under the step-wise
     * entry point (= encoder layers; the model is bidirectional, so
     * the indivisible scheduling unit is one layer over a full
     * sequence, not a token).
     */
    size_t stepCount() const { return model.config().layers; }

    /**
     * One iteration of the step-wise forward: apply encoder layer
     * @p layer to a stacked (possibly ragged) batch whose membership
     * may differ from the previous step — the continuous scheduler's
     * entry point, where requests join and leave between steps.
     *
     * Composition contract: chaining forwardStep over layers
     * 0..stepCount()-1, with any re-stacking of co-batched rows
     * between steps, is bit-identical to forward()/forwardBatch() on
     * the same sequences. On the fused path the step re-encodes the
     * carried float rows against the layer's activation dictionary;
     * the fused GEMM contract (emitted planes == encodeToPlanes of
     * the dense epilogue output) makes that re-encode exact.
     * Engine self-calibration never advances on this path — only
     * whole-graph passes are timed.
     *
     * @param layer  which encoder layer to apply (< stepCount())
     * @param stacked sum-of-seqs x hidden stacked activations (the
     *               original inputs for layer 0, the previous step's
     *               output rows otherwise)
     * @param starts B+1 row offsets delimiting the sequences
     */
    Tensor forwardStep(size_t layer, const Tensor &stacked,
                       const std::vector<size_t> &starts,
                       QuantMode mode, Lane lane = {}) const;

    /** Fraction of weight values that are outliers. */
    double weightOutlierFraction() const;

    /** Mean outlier fraction over profiled activation tensors. */
    double activationOutlierFraction() const;

    /** Matmul statistics accumulated across forward() calls. */
    const IndexMatmulStats &matmulStats() const { return mmStats; }

    /** Activation dictionary for a tensor id (fatal if missing). */
    const TensorDictionary &activationDict(const TensorId &id) const;

    /**
     * The per-site engine profile of the fused graph, one entry per
     * (layer, weight site): the pinned engine once self-calibration
     * decided (pinned = true), or the process-wide selection while
     * undecided. Empty before the graph plan exists.
     */
    std::vector<EnginePin> enginePins() const;

    /**
     * Apply an engine profile (e.g. an enginePins() snapshot from a
     * calibrated run): each named site is pinned to the given engine
     * and skips further calibration. Pins apply only under
     * MOKEY_ENGINE=auto, mirroring how calibration records them.
     * This is what makes calibrated deployments reproducible — pin
     * once, then every forward resolves identically.
     */
    void pinEngines(const std::vector<EnginePin> &pins) const;

  private:
    const Transformer &model;
    const Quantizer &quantizer;
    TensorDictConfig dictCfg;

    struct QuantizedLayer
    {
        QuantizedTensor wq, wk, wv, wo, w1, w2;
    };
    std::vector<QuantizedLayer> layers;
    std::map<std::string, TensorDictionary> actDicts;
    std::unique_ptr<Transformer> dequantized; ///< weight-only model
    mutable IndexMatmulStats mmStats;
    mutable std::atomic<uint64_t> actOtCodes{0};
    mutable std::atomic<uint64_t> actTotalCodes{0};
    /**
     * Hoisted execution plan of the fused forward path; rebuilt by
     * quantizeWeights()/profileActivations() once both halves exist.
     * Mutable because calibration state (timings, pins, iteration)
     * advances inside const forward passes.
     */
    mutable std::unique_ptr<GraphPlan> graphPlan;

    /**
     * One quantized encoder layer over a stacked row space; @p starts
     * holds B+1 row offsets delimiting the sequences. forward() is
     * the B=1 case.
     */
    Tensor forwardLayerQuantized(size_t l, const Tensor &input,
                                 const std::vector<size_t> &starts,
                                 Lane lane) const;

    /**
     * Encode an activation against its profiled dictionary, folding
     * it into the outlier-rate counters. On the fused path the
     * planes the downstream GEMM streams are emitted directly
     * (encodeToPlanes); @p partner is that GEMM's other operand —
     * the weight tensor whose plane residency the Auto engine
     * heuristic consults — or nullptr for activation x activation
     * GEMMs (attention), which always resolve to byte planes under
     * Auto because both sides start cold.
     */
    QuantizedTensor encodeAct(const TensorId &id, const Tensor &t,
                              const QuantizedTensor *partner,
                              Lane lane) const;

    /** encodeAct() for a pre-resolved dictionary (attention inner
     * loops, where the map lookup would run once per head job). */
    QuantizedTensor encodeActDict(const TensorDictionary &dict,
                                  const Tensor &t,
                                  const QuantizedTensor *partner,
                                  Lane lane) const;

    /** Fold a quantized activation into the outlier-rate counters. */
    QuantizedTensor countActCodes(QuantizedTensor q) const;

    /** Rebuild the fused-path GraphPlan (no-op until ready()). */
    void rebuildGraphPlan();

    /**
     * The fused-path engine decision for one weight site: the fixed
     * process engine, the site's calibration pin, a forced profiling
     * engine during the two calibration iterations, or the same Auto
     * decision table the layer-at-a-time path resolves through.
     */
    IndexEngine siteEngine(const SitePlan &site, size_t aRows,
                           uint64_t iter, bool calibrating) const;

    /** encodeActDict() with the engine pre-resolved per site (so a
     * calibration pin controls which planes are emitted). */
    QuantizedTensor encodeActForSite(const TensorDictionary &dict,
                                     const Tensor &t, IndexEngine e,
                                     Lane lane) const;

    /** Fold a fused-GEMM-encoded activation into the counters. */
    void countFusedAct(const QuantizedTensor &q) const;

    /** Run one weight site's fused GEMM (timed while calibrating). */
    FusedGemmOut runSite(SitePlan &site, const QuantizedTensor &act,
                         IndexEngine e, const FusedRowEpilogue &epi,
                         const TensorDictionary *outDict,
                         PlaneSet outSets, bool keepDense,
                         bool calibrating, Lane lane) const;

    /** Pin every fully-profiled site to its measured winner. */
    void finalizeEnginePins() const;

    /**
     * The plane-to-plane fused pass over all layers: each fused GEMM
     * emits the next GEMM's operand planes directly; the float
     * domain only surfaces where non-GEMM consumers need it (QKV
     * head gather, residual rows, the final output).
     */
    Tensor forwardGraphFused(const Tensor &input,
                             const std::vector<size_t> &starts,
                             Lane lane) const;

    /**
     * One fused layer over the stacked rows — the shared body of
     * forwardGraphFused() (which carries @p qx plane-to-plane across
     * layers) and forwardStep() (which enters with float rows only).
     * @p qx in: layer @p l's x planes when @p haveQx, else encoded
     * here; out: the next layer's x planes when @p emitNext, else
     * left exhausted. Returns the layer's float output rows.
     */
    Tensor fusedLayerStep(size_t l, const Tensor &x,
                          QuantizedTensor &qx, bool haveQx,
                          bool emitNext,
                          const std::vector<size_t> &starts,
                          bool calib, uint64_t iter, Lane lane) const;
};

} // namespace mokey

#endif // MOKEY_MODEL_PIPELINE_HH
