#include "model/workload.hh"

#include "common/logging.hh"

namespace mokey
{

uint64_t
GemmOp::macs() const
{
    return static_cast<uint64_t>(m) * n * k * repeats;
}

uint64_t
GemmOp::bValues() const
{
    return static_cast<uint64_t>(k) * n * repeats;
}

uint64_t
GemmOp::aValues() const
{
    return static_cast<uint64_t>(m) * k * repeats;
}

uint64_t
GemmOp::outValues() const
{
    return static_cast<uint64_t>(m) * n * repeats;
}

uint64_t
Workload::totalMacs() const
{
    uint64_t s = 0;
    for (const auto &op : ops)
        s += op.macs();
    return s;
}

uint64_t
Workload::weightValues() const
{
    uint64_t s = 0;
    for (const auto &op : ops) {
        if (op.weightStatic)
            s += op.bValues();
    }
    return s;
}

uint64_t
Workload::activationValues() const
{
    uint64_t s = 0;
    for (const auto &op : ops) {
        s += op.outValues();
        if (!op.weightStatic)
            s += op.bValues();
    }
    return s;
}

Workload
modelWorkload(const ModelConfig &cfg, size_t seq, size_t batch)
{
    MOKEY_ASSERT(seq > 0 && batch > 0, "empty workload");
    Workload w;
    w.model = cfg.name;
    w.seq = seq;
    w.batch = batch;
    const size_t H = cfg.hidden;
    const size_t hd = cfg.headDim();
    const size_t rows = batch * seq;
    const size_t attn_reps = batch * cfg.heads;
    for (size_t l = 0; l < cfg.layers; ++l) {
        const std::string p = "L" + std::to_string(l) + ".";
        w.ops.push_back({p + "q", rows, H, H, 1, true});
        w.ops.push_back({p + "k", rows, H, H, 1, true});
        w.ops.push_back({p + "v", rows, H, H, 1, true});
        w.ops.push_back({p + "scores", seq, seq, hd, attn_reps,
                         false});
        w.ops.push_back({p + "pv", seq, hd, seq, attn_reps, false});
        w.ops.push_back({p + "attn_out", rows, H, H, 1, true});
        w.ops.push_back({p + "ffn1", rows, cfg.ffn, H, 1, true});
        w.ops.push_back({p + "ffn2", rows, H, cfg.ffn, 1, true});
    }
    return w;
}

} // namespace mokey
