/**
 * @file
 * The once-per-graph execution plan of the fused forward path.
 *
 * The layer-at-a-time pipeline re-derives everything that is actually
 * constant for a served model on every GEMM call: the dictionary
 * product tables, the per-site engine decision, the epilogue scales,
 * and the activation-dictionary lookups. A GraphPlan hoists all of it
 * once — rebuilt whenever quantizeWeights() / profileActivations()
 * invalidate the underlying tensors — so the fused forward walk
 * touches only plain pointers and precomputed scalars.
 *
 * It also carries the self-calibration state: under MOKEY_CALIBRATE
 * with MOKEY_ENGINE=auto, the first fused iteration runs every weight
 * site on the mag engine and the second on the counting engine, each
 * timed; from the third iteration on, each site is pinned to its
 * measured winner (QuantizedTransformer::enginePins() exposes the
 * outcome). With calibration off, sites resolve through the same
 * pure decision table as the layer-at-a-time path, which keeps the
 * two paths bit-identical.
 */

#ifndef MOKEY_MODEL_GRAPH_PLAN_HH
#define MOKEY_MODEL_GRAPH_PLAN_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "quant/index_matmul.hh"

namespace mokey
{

/** Site slots of one encoder layer, in execution order. */
enum GraphSite : size_t
{
    kSiteWq = 0,
    kSiteWk,
    kSiteWv,
    kSiteWo,
    kSiteW1,
    kSiteW2,
    kGraphSiteCount,
};

/** Human-readable site name ("wq" ... "w2"). */
const char *graphSiteName(size_t site);

/**
 * One weight-side GEMM site: the hoisted constants plus the
 * self-calibration state. Non-copyable (atomics); lives inside the
 * plan's deque for address stability.
 */
struct SitePlan
{
    const QuantizedTensor *weight = nullptr;
    const std::vector<float> *bias = nullptr;
    /** gemmConstants(act dict, weight dict, K) for this site. */
    GemmConstants constants;

    /** Pinned engine (IndexEngine as int), or -1 while undecided.
     * Only consulted under MOKEY_ENGINE=auto. */
    std::atomic<int> pinned{-1};
    /** Accumulated fused-GEMM wall time per engine (calibration). */
    std::atomic<int64_t> magNs{0};
    std::atomic<int64_t> countNs{0};
    std::atomic<uint64_t> magRuns{0};
    std::atomic<uint64_t> countRuns{0};
};

/** Per-layer resolved state of the fused walk. */
struct LayerPlan
{
    // Activation dictionaries by tensor id, resolved once (map
    // entries are address-stable for the pipeline's lifetime).
    const TensorDictionary *dx = nullptr;
    const TensorDictionary *dq = nullptr;
    const TensorDictionary *dk = nullptr;
    const TensorDictionary *dv = nullptr;
    const TensorDictionary *dp = nullptr;
    const TensorDictionary *dctx = nullptr;
    const TensorDictionary *dmidIn = nullptr;
    const TensorDictionary *dmid = nullptr;

    /** wq, wk, wv, wo, w1, w2 (GraphSite order). */
    std::array<SitePlan, kGraphSiteCount> sites;

    /** Attention epilogue scale 1/sqrt(head_dim). */
    float invSqrtHd = 1.0f;
};

/** The whole graph's plan plus calibration progress. */
struct GraphPlan
{
    std::deque<LayerPlan> layers; ///< deque: SitePlan is immovable

    /** Completed fused forward passes (drives the two calibration
     * profiling iterations; only advanced while calibrating). */
    std::atomic<uint64_t> iteration{0};
};

/** One row of QuantizedTransformer::enginePins(). */
struct EnginePin
{
    size_t layer = 0;
    std::string site;          ///< "wq" ... "w2"
    IndexEngine engine{};      ///< pinned or statically resolved
    bool pinned = false;       ///< true once calibration decided
};

} // namespace mokey

#endif // MOKEY_MODEL_GRAPH_PLAN_HH
