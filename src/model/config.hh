/**
 * @file
 * Transformer model geometries (paper §IV-A).
 *
 * The published models Mokey evaluates — BERT-Base, BERT-Large,
 * RoBERTa-Large, DeBERTa-XL — are described exactly by their encoder
 * geometry. Geometry drives everything the accelerator simulator and
 * the footprint analyses consume: parameter counts, per-layer GEMM
 * dimensions, activation volumes (Fig. 1). The *reduced* presets
 * scale the geometry down for task-fidelity experiments where a full
 * forward pass per sample would be needlessly slow; distributional
 * behaviour is preserved (see DESIGN.md substitution table).
 */

#ifndef MOKEY_MODEL_CONFIG_HH
#define MOKEY_MODEL_CONFIG_HH

#include <cstddef>
#include <string>

namespace mokey
{

/** Encoder-stack geometry of a transformer model. */
struct ModelConfig
{
    std::string name;
    size_t layers;      ///< encoder count
    size_t hidden;      ///< model dimension H
    size_t heads;       ///< attention heads
    size_t ffn;         ///< feed-forward inner dimension (4H)
    size_t vocab;       ///< vocabulary size (embedding table rows)

    /** Head dimension H / heads. */
    size_t headDim() const { return hidden / heads; }

    /** Encoder parameter count (weights + biases, no embeddings). */
    size_t encoderParams() const;

    /** Embedding parameter count (token + position tables). */
    size_t embeddingParams() const;

    /** Total parameter count. */
    size_t totalParams() const;

    /** Weight footprint in bytes at @p bits_per_value. */
    size_t weightBytes(size_t bits_per_value) const;

    /**
     * Activation footprint in bytes for one input of @p seq tokens:
     * every per-layer tensor that flows between operators (input,
     * Q/K/V, attention scores and probabilities, context, FFN
     * intermediate, outputs), summed over layers — the quantity
     * Fig. 1 plots.
     */
    size_t activationBytes(size_t seq, size_t bits_per_value) const;

    /** Activation values (element count) for one layer at @p seq. */
    size_t activationValuesPerLayer(size_t seq) const;
};

/** BERT-Base: 12 encoders, 110 M parameters. */
ModelConfig bertBase();

/** BERT-Large: 24 encoders, 340 M parameters. */
ModelConfig bertLarge();

/** RoBERTa-Large: BERT-Large geometry, larger vocabulary. */
ModelConfig robertaLarge();

/** DeBERTa-XL: 48 encoders, 750 M parameters. */
ModelConfig debertaXl();

/**
 * A geometry-reduced stand-in sharing @p full's aspect ratios, for
 * task-fidelity runs. @p scale divides hidden/ffn; layer count is
 * capped at 4.
 */
ModelConfig reduced(const ModelConfig &full, size_t scale = 8);

} // namespace mokey

#endif // MOKEY_MODEL_CONFIG_HH
