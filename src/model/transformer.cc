#include "model/transformer.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "tensor/ops.hh"

namespace mokey
{

std::string
TensorId::str() const
{
    return "L" + std::to_string(layer) + "." + tensor;
}

namespace
{

/**
 * Draw a weight matrix from the transformer-like mixture: a Gaussian
 * bulk at the published initialization scale plus a rare wide
 * component that produces the outlier tail Mokey's OT dictionary
 * exists for.
 */
Tensor
mixtureWeights(Rng &rng, size_t rows, size_t cols, double stddev,
               double tail_frac)
{
    std::vector<float> v(rows * cols);
    for (auto &x : v) {
        const bool tail = rng.uniform() < tail_frac;
        x = static_cast<float>(
            rng.gaussian(0.0, tail ? 5.0 * stddev : stddev));
    }
    return Tensor(rows, cols, std::move(v));
}

std::vector<float>
smallBias(Rng &rng, size_t n)
{
    std::vector<float> b(n);
    for (auto &x : b)
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    return b;
}

} // anonymous namespace

Transformer::Transformer(const ModelConfig &config, uint64_t seed,
                         double tail_frac)
    : cfg(config)
{
    MOKEY_ASSERT(cfg.hidden % cfg.heads == 0,
                 "hidden %zu not divisible by heads %zu", cfg.hidden,
                 cfg.heads);
    Rng rng(seed);
    const double attn_std = 1.0 / std::sqrt(
        static_cast<double>(cfg.hidden));
    const double ffn_std = 1.0 / std::sqrt(
        static_cast<double>(cfg.ffn));
    enc.reserve(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l) {
        EncoderWeights w;
        w.wq = mixtureWeights(rng, cfg.hidden, cfg.hidden, attn_std,
                              tail_frac);
        w.wk = mixtureWeights(rng, cfg.hidden, cfg.hidden, attn_std,
                              tail_frac);
        w.wv = mixtureWeights(rng, cfg.hidden, cfg.hidden, attn_std,
                              tail_frac);
        w.wo = mixtureWeights(rng, cfg.hidden, cfg.hidden, attn_std,
                              tail_frac);
        w.w1 = mixtureWeights(rng, cfg.ffn, cfg.hidden, attn_std,
                              tail_frac);
        w.w2 = mixtureWeights(rng, cfg.hidden, cfg.ffn, ffn_std,
                              tail_frac);
        w.bq = smallBias(rng, cfg.hidden);
        w.bk = smallBias(rng, cfg.hidden);
        w.bv = smallBias(rng, cfg.hidden);
        w.bo = smallBias(rng, cfg.hidden);
        w.b1 = smallBias(rng, cfg.ffn);
        w.b2 = smallBias(rng, cfg.hidden);
        enc.push_back(std::move(w));
    }
}

Tensor
Transformer::forwardLayer(size_t layer, const Tensor &input,
                          const ActivationHook &hook,
                          const ActivationTransform &transform,
                          Lane lane) const
{
    // The unobserved pass is the batched pass with one sequence —
    // one shared implementation keeps forward() and forwardBatch()
    // bit-identical by construction. Observers need the serial path
    // below (which ignores the lane), visiting per-head tensors in
    // deterministic order.
    if (!hook && !transform)
        return forwardLayerBatch(layer, input, {0, input.rows()},
                                 lane);

    MOKEY_ASSERT(layer < enc.size(), "layer %zu out of range", layer);
    MOKEY_ASSERT(input.cols() == cfg.hidden, "input width mismatch");
    const EncoderWeights &w = enc[layer];
    const size_t seq = input.rows();
    const size_t hd = cfg.headDim();

    const auto observe = [&](const TensorId &id, Tensor &t) {
        if (hook)
            hook(id, t);
        if (transform)
            transform(id, t);
    };

    Tensor x = input;
    observe({layer, "x"}, x);

    Tensor q = matmulTransB(x, w.wq);
    Tensor k = matmulTransB(x, w.wk);
    Tensor v = matmulTransB(x, w.wv);
    addBias(q, w.bq);
    addBias(k, w.bk);
    addBias(v, w.bv);
    observe({layer, "q"}, q);
    observe({layer, "k"}, k);
    observe({layer, "v"}, v);

    // Per-head scaled dot-product attention, serial on purpose: the
    // attached observer must see the per-head score tensors in
    // deterministic order. (The unobserved pass took the parallel
    // forwardLayerBatch() route above.)
    Tensor ctx(seq, cfg.hidden);
    const auto inv_sqrt =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(hd)));
    for (size_t h = 0; h < cfg.heads; ++h) {
        Tensor qh(seq, hd), kh(seq, hd), vh(seq, hd);
        for (size_t r = 0; r < seq; ++r) {
            for (size_t c = 0; c < hd; ++c) {
                qh.at(r, c) = q.at(r, h * hd + c);
                kh.at(r, c) = k.at(r, h * hd + c);
                vh.at(r, c) = v.at(r, h * hd + c);
            }
        }
        Tensor scores = matmulTransB(qh, kh);
        scale(scores, inv_sqrt);
        softmaxRows(scores);
        observe({layer, "p"}, scores);
        const Tensor out = matmul(scores, vh);
        for (size_t r = 0; r < seq; ++r)
            for (size_t c = 0; c < hd; ++c)
                ctx.at(r, h * hd + c) = out.at(r, c);
    }
    observe({layer, "ctx"}, ctx);

    Tensor attn = matmulTransB(ctx, w.wo);
    addBias(attn, w.bo);
    Tensor res1 = add(attn, x);
    layerNormRows(res1);

    observe({layer, "mid_in"}, res1);
    Tensor mid = matmulTransB(res1, w.w1);
    addBias(mid, w.b1);
    gelu(mid);
    observe({layer, "mid"}, mid);
    Tensor out = matmulTransB(mid, w.w2);
    addBias(out, w.b2);
    Tensor res2 = add(out, res1);
    layerNormRows(res2);
    return res2;
}

Tensor
Transformer::forward(const Tensor &input, const ActivationHook &hook,
                     const ActivationTransform &transform,
                     Lane lane) const
{
    Tensor x = input;
    for (size_t l = 0; l < cfg.layers; ++l)
        x = forwardLayer(l, x, hook, transform, lane);
    return x;
}

Tensor
Transformer::forwardLayerBatch(size_t layer, const Tensor &input,
                               const std::vector<size_t> &starts,
                               Lane lane) const
{
    MOKEY_ASSERT(layer < enc.size(), "layer %zu out of range", layer);
    MOKEY_ASSERT(input.cols() == cfg.hidden, "input width mismatch");
    const EncoderWeights &w = enc[layer];
    const size_t total = input.rows();
    const size_t hd = cfg.headDim();
    const size_t batch = starts.size() - 1;

    // Row-space GEMMs run on the whole stacked batch: one weight
    // stream, one pool fan-out, per-row results identical to the
    // single-sequence pass.
    Tensor q = matmulTransB(input, w.wq, lane);
    Tensor k = matmulTransB(input, w.wk, lane);
    Tensor v = matmulTransB(input, w.wv, lane);
    addBias(q, w.bq);
    addBias(k, w.bk);
    addBias(v, w.bv);

    // Attention never crosses a sequence boundary: one job per
    // (sequence, head) pair, each writing a disjoint block of ctx.
    Tensor ctx(total, cfg.hidden);
    const auto inv_sqrt =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(hd)));
    parallelFor(lane, 0, batch * cfg.heads, 1, [&](size_t job) {
        const size_t b = job / cfg.heads;
        const size_t h = job % cfg.heads;
        const size_t r0 = starts[b];
        const size_t seq = starts[b + 1] - r0;
        Tensor qh(seq, hd), kh(seq, hd), vh(seq, hd);
        for (size_t r = 0; r < seq; ++r) {
            for (size_t c = 0; c < hd; ++c) {
                qh.at(r, c) = q.at(r0 + r, h * hd + c);
                kh.at(r, c) = k.at(r0 + r, h * hd + c);
                vh.at(r, c) = v.at(r0 + r, h * hd + c);
            }
        }
        Tensor scores = matmulTransB(qh, kh);
        scale(scores, inv_sqrt);
        softmaxRows(scores);
        const Tensor out = matmul(scores, vh);
        for (size_t r = 0; r < seq; ++r)
            for (size_t c = 0; c < hd; ++c)
                ctx.at(r0 + r, h * hd + c) = out.at(r, c);
    });

    Tensor attn = matmulTransB(ctx, w.wo, lane);
    addBias(attn, w.bo);
    Tensor res1 = add(attn, input);
    layerNormRows(res1);

    Tensor mid = matmulTransB(res1, w.w1, lane);
    addBias(mid, w.b1);
    gelu(mid);
    Tensor out = matmulTransB(mid, w.w2, lane);
    addBias(out, w.b2);
    Tensor res2 = add(out, res1);
    layerNormRows(res2);
    return res2;
}

std::vector<Tensor>
Transformer::forwardBatch(const std::vector<Tensor> &inputs,
                          Lane lane) const
{
    return mapStackedBatch(
        inputs,
        [this, lane](const Tensor &stacked,
                     const std::vector<size_t> &starts) {
            Tensor x = stacked;
            for (size_t l = 0; l < cfg.layers; ++l)
                x = forwardLayerBatch(l, x, starts, lane);
            return x;
        });
}

Tensor
Transformer::makeInput(size_t seq, uint64_t seed) const
{
    Rng rng(seed);
    Tensor x(seq, cfg.hidden,
             rng.gaussianVector(seq * cfg.hidden, 0.0, 1.0));
    layerNormRows(x); // embeddings are layer-normed in BERT
    return x;
}

} // namespace mokey
