/**
 * @file
 * Activation profiling (paper §II, Step 2).
 *
 * Mokey derives activation dictionaries from a single small profiling
 * batch: per GEMM-input tensor it needs the mean, the standard
 * deviation, and enough tail samples to place the outlier centroids.
 * The profiler subsamples each observed activation tensor into a
 * bounded reservoir so profiling cost stays independent of model
 * size.
 */

#ifndef MOKEY_MODEL_PROFILER_HH
#define MOKEY_MODEL_PROFILER_HH

#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "model/transformer.hh"

namespace mokey
{

/** Reservoir-sampled value collection for one tensor id. */
class ActivationProfile
{
  public:
    explicit ActivationProfile(size_t capacity = 65536,
                               uint64_t seed = 0xA11CE);

    /** Fold a tensor's values into the reservoir. */
    void observe(const Tensor &t);

    /** The collected samples. */
    const std::vector<float> &samples() const { return buf; }

    /** Number of values observed (not retained). */
    size_t observed() const { return seen; }

  private:
    size_t cap;
    size_t seen;
    std::vector<float> buf;
    Rng rng;
};

/** Profiles every GEMM-input tensor over a batch of inputs. */
class ModelProfiler
{
  public:
    explicit ModelProfiler(size_t capacity_per_tensor = 65536);

    /**
     * Run the float model over a profiling batch, recording every
     * GEMM input activation.
     */
    void run(const Transformer &model,
             const std::vector<Tensor> &batch);

    /** Samples for one tensor id (fatal if never observed). */
    const std::vector<float> &samples(const TensorId &id) const;

    /** True when the id was observed during profiling. */
    bool has(const TensorId &id) const;

    /** All observed tensor ids. */
    std::vector<std::string> ids() const;

  private:
    size_t cap;
    std::map<std::string, ActivationProfile> profiles;
};

} // namespace mokey

#endif // MOKEY_MODEL_PROFILER_HH
