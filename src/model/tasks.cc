#include "model/tasks.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/ops.hh"

namespace mokey
{

const char *
taskName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Classification:
        return "MNLI";
      case TaskKind::Regression:
        return "STS-B";
      case TaskKind::Span:
        return "SQuAD";
    }
    panic("unknown task kind");
}

const char *
taskMetric(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Classification:
        return "Acc-m";
      case TaskKind::Regression:
        return "Spearman";
      case TaskKind::Span:
        return "F1";
    }
    panic("unknown task kind");
}

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    MOKEY_ASSERT(a.size() == b.size() && !a.empty(),
                 "spearman needs equal nonempty sequences");
    const auto ranks = [](const std::vector<double> &v) {
        std::vector<size_t> order(v.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](size_t i, size_t j) { return v[i] < v[j]; });
        std::vector<double> r(v.size());
        for (size_t i = 0; i < order.size(); ++i)
            r[order[i]] = static_cast<double>(i);
        return r;
    };
    const auto ra = ranks(a), rb = ranks(b);
    const double n = static_cast<double>(a.size());
    double d2 = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = ra[i] - rb[i];
        d2 += d * d;
    }
    return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

double
spanF1(std::pair<size_t, size_t> pred, std::pair<size_t, size_t> gold)
{
    if (pred.first > pred.second)
        std::swap(pred.first, pred.second);
    if (gold.first > gold.second)
        std::swap(gold.first, gold.second);
    const size_t lo = std::max(pred.first, gold.first);
    const size_t hi = std::min(pred.second, gold.second);
    const double overlap =
        hi >= lo ? static_cast<double>(hi - lo + 1) : 0.0;
    if (overlap == 0.0)
        return 0.0;
    const double p =
        overlap / static_cast<double>(pred.second - pred.first + 1);
    const double r =
        overlap / static_cast<double>(gold.second - gold.first + 1);
    return 2.0 * p * r / (p + r);
}

TaskEvaluator::TaskEvaluator(const Transformer &m, TaskKind kind,
                             size_t n_samples, size_t seq,
                             uint64_t seed, double label_noise)
    : model(m), taskKind(kind)
{
    MOKEY_ASSERT(n_samples > 0 && seq >= 4, "degenerate task");
    Rng rng(seed);
    const size_t hidden = model.config().hidden;

    headCls = Tensor(3, hidden,
                     rng.gaussianVector(3 * hidden, 0.0, 0.3));
    headReg = Tensor(1, hidden,
                     rng.gaussianVector(hidden, 0.0, 0.3));
    headSpan = Tensor(2, hidden,
                      rng.gaussianVector(2 * hidden, 0.0, 0.3));

    // Two properties of real benchmarks have to be synthesized so
    // the score sensitivity matches the paper's (where sub-1 %
    // shifts are meaningful):
    //  1. Task signal. SQuAD answers are lexically distinctive and
    //     STS-B pairs span a wide similarity range; random inputs
    //     are not and do not. Span inputs get a distinctive
    //     direction added to their answer rows; regression inputs
    //     get a per-sample-strength direction the read-out
    //     correlates with.
    //  2. Decision margins. Trained models predict decisively; we
    //     generate 4x candidates and keep the quarter the reference
    //     model is most confident about (argmax tasks only).
    seqLen = seq;
    taskSignal.assign(hidden, 0.0f);
    for (auto &s : taskSignal)
        s = static_cast<float>(rng.gaussian(0.0, 1.0));
    const std::vector<float> &signal = taskSignal;

    // Calibrate the span and regression read-out heads as linear
    // probes on the frozen encoder (real task heads are trained;
    // random read-outs would not recover the injected task signal
    // from the outputs). Classification keeps a random head plus
    // margin filtering.
    if (taskKind == TaskKind::Span) {
        std::vector<double> probe(hidden, 0.0);
        for (int t = 0; t < 16; ++t) {
            Tensor in = model.makeInput(seq, rng.next());
            const size_t mark = rng.uniformInt(seq);
            for (size_t c = 0; c < hidden; ++c)
                in.at(mark, c) += 5.0f * signal[c];
            const Tensor out = model.forward(in);
            for (size_t c = 0; c < hidden; ++c) {
                double others = 0.0;
                for (size_t r = 0; r < seq; ++r)
                    if (r != mark)
                        others += out.at(r, c);
                probe[c] += out.at(mark, c) -
                    others / static_cast<double>(seq - 1);
            }
        }
        for (size_t c = 0; c < hidden; ++c) {
            headSpan.at(0, c) = static_cast<float>(probe[c] / 16.0);
            headSpan.at(1, c) = headSpan.at(0, c);
        }
    } else if (taskKind == TaskKind::Regression) {
        std::vector<double> probe(hidden, 0.0);
        for (int t = 0; t < 16; ++t) {
            Tensor in = model.makeInput(seq, rng.next());
            const double strength = rng.uniform(-3.0, 3.0);
            for (size_t r = 0; r < seq; ++r)
                for (size_t c = 0; c < hidden; ++c)
                    in.at(r, c) += static_cast<float>(strength) *
                        signal[c];
            const Tensor out = model.forward(in);
            const auto p = pool(out);
            for (size_t c = 0; c < hidden; ++c)
                probe[c] += strength * p[c];
        }
        for (size_t c = 0; c < hidden; ++c)
            headReg.at(0, c) = static_cast<float>(probe[c] / 16.0);
    }

    inputs.reserve(n_samples);
    switch (taskKind) {
      case TaskKind::Regression: {
        // Gold target = the injected similarity strength (plus
        // noise); the model's read-out recovers it through the
        // encoder stack.
        for (size_t i = 0; i < n_samples; ++i) {
            Tensor in = model.makeInput(seq, rng.next());
            const double strength = rng.uniform(-3.0, 3.0);
            for (size_t r = 0; r < in.rows(); ++r)
                for (size_t c = 0; c < hidden; ++c)
                    in.at(r, c) += static_cast<float>(strength) *
                        signal[c];
            inputs.push_back(std::move(in));
            goldTargets.push_back(
                strength + rng.gaussian(0.0, label_noise));
        }
        break;
      }
      case TaskKind::Span: {
        // Gold span = the marked answer token; margin-filter to
        // the samples where the reference model locates it
        // decisively.
        struct Cand
        {
            double margin;
            Tensor in;
            size_t pos;
        };
        std::vector<Cand> candidates;
        for (size_t i = 0; i < 4 * n_samples; ++i) {
            Tensor in = model.makeInput(seq, rng.next());
            const size_t s = rng.uniformInt(seq);
            for (size_t c = 0; c < hidden; ++c)
                in.at(s, c) += 5.0f * signal[c];
            const Tensor out = model.forward(in);
            candidates.push_back(
                {predictionMargin(out), std::move(in), s});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.margin > b.margin;
                  });
        for (size_t i = 0; i < n_samples; ++i) {
            size_t pos = candidates[i].pos;
            if (rng.uniform() < label_noise)
                pos = std::min<size_t>(seq - 1,
                                       pos + rng.uniformInt(2));
            inputs.push_back(std::move(candidates[i].in));
            goldSpans.emplace_back(pos, pos);
        }
        break;
      }
      case TaskKind::Classification: {
        // Gold label = the reference model's confident prediction,
        // noise-corrupted so the FP score sits in the published
        // 84-92 band.
        std::vector<std::pair<double, Tensor>> candidates;
        for (size_t i = 0; i < 4 * n_samples; ++i) {
            Tensor in = model.makeInput(seq, rng.next());
            const Tensor out = model.forward(in);
            candidates.emplace_back(predictionMargin(out),
                                    std::move(in));
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        for (size_t i = 0; i < n_samples; ++i) {
            inputs.push_back(std::move(candidates[i].second));
            int label = predictLabel(model.forward(inputs.back()));
            if (rng.uniform() < label_noise)
                label = static_cast<int>(rng.uniformInt(3));
            goldLabels.push_back(label);
        }
        break;
      }
    }
}

std::vector<Tensor>
TaskEvaluator::profilingBatch(size_t n, uint64_t seed) const
{
    Rng rng(seed);
    const size_t hidden = model.config().hidden;
    std::vector<Tensor> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Tensor in = model.makeInput(seqLen, rng.next());
        switch (taskKind) {
          case TaskKind::Regression: {
            const double strength = rng.uniform(-3.0, 3.0);
            for (size_t r = 0; r < in.rows(); ++r)
                for (size_t c = 0; c < hidden; ++c)
                    in.at(r, c) += static_cast<float>(strength) *
                        taskSignal[c];
            break;
          }
          case TaskKind::Span: {
            const size_t mark = rng.uniformInt(seqLen);
            for (size_t c = 0; c < hidden; ++c)
                in.at(mark, c) += 5.0f * taskSignal[c];
            break;
          }
          case TaskKind::Classification:
            break;
        }
        batch.push_back(std::move(in));
    }
    return batch;
}

double
TaskEvaluator::predictionMargin(const Tensor &out) const
{
    if (taskKind == TaskKind::Classification) {
        // Gap between the best and second-best class logits.
        const auto p = pool(out);
        double best = -1e300, second = -1e300;
        for (size_t cls = 0; cls < 3; ++cls) {
            double v = 0.0;
            for (size_t c = 0; c < p.size(); ++c)
                v += static_cast<double>(headCls.at(cls, c)) * p[c];
            if (v > best) {
                second = best;
                best = v;
            } else if (v > second) {
                second = v;
            }
        }
        return best - second;
    }
    // Span: the smaller of the start/end argmax gaps.
    double margin = 1e300;
    for (int head = 0; head < 2; ++head) {
        double best = -1e300, second = -1e300;
        for (size_t r = 0; r < out.rows(); ++r) {
            double v = 0.0;
            for (size_t c = 0; c < out.cols(); ++c)
                v += static_cast<double>(headSpan.at(head, c)) *
                    out.at(r, c);
            if (v > best) {
                second = best;
                best = v;
            } else if (v > second) {
                second = v;
            }
        }
        margin = std::min(margin, best - second);
    }
    return margin;
}

std::vector<float>
TaskEvaluator::pool(const Tensor &out) const
{
    std::vector<float> p(out.cols(), 0.0f);
    for (size_t r = 0; r < out.rows(); ++r)
        for (size_t c = 0; c < out.cols(); ++c)
            p[c] += out.at(r, c);
    const auto inv = static_cast<float>(
        1.0 / static_cast<double>(out.rows()));
    for (auto &v : p)
        v *= inv;
    return p;
}

int
TaskEvaluator::predictLabel(const Tensor &out) const
{
    const auto p = pool(out);
    int best = 0;
    double best_v = -1e300;
    for (size_t cls = 0; cls < 3; ++cls) {
        double v = 0.0;
        for (size_t c = 0; c < p.size(); ++c)
            v += static_cast<double>(headCls.at(cls, c)) * p[c];
        if (v > best_v) {
            best_v = v;
            best = static_cast<int>(cls);
        }
    }
    return best;
}

double
TaskEvaluator::predictScore(const Tensor &out) const
{
    const auto p = pool(out);
    double v = 0.0;
    for (size_t c = 0; c < p.size(); ++c)
        v += static_cast<double>(headReg.at(0, c)) * p[c];
    return v;
}

std::pair<size_t, size_t>
TaskEvaluator::predictSpan(const Tensor &out) const
{
    size_t s = 0, e = 0;
    double sv = -1e300, ev = -1e300;
    for (size_t r = 0; r < out.rows(); ++r) {
        double vs = 0.0, ve = 0.0;
        for (size_t c = 0; c < out.cols(); ++c) {
            vs += static_cast<double>(headSpan.at(0, c)) *
                out.at(r, c);
            ve += static_cast<double>(headSpan.at(1, c)) *
                out.at(r, c);
        }
        if (vs > sv) {
            sv = vs;
            s = r;
        }
        if (ve > ev) {
            ev = ve;
            e = r;
        }
    }
    if (e < s)
        e = s;
    return {s, e};
}

double
TaskEvaluator::evaluate(const ForwardFn &fn) const
{
    double score = 0.0;
    std::vector<double> preds, targets;
    for (size_t i = 0; i < inputs.size(); ++i) {
        const Tensor out = fn(inputs[i]);
        switch (taskKind) {
          case TaskKind::Classification:
            score += predictLabel(out) == goldLabels[i] ? 1.0 : 0.0;
            break;
          case TaskKind::Regression:
            preds.push_back(predictScore(out));
            targets.push_back(goldTargets[i]);
            break;
          case TaskKind::Span:
            score += spanF1(predictSpan(out), goldSpans[i]);
            break;
        }
    }
    if (taskKind == TaskKind::Regression)
        return 100.0 * spearman(preds, targets);
    return 100.0 * score / static_cast<double>(inputs.size());
}

double
TaskEvaluator::evaluateReference() const
{
    return evaluate([this](const Tensor &in) {
        return model.forward(in);
    });
}

} // namespace mokey
