#include "model/config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mokey
{

size_t
ModelConfig::encoderParams() const
{
    // Per encoder: Wq, Wk, Wv, Wo (H x H each) + their biases,
    // FFN W1 (H x 4H), W2 (4H x H) + biases, and 2 layer norms.
    const size_t attn = 4 * hidden * hidden + 4 * hidden;
    const size_t ffn_p = 2 * hidden * ffn + ffn + hidden;
    const size_t ln = 2 * 2 * hidden;
    return layers * (attn + ffn_p + ln);
}

size_t
ModelConfig::embeddingParams() const
{
    // Token table + 512 positions + token-type + embedding LN.
    return vocab * hidden + 512 * hidden + 2 * hidden + 2 * hidden;
}

size_t
ModelConfig::totalParams() const
{
    return encoderParams() + embeddingParams();
}

size_t
ModelConfig::weightBytes(size_t bits_per_value) const
{
    return (totalParams() * bits_per_value + 7) / 8;
}

size_t
ModelConfig::activationValuesPerLayer(size_t seq) const
{
    // Input, Q, K, V, context, attention output, FFN output: S x H
    // each (7 S H); FFN intermediate: S x 4H; scores + probabilities:
    // 2 x heads x S x S.
    return 7 * seq * hidden + seq * ffn + 2 * heads * seq * seq;
}

size_t
ModelConfig::activationBytes(size_t seq, size_t bits_per_value) const
{
    const size_t values = layers * activationValuesPerLayer(seq);
    return (values * bits_per_value + 7) / 8;
}

ModelConfig
bertBase()
{
    return ModelConfig{"BERT-Base", 12, 768, 12, 3072, 30522};
}

ModelConfig
bertLarge()
{
    return ModelConfig{"BERT-Large", 24, 1024, 16, 4096, 30522};
}

ModelConfig
robertaLarge()
{
    return ModelConfig{"RoBERTa-Large", 24, 1024, 16, 4096, 50265};
}

ModelConfig
debertaXl()
{
    return ModelConfig{"DeBERTa-XL", 48, 1024, 16, 4096, 128100};
}

ModelConfig
reduced(const ModelConfig &full, size_t scale)
{
    MOKEY_ASSERT(scale >= 1, "bad reduction scale");
    ModelConfig r = full;
    r.name = full.name + " (reduced)";
    r.layers = std::min<size_t>(full.layers / 6 + 1, 4);
    r.hidden = std::max<size_t>(full.hidden / scale, 32);
    r.heads = std::max<size_t>(full.heads / 4, 2);
    // Keep hidden divisible by heads.
    r.hidden = (r.hidden / r.heads) * r.heads;
    r.ffn = 4 * r.hidden;
    r.vocab = 1024;
    return r;
}

} // namespace mokey
