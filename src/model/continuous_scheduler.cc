#include "model/continuous_scheduler.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/watchdog.hh"

namespace mokey
{

ContinuousScheduler::ContinuousScheduler(
    const QuantizedTransformer &eng, QuantMode m,
    ContinuousSchedulerConfig c)
    : ContinuousScheduler(
          [&eng](size_t layer, const Tensor &stacked,
                 const std::vector<size_t> &starts, QuantMode mode,
                 Lane ln) {
              return eng.forwardStep(layer, stacked, starts, mode, ln);
          },
          eng.stepCount(), m, c)
{
}

ContinuousScheduler::ContinuousScheduler(StepForwardFn fn,
                                         size_t steps, QuantMode m,
                                         ContinuousSchedulerConfig c)
    : step(std::move(fn)), nSteps(steps), mode(m), cfg(c)
{
    MOKEY_ASSERT(static_cast<bool>(step),
                 "scheduler needs a step function");
    MOKEY_ASSERT(nSteps >= 1, "step count must be >= 1");
    MOKEY_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    cfg.chunkTokens = envSize("MOKEY_CHUNK_TOKENS", cfg.chunkTokens);
    cfg.decodePriority =
        envFlag("MOKEY_DECODE_PRIORITY", cfg.decodePriority);
    MOKEY_ASSERT(cfg.decodeTokens >= 1, "decodeTokens must be >= 1");
    MOKEY_ASSERT(cfg.chunkTokens >= 1, "chunkTokens must be >= 1");
    lane = Lane::acquire();
    stepper = std::thread([this] { stepLoop(); });
}

ContinuousScheduler::~ContinuousScheduler()
{
    stop();
}

void
ContinuousScheduler::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
        if (joinedFlag)
            return;
        joinedFlag = true;
    }
    cvWork.notify_all();
    stepper.join();
}

bool
ContinuousScheduler::enqueue(Pending &&req)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (stopping || req.input.rows() == 0) {
            ++st.rejected;
            return false;
        }
        queue.push_back(std::move(req));
        ++st.requests;
    }
    cvWork.notify_all();
    return true;
}

std::future<Tensor>
ContinuousScheduler::submit(Tensor input, Deadline deadline)
{
    const bool empty = input.rows() == 0;
    Pending req{std::move(input), {}, nullptr, deadline};
    std::future<Tensor> fut = req.result.get_future();
    if (!enqueue(std::move(req))) {
        req.result.set_exception(std::make_exception_ptr(
            std::runtime_error(
                empty ? "ContinuousScheduler: empty request"
                      : "ContinuousScheduler: submit() on a stopped "
                        "scheduler")));
    }
    return fut;
}

bool
ContinuousScheduler::submit(Tensor input, BatchCompletion done,
                            Deadline deadline)
{
    MOKEY_ASSERT(static_cast<bool>(done),
                 "callback submit needs a callback");
    Pending req{std::move(input), {}, std::move(done), deadline};
    return enqueue(std::move(req));
}

void
ContinuousScheduler::drain()
{
    std::unique_lock<std::mutex> lk(mu);
    cvDone.wait(lk, [this] {
        return queue.empty() && active.empty() && resolving == 0;
    });
}

size_t
ContinuousScheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mu);
    return queue.size() + active.size() + resolving;
}

double
ContinuousScheduler::recentStepSeconds() const
{
    std::lock_guard<std::mutex> lk(mu);
    return recentStep;
}

double
ContinuousScheduler::recentBatchSeconds() const
{
    std::lock_guard<std::mutex> lk(mu);
    return recentStep * static_cast<double>(nSteps);
}

ContinuousSchedulerStats
ContinuousScheduler::stats() const
{
    std::lock_guard<std::mutex> lk(mu);
    return st;
}

void
ContinuousScheduler::finish(Active &a, Tensor &&out,
                            const std::exception_ptr &err)
{
    // Mirrors BatchScheduler::complete(): a broken promise or a
    // throwing callback is the caller's bug and must not take the
    // step thread (and every other active request) down with it.
    try {
        if (a.done) {
            a.done(std::move(out), err);
        } else if (err) {
            a.result.set_exception(err);
        } else {
            a.result.set_value(std::move(out));
        }
    } catch (const std::exception &e) {
        warn("ContinuousScheduler: completion failed: %s", e.what());
    } catch (...) {
        warn("ContinuousScheduler: completion failed");
    }
}

void
ContinuousScheduler::finishPending(Pending &p,
                                   const std::exception_ptr &err)
{
    try {
        if (p.done)
            p.done(Tensor{}, err);
        else
            p.result.set_exception(err);
    } catch (const std::exception &e) {
        warn("ContinuousScheduler: completion failed: %s", e.what());
    } catch (...) {
        warn("ContinuousScheduler: completion failed");
    }
}

std::vector<std::list<ContinuousScheduler::Active>::iterator>
ContinuousScheduler::pickClass(bool decodeClass, size_t budget,
                               uint64_t &deferred)
{
    // Admission (seq) order is list order: joins always push_back.
    std::vector<std::list<Active>::iterator> sel;
    size_t rowsTaken = 0;
    for (auto it = active.begin(); it != active.end(); ++it) {
        if (it->decode != decodeClass)
            continue;
        const size_t r = it->x.rows();
        // At least one member of the class always advances —
        // the budget meters extra work, it never starves.
        if (!sel.empty() && rowsTaken + r > budget) {
            ++deferred;
            continue;
        }
        rowsTaken += r;
        sel.push_back(it);
    }
    return sel;
}

void
ContinuousScheduler::runGroup(
    const std::vector<std::list<Active>::iterator> &grp, Lane ln,
    bool decodeClass,
    std::vector<std::list<Active>::iterator> &finished,
    std::vector<std::list<Active>::iterator> &failed,
    std::vector<std::exception_ptr> &failures)
{
    const size_t layer = grp.front()->layer;

    // Advance one member by one layer; true on success.
    auto stepOne = [&](std::list<Active>::iterator it,
                       std::exception_ptr &err) {
        try {
            const std::vector<size_t> starts{0, it->x.rows()};
            it->x = step(layer, it->x, starts, mode, ln);
            return true;
        } catch (...) {
            err = std::current_exception();
            return false;
        }
    };

    bool groupOk = true;
    if (grp.size() == 1) {
        std::exception_ptr err;
        if (!stepOne(grp.front(), err)) {
            failed.push_back(grp.front());
            failures.push_back(err);
            groupOk = false;
        }
    } else {
        // Stack the group's rows and advance them in one step call.
        const size_t cols = grp.front()->x.cols();
        std::vector<size_t> starts{0};
        size_t total = 0;
        for (const auto &it : grp) {
            total += it->x.rows();
            starts.push_back(total);
        }
        Tensor stacked(total, cols);
        for (size_t i = 0; i < grp.size(); ++i)
            std::memcpy(stacked.row(starts[i]), grp[i]->x.data(),
                        grp[i]->x.rows() * cols * sizeof(float));
        Tensor out;
        bool ok = true;
        try {
            out = step(layer, stacked, starts, mode, ln);
        } catch (...) {
            ok = false;
        }
        if (ok) {
            for (size_t i = 0; i < grp.size(); ++i) {
                const size_t r = grp[i]->x.rows();
                Tensor slice(r, cols);
                std::memcpy(slice.data(), out.row(starts[i]),
                            r * cols * sizeof(float));
                grp[i]->x = std::move(slice);
            }
        } else {
            // Poison isolation: the group threw, but usually only
            // one request is poisoned. Retry each member alone so
            // only the actual thrower(s) observe the failure and
            // everyone else keeps stepping.
            groupOk = false;
            for (const auto &it : grp) {
                ++tally.isolationRetries;
                std::exception_ptr err;
                if (stepOne(it, err)) {
                    ++it->layer;
                    if (it->layer == nSteps)
                        finished.push_back(it);
                } else {
                    failed.push_back(it);
                    failures.push_back(err);
                }
            }
        }
    }

    if (groupOk) {
        for (const auto &it : grp) {
            ++it->layer;
            if (it->layer == nSteps)
                finished.push_back(it);
        }
    }

    ++tally.steps;
    if (decodeClass)
        ++tally.decodeSteps;
    else
        ++tally.prefillSteps;
    for (const auto &it : grp)
        tally.stepRows += it->x.rows();
}

void
ContinuousScheduler::stepLoop()
{
    Watchdog::Task wdt =
        Watchdog::instance().monitor("continuous-scheduler");
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        wdt.idle();
        cvWork.wait(lk, [this] {
            return stopping || !queue.empty() || !active.empty();
        });
        wdt.beat();
        if (queue.empty() && active.empty()) {
            if (stopping)
                return;
            continue; // spurious wake
        }

        // Join: arrivals enter the running batch at layer 0, FIFO,
        // up to maxBatch co-resident requests. This happens between
        // steps — never mid-step — so every step sees a consistent
        // batch. Shutdown still flushes the queue (stopping only
        // gates NEW submissions, in enqueue()). Requests whose
        // deadline already passed while queued are dropped here —
        // even when the batch is full, so a backlog of doomed work
        // can't wedge behind the maxBatch cap.
        const auto joinNow = std::chrono::steady_clock::now();
        std::vector<Pending> expiredQueued;
        while (!queue.empty()) {
            if (queue.front().deadline <= joinNow) {
                ++st.expiredRequests;
                expiredQueued.push_back(std::move(queue.front()));
                queue.pop_front();
                continue;
            }
            if (active.size() >= cfg.maxBatch)
                break;
            Pending p = std::move(queue.front());
            queue.pop_front();
            Active a;
            a.x = std::move(p.input);
            a.layer = 0;
            a.decode = cfg.decodePriority &&
                       a.x.rows() <= cfg.decodeMaxRows;
            a.result = std::move(p.result);
            a.done = std::move(p.done);
            a.seq = nextSeq++;
            a.deadline = p.deadline;
            ++st.joins;
            active.push_back(std::move(a));
        }

        // Expire mid-flight: a running request whose deadline passed
        // between iterations leaves NOW and frees its batch slot —
        // continuing a pass the client already abandoned would only
        // steal engine time from live requests. Splicing to a local
        // list removes the member from the running batch while
        // keeping it alive for its (unlocked) completion below.
        std::list<Active> expiredActive;
        for (auto it = active.begin(); it != active.end();) {
            auto cur = it++;
            if (cur->deadline <= joinNow) {
                ++st.expiredRequests;
                expiredActive.splice(expiredActive.end(), active,
                                     cur);
            }
        }
        // Expired requests left queue/active above but their
        // completions run unlocked below; drain() must not return
        // until those have fired.
        resolving += expiredQueued.size() + expiredActive.size();
        ++st.iterations;

        // Schedule this iteration: decode class first (priority),
        // then prefill under its chunk budget.
        uint64_t deferredDecode = 0, deferredPrefill = 0;
        const auto decodeSel =
            pickClass(true, cfg.decodeTokens, deferredDecode);
        const auto prefillSel =
            pickClass(false, cfg.chunkTokens, deferredPrefill);
        st.prefillDeferrals += deferredPrefill;

        // Group co-layer members so each group is one step call.
        // Deeper layers run first within a class: requests closest
        // to completion finish soonest and free their batch slot.
        auto grouped = [](const std::vector<
                           std::list<Active>::iterator> &sel) {
            std::map<size_t,
                     std::vector<std::list<Active>::iterator>,
                     std::greater<size_t>>
                g;
            for (const auto &it : sel)
                g[it->layer].push_back(it);
            return g;
        };
        const auto decodeGroups = grouped(decodeSel);
        const auto prefillGroups = grouped(prefillSel);

        // Step outside the lock: submits keep landing while the
        // engine runs. The step thread is the only mutator of
        // `active` membership and payloads, so unlocked access to
        // the selected members is safe.
        lk.unlock();
        if (!expiredQueued.empty() || !expiredActive.empty()) {
            const auto err =
                std::make_exception_ptr(DeadlineExpired());
            for (Pending &p : expiredQueued)
                finishPending(p, err);
            for (Active &a : expiredActive)
                finish(a, Tensor{}, err);
        }
        faultDelayPoint(FaultSite::SchedDelay);
        tally = {};
        std::vector<std::list<Active>::iterator> finished, failed;
        std::vector<std::list<Active>::iterator> expiredMid;
        std::vector<std::exception_ptr> failures;
        const auto t0 = std::chrono::steady_clock::now();

        // Decode class runs to COMPLETION within the iteration: its
        // rows are cheap (bounded by decodeTokens) and a short
        // request gains nothing from pacing itself layer-for-layer
        // against a long prefill. This is what caps a decode's
        // head-of-line wait at the one in-flight step plus its own
        // service time, instead of the prefill's whole pass.
        auto remaining = decodeSel;
        while (!remaining.empty()) {
            wdt.beat();
            for (const auto &g : grouped(remaining))
                runGroup(g.second, lane, true, finished, failed,
                         failures);
            std::vector<std::list<Active>::iterator> next;
            const auto roundNow = std::chrono::steady_clock::now();
            for (const auto &it : remaining) {
                if (it->layer >= nSteps)
                    continue;
                bool dead = false;
                for (const auto &f : failed)
                    if (f == it) {
                        dead = true;
                        break;
                    }
                if (dead)
                    continue;
                // Deadline check between layer steps: a decode that
                // expired mid-run stops here, partway through its
                // pass, rather than finishing layers nobody reads.
                if (it->deadline <= roundNow) {
                    expiredMid.push_back(it);
                    continue;
                }
                next.push_back(it);
            }
            remaining = std::move(next);
        }

        // Prefill advances exactly one budgeted layer slice, then
        // yields the next iteration to fresh decodes.
        for (const auto &g : prefillGroups)
            runGroup(g.second, lane, false, finished, failed,
                     failures);
        const double stepSecs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        // Leave: resolve finished, poisoned, and expired requests
        // (callbacks run unlocked), then drop them from the batch.
        for (const auto &it : finished)
            finish(*it, std::move(it->x), nullptr);
        for (size_t i = 0; i < failed.size(); ++i)
            finish(*failed[i], Tensor{}, failures[i]);
        if (!expiredMid.empty()) {
            const auto err =
                std::make_exception_ptr(DeadlineExpired());
            for (const auto &it : expiredMid)
                finish(*it, Tensor{}, err);
        }
        lk.lock();
        resolving -= expiredQueued.size() + expiredActive.size();
        st.steps += tally.steps;
        st.decodeSteps += tally.decodeSteps;
        st.prefillSteps += tally.prefillSteps;
        st.stepRows += tally.stepRows;
        st.isolationRetries += tally.isolationRetries;
        st.completed += finished.size();
        st.failedRequests += failed.size();
        st.expiredRequests += expiredMid.size();
        for (const auto &it : finished)
            active.erase(it);
        for (const auto &it : failed)
            active.erase(it);
        for (const auto &it : expiredMid)
            active.erase(it);
        if (tally.steps > 0)
            recentStep = recentStep == 0
                             ? stepSecs
                             : 0.75 * recentStep + 0.25 * stepSecs;
        cvDone.notify_all();
    }
}

} // namespace mokey
