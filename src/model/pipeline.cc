#include "model/pipeline.hh"

#include <atomic>
#include <chrono>
#include <cmath>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "tensor/ops.hh"

namespace mokey
{

namespace
{

std::atomic<bool> &
fusedEncodeSlot()
{
    static std::atomic<bool> slot{
        envFlag("MOKEY_FUSED_ENCODE", true)};
    return slot;
}

std::atomic<bool> &
graphFuseSlot()
{
    static std::atomic<bool> slot{envFlag("MOKEY_GRAPH_FUSE", true)};
    return slot;
}

} // anonymous namespace

bool
fusedActEncode()
{
    return fusedEncodeSlot().load(std::memory_order_relaxed);
}

void
setFusedActEncode(bool fused)
{
    fusedEncodeSlot().store(fused, std::memory_order_relaxed);
}

bool
graphFuse()
{
    return graphFuseSlot().load(std::memory_order_relaxed);
}

void
setGraphFuse(bool fused)
{
    graphFuseSlot().store(fused, std::memory_order_relaxed);
}

const char *
graphSiteName(size_t site)
{
    switch (site) {
    case kSiteWq:
        return "wq";
    case kSiteWk:
        return "wk";
    case kSiteWv:
        return "wv";
    case kSiteWo:
        return "wo";
    case kSiteW1:
        return "w1";
    case kSiteW2:
        return "w2";
    }
    return "?";
}

QuantizedTransformer::QuantizedTransformer(const Transformer &m,
                                           const Quantizer &q,
                                           const TensorDictConfig &cfg)
    : model(m), quantizer(q), dictCfg(cfg)
{
}

void
QuantizedTransformer::quantizeWeights()
{
    const size_t n_layers = model.config().layers;
    layers.assign(n_layers, QuantizedLayer{});
    dequantized = std::make_unique<Transformer>(model);

    // Every (layer, matrix) pair is independent — dictionary build,
    // encode, and decode all fan out across the pool.
    struct Job
    {
        const Tensor *src;
        QuantizedTensor *dst;
        Tensor *deq; ///< decoded copy for the weight-only model
    };
    std::vector<Job> jobs;
    jobs.reserve(n_layers * 6);
    for (size_t l = 0; l < n_layers; ++l) {
        const EncoderWeights &w = model.weights()[l];
        QuantizedLayer &ql = layers[l];
        EncoderWeights &dw = dequantized->weights()[l];
        jobs.push_back({&w.wq, &ql.wq, &dw.wq});
        jobs.push_back({&w.wk, &ql.wk, &dw.wk});
        jobs.push_back({&w.wv, &ql.wv, &dw.wv});
        jobs.push_back({&w.wo, &ql.wo, &dw.wo});
        jobs.push_back({&w.w1, &ql.w1, &dw.w1});
        jobs.push_back({&w.w2, &ql.w2, &dw.w2});
    }
    parallelFor(0, jobs.size(), 1, [&](size_t i) {
        const Job &job = jobs[i];
        const auto dict = quantizer.buildDictionary(*job.src, dictCfg);
        *job.dst = quantizer.encode(*job.src, dict);
        *job.deq = job.dst->decode();
        // Weights are read-only from here and every forward GEMM
        // streams their planes: derive and pin them now so no lane
        // pays the first-use build (or its single-flight lock) on
        // the serving path. Pin exactly the plane set the active
        // engine streams — 2 B/element for the counting engine, 8
        // for mag; under Auto, per weight by size (the residency
        // the per-GEMM heuristic then reads back); a later engine
        // switch upgrades on first use.
        job.dst->pinPlanes(weightPlaneSet(
            indexEngine(), job.dst->rows(), job.dst->cols()));
    });
    rebuildGraphPlan();
}

void
QuantizedTransformer::profileActivations(
    const std::vector<Tensor> &batch)
{
    ModelProfiler profiler;
    profiler.run(model, batch);
    actDicts.clear();
    for (const auto &id : profiler.ids()) {
        // ids() returns the "L<layer>.<name>" keys run() created.
        const auto dot = id.find('.');
        MOKEY_ASSERT(dot != std::string::npos && id[0] == 'L',
                     "malformed tensor id '%s'", id.c_str());
        const TensorId tid{
            static_cast<size_t>(std::stoul(id.substr(1, dot - 1))),
            id.substr(dot + 1)};
        actDicts.emplace(
            id,
            quantizer.buildDictionaryFromSamples(profiler.samples(tid),
                                                 dictCfg));
    }
    rebuildGraphPlan();
}

void
QuantizedTransformer::rebuildGraphPlan()
{
    graphPlan.reset();
    if (!ready())
        return;

    // Everything below is constant for the served model: dictionary
    // pointers (map entries are address-stable), the per-site GEMM
    // constants (dictionary products, scales, means), bias pointers,
    // and the attention epilogue scale. Hoisted once here so the
    // fused walk never re-derives them per call.
    auto plan = std::make_unique<GraphPlan>();
    const ModelConfig &cfg = model.config();
    for (size_t l = 0; l < cfg.layers; ++l) {
        LayerPlan &lp = plan->layers.emplace_back();
        lp.dx = &activationDict({l, "x"});
        lp.dq = &activationDict({l, "q"});
        lp.dk = &activationDict({l, "k"});
        lp.dv = &activationDict({l, "v"});
        lp.dp = &activationDict({l, "p"});
        lp.dctx = &activationDict({l, "ctx"});
        lp.dmidIn = &activationDict({l, "mid_in"});
        lp.dmid = &activationDict({l, "mid"});
        lp.invSqrtHd = static_cast<float>(
            1.0 / std::sqrt(static_cast<double>(cfg.headDim())));

        const EncoderWeights &w = model.weights()[l];
        const QuantizedLayer &ql = layers[l];
        const auto set = [](SitePlan &s, const QuantizedTensor &wt,
                            const std::vector<float> &b,
                            const TensorDictionary &act_dict) {
            s.weight = &wt;
            s.bias = &b;
            s.constants =
                gemmConstants(act_dict, wt.dictionary(), wt.cols());
        };
        set(lp.sites[kSiteWq], ql.wq, w.bq, *lp.dx);
        set(lp.sites[kSiteWk], ql.wk, w.bk, *lp.dx);
        set(lp.sites[kSiteWv], ql.wv, w.bv, *lp.dx);
        set(lp.sites[kSiteWo], ql.wo, w.bo, *lp.dctx);
        set(lp.sites[kSiteW1], ql.w1, w.b1, *lp.dmidIn);
        set(lp.sites[kSiteW2], ql.w2, w.b2, *lp.dmid);
    }
    graphPlan = std::move(plan);
}

bool
QuantizedTransformer::ready() const
{
    return !layers.empty() && !actDicts.empty();
}

const TensorDictionary &
QuantizedTransformer::activationDict(const TensorId &id) const
{
    const auto it = actDicts.find(id.str());
    if (it == actDicts.end())
        fatal("no activation dictionary for %s", id.str().c_str());
    return it->second;
}

QuantizedTensor
QuantizedTransformer::encodeAct(const TensorId &id, const Tensor &t,
                                const QuantizedTensor *partner,
                                Lane lane) const
{
    return encodeActDict(activationDict(id), t, partner, lane);
}

QuantizedTensor
QuantizedTransformer::encodeActDict(const TensorDictionary &dict,
                                    const Tensor &t,
                                    const QuantizedTensor *partner,
                                    Lane lane) const
{
    if (!fusedActEncode())
        return countActCodes(quantizer.encode(t, dict, lane));

    // Fused path: emit exactly the planes the downstream GEMM will
    // stream, in one walk. Under Auto the engine is resolved here
    // with the same inputs resolveIndexEngine() will see at GEMM
    // time (shape + weight-side residency), so the encode never
    // materializes a plane the GEMM ignores.
    IndexEngine engine = indexEngine();
    if (engine == IndexEngine::Auto)
        engine = partner
            ? autoEngineChoice(t.rows(), partner->rows(), t.cols(),
                               partner->planesFootprint())
            : IndexEngine::Count; // act x act: both sides cold
    QuantizedTensor q = quantizer.encodeToPlanes(
        t, dict, enginePlaneSet(engine), lane);
    // Outlier-rate counters straight from the sidecar — the fused
    // path has no code array to walk.
    actOtCodes.fetch_add(q.planesFootprint().outlierEntries,
                         std::memory_order_relaxed);
    actTotalCodes.fetch_add(q.size(), std::memory_order_relaxed);
    return q;
}

QuantizedTensor
QuantizedTransformer::countActCodes(QuantizedTensor q) const
{
    // Count privately, publish once: attention jobs of concurrent
    // batched forwards all feed these two counters.
    uint64_t ot = 0;
    for (const QCode c : q.raw())
        ot += c.isOutlier();
    actOtCodes.fetch_add(ot, std::memory_order_relaxed);
    actTotalCodes.fetch_add(q.size(), std::memory_order_relaxed);
    return q;
}

IndexEngine
QuantizedTransformer::siteEngine(const SitePlan &site, size_t aRows,
                                 uint64_t iter, bool calibrating) const
{
    const IndexEngine e = indexEngine();
    if (e != IndexEngine::Auto)
        return e;
    const int pin = site.pinned.load(std::memory_order_relaxed);
    if (pin >= 0)
        return static_cast<IndexEngine>(pin);
    if (calibrating && iter < 2)
        return iter == 0 ? IndexEngine::Mag : IndexEngine::Count;
    // Calibration off (or still warming): the exact decision table
    // the layer-at-a-time path resolves through, so the two forward
    // paths pick the same engine for every GEMM.
    return autoEngineChoice(aRows, site.weight->rows(),
                            site.constants.k,
                            site.weight->planesFootprint());
}

QuantizedTensor
QuantizedTransformer::encodeActForSite(const TensorDictionary &dict,
                                       const Tensor &t, IndexEngine e,
                                       Lane lane) const
{
    if (!fusedActEncode())
        return countActCodes(quantizer.encode(t, dict, lane));
    QuantizedTensor q =
        quantizer.encodeToPlanes(t, dict, enginePlaneSet(e), lane);
    countFusedAct(q);
    return q;
}

void
QuantizedTransformer::countFusedAct(const QuantizedTensor &q) const
{
    actOtCodes.fetch_add(q.planesFootprint().outlierEntries,
                         std::memory_order_relaxed);
    actTotalCodes.fetch_add(q.size(), std::memory_order_relaxed);
}

FusedGemmOut
QuantizedTransformer::runSite(SitePlan &site,
                              const QuantizedTensor &act,
                              IndexEngine e, const FusedRowEpilogue &epi,
                              const TensorDictionary *outDict,
                              PlaneSet outSets, bool keepDense,
                              bool calibrating, Lane lane) const
{
    // Engine-dispatch seam of the fused path (the unfused path's is
    // in indexMatmulTransB). Sits on the caller's thread, before any
    // parallelFor fan-out, so an injected throw unwinds to the
    // scheduler instead of a worker.
    faultPoint(FaultSite::EngineDispatch);
    if (!calibrating ||
        site.pinned.load(std::memory_order_relaxed) >= 0)
        return indexMatmulTransBFused(act, *site.weight, e, epi,
                                      outDict, outSets, keepDense,
                                      &site.constants, &mmStats, lane);

    // Profiling iteration: keep one-time plane derivation out of the
    // timed region so the sample reflects steady-state streaming,
    // not the first-use build the forced engine may trigger.
    site.weight->planesShared(enginePlaneSet(e));
    act.planesShared(enginePlaneSet(e));
    const auto t0 = std::chrono::steady_clock::now();
    FusedGemmOut out = indexMatmulTransBFused(
        act, *site.weight, e, epi, outDict, outSets, keepDense,
        &site.constants, &mmStats, lane);
    const int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (e == IndexEngine::Mag) {
        site.magNs.fetch_add(ns, std::memory_order_relaxed);
        site.magRuns.fetch_add(1, std::memory_order_relaxed);
    } else {
        site.countNs.fetch_add(ns, std::memory_order_relaxed);
        site.countRuns.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
}

void
QuantizedTransformer::finalizeEnginePins() const
{
    for (LayerPlan &lp : graphPlan->layers) {
        for (SitePlan &s : lp.sites) {
            if (s.pinned.load(std::memory_order_relaxed) >= 0)
                continue;
            const uint64_t mr =
                s.magRuns.load(std::memory_order_relaxed);
            const uint64_t cr =
                s.countRuns.load(std::memory_order_relaxed);
            if (mr == 0 || cr == 0)
                continue; // never saw both engines: stay undecided
            const double mag_ns = static_cast<double>(
                s.magNs.load(std::memory_order_relaxed)) / mr;
            const double cnt_ns = static_cast<double>(
                s.countNs.load(std::memory_order_relaxed)) / cr;
            s.pinned.store(static_cast<int>(mag_ns <= cnt_ns
                                                ? IndexEngine::Mag
                                                : IndexEngine::Count),
                           std::memory_order_relaxed);
        }
    }
}

std::vector<EnginePin>
QuantizedTransformer::enginePins() const
{
    std::vector<EnginePin> pins;
    if (!graphPlan)
        return pins;
    for (size_t l = 0; l < graphPlan->layers.size(); ++l) {
        const LayerPlan &lp = graphPlan->layers[l];
        for (size_t s = 0; s < kGraphSiteCount; ++s) {
            const int pin =
                lp.sites[s].pinned.load(std::memory_order_relaxed);
            EnginePin p;
            p.layer = l;
            p.site = graphSiteName(s);
            p.pinned = pin >= 0;
            p.engine = pin >= 0 ? static_cast<IndexEngine>(pin)
                                : indexEngine();
            pins.push_back(std::move(p));
        }
    }
    return pins;
}

void
QuantizedTransformer::pinEngines(const std::vector<EnginePin> &pins) const
{
    MOKEY_ASSERT(graphPlan,
                 "pinEngines() before the graph plan exists (run "
                 "quantizeWeights + profileActivations first)");
    for (const EnginePin &p : pins) {
        MOKEY_ASSERT(p.engine != IndexEngine::Auto,
                     "cannot pin a site to Auto");
        MOKEY_ASSERT(p.layer < graphPlan->layers.size(),
                     "pin for layer %zu of a %zu-layer graph",
                     p.layer, graphPlan->layers.size());
        LayerPlan &lp = graphPlan->layers[p.layer];
        bool matched = false;
        for (size_t s = 0; s < kGraphSiteCount; ++s) {
            if (p.site == graphSiteName(s)) {
                lp.sites[s].pinned.store(
                    static_cast<int>(p.engine),
                    std::memory_order_relaxed);
                matched = true;
            }
        }
        MOKEY_ASSERT(matched, "unknown graph site '%s'",
                     p.site.c_str());
    }
}

Tensor
QuantizedTransformer::forwardLayerQuantized(
    size_t l, const Tensor &input, const std::vector<size_t> &starts,
    Lane lane) const
{
    const ModelConfig &cfg = model.config();
    const EncoderWeights &w = model.weights()[l];
    const QuantizedLayer &ql = layers[l];
    const size_t total = input.rows();
    const size_t hd = cfg.headDim();
    const size_t batch = starts.size() - 1;

    // QKV projections in the index domain: the whole batch is
    // re-quantized at once (the fused encode is parallel over the
    // stacked rows and emits planes directly) and multiplied in one
    // engine call per weight matrix. wq stands in for wk/wv as the
    // Auto partner — all three share shape and pinned plane set.
    const QuantizedTensor qx =
        encodeAct({l, "x"}, input, &ql.wq, lane);
    Tensor q = indexMatmulTransB(qx, ql.wq, &mmStats, lane);
    Tensor k = indexMatmulTransB(qx, ql.wk, &mmStats, lane);
    Tensor v = indexMatmulTransB(qx, ql.wv, &mmStats, lane);
    addBias(q, w.bq);
    addBias(k, w.bk);
    addBias(v, w.bv);

    // Attention: activation x activation GEMMs also run on indexes.
    const auto &dq = activationDict({l, "q"});
    const auto &dk = activationDict({l, "k"});
    const auto &dv = activationDict({l, "v"});
    const auto &dp = activationDict({l, "p"});

    // One job per (sequence, head) pair: attention never crosses a
    // sequence boundary, and every job writes a disjoint block of
    // ctx — with the stats counters atomic the jobs finally fan out
    // over the pool.
    Tensor ctx(total, cfg.hidden);
    const auto inv_sqrt =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(hd)));
    parallelFor(lane, 0, batch * cfg.heads, 1, [&](size_t job) {
        const size_t b = job / cfg.heads;
        const size_t h = job % cfg.heads;
        const size_t r0 = starts[b];
        const size_t seq = starts[b + 1] - r0;
        Tensor qh(seq, hd), kh(seq, hd), vht(hd, seq);
        for (size_t r = 0; r < seq; ++r) {
            for (size_t c = 0; c < hd; ++c) {
                qh.at(r, c) = q.at(r0 + r, h * hd + c);
                kh.at(r, c) = k.at(r0 + r, h * hd + c);
                vht.at(c, r) = v.at(r0 + r, h * hd + c);
            }
        }
        Tensor scores = indexMatmulTransB(
            encodeActDict(dq, qh, nullptr, lane),
            encodeActDict(dk, kh, nullptr, lane), &mmStats, lane);
        scale(scores, inv_sqrt);
        softmaxRows(scores);
        const Tensor out = indexMatmulTransB(
            encodeActDict(dp, scores, nullptr, lane),
            encodeActDict(dv, vht, nullptr, lane), &mmStats, lane);
        for (size_t r = 0; r < seq; ++r)
            for (size_t c = 0; c < hd; ++c)
                ctx.at(r0 + r, h * hd + c) = out.at(r, c);
    });

    Tensor attn = indexMatmulTransB(
        encodeAct({l, "ctx"}, ctx, &ql.wo, lane), ql.wo, &mmStats,
        lane);
    addBias(attn, w.bo);
    Tensor res1 = add(attn, input);
    layerNormRows(res1);

    Tensor mid = indexMatmulTransB(
        encodeAct({l, "mid_in"}, res1, &ql.w1, lane), ql.w1,
        &mmStats, lane);
    addBias(mid, w.b1);
    gelu(mid);
    Tensor out = indexMatmulTransB(
        encodeAct({l, "mid"}, mid, &ql.w2, lane), ql.w2, &mmStats,
        lane);
    addBias(out, w.b2);
    Tensor res2 = add(out, res1);
    layerNormRows(res2);
    return res2;
}

Tensor
QuantizedTransformer::fusedLayerStep(
    size_t l, const Tensor &x, QuantizedTensor &qx, bool haveQx,
    bool emitNext, const std::vector<size_t> &starts, bool calib,
    uint64_t iter, Lane lane) const
{
    GraphPlan &plan = *graphPlan;
    const ModelConfig &cfg = model.config();
    const size_t total = x.rows();
    const size_t hd = cfg.headDim();
    const size_t batch = starts.size() - 1;
    {
        LayerPlan &lp = plan.layers[l];
        SitePlan &sq = lp.sites[kSiteWq];
        SitePlan &sk = lp.sites[kSiteWk];
        SitePlan &sv = lp.sites[kSiteWv];
        SitePlan &so = lp.sites[kSiteWo];
        SitePlan &s1 = lp.sites[kSiteW1];
        SitePlan &s2 = lp.sites[kSiteW2];

        const IndexEngine eq = siteEngine(sq, total, iter, calib);
        if (!haveQx) {
            // Whole-graph entry (layer 0) and every step-wise call:
            // encode the float rows as this layer's x planes. On the
            // whole-graph path later layers receive their planes from
            // the previous w2 GEMM instead; both routes produce the
            // same bits (the fused-emission contract).
            qx = encodeActForSite(*lp.dx, x, eq, lane);
        }

        // QKV: heads are gathered in float, so these three fuse the
        // bias epilogue and read the hoisted constants/fold sums but
        // keep dense outputs.
        const auto bias_epi = [](const SitePlan &s) {
            return FusedRowEpilogue(
                [&s](size_t, float *vals, size_t n) {
                    addBiasRow(vals, s.bias->data(), n);
                });
        };
        FusedGemmOut qo = runSite(sq, qx, eq, bias_epi(sq), nullptr,
                                  PlaneSet::Bytes, true, calib, lane);
        FusedGemmOut ko = runSite(sk, qx,
                                  siteEngine(sk, total, iter, calib),
                                  bias_epi(sk), nullptr,
                                  PlaneSet::Bytes, true, calib, lane);
        FusedGemmOut vo = runSite(sv, qx,
                                  siteEngine(sv, total, iter, calib),
                                  bias_epi(sv), nullptr,
                                  PlaneSet::Bytes, true, calib, lane);
        const Tensor &q = qo.dense;
        const Tensor &k = ko.dense;
        const Tensor &v = vo.dense;

        // Attention, one job per (sequence, head) as in the unfused
        // path; the score GEMM fuses scale + softmax + the
        // probability re-quantization into its band walk, so the
        // score matrix never exists as a standalone float tensor.
        Tensor ctx(total, cfg.hidden);
        const float inv_sqrt = lp.invSqrtHd;
        parallelFor(lane, 0, batch * cfg.heads, 1, [&](size_t job) {
            const size_t b = job / cfg.heads;
            const size_t h = job % cfg.heads;
            const size_t r0 = starts[b];
            const size_t seq = starts[b + 1] - r0;
            Tensor qh(seq, hd), kh(seq, hd), vht(hd, seq);
            for (size_t r = 0; r < seq; ++r) {
                for (size_t c = 0; c < hd; ++c) {
                    qh.at(r, c) = q.at(r0 + r, h * hd + c);
                    kh.at(r, c) = k.at(r0 + r, h * hd + c);
                    vht.at(c, r) = v.at(r0 + r, h * hd + c);
                }
            }
            // act x act GEMMs: K varies with seq, so no hoisted
            // constants; engines resolve exactly as the unfused
            // path's resolveIndexEngine() calls do.
            const QuantizedTensor qqh =
                encodeActDict(*lp.dq, qh, nullptr, lane);
            const QuantizedTensor qkh =
                encodeActDict(*lp.dk, kh, nullptr, lane);
            const IndexEngine ep = indexEngine() == IndexEngine::Auto
                ? IndexEngine::Count
                : indexEngine();
            FusedGemmOut sc = indexMatmulTransBFused(
                qqh, qkh, resolveIndexEngine(qqh, qkh),
                [inv_sqrt](size_t, float *vals, size_t n) {
                    scaleRow(vals, n, inv_sqrt);
                    softmaxRow(vals, n);
                },
                lp.dp, enginePlaneSet(ep), false, nullptr, &mmStats,
                lane);
            countFusedAct(sc.planes);
            const QuantizedTensor qvht =
                encodeActDict(*lp.dv, vht, nullptr, lane);
            const FusedGemmOut out = indexMatmulTransBFused(
                sc.planes, qvht, resolveIndexEngine(sc.planes, qvht),
                nullptr, nullptr, PlaneSet::Bytes, true, nullptr,
                &mmStats, lane);
            for (size_t r = 0; r < seq; ++r)
                for (size_t c = 0; c < hd; ++c)
                    ctx.at(r0 + r, h * hd + c) = out.dense.at(r, c);
        });

        // wo: bias + residual + layer-norm fused, output emitted
        // straight as the w1 GEMM's mid_in planes (and kept dense
        // for the second residual).
        const IndexEngine ewo = siteEngine(so, total, iter, calib);
        const QuantizedTensor qctx =
            encodeActForSite(*lp.dctx, ctx, ewo, lane);
        const IndexEngine ew1 = siteEngine(s1, total, iter, calib);
        const Tensor &res_in = x;
        FusedGemmOut r1 = runSite(
            so, qctx, ewo,
            [&so, &res_in](size_t i, float *vals, size_t n) {
                addBiasRow(vals, so.bias->data(), n);
                addRow(vals, vals, res_in.row(i), n);
                layerNormRow(vals, n);
            },
            lp.dmidIn, enginePlaneSet(ew1), true, calib, lane);
        countFusedAct(r1.planes);

        // w1: bias + GELU fused, planes-only output — the mid float
        // tensor is gone entirely on this path.
        const IndexEngine ew2 = siteEngine(s2, total, iter, calib);
        FusedGemmOut rm = runSite(
            s1, r1.planes, ew1,
            [&s1](size_t, float *vals, size_t n) {
                addBiasRow(vals, s1.bias->data(), n);
                geluRow(vals, n);
            },
            lp.dmid, enginePlaneSet(ew2), false, calib, lane);
        countFusedAct(rm.planes);

        // w2: bias + residual + layer-norm fused; when the caller
        // continues plane-to-plane (whole-graph walk, any layer but
        // the last), the output is also encoded as the next layer's
        // x planes against that layer's dictionary and engine.
        const TensorDictionary *next_dx =
            emitNext ? plan.layers[l + 1].dx : nullptr;
        const IndexEngine enx = emitNext
            ? siteEngine(plan.layers[l + 1].sites[kSiteWq], total,
                         iter, calib)
            : IndexEngine::Count;
        const Tensor &res1 = r1.dense;
        FusedGemmOut r2 = runSite(
            s2, rm.planes, ew2,
            [&s2, &res1](size_t i, float *vals, size_t n) {
                addBiasRow(vals, s2.bias->data(), n);
                addRow(vals, vals, res1.row(i), n);
                layerNormRow(vals, n);
            },
            next_dx, enginePlaneSet(enx), true, calib, lane);
        if (emitNext)
            countFusedAct(r2.planes);
        qx = std::move(r2.planes);
        return std::move(r2.dense);
    }
}

Tensor
QuantizedTransformer::forwardGraphFused(
    const Tensor &input, const std::vector<size_t> &starts,
    Lane lane) const
{
    GraphPlan &plan = *graphPlan;
    const ModelConfig &cfg = model.config();
    // Self-calibration only makes sense when the engine choice is
    // actually open (MOKEY_ENGINE=auto); under a fixed engine the
    // timed iterations would just measure what is already decided.
    const bool calib =
        engineCalibration() && indexEngine() == IndexEngine::Auto;
    const uint64_t iter =
        calib ? plan.iteration.load(std::memory_order_relaxed) : 0;

    // The carried state between layers: the float rows (residual
    // input of the next attention block) and the same values already
    // encoded as the next layer's x planes — emitted by the previous
    // layer's w2 fused GEMM, so no float tensor is re-read for
    // quantization between layers.
    Tensor x = input;
    QuantizedTensor qx;
    for (size_t l = 0; l < cfg.layers; ++l)
        x = fusedLayerStep(l, x, qx, /*haveQx=*/l > 0,
                           /*emitNext=*/l + 1 < cfg.layers, starts,
                           calib, iter, lane);

    if (calib) {
        const uint64_t done =
            plan.iteration.fetch_add(1, std::memory_order_relaxed) + 1;
        if (done >= 2)
            finalizeEnginePins();
    }
    return x;
}

Tensor
QuantizedTransformer::forwardStep(size_t layer,
                                  const Tensor &stacked,
                                  const std::vector<size_t> &starts,
                                  QuantMode mode, Lane lane) const
{
    MOKEY_ASSERT(!layers.empty(),
                 "quantizeWeights() must run before forwardStep()");
    MOKEY_ASSERT(layer < model.config().layers,
                 "step layer %zu out of range (model has %zu)",
                 layer, model.config().layers);
    MOKEY_ASSERT(!starts.empty() &&
                     starts.back() == stacked.rows(),
                 "starts must delimit the stacked rows");
    faultPoint(FaultSite::StepThrow);
    faultDelayPoint(FaultSite::StepDelay);
    if (mode == QuantMode::WeightsOnly)
        return dequantized->forwardLayerBatch(layer, stacked, starts,
                                              lane);

    MOKEY_ASSERT(!actDicts.empty(),
                 "profileActivations() must run before full "
                 "quantized inference");
    if (graphFuse() && graphPlan) {
        // Step-wise calls never advance calibration: the timed
        // iterations are whole-graph passes, and a step's membership
        // can change between layers, which would skew the profile.
        QuantizedTensor qx;
        return fusedLayerStep(layer, stacked, qx, /*haveQx=*/false,
                              /*emitNext=*/false, starts,
                              /*calib=*/false, /*iter=*/0, lane);
    }
    return forwardLayerQuantized(layer, stacked, starts, lane);
}

Tensor
QuantizedTransformer::forward(const Tensor &input, QuantMode mode,
                              Lane lane) const
{
    MOKEY_ASSERT(!layers.empty(),
                 "quantizeWeights() must run before forward()");
    if (mode == QuantMode::WeightsOnly)
        return dequantized->forward(input, nullptr, nullptr, lane);

    MOKEY_ASSERT(!actDicts.empty(),
                 "profileActivations() must run before full "
                 "quantized inference");
    const std::vector<size_t> starts{0, input.rows()};
    if (graphFuse() && graphPlan)
        return forwardGraphFused(input, starts, lane);
    Tensor x = input;
    for (size_t l = 0; l < model.config().layers; ++l)
        x = forwardLayerQuantized(l, x, starts, lane);
    return x;
}

std::vector<Tensor>
QuantizedTransformer::forwardBatch(const std::vector<Tensor> &inputs,
                                   QuantMode mode, Lane lane) const
{
    MOKEY_ASSERT(!layers.empty(),
                 "quantizeWeights() must run before forwardBatch()");
    if (inputs.empty())
        return {};
    if (mode == QuantMode::WeightsOnly)
        return dequantized->forwardBatch(inputs, lane);

    MOKEY_ASSERT(!actDicts.empty(),
                 "profileActivations() must run before full "
                 "quantized inference");
    return mapStackedBatch(
        inputs,
        [this, lane](const Tensor &stacked,
                     const std::vector<size_t> &starts) {
            if (graphFuse() && graphPlan)
                return forwardGraphFused(stacked, starts, lane);
            Tensor x = stacked;
            for (size_t l = 0; l < model.config().layers; ++l)
                x = forwardLayerQuantized(l, x, starts, lane);
            return x;
        });
}

double
QuantizedTransformer::weightOutlierFraction() const
{
    size_t ot = 0, total = 0;
    for (const auto &ql : layers) {
        for (const QuantizedTensor *t :
             {&ql.wq, &ql.wk, &ql.wv, &ql.wo, &ql.w1, &ql.w2}) {
            for (const QCode c : t->raw())
                ot += c.isOutlier();
            total += t->size();
        }
    }
    return total ? static_cast<double>(ot) /
        static_cast<double>(total) : 0.0;
}

double
QuantizedTransformer::activationOutlierFraction() const
{
    const uint64_t total =
        actTotalCodes.load(std::memory_order_relaxed);
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               actOtCodes.load(std::memory_order_relaxed)) /
        static_cast<double>(total);
}

} // namespace mokey
