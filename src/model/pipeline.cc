#include "model/pipeline.hh"

#include <atomic>
#include <cmath>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "tensor/ops.hh"

namespace mokey
{

namespace
{

std::atomic<bool> &
fusedEncodeSlot()
{
    static std::atomic<bool> slot{
        envFlag("MOKEY_FUSED_ENCODE", true)};
    return slot;
}

} // anonymous namespace

bool
fusedActEncode()
{
    return fusedEncodeSlot().load(std::memory_order_relaxed);
}

void
setFusedActEncode(bool fused)
{
    fusedEncodeSlot().store(fused, std::memory_order_relaxed);
}

QuantizedTransformer::QuantizedTransformer(const Transformer &m,
                                           const Quantizer &q,
                                           const TensorDictConfig &cfg)
    : model(m), quantizer(q), dictCfg(cfg)
{
}

void
QuantizedTransformer::quantizeWeights()
{
    const size_t n_layers = model.config().layers;
    layers.assign(n_layers, QuantizedLayer{});
    dequantized = std::make_unique<Transformer>(model);

    // Every (layer, matrix) pair is independent — dictionary build,
    // encode, and decode all fan out across the pool.
    struct Job
    {
        const Tensor *src;
        QuantizedTensor *dst;
        Tensor *deq; ///< decoded copy for the weight-only model
    };
    std::vector<Job> jobs;
    jobs.reserve(n_layers * 6);
    for (size_t l = 0; l < n_layers; ++l) {
        const EncoderWeights &w = model.weights()[l];
        QuantizedLayer &ql = layers[l];
        EncoderWeights &dw = dequantized->weights()[l];
        jobs.push_back({&w.wq, &ql.wq, &dw.wq});
        jobs.push_back({&w.wk, &ql.wk, &dw.wk});
        jobs.push_back({&w.wv, &ql.wv, &dw.wv});
        jobs.push_back({&w.wo, &ql.wo, &dw.wo});
        jobs.push_back({&w.w1, &ql.w1, &dw.w1});
        jobs.push_back({&w.w2, &ql.w2, &dw.w2});
    }
    parallelFor(0, jobs.size(), 1, [&](size_t i) {
        const Job &job = jobs[i];
        const auto dict = quantizer.buildDictionary(*job.src, dictCfg);
        *job.dst = quantizer.encode(*job.src, dict);
        *job.deq = job.dst->decode();
        // Weights are read-only from here and every forward GEMM
        // streams their planes: derive and pin them now so no lane
        // pays the first-use build (or its single-flight lock) on
        // the serving path. Pin exactly the plane set the active
        // engine streams — 2 B/element for the counting engine, 8
        // for mag; under Auto, per weight by size (the residency
        // the per-GEMM heuristic then reads back); a later engine
        // switch upgrades on first use.
        job.dst->pinPlanes(weightPlaneSet(
            indexEngine(), job.dst->rows(), job.dst->cols()));
    });
}

void
QuantizedTransformer::profileActivations(
    const std::vector<Tensor> &batch)
{
    ModelProfiler profiler;
    profiler.run(model, batch);
    actDicts.clear();
    for (const auto &id : profiler.ids()) {
        // ids() returns the "L<layer>.<name>" keys run() created.
        const auto dot = id.find('.');
        MOKEY_ASSERT(dot != std::string::npos && id[0] == 'L',
                     "malformed tensor id '%s'", id.c_str());
        const TensorId tid{
            static_cast<size_t>(std::stoul(id.substr(1, dot - 1))),
            id.substr(dot + 1)};
        actDicts.emplace(
            id,
            quantizer.buildDictionaryFromSamples(profiler.samples(tid),
                                                 dictCfg));
    }
}

bool
QuantizedTransformer::ready() const
{
    return !layers.empty() && !actDicts.empty();
}

const TensorDictionary &
QuantizedTransformer::activationDict(const TensorId &id) const
{
    const auto it = actDicts.find(id.str());
    if (it == actDicts.end())
        fatal("no activation dictionary for %s", id.str().c_str());
    return it->second;
}

QuantizedTensor
QuantizedTransformer::encodeAct(const TensorId &id, const Tensor &t,
                                const QuantizedTensor *partner,
                                Lane lane) const
{
    return encodeActDict(activationDict(id), t, partner, lane);
}

QuantizedTensor
QuantizedTransformer::encodeActDict(const TensorDictionary &dict,
                                    const Tensor &t,
                                    const QuantizedTensor *partner,
                                    Lane lane) const
{
    if (!fusedActEncode())
        return countActCodes(quantizer.encode(t, dict, lane));

    // Fused path: emit exactly the planes the downstream GEMM will
    // stream, in one walk. Under Auto the engine is resolved here
    // with the same inputs resolveIndexEngine() will see at GEMM
    // time (shape + weight-side residency), so the encode never
    // materializes a plane the GEMM ignores.
    IndexEngine engine = indexEngine();
    if (engine == IndexEngine::Auto)
        engine = partner
            ? autoEngineChoice(t.rows(), partner->rows(), t.cols(),
                               partner->planesFootprint())
            : IndexEngine::Count; // act x act: both sides cold
    QuantizedTensor q = quantizer.encodeToPlanes(
        t, dict, enginePlaneSet(engine), lane);
    // Outlier-rate counters straight from the sidecar — the fused
    // path has no code array to walk.
    actOtCodes.fetch_add(q.planesFootprint().outlierEntries,
                         std::memory_order_relaxed);
    actTotalCodes.fetch_add(q.size(), std::memory_order_relaxed);
    return q;
}

QuantizedTensor
QuantizedTransformer::countActCodes(QuantizedTensor q) const
{
    // Count privately, publish once: attention jobs of concurrent
    // batched forwards all feed these two counters.
    uint64_t ot = 0;
    for (const QCode c : q.raw())
        ot += c.isOutlier();
    actOtCodes.fetch_add(ot, std::memory_order_relaxed);
    actTotalCodes.fetch_add(q.size(), std::memory_order_relaxed);
    return q;
}

Tensor
QuantizedTransformer::forwardLayerQuantized(
    size_t l, const Tensor &input, const std::vector<size_t> &starts,
    Lane lane) const
{
    const ModelConfig &cfg = model.config();
    const EncoderWeights &w = model.weights()[l];
    const QuantizedLayer &ql = layers[l];
    const size_t total = input.rows();
    const size_t hd = cfg.headDim();
    const size_t batch = starts.size() - 1;

    // QKV projections in the index domain: the whole batch is
    // re-quantized at once (the fused encode is parallel over the
    // stacked rows and emits planes directly) and multiplied in one
    // engine call per weight matrix. wq stands in for wk/wv as the
    // Auto partner — all three share shape and pinned plane set.
    const QuantizedTensor qx =
        encodeAct({l, "x"}, input, &ql.wq, lane);
    Tensor q = indexMatmulTransB(qx, ql.wq, &mmStats, lane);
    Tensor k = indexMatmulTransB(qx, ql.wk, &mmStats, lane);
    Tensor v = indexMatmulTransB(qx, ql.wv, &mmStats, lane);
    addBias(q, w.bq);
    addBias(k, w.bk);
    addBias(v, w.bv);

    // Attention: activation x activation GEMMs also run on indexes.
    const auto &dq = activationDict({l, "q"});
    const auto &dk = activationDict({l, "k"});
    const auto &dv = activationDict({l, "v"});
    const auto &dp = activationDict({l, "p"});

    // One job per (sequence, head) pair: attention never crosses a
    // sequence boundary, and every job writes a disjoint block of
    // ctx — with the stats counters atomic the jobs finally fan out
    // over the pool.
    Tensor ctx(total, cfg.hidden);
    const auto inv_sqrt =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(hd)));
    parallelFor(lane, 0, batch * cfg.heads, 1, [&](size_t job) {
        const size_t b = job / cfg.heads;
        const size_t h = job % cfg.heads;
        const size_t r0 = starts[b];
        const size_t seq = starts[b + 1] - r0;
        Tensor qh(seq, hd), kh(seq, hd), vht(hd, seq);
        for (size_t r = 0; r < seq; ++r) {
            for (size_t c = 0; c < hd; ++c) {
                qh.at(r, c) = q.at(r0 + r, h * hd + c);
                kh.at(r, c) = k.at(r0 + r, h * hd + c);
                vht.at(c, r) = v.at(r0 + r, h * hd + c);
            }
        }
        Tensor scores = indexMatmulTransB(
            encodeActDict(dq, qh, nullptr, lane),
            encodeActDict(dk, kh, nullptr, lane), &mmStats, lane);
        scale(scores, inv_sqrt);
        softmaxRows(scores);
        const Tensor out = indexMatmulTransB(
            encodeActDict(dp, scores, nullptr, lane),
            encodeActDict(dv, vht, nullptr, lane), &mmStats, lane);
        for (size_t r = 0; r < seq; ++r)
            for (size_t c = 0; c < hd; ++c)
                ctx.at(r0 + r, h * hd + c) = out.at(r, c);
    });

    Tensor attn = indexMatmulTransB(
        encodeAct({l, "ctx"}, ctx, &ql.wo, lane), ql.wo, &mmStats,
        lane);
    addBias(attn, w.bo);
    Tensor res1 = add(attn, input);
    layerNormRows(res1);

    Tensor mid = indexMatmulTransB(
        encodeAct({l, "mid_in"}, res1, &ql.w1, lane), ql.w1,
        &mmStats, lane);
    addBias(mid, w.b1);
    gelu(mid);
    Tensor out = indexMatmulTransB(
        encodeAct({l, "mid"}, mid, &ql.w2, lane), ql.w2, &mmStats,
        lane);
    addBias(out, w.b2);
    Tensor res2 = add(out, res1);
    layerNormRows(res2);
    return res2;
}

Tensor
QuantizedTransformer::forward(const Tensor &input, QuantMode mode,
                              Lane lane) const
{
    MOKEY_ASSERT(!layers.empty(),
                 "quantizeWeights() must run before forward()");
    if (mode == QuantMode::WeightsOnly)
        return dequantized->forward(input, nullptr, nullptr, lane);

    MOKEY_ASSERT(!actDicts.empty(),
                 "profileActivations() must run before full "
                 "quantized inference");
    Tensor x = input;
    const std::vector<size_t> starts{0, input.rows()};
    for (size_t l = 0; l < model.config().layers; ++l)
        x = forwardLayerQuantized(l, x, starts, lane);
    return x;
}

std::vector<Tensor>
QuantizedTransformer::forwardBatch(const std::vector<Tensor> &inputs,
                                   QuantMode mode, Lane lane) const
{
    MOKEY_ASSERT(!layers.empty(),
                 "quantizeWeights() must run before forwardBatch()");
    if (inputs.empty())
        return {};
    if (mode == QuantMode::WeightsOnly)
        return dequantized->forwardBatch(inputs, lane);

    MOKEY_ASSERT(!actDicts.empty(),
                 "profileActivations() must run before full "
                 "quantized inference");
    return mapStackedBatch(
        inputs,
        [this, lane](const Tensor &stacked,
                     const std::vector<size_t> &starts) {
            Tensor x = stacked;
            for (size_t l = 0; l < model.config().layers; ++l)
                x = forwardLayerQuantized(l, x, starts, lane);
            return x;
        });
}

double
QuantizedTransformer::weightOutlierFraction() const
{
    size_t ot = 0, total = 0;
    for (const auto &ql : layers) {
        for (const QuantizedTensor *t :
             {&ql.wq, &ql.wk, &ql.wv, &ql.wo, &ql.w1, &ql.w2}) {
            for (const QCode c : t->raw())
                ot += c.isOutlier();
            total += t->size();
        }
    }
    return total ? static_cast<double>(ot) /
        static_cast<double>(total) : 0.0;
}

double
QuantizedTransformer::activationOutlierFraction() const
{
    const uint64_t total =
        actTotalCodes.load(std::memory_order_relaxed);
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               actOtCodes.load(std::memory_order_relaxed)) /
        static_cast<double>(total);
}

} // namespace mokey
