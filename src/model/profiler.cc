#include "model/profiler.hh"

#include "common/logging.hh"

namespace mokey
{

ActivationProfile::ActivationProfile(size_t capacity, uint64_t seed)
    : cap(capacity), seen(0), rng(seed)
{
    buf.reserve(capacity);
}

void
ActivationProfile::observe(const Tensor &t)
{
    for (float v : t.raw()) {
        ++seen;
        if (buf.size() < cap) {
            buf.push_back(v);
        } else {
            // Reservoir sampling keeps a uniform subsample.
            const uint64_t j = rng.uniformInt(seen);
            if (j < cap)
                buf[j] = v;
        }
    }
}

ModelProfiler::ModelProfiler(size_t capacity_per_tensor)
    : cap(capacity_per_tensor)
{
}

void
ModelProfiler::run(const Transformer &model,
                   const std::vector<Tensor> &batch)
{
    for (const Tensor &input : batch) {
        model.forward(input, [this](const TensorId &id,
                                    const Tensor &t) {
            auto it = profiles.find(id.str());
            if (it == profiles.end()) {
                it = profiles
                    .emplace(id.str(), ActivationProfile(cap))
                    .first;
            }
            it->second.observe(t);
        });
    }
}

const std::vector<float> &
ModelProfiler::samples(const TensorId &id) const
{
    const auto it = profiles.find(id.str());
    if (it == profiles.end())
        fatal("tensor %s was never profiled", id.str().c_str());
    return it->second.samples();
}

bool
ModelProfiler::has(const TensorId &id) const
{
    return profiles.count(id.str()) > 0;
}

std::vector<std::string>
ModelProfiler::ids() const
{
    std::vector<std::string> out;
    out.reserve(profiles.size());
    for (const auto &kv : profiles)
        out.push_back(kv.first);
    return out;
}

} // namespace mokey
