/**
 * @file
 * Continuous iteration-level batch scheduler — the serving front end
 * that re-forms the running batch every step.
 *
 * The model is a bidirectional encoder (full softmax over the whole
 * sequence), so the indivisible scheduling unit is one encoder LAYER
 * over a full sequence, not one generated token. A request's state
 * between steps is its float activation rows plus the index of the
 * next layer to apply; QuantizedTransformer::forwardStep() advances
 * any stacked group of co-layer requests by one layer, bit-identical
 * to the one-shot forward()/forwardBatch() by the step composition
 * contract (see pipeline.hh).
 *
 * Two-class policy (the tentpole of this scheduler):
 *
 *  - Requests with at most decodeMaxRows rows form the DECODE class
 *    (the latency-critical short requests of a serving mix); all
 *    others are PREFILL. With decodePriority off, everything is
 *    prefill and the scheduler degrades to plain FIFO iteration-
 *    level batching.
 *
 *  - Every iteration, decode-class requests are stacked and advanced
 *    FIRST, metered by decodeTokens stacked rows per iteration (at
 *    least one always advances) — and the selected decodes run to
 *    COMPLETION within the iteration, since their rows are cheap. A
 *    decode request therefore never waits behind a long prefill for
 *    more than the one in-flight layer step — run-to-completion
 *    batching would park it for the prefill's whole pass.
 *
 *  - Prefill advancement is metered by chunkTokens stacked rows per
 *    iteration, FIFO, at least one per iteration (no starvation):
 *    a long prefill advances one budgeted layer slice at a time,
 *    interleaving with decode steps, instead of monopolising the
 *    engine. Requests held back by the budget count as deferrals.
 *
 *  - Arrivals join the running batch at layer 0 between steps (up to
 *    maxBatch co-resident requests); finished requests leave and
 *    free their slot immediately — no batch-boundary barriers.
 *
 * Knobs: MOKEY_CHUNK_TOKENS overrides chunkTokens and
 * MOKEY_DECODE_PRIORITY overrides decodePriority at construction.
 *
 * Failure semantics: a step whose forward throws fails only the
 * requests that actually poison it — the group's members are retried
 * individually, the thrower(s) observe the exception through their
 * future/callback, and everyone else keeps stepping. Like
 * BatchScheduler, submit() on a stopped scheduler is rejected
 * gracefully and stop() flushes queued work before joining.
 */

#ifndef MOKEY_MODEL_CONTINUOUS_SCHEDULER_HH
#define MOKEY_MODEL_CONTINUOUS_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "model/pipeline.hh"
#include "model/scheduler.hh"

namespace mokey
{

/** Iteration-level scheduling knobs. */
struct ContinuousSchedulerConfig
{
    /** Maximum co-resident requests in the running batch. */
    size_t maxBatch = 16;

    /** Requests with <= this many rows are decode class. */
    size_t decodeMaxRows = 4;

    /** Decode-class stacked-row budget per iteration (>= 1 decode
     *  request always advances). */
    size_t decodeTokens = 64;

    /** Prefill-class stacked-row budget per iteration (>= 1 prefill
     *  always advances; MOKEY_CHUNK_TOKENS overrides). */
    size_t chunkTokens = 128;

    /** Schedule decode ahead of prefill each iteration; off melts
     *  both classes into one FIFO (MOKEY_DECODE_PRIORITY overrides). */
    bool decodePriority = true;
};

/** Counters exposed for tests and monitoring. */
struct ContinuousSchedulerStats
{
    uint64_t requests = 0;         ///< submitted
    uint64_t rejected = 0;         ///< submits refused (stopped/empty)
    uint64_t completed = 0;        ///< requests finished successfully
    uint64_t failedRequests = 0;   ///< requests that observed a throw
    uint64_t iterations = 0;       ///< scheduler loop iterations
    uint64_t steps = 0;            ///< forwardStep group calls
    uint64_t decodeSteps = 0;      ///< ... of decode-class groups
    uint64_t prefillSteps = 0;     ///< ... of prefill-class groups
    uint64_t stepRows = 0;         ///< stacked rows across steps
    uint64_t joins = 0;            ///< admissions into running batch
    uint64_t prefillDeferrals = 0; ///< prefills budget held back
    uint64_t isolationRetries = 0; ///< individual retries after throw
    uint64_t expiredRequests = 0;  ///< dropped: deadline passed
};

/**
 * The one-layer step a continuous scheduler dispatches: stacked
 * co-layer rows in, stacked output rows (same shape) out. May throw —
 * the scheduler isolates the poisoned request(s), never crashes.
 */
using StepForwardFn = std::function<Tensor(
    size_t layer, const Tensor &stacked,
    const std::vector<size_t> &starts, QuantMode mode, Lane lane)>;

/** Iteration-level two-class scheduler for one pipeline. */
class ContinuousScheduler : public ServingScheduler
{
  public:
    /**
     * @param engine quantized pipeline (must be ready() for the
     *               requested mode and outlive the scheduler)
     * @param mode   quantization mode every step runs under
     * @param cfg    scheduling knobs (env overrides applied)
     */
    ContinuousScheduler(const QuantizedTransformer &engine,
                        QuantMode mode,
                        ContinuousSchedulerConfig cfg = {});

    /**
     * Step onto an arbitrary one-layer forward of @p steps layers.
     * Serving stacks use this to interpose (and tests to inject
     * failures); the pipeline constructor is the common wrapper.
     */
    ContinuousScheduler(StepForwardFn step, size_t steps,
                        QuantMode mode,
                        ContinuousSchedulerConfig cfg = {});

    /** Flushes the queue, finishes active requests, joins. */
    ~ContinuousScheduler();

    ContinuousScheduler(const ContinuousScheduler &) = delete;
    ContinuousScheduler &operator=(const ContinuousScheduler &) =
        delete;

    /**
     * Queue one request (seq x hidden embedded input). The future
     * resolves to the full forward result once the request has
     * stepped through every layer, or carries the exception that
     * poisoned it. Rejections (stopping, empty input) resolve to a
     * std::runtime_error instead of panicking. A non-default
     * @p deadline that passes while the request is queued OR between
     * layer steps resolves to DeadlineExpired — a doomed prefill
     * frees its batch slot mid-flight instead of finishing a pass
     * nobody will read.
     */
    std::future<Tensor> submit(Tensor input,
                               Deadline deadline = kNoDeadline);

    using ServingScheduler::submit;

    /**
     * Callback-style submit (the event-loop front-end's path).
     * Returns false without invoking @p done when stopped/stopping
     * or the input is empty; otherwise @p done fires exactly once
     * from the step thread. The callback must not block for long and
     * must not re-enter the scheduler.
     */
    bool submit(Tensor input, BatchCompletion done,
                Deadline deadline) override;

    /** Block until every submitted request has completed. */
    void drain() override;

    /**
     * Stop accepting work, flush queued + active requests, join the
     * step thread. Idempotent; the destructor calls it.
     */
    void stop() override;

    /** Requests admitted but not yet completed (queued + active). */
    size_t queueDepth() const override;

    /**
     * EWMA of the recent full-pass service time: per-iteration step
     * wall time smoothed, scaled by the layer count — what a fresh
     * request should expect end to end. Zero until the first
     * iteration that ran steps.
     */
    double recentBatchSeconds() const override;

    /** EWMA of recent per-iteration step wall time (seconds). */
    double recentStepSeconds() const;

    ContinuousSchedulerStats stats() const;

    /** Effective knobs after env overrides (tests assert these). */
    const ContinuousSchedulerConfig &config() const { return cfg; }

  private:
    /** One co-resident request and its between-steps state. */
    struct Active
    {
        Tensor x;     ///< current activation rows (float domain)
        size_t layer; ///< next layer to apply
        bool decode;  ///< class at admission (row count is stable)
        std::promise<Tensor> result; ///< unused when done is set
        BatchCompletion done;        ///< callback path when non-null
        uint64_t seq;                ///< admission order (FIFO ties)
        Deadline deadline = kNoDeadline;
    };

    struct Pending
    {
        Tensor input;
        std::promise<Tensor> result;
        BatchCompletion done;
        Deadline deadline = kNoDeadline;
    };

    void stepLoop();

    /** Select up to @p budget stacked rows of @p cls members in
     *  admission order (>= 1 when any exist); call with mu held. */
    std::vector<std::list<Active>::iterator>
    pickClass(bool decodeClass, size_t budget, uint64_t &deferred);

    /** Advance one co-layer group by one layer (outside mu),
     *  isolating throwers; fills @p finished / @p failed. */
    void runGroup(const std::vector<std::list<Active>::iterator> &grp,
                  Lane lane, bool decodeClass,
                  std::vector<std::list<Active>::iterator> &finished,
                  std::vector<std::list<Active>::iterator> &failed,
                  std::vector<std::exception_ptr> &failures);

    bool enqueue(Pending &&req);

    /** Resolve one request with a result or an error, never throw. */
    static void finish(Active &a, Tensor &&out,
                       const std::exception_ptr &err);

    /** Resolve one still-queued request with an error (expiry). */
    static void finishPending(Pending &p,
                              const std::exception_ptr &err);

    const StepForwardFn step;
    const size_t nSteps;
    const QuantMode mode;
    ContinuousSchedulerConfig cfg; ///< env-resolved at construction

    mutable std::mutex mu;
    std::condition_variable cvWork; ///< queue grew / stopping
    std::condition_variable cvDone; ///< request finished
    std::deque<Pending> queue;
    std::list<Active> active; ///< running batch (step thread edits)
    size_t resolving = 0; ///< expired, completion still running (mu)
    uint64_t nextSeq = 0;
    bool stopping = false;
    bool joinedFlag = false;
    ContinuousSchedulerStats st;
    double recentStep = 0; ///< EWMA of iteration step seconds (mu)

    /** Per-iteration counters the step thread fills while unlocked,
     *  merged into st under mu at the end of each iteration. */
    struct IterationTally
    {
        uint64_t steps = 0;
        uint64_t decodeSteps = 0;
        uint64_t prefillSteps = 0;
        uint64_t stepRows = 0;
        uint64_t isolationRetries = 0;
    };
    IterationTally tally; ///< step thread only, never under mu

    Lane lane;
    std::thread stepper;
};

} // namespace mokey

#endif // MOKEY_MODEL_CONTINUOUS_SCHEDULER_HH
