/**
 * @file
 * Weighted least-squares fit of the model y(i) = a^i + b (Fig. 3).
 *
 * The paper fits an exponential curve to the positive half of the
 * Golden Dictionary using MATLAB's curve-fitting toolbox with weights
 * doubling towards zero (unit weight at the outer bin, 2^7 at the
 * innermost). For fixed @c a the optimal @c b is closed-form, so the
 * two-parameter problem reduces to a 1-D minimization over @c a solved
 * by golden-section search — no MATLAB needed.
 */

#ifndef MOKEY_FIT_EXPFIT_HH
#define MOKEY_FIT_EXPFIT_HH

#include <cstddef>
#include <vector>

namespace mokey
{

/** Result of an exponential fit. */
struct ExpFit
{
    double a;        ///< base of the exponential
    double b;        ///< additive offset
    double residual; ///< weighted sum of squared errors

    /** Evaluate the fitted model at integer index @p i. */
    double eval(int i) const;
};

/**
 * Fit y(i) = a^i + b to @p ys at indexes 0..ys.size()-1.
 *
 * @param ys      target values, one per integer index
 * @param weights per-point weights; if empty, the paper's doubling
 *                scheme (2^(n-1) at index 0 down to 1 at index n-1)
 *                is used
 * @param a_lo    lower bracket for the base
 * @param a_hi    upper bracket for the base
 */
ExpFit fitExponential(const std::vector<double> &ys,
                      std::vector<double> weights = {},
                      double a_lo = 1.0001, double a_hi = 4.0);

/** The paper's doubling weight scheme for @p n points. */
std::vector<double> paperFitWeights(size_t n);

} // namespace mokey

#endif // MOKEY_FIT_EXPFIT_HH
