#include "fit/expfit.hh"

#include <cmath>

#include "common/logging.hh"

namespace mokey
{

double
ExpFit::eval(int i) const
{
    return std::pow(a, i) + b;
}

std::vector<double>
paperFitWeights(size_t n)
{
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i)
        w[i] = std::ldexp(1.0, static_cast<int>(n - 1 - i));
    return w;
}

namespace
{

/**
 * Weighted SSE of the model for a given base, with the offset chosen
 * optimally in closed form. Also returns that offset.
 */
double
objective(double a, const std::vector<double> &ys,
          const std::vector<double> &ws, double &b_out)
{
    double sw = 0.0, swr = 0.0;
    std::vector<double> powers(ys.size());
    double p = 1.0;
    for (size_t i = 0; i < ys.size(); ++i) {
        powers[i] = p;
        sw += ws[i];
        swr += ws[i] * (ys[i] - p);
        p *= a;
    }
    const double b = swr / sw;
    double sse = 0.0;
    for (size_t i = 0; i < ys.size(); ++i) {
        const double e = powers[i] + b - ys[i];
        sse += ws[i] * e * e;
    }
    b_out = b;
    return sse;
}

} // anonymous namespace

ExpFit
fitExponential(const std::vector<double> &ys,
               std::vector<double> weights, double a_lo, double a_hi)
{
    MOKEY_ASSERT(ys.size() >= 2, "need at least two points to fit");
    if (weights.empty())
        weights = paperFitWeights(ys.size());
    MOKEY_ASSERT(weights.size() == ys.size(),
                 "weight/point count mismatch");

    // Golden-section search over the base.
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double lo = a_lo, hi = a_hi;
    double x1 = hi - phi * (hi - lo);
    double x2 = lo + phi * (hi - lo);
    double b1, b2;
    double f1 = objective(x1, ys, weights, b1);
    double f2 = objective(x2, ys, weights, b2);
    for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
        if (f1 < f2) {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = objective(x1, ys, weights, b1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = objective(x2, ys, weights, b2);
        }
    }

    ExpFit fit;
    fit.a = 0.5 * (lo + hi);
    fit.residual = objective(fit.a, ys, weights, fit.b);
    return fit;
}

} // namespace mokey
