/**
 * @file
 * Dense float reference kernels: GEMM, softmax, layer-norm, GELU.
 *
 * These are the FP32 reference implementations that (a) drive the
 * synthetic transformer models and (b) serve as the gold output that
 * the index-domain fixed-point pipeline is verified against.
 */

#ifndef MOKEY_TENSOR_OPS_HH
#define MOKEY_TENSOR_OPS_HH

#include <functional>
#include <vector>

#include "common/parallel.hh"
#include "tensor/tensor.hh"

namespace mokey
{

// The GEMMs fan out over the multi-lane executor; @p lane selects
// which lane the loop occupies (results are lane-independent).

/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b, Lane lane = {});

/** C = A (m x k) * B^T where B is (n x k). */
Tensor matmulTransB(const Tensor &a, const Tensor &b, Lane lane = {});

// Single-row kernels: the per-row bodies of the whole-tensor ops
// below, exposed so the fused GEMM epilogues (model/pipeline) apply
// them to one band-resident row at a time with arithmetic identical
// to the layer-at-a-time path — bit-parity between the two forward
// paths reduces to "same kernel, same row".

/** One row of addBias(): row[c] += bias[c]. */
void addBiasRow(float *row, const float *bias, size_t n);

/** One row of softmaxRows(). */
void softmaxRow(float *row, size_t n);

/** One row of scale(): row[c] *= s. */
void scaleRow(float *row, size_t n, float s);

/** One row of layerNormRows() (gain 1, bias 0). */
void layerNormRow(float *row, size_t n, float eps = 1e-5f);

/** One row of gelu() (exact, erf-based). */
void geluRow(float *row, size_t n);

/** One row of add(): dst[c] = a[c] + b[c]; dst may alias a or b. */
void addRow(float *dst, const float *a, const float *b, size_t n);

/** In place: add a per-column bias vector to every row. */
void addBias(Tensor &t, const std::vector<float> &bias);

/** In place: row-wise softmax. */
void softmaxRows(Tensor &t);

/** In place: scale every element. */
void scale(Tensor &t, float s);

/** In place: layer normalization over each row (gain 1, bias 0). */
void layerNormRows(Tensor &t, float eps = 1e-5f);

/** In place: exact (erf-based) GELU. */
void gelu(Tensor &t);

/** Element-wise sum (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b);

/** Max |a - b| over all elements (shapes must match). */
double maxAbsDiff(const Tensor &a, const Tensor &b);

/** Mean |a - b| over all elements (shapes must match). */
double meanAbsDiff(const Tensor &a, const Tensor &b);

/** Frobenius norm of @p a. */
double frobeniusNorm(const Tensor &a);

/**
 * Stack matrices of equal width into one tall matrix — the batched
 * serving row space (B x T rows). Row order follows @p parts order.
 */
Tensor concatRows(const std::vector<const Tensor *> &parts);

/**
 * Split a stacked matrix back into blocks of @p row_counts rows
 * (must sum to stacked.rows()).
 */
std::vector<Tensor> splitRows(const Tensor &stacked,
                              const std::vector<size_t> &row_counts);

/**
 * Run @p fn over the stacked row space of a ragged batch: stack the
 * (non-empty) inputs, call fn(stacked, starts) where @p starts holds
 * the B+1 row offsets delimiting the sequences, and split fn's
 * result back into per-input tensors. The shared plumbing of every
 * batched forward pass.
 */
std::vector<Tensor> mapStackedBatch(
    const std::vector<Tensor> &inputs,
    const std::function<Tensor(const Tensor &,
                               const std::vector<size_t> &)> &fn);

} // namespace mokey

#endif // MOKEY_TENSOR_OPS_HH
