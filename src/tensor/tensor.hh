/**
 * @file
 * A minimal dense row-major float matrix.
 *
 * Transformer inference decomposes into 2-D GEMMs once the batch and
 * head dimensions are folded into rows, so a matrix (rather than a
 * general N-D tensor) is the right primitive for this reproduction.
 */

#ifndef MOKEY_TENSOR_TENSOR_HH
#define MOKEY_TENSOR_TENSOR_HH

#include <cstddef>
#include <vector>

namespace mokey
{

/** Dense row-major matrix of 32 b floats. */
class Tensor
{
  public:
    /** An empty 0x0 tensor. */
    Tensor();

    /** A zero-initialized rows x cols tensor. */
    Tensor(size_t rows, size_t cols);

    /** Wrap existing data (size must be rows*cols). */
    Tensor(size_t rows, size_t cols, std::vector<float> data);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return buf.size(); }

    float &at(size_t r, size_t c) { return buf[r * nCols + c]; }
    float at(size_t r, size_t c) const { return buf[r * nCols + c]; }

    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }

    std::vector<float> &raw() { return buf; }
    const std::vector<float> &raw() const { return buf; }

    /** Pointer to the start of row @p r. */
    float *row(size_t r) { return buf.data() + r * nCols; }
    const float *row(size_t r) const { return buf.data() + r * nCols; }

    /** Transposed copy. */
    Tensor transposed() const;

    /** Memory footprint at @p bits_per_value bits per element. */
    size_t footprintBytes(size_t bits_per_value) const;

  private:
    size_t nRows;
    size_t nCols;
    std::vector<float> buf;
};

} // namespace mokey

#endif // MOKEY_TENSOR_TENSOR_HH
