#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mokey
{

namespace
{

/**
 * Row grain that keeps tiny GEMMs on the calling thread: only fan
 * out when a chunk carries at least ~32k multiply-adds.
 */
size_t
rowGrain(size_t flops_per_row)
{
    return std::max<size_t>(1, (size_t{1} << 15) / (flops_per_row + 1));
}

} // anonymous namespace

Tensor
matmul(const Tensor &a, const Tensor &b, Lane lane)
{
    MOKEY_ASSERT(a.cols() == b.rows(), "matmul shape mismatch "
                 "%zux%zu * %zux%zu", a.rows(), a.cols(), b.rows(),
                 b.cols());
    Tensor c(a.rows(), b.cols());
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    parallelFor(lane, 0, m, rowGrain(n * k), [&](size_t i) {
        float *crow = c.row(i);
        const float *arow = a.row(i);
        for (size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            const float *brow = b.row(p);
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    });
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b, Lane lane)
{
    MOKEY_ASSERT(a.cols() == b.cols(), "matmulTransB shape mismatch");
    Tensor c(a.rows(), b.rows());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    // Column pairs share the A-row stream (one load/convert feeds
    // two accumulations); which function handles an output depends
    // only on (j, n), never on threading, so results stay
    // bit-identical across thread counts.
    parallelFor(lane, 0, m, rowGrain(n * k), [&](size_t i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        size_t j = 0;
        for (; j + 2 <= n; j += 2) {
            double r0, r1;
            dotFD2(arow, b.row(j), b.row(j + 1), k, &r0, &r1);
            crow[j] = static_cast<float>(r0);
            crow[j + 1] = static_cast<float>(r1);
        }
        if (j < n)
            crow[j] = static_cast<float>(dotFD(arow, b.row(j), k));
    });
    return c;
}

void
addBiasRow(float *row, const float *bias, size_t n)
{
    for (size_t c = 0; c < n; ++c)
        row[c] += bias[c];
}

void
softmaxRow(float *row, size_t n)
{
    const float mx = *std::max_element(row, row + n);
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c) {
        row[c] = std::exp(row[c] - mx);
        sum += row[c];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (size_t c = 0; c < n; ++c)
        row[c] *= inv;
}

void
scaleRow(float *row, size_t n, float s)
{
    for (size_t c = 0; c < n; ++c)
        row[c] *= s;
}

void
layerNormRow(float *row, size_t n, float eps)
{
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c)
        sum += row[c];
    const double mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t c = 0; c < n; ++c) {
        const double d = row[c] - mean;
        var += d * d;
    }
    var /= static_cast<double>(n);
    const double inv = 1.0 / std::sqrt(var + eps);
    for (size_t c = 0; c < n; ++c)
        row[c] = static_cast<float>((row[c] - mean) * inv);
}

void
geluRow(float *row, size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        const double x = row[c];
        row[c] = static_cast<float>(
            0.5 * x * (1.0 + std::erf(x * M_SQRT1_2)));
    }
}

void
addRow(float *dst, const float *a, const float *b, size_t n)
{
    for (size_t c = 0; c < n; ++c)
        dst[c] = a[c] + b[c];
}

void
addBias(Tensor &t, const std::vector<float> &bias)
{
    MOKEY_ASSERT(bias.size() == t.cols(), "bias length mismatch");
    for (size_t r = 0; r < t.rows(); ++r)
        addBiasRow(t.row(r), bias.data(), t.cols());
}

void
softmaxRows(Tensor &t)
{
    for (size_t r = 0; r < t.rows(); ++r)
        softmaxRow(t.row(r), t.cols());
}

void
scale(Tensor &t, float s)
{
    for (size_t r = 0; r < t.rows(); ++r)
        scaleRow(t.row(r), t.cols(), s);
}

void
layerNormRows(Tensor &t, float eps)
{
    for (size_t r = 0; r < t.rows(); ++r)
        layerNormRow(t.row(r), t.cols(), eps);
}

void
gelu(Tensor &t)
{
    for (size_t r = 0; r < t.rows(); ++r)
        geluRow(t.row(r), t.cols());
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    MOKEY_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "add shape mismatch");
    Tensor c(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        addRow(c.row(r), a.row(r), b.row(r), a.cols());
    return c;
}

double
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    MOKEY_ASSERT(a.size() == b.size(), "diff shape mismatch");
    double mx = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        mx = std::max(mx, std::abs(static_cast<double>(a.raw()[i]) -
                                   b.raw()[i]));
    return mx;
}

double
meanAbsDiff(const Tensor &a, const Tensor &b)
{
    MOKEY_ASSERT(a.size() == b.size(), "diff shape mismatch");
    MOKEY_ASSERT(a.size() > 0, "diff of empty tensors");
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += std::abs(static_cast<double>(a.raw()[i]) - b.raw()[i]);
    return sum / static_cast<double>(a.size());
}

double
frobeniusNorm(const Tensor &a)
{
    double sum = 0.0;
    for (float v : a.raw())
        sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

Tensor
concatRows(const std::vector<const Tensor *> &parts)
{
    MOKEY_ASSERT(!parts.empty(), "concat of zero tensors");
    const size_t cols = parts[0]->cols();
    size_t rows = 0;
    for (const Tensor *p : parts) {
        MOKEY_ASSERT(p->cols() == cols,
                     "concat width mismatch: %zu vs %zu", p->cols(),
                     cols);
        rows += p->rows();
    }
    Tensor out(rows, cols);
    float *dst = out.data();
    for (const Tensor *p : parts) {
        std::copy(p->raw().begin(), p->raw().end(), dst);
        dst += p->size();
    }
    return out;
}

std::vector<Tensor>
splitRows(const Tensor &stacked, const std::vector<size_t> &row_counts)
{
    std::vector<Tensor> parts;
    parts.reserve(row_counts.size());
    size_t r0 = 0;
    for (const size_t rows : row_counts) {
        MOKEY_ASSERT(r0 + rows <= stacked.rows(),
                     "split exceeds stacked rows");
        Tensor t(rows, stacked.cols());
        std::copy(stacked.row(r0), stacked.row(r0) + rows *
                  stacked.cols(), t.data());
        parts.push_back(std::move(t));
        r0 += rows;
    }
    MOKEY_ASSERT(r0 == stacked.rows(),
                 "split row counts sum %zu != %zu", r0,
                 stacked.rows());
    return parts;
}

std::vector<Tensor>
mapStackedBatch(const std::vector<Tensor> &inputs,
                const std::function<Tensor(
                    const Tensor &, const std::vector<size_t> &)> &fn)
{
    if (inputs.empty())
        return {};
    std::vector<const Tensor *> parts;
    std::vector<size_t> starts{0}, counts;
    parts.reserve(inputs.size());
    for (const Tensor &in : inputs) {
        MOKEY_ASSERT(in.rows() > 0, "empty sequence in batch");
        parts.push_back(&in);
        counts.push_back(in.rows());
        starts.push_back(starts.back() + in.rows());
    }
    return splitRows(fn(concatRows(parts), starts), counts);
}

} // namespace mokey
