#include "tensor/tensor.hh"

#include "common/logging.hh"

namespace mokey
{

Tensor::Tensor() : nRows(0), nCols(0) {}

Tensor::Tensor(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), buf(rows * cols, 0.0f)
{
}

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : nRows(rows), nCols(cols), buf(std::move(data))
{
    MOKEY_ASSERT(buf.size() == rows * cols,
                 "tensor data size %zu != %zux%zu", buf.size(), rows,
                 cols);
}

Tensor
Tensor::transposed() const
{
    Tensor t(nCols, nRows);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

size_t
Tensor::footprintBytes(size_t bits_per_value) const
{
    return (buf.size() * bits_per_value + 7) / 8;
}

} // namespace mokey
