/**
 * @file
 * Minimal blocking HTTP/1.1 client with keep-alive reuse — the test,
 * load-generator, and example-side counterpart of the epoll server.
 * One HttpClient == one connection: request() serializes, sends,
 * and blocks until the full response (Content-Length or chunked) is
 * parsed. A connection the server closed between requests (idle
 * timeout, drain) is transparently re-dialed once; dials() exposes
 * how often that happened so tests can assert keep-alive reuse.
 */

#ifndef MOKEY_NET_HTTP_CLIENT_HH
#define MOKEY_NET_HTTP_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/http.hh"

namespace mokey::net
{

/**
 * Bounded-retry policy for requestWithRetry(): transport failures
 * and (optionally) 503 responses are retried with exponential
 * backoff, honoring the server's Retry-After hint when present
 * (clamped to maxBackoff so a hostile or confused server cannot
 * park the client for minutes).
 */
struct HttpRetryPolicy
{
    /** Total attempts including the first (>= 1). */
    int attempts = 3;

    /** Backoff before the first retry; doubles (multiplier) after
     *  each, capped at maxBackoff. */
    std::chrono::milliseconds initialBackoff{50};
    double multiplier = 2.0;
    std::chrono::milliseconds maxBackoff{2000};

    /** Sleep the server's Retry-After (seconds, clamped to
     *  maxBackoff) instead of the exponential step when a 503
     *  carries one. */
    bool honorRetryAfter = true;

    /** Retry 503 responses (sheds/draining) — not just transport
     *  errors. The final attempt's 503 is returned, not thrown. */
    bool retryOn503 = true;

    /** Per-call send/receive timeout; 0 keeps the constructor's. */
    std::chrono::milliseconds perCallTimeout{0};
};

/** Blocking single-connection HTTP client. */
class HttpClient
{
  public:
    /**
     * @param host    IPv4 address, e.g. "127.0.0.1"
     * @param port    server port
     * @param timeout per-syscall send/receive timeout (a hung server
     *                throws instead of hanging the caller forever)
     */
    HttpClient(std::string host, uint16_t port,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(30000));

    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Send one request and block for its response. Throws
     * std::runtime_error on connect/transport/parse failure. The
     * connection is kept alive for the next call unless the server
     * said Connection: close. A non-zero @p perCallTimeout overrides
     * the constructor's send/receive timeout for this call only —
     * how a caller with its own deadline keeps one slow request
     * from eating its whole budget.
     */
    HttpResponse request(const std::string &method,
                         const std::string &target,
                         const std::vector<HttpHeader> &headers = {},
                         const std::string &body = {},
                         std::chrono::milliseconds perCallTimeout =
                             std::chrono::milliseconds(0));

    /**
     * request() wrapped in bounded retry per @p policy: transport
     * errors (connect refused, reset, timeout) and — when
     * policy.retryOn503 — 503 responses are retried with
     * exponential backoff, sleeping the server's Retry-After hint
     * instead when one is present (clamped to policy.maxBackoff).
     * The last attempt's failure propagates: a transport error
     * throws, a 503 is returned for the caller to inspect.
     */
    HttpResponse
    requestWithRetry(const std::string &method,
                     const std::string &target,
                     const std::vector<HttpHeader> &headers = {},
                     const std::string &body = {},
                     const HttpRetryPolicy &policy = {});

    HttpResponse get(const std::string &target);

    HttpResponse post(const std::string &target,
                      const std::string &body,
                      const std::string &contentType =
                          "application/octet-stream");

    /** True while a socket is open to the server. */
    bool connected() const { return fd >= 0; }

    /** Drop the connection (next request re-dials). */
    void close();

    /** Times a TCP connection was established — 1 after the first
     *  request when keep-alive reuse works. */
    uint64_t dials() const { return dialCount; }

    /** Retries requestWithRetry() has performed (sleep-then-resend
     *  cycles, both transport and 503). */
    uint64_t retries() const { return retryCount; }

  private:
    void ensureConnected();
    void applyTimeout(std::chrono::milliseconds t);
    bool sendAll(const std::string &bytes);
    HttpResponse readResponse();

    std::string host;
    uint16_t port;
    std::chrono::milliseconds timeout;
    std::chrono::milliseconds appliedTimeout{0}; ///< on current fd
    int fd = -1;
    uint64_t dialCount = 0;
    uint64_t retryCount = 0;
};

} // namespace mokey::net

#endif // MOKEY_NET_HTTP_CLIENT_HH
