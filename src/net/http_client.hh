/**
 * @file
 * Minimal blocking HTTP/1.1 client with keep-alive reuse — the test,
 * load-generator, and example-side counterpart of the epoll server.
 * One HttpClient == one connection: request() serializes, sends,
 * and blocks until the full response (Content-Length or chunked) is
 * parsed. A connection the server closed between requests (idle
 * timeout, drain) is transparently re-dialed once; dials() exposes
 * how often that happened so tests can assert keep-alive reuse.
 */

#ifndef MOKEY_NET_HTTP_CLIENT_HH
#define MOKEY_NET_HTTP_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/http.hh"

namespace mokey::net
{

/** Blocking single-connection HTTP client. */
class HttpClient
{
  public:
    /**
     * @param host    IPv4 address, e.g. "127.0.0.1"
     * @param port    server port
     * @param timeout per-syscall send/receive timeout (a hung server
     *                throws instead of hanging the caller forever)
     */
    HttpClient(std::string host, uint16_t port,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(30000));

    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Send one request and block for its response. Throws
     * std::runtime_error on connect/transport/parse failure. The
     * connection is kept alive for the next call unless the server
     * said Connection: close.
     */
    HttpResponse request(const std::string &method,
                         const std::string &target,
                         const std::vector<HttpHeader> &headers = {},
                         const std::string &body = {});

    HttpResponse get(const std::string &target);

    HttpResponse post(const std::string &target,
                      const std::string &body,
                      const std::string &contentType =
                          "application/octet-stream");

    /** True while a socket is open to the server. */
    bool connected() const { return fd >= 0; }

    /** Drop the connection (next request re-dials). */
    void close();

    /** Times a TCP connection was established — 1 after the first
     *  request when keep-alive reuse works. */
    uint64_t dials() const { return dialCount; }

  private:
    void ensureConnected();
    bool sendAll(const std::string &bytes);
    HttpResponse readResponse();

    std::string host;
    uint16_t port;
    std::chrono::milliseconds timeout;
    int fd = -1;
    uint64_t dialCount = 0;
};

} // namespace mokey::net

#endif // MOKEY_NET_HTTP_CLIENT_HH
