#include "net/socket_server.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include "common/fault.hh"
#include "common/logging.hh"

namespace mokey::net
{

namespace
{

/**
 * SIGTERM -> beginDrain() plumbing. The handler only performs
 * async-signal-safe work: an atomic load, an atomic store, and a
 * write(2) to the server's wake eventfd.
 */
std::atomic<SocketServer *> g_sigtermServer{nullptr};

void
sigtermHandler(int)
{
    SocketServer *s = g_sigtermServer.load(std::memory_order_acquire);
    if (s != nullptr)
        s->beginDrain();
}

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

SocketServer::SocketServer(SocketServerConfig c, RequestHandler h)
    : cfg(std::move(c)), handler(std::move(h))
{
    MOKEY_ASSERT(static_cast<bool>(handler),
                 "SocketServer needs a request handler");
}

SocketServer::~SocketServer()
{
    stop();
}

void
SocketServer::start()
{
    MOKEY_ASSERT(!running.load(), "start() called twice");

    listenFd = ::socket(AF_INET,
                        SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (listenFd < 0)
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd);
        listenFd = -1;
        throw std::runtime_error("bad bind address: " +
                                 cfg.bindAddress);
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd, cfg.backlog) < 0) {
        const int err = errno;
        ::close(listenFd);
        listenFd = -1;
        errno = err;
        throwErrno("bind/listen " + cfg.bindAddress + ":" +
                   std::to_string(cfg.port));
    }
    socklen_t alen = sizeof addr;
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                  &alen);
    boundPort = ntohs(addr.sin_port);

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epollFd < 0 || wakeFd < 0)
        throwErrno("epoll_create1/eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev);
    ev.data.fd = wakeFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev);

    if (cfg.drainOnSigterm) {
        g_sigtermServer.store(this, std::memory_order_release);
        struct sigaction sa{};
        sa.sa_handler = sigtermHandler;
        ::sigaction(SIGTERM, &sa, nullptr);
    }

    running.store(true);
    loopThread = std::thread([this] { loop(); });
}

void
SocketServer::beginDrain()
{
    drainFlag.store(true, std::memory_order_release);
    const uint64_t tick = 1;
    if (wakeFd >= 0)
        (void)!::write(wakeFd, &tick, sizeof tick);
}

void
SocketServer::waitDrained()
{
    std::unique_lock<std::mutex> lk(doneMu);
    doneCv.wait(lk, [this] { return loopDone.load(); });
}

void
SocketServer::stop()
{
    stopFlag.store(true);
    const uint64_t tick = 1;
    if (wakeFd >= 0)
        (void)!::write(wakeFd, &tick, sizeof tick);
    if (loopThread.joinable())
        loopThread.join();
    SocketServer *self = this;
    g_sigtermServer.compare_exchange_strong(self, nullptr);
    for (int *fd : {&epollFd, &wakeFd, &listenFd}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    running.store(false);
}

bool
SocketServer::respond(uint64_t connId, std::string bytes,
                      bool close_after)
{
    {
        std::lock_guard<std::mutex> lk(postMu);
        posts.push_back(
            Post{connId, std::move(bytes), true, close_after});
    }
    const uint64_t tick = 1;
    if (wakeFd >= 0)
        (void)!::write(wakeFd, &tick, sizeof tick);
    return !loopDone.load();
}

bool
SocketServer::stream(uint64_t connId, std::string bytes)
{
    {
        std::lock_guard<std::mutex> lk(postMu);
        posts.push_back(Post{connId, std::move(bytes), false, false});
    }
    const uint64_t tick = 1;
    if (wakeFd >= 0)
        (void)!::write(wakeFd, &tick, sizeof tick);
    return !loopDone.load();
}

SocketServerStats
SocketServer::stats() const
{
    SocketServerStats s;
    s.accepted = counters.accepted.load();
    s.refused = counters.refused.load();
    s.peerRefused = counters.peerRefused.load();
    s.closed = counters.closed.load();
    s.requests = counters.requests.load();
    s.badRequests = counters.badRequests.load();
    s.drainSheds = counters.drainSheds.load();
    s.idleCloses = counters.idleCloses.load();
    s.droppedResponses = counters.droppedResponses.load();
    s.bytesIn = counters.bytesIn.load();
    s.bytesOut = counters.bytesOut.load();
    return s;
}

// ---- loop internals (loop thread only below this line) --------------

void
SocketServer::loop()
{
    std::vector<int> deadFds; // collected per iteration, reaped last
    auto reap = [this, &deadFds] {
        for (const int fd : deadFds) {
            auto it = connsByFd.find(fd);
            if (it == connsByFd.end())
                continue;
            connsById.erase(it->second->id);
            auto peer = peerConns.find(it->second->peerAddr);
            if (peer != peerConns.end() && --peer->second == 0)
                peerConns.erase(peer);
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
            ::close(fd);
            connsByFd.erase(it);
            ++counters.closed;
        }
        deadFds.clear();
        connCount.store(connsByFd.size());
    };

    epoll_event evs[64];
    for (;;) {
        if (stopFlag.load())
            break;
        if (drainFlag.load(std::memory_order_acquire) && !draining)
            enterDrain();
        if (draining && connsByFd.empty())
            break;

        const int n = ::epoll_wait(epollFd, evs, 64, 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("epoll_wait: %s", std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == wakeFd) {
                uint64_t drainTicks = 0;
                (void)!::read(wakeFd, &drainTicks,
                              sizeof drainTicks);
                continue;
            }
            if (fd == listenFd) {
                acceptReady();
                continue;
            }
            auto it = connsByFd.find(fd);
            if (it == connsByFd.end())
                continue;
            Conn &c = *it->second;
            if (c.fd < 0)
                continue; // already marked dead this iteration
            if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                // Peer is gone; flush is pointless.
                closeConn(c);
                deadFds.push_back(fd);
                continue;
            }
            if (evs[i].events & EPOLLIN)
                connReadable(c);
            if (c.fd >= 0 && (evs[i].events & EPOLLOUT))
                connWritable(c);
            if (c.fd < 0)
                deadFds.push_back(fd);
        }

        applyPosts();
        if (cfg.idleTimeout.count() > 0)
            sweepIdle();
        for (const auto &kv : connsByFd)
            if (kv.second->fd < 0)
                deadFds.push_back(kv.first);
        reap();
    }

    // Loop exit: anything still open goes down hard (drain exits
    // with the map already empty; stop() means "now").
    for (const auto &kv : connsByFd) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, kv.first, nullptr);
        ::close(kv.first);
        ++counters.closed;
    }
    connsByFd.clear();
    connsById.clear();
    peerConns.clear();
    connCount.store(0);

    {
        std::lock_guard<std::mutex> lk(doneMu);
        loopDone.store(true);
    }
    doneCv.notify_all();
}

void
SocketServer::enterDrain()
{
    draining = true;
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;
    }
    // Idle keep-alive connections close right away; busy ones close
    // once their in-flight response flushes (maybeClose).
    for (const auto &kv : connsByFd)
        maybeClose(*kv.second);
}

void
SocketServer::acceptReady()
{
    for (;;) {
        sockaddr_in peer{};
        socklen_t plen = sizeof peer;
        const int fd = ::accept4(
            listenFd, reinterpret_cast<sockaddr *>(&peer), &plen,
            SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return; // EAGAIN or transient error: nothing to accept
        if (connsByFd.size() >= cfg.maxConnections) {
            // Refuse above the cap: better an immediate close than
            // an unbounded connection table. Count before closing:
            // the close is observable (RST) before a counter bumped
            // after it, so stats readers reacting to the close must
            // already see the refusal.
            ++counters.refused;
            ::close(fd);
            continue;
        }
        const uint32_t peerAddr = peer.sin_addr.s_addr;
        if (cfg.maxConnectionsPerPeer > 0 &&
            peerConns[peerAddr] >= cfg.maxConnectionsPerPeer) {
            // Fairness: requests are serialized per connection, so
            // capping a client's connections caps its share of the
            // admission queue. Count before closing (same ordering
            // argument as above).
            ++counters.peerRefused;
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Conn>(cfg.limits);
        conn->id = nextConnId++;
        conn->fd = fd;
        conn->peerAddr = peerAddr;
        peerConns[peerAddr] += 1;
        conn->lastActive = std::chrono::steady_clock::now();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev);
        connsById[conn->id] = conn.get();
        connsByFd[fd] = std::move(conn);
        ++counters.accepted;
        connCount.store(connsByFd.size());
    }
}

void
SocketServer::updateInterest(Conn &c)
{
    if (c.fd < 0)
        return;
    epoll_event ev{};
    // EPOLLIN stays masked while the parser holds a full request's
    // worth of unparsed bytes (see SocketServerConfig::limits);
    // level-triggered epoll would spin hot otherwise.
    const bool wantRead =
        !c.readClosed && c.parser.buffered() < recvCap();
    ev.events = (wantRead ? static_cast<uint32_t>(EPOLLIN) : 0u) |
                (c.outOff < c.out.size()
                     ? static_cast<uint32_t>(EPOLLOUT)
                     : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(epollFd, EPOLL_CTL_MOD, c.fd, &ev);
}

void
SocketServer::closeConn(Conn &c)
{
    // Marks only; the fd is reaped at the end of the loop iteration
    // so no live reference to the Conn dangles mid-dispatch.
    c.fd = -1;
}

void
SocketServer::maybeClose(Conn &c)
{
    if (c.fd < 0 || c.inflight != 0 || c.outOff < c.out.size())
        return;
    if (c.wantClose || c.readClosed || draining)
        closeConn(c);
}

void
SocketServer::connReadable(Conn &c)
{
    // Chaos seam: a sockreset fault models the peer (or a middlebox)
    // yanking the connection mid-read — the server must shrug, free
    // the connection, and keep serving everyone else.
    if (faultFire(FaultSite::SockReset)) {
        closeConn(c);
        return;
    }
    char buf[16 << 10];
    // Stop pulling bytes once the parser buffers a full request's
    // worth: while a request is in flight the parser is not advanced
    // (strict serialization below), so without the cap a client
    // could pump unbounded bytes for the whole inference — a memory-
    // exhaustion vector across many connections. updateInterest
    // masks EPOLLIN past the cap and TCP backpressure does the rest;
    // reads resume when the in-flight response completes and
    // parseRequests drains the backlog (applyPosts re-arms).
    const size_t cap = recvCap();
    for (;;) {
        if (c.parser.buffered() >= cap)
            break;
        // Chaos seam: a sockread fault shrinks this read to a few
        // bytes, exercising the parser's resume-from-partial paths
        // (level-triggered epoll re-delivers the rest).
        const size_t want = faultFire(FaultSite::SockRead)
                                ? static_cast<size_t>(7)
                                : sizeof buf;
        const ssize_t n = ::recv(c.fd, buf, want, 0);
        if (n > 0) {
            counters.bytesIn += static_cast<uint64_t>(n);
            c.parser.feed(buf, static_cast<size_t>(n));
            c.lastActive = std::chrono::steady_clock::now();
            if (static_cast<size_t>(n) < want)
                break;
            continue;
        }
        if (n == 0) {
            c.readClosed = true;
            updateInterest(c);
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConn(c);
        return;
    }
    parseRequests(c);
    if (c.fd >= 0)
        updateInterest(c); // may mask EPOLLIN at the receive cap
    maybeClose(c);
}

void
SocketServer::parseRequests(Conn &c)
{
    // Strict serialization: never advance the parser while a request
    // is in flight, so responses go out in request order even for a
    // pipelining client.
    while (c.fd >= 0 && c.inflight == 0 && !c.wantClose) {
        HttpRequest req;
        const auto got = c.parser.next(req);
        if (got == HttpRequestParser::Status::NeedMore)
            break;
        if (got == HttpRequestParser::Status::Error) {
            ++counters.badRequests;
            queueBytes(c, textResponse(c.parser.errorStatus(),
                                       c.parser.errorText() + "\n",
                                       false));
            c.wantClose = true;
            break;
        }
        ++counters.requests;
        c.lastActive = std::chrono::steady_clock::now();
        if (draining) {
            // The drain contract: in-flight work finishes, new work
            // is shed so the client retries elsewhere.
            ++counters.drainSheds;
            queueBytes(c,
                       textResponse(503, "draining, retry later\n",
                                    false));
            c.wantClose = true;
            break;
        }
        if (!req.keepAlive)
            c.wantClose = true; // close once its response flushes
        c.inflight = 1;
        handler(c.id, std::move(req));
    }
}

void
SocketServer::queueBytes(Conn &c, std::string bytes)
{
    if (c.fd < 0)
        return;
    if (c.out.empty())
        c.out = std::move(bytes);
    else
        c.out += bytes;
    flush(c);
    updateInterest(c);
}

void
SocketServer::flush(Conn &c)
{
    while (c.outOff < c.out.size()) {
        size_t len = c.out.size() - c.outOff;
        // Chaos seam: a sockwrite fault truncates this send and
        // stops flushing, leaving the rest for the EPOLLOUT re-arm
        // (updateInterest sees pending output) — the partial-write
        // resume path a congested peer exercises.
        const bool truncated =
            len > 3 && faultFire(FaultSite::SockWrite);
        if (truncated)
            len = 3;
        const ssize_t n = ::send(c.fd, c.out.data() + c.outOff, len,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            c.outOff += static_cast<size_t>(n);
            counters.bytesOut += static_cast<uint64_t>(n);
            if (truncated)
                return;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(c); // peer went away mid-response
        return;
    }
    c.out.clear();
    c.outOff = 0;
}

void
SocketServer::connWritable(Conn &c)
{
    flush(c);
    if (c.fd < 0)
        return;
    updateInterest(c);
    maybeClose(c);
}

void
SocketServer::applyPosts()
{
    std::vector<Post> batch;
    {
        std::lock_guard<std::mutex> lk(postMu);
        batch.swap(posts);
    }
    for (Post &p : batch) {
        auto it = connsById.find(p.connId);
        if (it == connsById.end() || it->second->fd < 0) {
            ++counters.droppedResponses;
            continue;
        }
        Conn &c = *it->second;
        queueBytes(c, std::move(p.bytes));
        if (p.done) {
            if (c.inflight > 0)
                c.inflight -= 1;
            if (p.closeAfter)
                c.wantClose = true;
            c.lastActive = std::chrono::steady_clock::now();
            // The request cycle is over: a pipelined follow-up may
            // already be buffered.
            parseRequests(c);
            if (c.fd >= 0)
                updateInterest(c); // re-arm reads once under the cap
        }
        maybeClose(c);
    }
}

void
SocketServer::sweepIdle()
{
    const auto now = std::chrono::steady_clock::now();
    for (const auto &kv : connsByFd) {
        Conn &c = *kv.second;
        if (c.fd < 0 || c.inflight != 0 ||
            c.outOff < c.out.size())
            continue;
        if (now - c.lastActive >= cfg.idleTimeout) {
            ++counters.idleCloses;
            closeConn(c);
        }
    }
}

} // namespace mokey::net
