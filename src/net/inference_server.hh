/**
 * @file
 * The production serving front-end: epoll HTTP server wrapped around
 * a ServingScheduler (the continuous iteration-level scheduler by
 * default; the run-to-completion BatchScheduler as the fallback —
 * same wire protocol either way).
 *
 * Request flow: the SocketServer loop parses a POST /v1/forward, the
 * handler validates the binary tensor body, applies admission
 * control (queue-depth cap -> 503 shed with a Retry-After sized from
 * measured recent batch latency, per-client fairness via the socket
 * layer's per-peer connection cap), and submits to the scheduler
 * with a completion callback. When the request's batch (or its last
 * layer step) finishes, the callback — on a scheduler thread —
 * streams the output tensor back as chunked transfer frames (one
 * dims frame, one frame per row, terminator) through the server's
 * thread-safe outbox. Bytes on the wire are the exact float32 bits
 * forward() produced: serving is bit-identical to in-process calls.
 *
 * Failure flow: an engine exception becomes a 500 on exactly the
 * requests of the failed batch; a submit that races drain/stop
 * becomes a 503; neither takes the process down (the scheduler's
 * contract after the failure-path fixes).
 *
 * Deadlines: a client may send X-Mokey-Deadline-Ms: N on
 * /v1/forward. The handler stamps an absolute steady-clock deadline
 * at admission; a request whose deadline passes while queued (or,
 * continuous mode, between layer steps) completes with 504 instead
 * of burning engine time. A junk header value is a 400.
 *
 * Endpoints:
 *   POST /v1/forward  binary tensor in -> chunked binary tensor out
 *   GET  /healthz     three-state health: 200 "ok", 503 "degraded:
 *                     <cause>" (a serving loop stalled past its
 *                     watchdog budget), 503 "draining" (graceful
 *                     shutdown began — load balancers stop routing
 *                     here while in-flight work finishes)
 *   GET  /v1/stats    JSON counters (server + scheduler + depth)
 *
 * Wire format of a tensor — always little-endian on the wire
 * (big-endian hosts byte-swap on encode/decode, so cross-platform
 * clients interoperate rather than decoding garbage):
 *   uint32 rows, uint32 cols, rows*cols IEEE-754 float32 row-major
 *   values.
 */

#ifndef MOKEY_NET_INFERENCE_SERVER_HH
#define MOKEY_NET_INFERENCE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "model/continuous_scheduler.hh"
#include "model/scheduler.hh"
#include "net/socket_server.hh"

namespace mokey::net
{

/** Front-end knobs on top of the socket and scheduler layers. */
struct InferenceServerConfig
{
    SocketServerConfig socket;

    /**
     * Serve through the continuous iteration-level scheduler (the
     * default) or the run-to-completion BatchScheduler. Only the
     * pipeline constructor honors this; the BatchForwardFn
     * constructor is inherently batch-mode (it interposes on the
     * whole-batch forward).
     */
    bool continuous = true;

    /** Knobs when continuous == false. */
    BatchSchedulerConfig scheduler;

    /** Knobs when continuous == true. */
    ContinuousSchedulerConfig continuousScheduler;

    /** Quantization mode every served request runs under. */
    QuantMode mode = QuantMode::WeightsAndActivations;

    /**
     * Admission cap: shed with 503 when the scheduler already holds
     * this many uncompleted requests (queued + in-flight). The
     * backpressure knob that keeps tail latency bounded when offered
     * load exceeds capacity.
     */
    size_t maxQueueDepth = 64;

    /** Stream the output as one chunk per row (true) or a single
     *  contiguous chunk (false); both end bit-identical. */
    bool streamRows = true;
};

/** Front-end counters (monotonic). */
struct InferenceServerStats
{
    uint64_t requests = 0;    ///< /v1/forward requests received
    uint64_t completed = 0;   ///< 200 responses streamed
    uint64_t shed = 0;        ///< 503: queue-depth cap or stop race
    uint64_t failed = 0;      ///< 500: batch forward threw
    uint64_t badRequests = 0; ///< 400/404/405 at the route layer
    uint64_t expired = 0;     ///< 504: deadline passed before done
};

/** Three-state health surfaced by GET /healthz. */
enum class ServerHealth
{
    Ok,       ///< serving, all monitored loops beating
    Degraded, ///< a serving loop stalled past its watchdog budget
    Draining, ///< graceful shutdown in progress (sheds new work)
};

/**
 * The Retry-After hint a shedding 503 carries, derived from measured
 * service latency instead of a constant: roughly how long the
 * current backlog (@p depth requests over batches of @p maxBatch)
 * takes to clear at @p recentSeconds per batch, clamped to [1, 30]
 * whole seconds. Returns 1 before any latency has been measured.
 * Pure — unit-tested directly.
 */
unsigned retryAfterSeconds(double recentSeconds, size_t depth,
                           size_t maxBatch);

/**
 * What retryAfterSeconds assumes one dispatch wave costs before any
 * latency has been measured (cold start): a queued-up replica that
 * has not completed a batch yet still hints proportionally to its
 * backlog instead of collapsing to the 1-second clamp floor.
 */
inline constexpr double kColdStartWaveSeconds = 0.25;

/** Serialize @p t in the binary wire format. */
std::string encodeTensorBody(const Tensor &t);

/**
 * Parse a binary tensor body. Returns false on malformed input
 * (short body, size mismatch, zero dims).
 */
bool decodeTensorBody(const std::string &body, Tensor &out);

/** HTTP serving wrapper: scheduler + epoll server + admission. */
class InferenceServer
{
  public:
    /** Serve @p pipe (must be ready() and outlive the server);
     *  request width is validated against its model config. */
    InferenceServer(const QuantizedTransformer &pipe,
                    InferenceServerConfig cfg = {});

    /**
     * Serve an arbitrary batched forward through the run-to-
     * completion BatchScheduler (tests inject failures and stubs
     * this way; cfg.continuous is ignored). @p expect_cols validates
     * request width when non-zero.
     */
    InferenceServer(BatchForwardFn forward, size_t expect_cols,
                    InferenceServerConfig cfg = {});

    /**
     * Serve an arbitrary one-layer step of @p steps layers through
     * the continuous scheduler (the continuous-mode counterpart of
     * the BatchForwardFn constructor, for fault injection and
     * stubs). @p expect_cols validates request width when non-zero.
     */
    InferenceServer(StepForwardFn step, size_t steps,
                    size_t expect_cols,
                    InferenceServerConfig cfg = {});

    /** Graceful drain, then teardown. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /** Bind + spawn the event loop (throws on bind failure). */
    void start();

    /** Bound port (resolves socket.port == 0). */
    uint16_t port() const { return server->port(); }

    /**
     * Graceful shutdown: stop accepting, shed new requests with
     * 503, finish and flush every in-flight response, stop the
     * scheduler. Blocks until done. Safe to call twice.
     */
    void drain();

    /**
     * Trigger the drain without blocking (SIGTERM path). /healthz
     * reports draining from this instant — before the socket layer
     * has even processed the wakeup — so a load balancer polling
     * health never routes new work at a server that will shed it.
     */
    void beginDrain()
    {
        draining.store(true, std::memory_order_release);
        server->beginDrain();
    }

    /** Live three-state health (what /healthz serves). */
    ServerHealth health() const;

    /** The watchdog cause string when health() is Degraded. */
    std::string healthCause() const;

    InferenceServerStats stats() const;
    SocketServerStats socketStats() const { return server->stats(); }

    /** True when serving through the continuous scheduler. */
    bool continuousMode() const { return contSched != nullptr; }

    /** Batch-mode scheduler counters ({} in continuous mode). */
    BatchSchedulerStats schedulerStats() const
    {
        return batchSched ? batchSched->stats()
                          : BatchSchedulerStats{};
    }

    /** Continuous-mode scheduler counters ({} in batch mode). */
    ContinuousSchedulerStats continuousSchedulerStats() const
    {
        return contSched ? contSched->stats()
                         : ContinuousSchedulerStats{};
    }

    /** Admitted-but-uncompleted requests (the admission signal). */
    size_t queueDepth() const { return sched->queueDepth(); }

  private:
    void initScheduler(std::unique_ptr<ServingScheduler> s);
    void onRequest(uint64_t connId, HttpRequest &&req);
    void completeForward(uint64_t connId, bool keep_alive,
                         Tensor &&out, std::exception_ptr err);
    std::string statsJson() const;

    /** Requests one dispatch wave absorbs (Retry-After scaling). */
    size_t batchCapacity() const;

    const InferenceServerConfig cfg;
    const size_t expectCols;

    // Declaration order is destruction order in reverse: the server
    // (posts outbox) must outlive the scheduler (whose completion
    // callbacks post into it).
    std::unique_ptr<SocketServer> server;
    std::unique_ptr<ServingScheduler> sched;
    BatchScheduler *batchSched = nullptr;    ///< owned by sched
    ContinuousScheduler *contSched = nullptr; ///< owned by sched
    std::atomic<bool> drained{false};
    std::atomic<bool> draining{false}; ///< beginDrain()/drain() ran

    struct
    {
        std::atomic<uint64_t> requests{0}, completed{0}, shed{0},
            failed{0}, badRequests{0}, expired{0};
    } counters;
};

} // namespace mokey::net

#endif // MOKEY_NET_INFERENCE_SERVER_HH
