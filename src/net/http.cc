#include "net/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mokey::net
{

namespace
{

/** Parsed message head: start line + headers + total head bytes. */
struct Head
{
    std::string startLine;
    std::vector<HttpHeader> headers;
    size_t bytes = 0; ///< includes the blank line
};

/**
 * Find and split one message head off @p buf. Returns 1 on success,
 * 0 when incomplete, -1 on a malformed header line.
 */
int
parseHead(const std::string &buf, Head &head)
{
    const size_t end = buf.find("\r\n\r\n");
    if (end == std::string::npos)
        return 0;
    head.bytes = end + 4;

    size_t pos = 0;
    bool first = true;
    while (pos < end) {
        size_t eol = buf.find("\r\n", pos);
        if (eol == std::string::npos || eol > end)
            eol = end;
        const std::string line = buf.substr(pos, eol - pos);
        pos = eol + 2;
        if (first) {
            head.startLine = line;
            first = false;
            continue;
        }
        const size_t colon = line.find(':');
        if (colon == std::string::npos)
            return -1;
        std::string name = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        // Trim optional whitespace around the value.
        while (!value.empty() &&
               (value.front() == ' ' || value.front() == '\t'))
            value.erase(value.begin());
        while (!value.empty() &&
               (value.back() == ' ' || value.back() == '\t'))
            value.pop_back();
        if (name.empty())
            return -1;
        head.headers.push_back({std::move(name), std::move(value)});
    }
    return 1;
}

const std::string *
findHeader(const std::vector<HttpHeader> &headers,
           const std::string &name)
{
    for (const HttpHeader &h : headers)
        if (iequals(h.name, name))
            return &h.value;
    return nullptr;
}

/** Strict non-negative decimal parse; -1 on junk. */
long long
parseDecimal(const std::string &s)
{
    if (s.empty() || s.size() > 18)
        return -1;
    long long v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return -1;
        v = v * 10 + (c - '0');
    }
    return v;
}

bool
resolveKeepAlive(const std::string &version,
                 const std::vector<HttpHeader> &headers)
{
    bool keep = version != "HTTP/1.0"; // 1.1 defaults to keep-alive
    if (const std::string *c = findHeader(headers, "Connection")) {
        if (iequals(*c, "close"))
            keep = false;
        else if (iequals(*c, "keep-alive"))
            keep = true;
    }
    return keep;
}

} // namespace

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

const std::string *
HttpRequest::header(const std::string &name) const
{
    return findHeader(headers, name);
}

const std::string *
HttpResponse::header(const std::string &name) const
{
    return findHeader(headers, name);
}

HttpRequestParser::Status
HttpRequestParser::fail(int status, const std::string &what)
{
    errStatus = status;
    errText = what;
    return Status::Error;
}

HttpRequestParser::Status
HttpRequestParser::next(HttpRequest &out)
{
    if (errStatus != 0)
        return Status::Error; // sticky: connection must close

    Head head;
    const int got = parseHead(buf, head);
    if (got == 0) {
        if (buf.size() > lim.maxHeaderBytes)
            return fail(431, "header section exceeds limit");
        return Status::NeedMore;
    }
    if (got < 0 || head.bytes > lim.maxHeaderBytes)
        return fail(got < 0 ? 400 : 431,
                    got < 0 ? "malformed header line"
                            : "header section exceeds limit");

    // Request line: METHOD SP target SP HTTP/x.y
    const std::string &line = head.startLine;
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos)
        return fail(400, "malformed request line");
    std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string version = line.substr(sp2 + 1);
    if (method.empty() || target.empty() || target[0] != '/')
        return fail(400, "malformed request line");
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return fail(505, "unsupported HTTP version");

    if (findHeader(head.headers, "Transfer-Encoding") != nullptr)
        return fail(501, "chunked request bodies not supported");

    // RFC 9112 §6.3: a message with multiple Content-Length headers
    // is invalid. Accepting one silently (first- or last-wins) lets
    // a proxy that picks the other value desync on the keep-alive
    // stream — request smuggling — so reject duplicates outright.
    const std::string *cl = nullptr;
    for (const HttpHeader &h : head.headers) {
        if (!iequals(h.name, "Content-Length"))
            continue;
        if (cl != nullptr)
            return fail(400, "duplicate Content-Length");
        cl = &h.value;
    }

    size_t bodyLen = 0;
    if (cl != nullptr) {
        const long long v = parseDecimal(*cl);
        if (v < 0)
            return fail(400, "malformed Content-Length");
        if (static_cast<size_t>(v) > lim.maxBodyBytes)
            return fail(413, "body exceeds limit");
        bodyLen = static_cast<size_t>(v);
    }

    if (buf.size() < head.bytes + bodyLen)
        return Status::NeedMore;

    out = HttpRequest{};
    out.method = std::move(method);
    out.target = std::move(target);
    out.version = std::move(version);
    out.headers = std::move(head.headers);
    out.body = buf.substr(head.bytes, bodyLen);
    out.keepAlive = resolveKeepAlive(out.version, out.headers);
    buf.erase(0, head.bytes + bodyLen);
    return Status::Ready;
}

HttpResponseParser::Status
HttpResponseParser::fail(const std::string &what)
{
    errText = what;
    return Status::Error;
}

HttpResponseParser::Status
HttpResponseParser::next(HttpResponse &out)
{
    Head head;
    const int got = parseHead(buf, head);
    if (got == 0)
        return buf.size() > lim.maxHeaderBytes
                   ? fail("header section exceeds limit")
                   : Status::NeedMore;
    if (got < 0)
        return fail("malformed header line");

    // Status line: HTTP/x.y CODE reason...
    const std::string &line = head.startLine;
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos)
        return fail("malformed status line");
    const long long code = parseDecimal(
        sp2 == std::string::npos
            ? line.substr(sp1 + 1)
            : line.substr(sp1 + 1, sp2 - sp1 - 1));
    if (code < 100 || code > 599)
        return fail("malformed status code");

    std::string body;
    size_t consumed = head.bytes;
    const std::string *te =
        findHeader(head.headers, "Transfer-Encoding");
    if (te != nullptr && iequals(*te, "chunked")) {
        // Reassemble chunk frames; wait until the whole body (incl.
        // the zero chunk) is buffered.
        size_t pos = head.bytes;
        for (;;) {
            const size_t eol = buf.find("\r\n", pos);
            if (eol == std::string::npos)
                return Status::NeedMore;
            size_t len = 0;
            const std::string hex = buf.substr(pos, eol - pos);
            if (hex.empty() || hex.size() > 8)
                return fail("malformed chunk size");
            for (const char c : hex) {
                const char lc = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
                if (lc >= '0' && lc <= '9')
                    len = len * 16 + (lc - '0');
                else if (lc >= 'a' && lc <= 'f')
                    len = len * 16 + (lc - 'a' + 10);
                else
                    return fail("malformed chunk size");
            }
            if (buf.size() < eol + 2 + len + 2)
                return Status::NeedMore;
            if (buf.compare(eol + 2 + len, 2, "\r\n") != 0)
                return fail("malformed chunk frame");
            body.append(buf, eol + 2, len);
            if (body.size() > lim.maxBodyBytes)
                return fail("body exceeds limit");
            pos = eol + 2 + len + 2;
            if (len == 0)
                break;
        }
        consumed = pos;
    } else if (const std::string *cl =
                   findHeader(head.headers, "Content-Length")) {
        const long long v = parseDecimal(*cl);
        if (v < 0 || static_cast<size_t>(v) > lim.maxBodyBytes)
            return fail("bad Content-Length");
        if (buf.size() < head.bytes + static_cast<size_t>(v))
            return Status::NeedMore;
        body = buf.substr(head.bytes, static_cast<size_t>(v));
        consumed = head.bytes + static_cast<size_t>(v);
    }

    out = HttpResponse{};
    out.status = static_cast<int>(code);
    out.reason =
        sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
    out.headers = std::move(head.headers);
    out.body = std::move(body);
    out.keepAlive = resolveKeepAlive("HTTP/1.1", out.headers);
    buf.erase(0, consumed);
    return Status::Ready;
}

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
    }
}

namespace
{

std::string
headLines(int status, const std::vector<HttpHeader> &headers,
          bool keep_alive)
{
    std::string s = "HTTP/1.1 " + std::to_string(status) + " " +
                    statusText(status) + "\r\n";
    for (const HttpHeader &h : headers)
        s += h.name + ": " + h.value + "\r\n";
    s += keep_alive ? "Connection: keep-alive\r\n"
                    : "Connection: close\r\n";
    return s;
}

} // namespace

std::string
serializeResponse(int status, const std::vector<HttpHeader> &headers,
                  const std::string &body, bool keep_alive)
{
    std::string s = headLines(status, headers, keep_alive);
    s += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    s += "\r\n";
    s += body;
    return s;
}

std::string
textResponse(int status, const std::string &body, bool keep_alive)
{
    return serializeResponse(
        status, {{"Content-Type", "text/plain"}}, body, keep_alive);
}

std::string
chunkedHead(int status, const std::vector<HttpHeader> &headers,
            bool keep_alive)
{
    std::string s = headLines(status, headers, keep_alive);
    s += "Transfer-Encoding: chunked\r\n";
    s += "\r\n";
    return s;
}

std::string
chunk(const char *data, size_t n)
{
    char hex[16];
    std::snprintf(hex, sizeof hex, "%zx", n);
    std::string s(hex);
    s += "\r\n";
    s.append(data, n);
    s += "\r\n";
    return s;
}

std::string
lastChunk()
{
    return "0\r\n\r\n";
}

} // namespace mokey::net
