#include "net/http_client.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mokey::net
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

HttpClient::HttpClient(std::string h, uint16_t p,
                       std::chrono::milliseconds t)
    : host(std::move(h)), port(p), timeout(t)
{
}

HttpClient::~HttpClient()
{
    close();
}

void
HttpClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
        appliedTimeout = std::chrono::milliseconds(0);
    }
}

void
HttpClient::applyTimeout(std::chrono::milliseconds t)
{
    if (fd < 0 || t == appliedTimeout)
        return;
    timeval tv{};
    tv.tv_sec = t.count() / 1000;
    tv.tv_usec = (t.count() % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    appliedTimeout = t;
}

void
HttpClient::ensureConnected()
{
    if (fd >= 0)
        return;
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throwErrno("socket");
    // The constructor timeout covers connect() (SO_SNDTIMEO bounds
    // it on Linux); request() re-applies its per-call override for
    // the send/receive phase.
    applyTimeout(timeout);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        throw std::runtime_error("bad address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        const int err = errno;
        close();
        errno = err;
        throwErrno("connect " + host + ":" + std::to_string(port));
    }
    ++dialCount;
}

bool
HttpClient::sendAll(const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // stale keep-alive connection, most likely
    }
    return true;
}

HttpResponse
HttpClient::readResponse()
{
    HttpResponseParser parser;
    HttpResponse resp;
    char buf[16 << 10];
    for (;;) {
        switch (parser.next(resp)) {
        case HttpResponseParser::Status::Ready:
            return resp;
        case HttpResponseParser::Status::Error:
            close();
            throw std::runtime_error("bad response: " +
                                     parser.errorText());
        case HttpResponseParser::Status::NeedMore:
            break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            parser.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();
        throw std::runtime_error(
            n == 0 ? "connection closed mid-response"
                   : "recv failed: " +
                         std::string(std::strerror(errno)));
    }
}

HttpResponse
HttpClient::request(const std::string &method,
                    const std::string &target,
                    const std::vector<HttpHeader> &headers,
                    const std::string &body,
                    std::chrono::milliseconds perCallTimeout)
{
    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host + ":" + std::to_string(port) + "\r\n";
    for (const HttpHeader &h : headers)
        wire += h.name + ": " + h.value + "\r\n";
    if (!body.empty() || method == "POST" || method == "PUT")
        wire += "Content-Length: " + std::to_string(body.size()) +
                "\r\n";
    wire += "\r\n";
    wire += body;

    const std::chrono::milliseconds effective =
        perCallTimeout.count() > 0 ? perCallTimeout : timeout;

    // A server may have dropped the idle keep-alive connection since
    // the last request; that race is legal HTTP, so re-dial once.
    for (int attempt = 0; attempt < 2; ++attempt) {
        const bool fresh = fd < 0;
        ensureConnected();
        applyTimeout(effective);
        if (!sendAll(wire)) {
            close();
            if (fresh)
                throwErrno("send");
            continue;
        }
        HttpResponse resp;
        try {
            resp = readResponse();
        } catch (const std::runtime_error &) {
            if (fresh)
                throw;
            close();
            continue;
        }
        if (!resp.keepAlive)
            close();
        return resp;
    }
    throw std::runtime_error("request failed after reconnect");
}

HttpResponse
HttpClient::requestWithRetry(const std::string &method,
                             const std::string &target,
                             const std::vector<HttpHeader> &headers,
                             const std::string &body,
                             const HttpRetryPolicy &policy)
{
    const int attempts = policy.attempts < 1 ? 1 : policy.attempts;
    std::chrono::milliseconds backoff = policy.initialBackoff;
    if (backoff.count() < 0)
        backoff = std::chrono::milliseconds(0);

    auto advance = [&]() {
        ++retryCount;
        const double next = static_cast<double>(backoff.count()) *
                            (policy.multiplier > 1.0
                                 ? policy.multiplier
                                 : 1.0);
        backoff = std::min(
            policy.maxBackoff,
            std::chrono::milliseconds(
                static_cast<long long>(next)));
    };

    for (int a = 0;; ++a) {
        HttpResponse resp;
        try {
            resp = request(method, target, headers, body,
                           policy.perCallTimeout);
        } catch (const std::runtime_error &) {
            // Transport failure (refused, reset, timeout): back off
            // and retry; the final attempt's error propagates.
            if (a + 1 >= attempts)
                throw;
            std::this_thread::sleep_for(backoff);
            advance();
            continue;
        }
        if (resp.status != 503 || !policy.retryOn503 ||
            a + 1 >= attempts)
            return resp;

        // A shed (overload or draining): the server's Retry-After is
        // its measured estimate of when capacity frees up — better
        // than our blind exponential step, but clamped so a confused
        // server cannot park us for minutes.
        std::chrono::milliseconds wait = backoff;
        if (policy.honorRetryAfter) {
            if (const std::string *ra = resp.header("Retry-After")) {
                char *end = nullptr;
                const long long secs =
                    std::strtoll(ra->c_str(), &end, 10);
                if (end != ra->c_str() && *end == '\0' &&
                    secs >= 0) {
                    // Clamp before the *1000: a hostile Retry-After
                    // near LLONG_MAX would overflow (UB) ahead of
                    // the maxBackoff clamp.
                    const long long capSecs =
                        policy.maxBackoff.count() / 1000 + 1;
                    wait = std::min(
                        policy.maxBackoff,
                        std::chrono::milliseconds(
                            std::min(secs, capSecs) * 1000));
                }
            }
        }
        std::this_thread::sleep_for(wait);
        advance();
    }
}

HttpResponse
HttpClient::get(const std::string &target)
{
    return request("GET", target);
}

HttpResponse
HttpClient::post(const std::string &target, const std::string &body,
                 const std::string &contentType)
{
    return request("POST", target,
                   {{"Content-Type", contentType}}, body);
}

} // namespace mokey::net
