/**
 * @file
 * HTTP/1.1 wire format: incremental request/response parsers and
 * serialization helpers (including chunked transfer encoding).
 *
 * This is the minimal production subset a serving front-end needs —
 * request line + headers + Content-Length bodies, keep-alive
 * semantics for 1.0 and 1.1, chunked responses for streaming — with
 * hard caps on header and body size so a hostile peer cannot balloon
 * memory. No URL decoding, no multipart, no compression: inference
 * requests are binary tensor payloads, not web traffic.
 *
 * Both parsers are incremental: feed() bytes as they arrive off the
 * socket, call next() until it stops returning Ready. Bytes beyond
 * one message stay buffered, so pipelined requests parse one at a
 * time in order.
 */

#ifndef MOKEY_NET_HTTP_HH
#define MOKEY_NET_HTTP_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mokey::net
{

/** One header line (name case-insensitive on lookup). */
struct HttpHeader
{
    std::string name;
    std::string value;
};

/** Case-insensitive ASCII string equality (header names). */
bool iequals(const std::string &a, const std::string &b);

/** One parsed request. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET", "POST"
    std::string target;  ///< request target, e.g. "/v1/forward"
    std::string version; ///< "HTTP/1.0" or "HTTP/1.1"
    std::vector<HttpHeader> headers;
    std::string body;
    bool keepAlive = true; ///< per Connection header + version

    /** Value of the first header named @p name, or nullptr. */
    const std::string *header(const std::string &name) const;
};

/** One parsed response (the client side of the same wire format). */
struct HttpResponse
{
    int status = 0;
    std::string reason;
    std::vector<HttpHeader> headers;
    std::string body; ///< chunked bodies arrive de-chunked
    bool keepAlive = true;

    const std::string *header(const std::string &name) const;
};

/** Parser caps — the memory-safety knobs. */
struct HttpLimits
{
    size_t maxHeaderBytes = 64 << 10; ///< request line + headers
    size_t maxBodyBytes = 64 << 20;   ///< Content-Length / chunked
};

/** Incremental request parser for one connection. */
class HttpRequestParser
{
  public:
    enum class Status {
        NeedMore, ///< message incomplete, feed more bytes
        Ready,    ///< one request parsed into the out-param
        Error     ///< protocol violation; connection must close
    };

    explicit HttpRequestParser(HttpLimits limits = {})
        : lim(limits)
    {
    }

    /** Append raw socket bytes. */
    void feed(const char *data, size_t n) { buf.append(data, n); }

    /**
     * Try to parse one complete request off the front of the
     * buffer. On Ready, @p out is filled and its bytes consumed;
     * call again — a pipelining client may have sent the next
     * request already. On Error, errorStatus()/errorText() describe
     * the rejection (400/413/431/501) for the final response.
     */
    Status next(HttpRequest &out);

    int errorStatus() const { return errStatus; }
    const std::string &errorText() const { return errText; }

    /** Bytes buffered but not yet consumed by a parsed message. */
    size_t buffered() const { return buf.size(); }

  private:
    Status fail(int status, const std::string &what);

    HttpLimits lim;
    std::string buf;
    int errStatus = 0;
    std::string errText;
};

/** Incremental response parser (used by the blocking client). */
class HttpResponseParser
{
  public:
    enum class Status { NeedMore, Ready, Error };

    explicit HttpResponseParser(HttpLimits limits = {})
        : lim(limits)
    {
    }

    void feed(const char *data, size_t n) { buf.append(data, n); }

    /**
     * Parse one complete response (Content-Length or chunked body;
     * chunked bodies are reassembled into HttpResponse::body).
     */
    Status next(HttpResponse &out);

    const std::string &errorText() const { return errText; }

  private:
    Status fail(const std::string &what);

    HttpLimits lim;
    std::string buf;
    std::string errText;
};

/** Canonical reason phrase for @p status ("OK", "Bad Request"...). */
const char *statusText(int status);

/**
 * Serialize a complete (non-chunked) response: status line, caller
 * headers, Content-Length, Connection per @p keep_alive, body.
 */
std::string serializeResponse(int status,
                              const std::vector<HttpHeader> &headers,
                              const std::string &body,
                              bool keep_alive);

/** Shorthand for small text replies (adds Content-Type). */
std::string textResponse(int status, const std::string &body,
                         bool keep_alive);

/**
 * Head of a chunked streaming response: status line + headers +
 * "Transfer-Encoding: chunked". Follow with chunk() frames and one
 * lastChunk().
 */
std::string chunkedHead(int status,
                        const std::vector<HttpHeader> &headers,
                        bool keep_alive);

/** One chunk frame (hex length, CRLF, payload, CRLF). */
std::string chunk(const char *data, size_t n);

/** The terminating zero-length chunk. */
std::string lastChunk();

} // namespace mokey::net

#endif // MOKEY_NET_HTTP_HH
