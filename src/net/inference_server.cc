#include "net/inference_server.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/watchdog.hh"

namespace mokey::net
{

namespace
{

// The tensor wire format is explicitly little-endian (uint32 dims,
// IEEE-754 float32 payload). Big-endian hosts byte-swap on encode
// and decode so cross-platform clients never consume garbage bits.
#if defined(__BYTE_ORDER__) &&                                       \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
constexpr bool kBigEndianHost = true;
#else
constexpr bool kBigEndianHost = false;
#endif

void
putU32(std::string &s, uint32_t v)
{
    const char b[4] = {static_cast<char>(v & 0xff),
                       static_cast<char>((v >> 8) & 0xff),
                       static_cast<char>((v >> 16) & 0xff),
                       static_cast<char>((v >> 24) & 0xff)};
    s.append(b, 4);
}

uint32_t
getU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint32_t>(u[0]) |
           (static_cast<uint32_t>(u[1]) << 8) |
           (static_cast<uint32_t>(u[2]) << 16) |
           (static_cast<uint32_t>(u[3]) << 24);
}

void
appendFloatsLE(std::string &s, const float *vals, size_t n)
{
    if (!kBigEndianHost) {
        s.append(reinterpret_cast<const char *>(vals),
                 n * sizeof(float));
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        uint32_t bits;
        std::memcpy(&bits, &vals[i], sizeof bits);
        putU32(s, bits);
    }
}

void
copyFloatsLE(float *dst, const char *src, size_t n)
{
    if (!kBigEndianHost) {
        std::memcpy(dst, src, n * sizeof(float));
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        const uint32_t bits = getU32(src + i * sizeof(float));
        std::memcpy(&dst[i], &bits, sizeof bits);
    }
}

std::string
floatChunk(const float *vals, size_t n)
{
    if (!kBigEndianHost)
        return chunk(reinterpret_cast<const char *>(vals),
                     n * sizeof(float));
    std::string payload;
    payload.reserve(n * sizeof(float));
    appendFloatsLE(payload, vals, n);
    return chunk(payload.data(), payload.size());
}

} // namespace

std::string
encodeTensorBody(const Tensor &t)
{
    std::string s;
    s.reserve(8 + t.size() * sizeof(float));
    putU32(s, static_cast<uint32_t>(t.rows()));
    putU32(s, static_cast<uint32_t>(t.cols()));
    appendFloatsLE(s, t.data(), t.size());
    return s;
}

bool
decodeTensorBody(const std::string &body, Tensor &out)
{
    if (body.size() < 8)
        return false;
    const uint64_t rows = getU32(body.data());
    const uint64_t cols = getU32(body.data() + 4);
    if (rows == 0 || cols == 0)
        return false;
    // Validate by division: the product form `8 + n * sizeof(float)`
    // wraps mod 2^64 for hostile dims (rows = cols = 2^31 passes an
    // 8-byte body) and would reach the allocation below — a remote
    // DoS via a tiny request. The division cannot overflow, and on
    // match n is bounded by body.size()/4 (itself parser-capped).
    const uint64_t payload = body.size() - 8;
    if (payload % sizeof(float) != 0 ||
        payload / sizeof(float) != rows * cols)
        return false;
    const size_t n = static_cast<size_t>(rows * cols);
    std::vector<float> data(n);
    copyFloatsLE(data.data(), body.data() + 8, n);
    out = Tensor(static_cast<size_t>(rows),
                 static_cast<size_t>(cols), std::move(data));
    return true;
}

unsigned
retryAfterSeconds(double recentSeconds, size_t depth,
                  size_t maxBatch)
{
    // Cold start: before the first batch completes the EWMA is zero,
    // but the backlog is still real — a replica slammed at startup
    // must not tell every shed client "retry in 1s" regardless of
    // how deep its queue is. Assume a nominal wave cost until a
    // measurement replaces it.
    const double per =
        recentSeconds > 0 ? recentSeconds : kColdStartWaveSeconds;
    // Waves of work ahead of a retrying client: the backlog in
    // units of one dispatch, plus the wave its own retry joins.
    const double waves =
        static_cast<double>(depth) /
            static_cast<double>(maxBatch < 1 ? 1 : maxBatch) +
        1.0;
    const double secs = std::ceil(per * waves);
    if (secs <= 1.0)
        return 1;
    if (secs >= 30.0)
        return 30;
    return static_cast<unsigned>(secs);
}

InferenceServer::InferenceServer(const QuantizedTransformer &pipe,
                                 InferenceServerConfig c)
    : cfg(c), expectCols(pipe.modelConfig().hidden)
{
    if (cfg.continuous) {
        auto s = std::make_unique<ContinuousScheduler>(
            pipe, cfg.mode, cfg.continuousScheduler);
        contSched = s.get();
        initScheduler(std::move(s));
    } else {
        auto s = std::make_unique<BatchScheduler>(
            pipe, cfg.mode, cfg.scheduler);
        batchSched = s.get();
        initScheduler(std::move(s));
    }
}

InferenceServer::InferenceServer(BatchForwardFn forward,
                                 size_t expect_cols,
                                 InferenceServerConfig c)
    : cfg(c), expectCols(expect_cols)
{
    auto s = std::make_unique<BatchScheduler>(
        std::move(forward), cfg.mode, cfg.scheduler);
    batchSched = s.get();
    initScheduler(std::move(s));
}

InferenceServer::InferenceServer(StepForwardFn step, size_t steps,
                                 size_t expect_cols,
                                 InferenceServerConfig c)
    : cfg(c), expectCols(expect_cols)
{
    auto s = std::make_unique<ContinuousScheduler>(
        std::move(step), steps, cfg.mode, cfg.continuousScheduler);
    contSched = s.get();
    initScheduler(std::move(s));
}

void
InferenceServer::initScheduler(std::unique_ptr<ServingScheduler> s)
{
    server = std::make_unique<SocketServer>(
        cfg.socket, [this](uint64_t connId, HttpRequest &&req) {
            onRequest(connId, std::move(req));
        });
    sched = std::move(s);
}

size_t
InferenceServer::batchCapacity() const
{
    return contSched ? cfg.continuousScheduler.maxBatch
                     : cfg.scheduler.maxBatch;
}

InferenceServer::~InferenceServer()
{
    drain();
}

void
InferenceServer::start()
{
    server->start();
}

void
InferenceServer::drain()
{
    draining.store(true, std::memory_order_release);
    if (drained.exchange(true))
        return;
    // Order matters: stop admitting (the socket layer sheds new
    // requests with 503), let the scheduler finish everything
    // already admitted (completions post their responses), wait for
    // the loop to flush and close every connection, then stop the
    // dispatchers.
    server->beginDrain();
    sched->drain();
    server->waitDrained();
    sched->stop();
}

ServerHealth
InferenceServer::health() const
{
    if (draining.load(std::memory_order_acquire))
        return ServerHealth::Draining;
    if (!Watchdog::instance().healthy())
        return ServerHealth::Degraded;
    return ServerHealth::Ok;
}

std::string
InferenceServer::healthCause() const
{
    return Watchdog::instance().cause();
}

InferenceServerStats
InferenceServer::stats() const
{
    InferenceServerStats s;
    s.requests = counters.requests.load();
    s.completed = counters.completed.load();
    s.shed = counters.shed.load();
    s.failed = counters.failed.load();
    s.badRequests = counters.badRequests.load();
    s.expired = counters.expired.load();
    return s;
}

std::string
InferenceServer::statsJson() const
{
    const InferenceServerStats is = stats();
    const SocketServerStats ss = server->stats();
    auto u = [](uint64_t v) { return std::to_string(v); };
    std::string j = "{\n";
    j += "  \"requests\": " + u(is.requests) + ",\n";
    j += "  \"completed\": " + u(is.completed) + ",\n";
    j += "  \"shed\": " + u(is.shed) + ",\n";
    j += "  \"failed\": " + u(is.failed) + ",\n";
    j += "  \"bad_requests\": " + u(is.badRequests) + ",\n";
    j += "  \"expired\": " + u(is.expired) + ",\n";
    const ServerHealth h = health();
    j += std::string("  \"health\": \"") +
         (h == ServerHealth::Ok
              ? "ok"
              : h == ServerHealth::Degraded ? "degraded"
                                            : "draining") +
         "\",\n";
    j += "  \"watchdog_stall_events\": " +
         u(Watchdog::instance().stallEvents()) + ",\n";
    j += "  \"queue_depth\": " + u(sched->queueDepth()) + ",\n";
    j += "  \"connections\": " +
         u(server->connectionCount()) + ",\n";
    j += "  \"accepted\": " + u(ss.accepted) + ",\n";
    j += "  \"peer_refused\": " + u(ss.peerRefused) + ",\n";
    j += "  \"drain_sheds\": " + u(ss.drainSheds) + ",\n";
    j += "  \"scheduler\": \"" +
         std::string(contSched ? "continuous" : "batch") + "\",\n";
    j += "  \"recent_batch_seconds\": " +
         std::to_string(sched->recentBatchSeconds()) + ",\n";
    if (contSched) {
        const ContinuousSchedulerStats cs = contSched->stats();
        j += "  \"iterations\": " + u(cs.iterations) + ",\n";
        j += "  \"steps\": " + u(cs.steps) + ",\n";
        j += "  \"decode_steps\": " + u(cs.decodeSteps) + ",\n";
        j += "  \"prefill_steps\": " + u(cs.prefillSteps) + ",\n";
        j += "  \"step_rows\": " + u(cs.stepRows) + ",\n";
        j += "  \"joins\": " + u(cs.joins) + ",\n";
        j += "  \"prefill_deferrals\": " +
             u(cs.prefillDeferrals) + ",\n";
        j += "  \"expired_requests\": " +
             u(cs.expiredRequests) + ",\n";
        j += "  \"failed_requests\": " +
             u(cs.failedRequests) + "\n";
    } else {
        const BatchSchedulerStats bs = batchSched->stats();
        j += "  \"batches\": " + u(bs.batches) + ",\n";
        j += "  \"failed_batches\": " + u(bs.failedBatches) + ",\n";
        j += "  \"expired_requests\": " +
             u(bs.expiredRequests) + ",\n";
        j += "  \"batched_rows\": " + u(bs.batchedRows) + "\n";
    }
    j += "}\n";
    return j;
}

void
InferenceServer::completeForward(uint64_t connId, bool keep_alive,
                                 Tensor &&out,
                                 std::exception_ptr err)
{
    // Runs on a scheduler dispatcher thread; everything it touches
    // is thread-safe (counters, the server outbox).
    if (err) {
        std::string what = "batch forward failed";
        bool expired = false;
        try {
            std::rethrow_exception(err);
        } catch (const DeadlineExpired &e) {
            what = e.what();
            expired = true;
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        if (expired) {
            // The scheduler dropped the request because its
            // X-Mokey-Deadline-Ms passed before (or while) it ran:
            // the gateway's timeout semantics, 504.
            ++counters.expired;
            server->respond(
                connId, textResponse(504, what + "\n", keep_alive),
                !keep_alive);
            return;
        }
        ++counters.failed;
        server->respond(connId,
                        textResponse(500, what + "\n", keep_alive),
                        !keep_alive);
        return;
    }

    // Count before posting: a client that already holds the
    // response must see it reflected in the stats.
    ++counters.completed;
    const std::vector<HttpHeader> headers = {
        {"Content-Type", "application/x-mokey-tensor"}};
    if (cfg.streamRows) {
        // Chunked streaming: dims frame, then one frame per output
        // row — the shape a token-streaming decode loop will keep.
        std::string head = chunkedHead(200, headers, keep_alive);
        std::string dims;
        putU32(dims, static_cast<uint32_t>(out.rows()));
        putU32(dims, static_cast<uint32_t>(out.cols()));
        head += chunk(dims.data(), dims.size());
        server->stream(connId, std::move(head));
        for (size_t r = 0; r + 1 < out.rows(); ++r)
            server->stream(connId,
                           floatChunk(out.row(r), out.cols()));
        std::string tail;
        if (out.rows() > 0)
            tail = floatChunk(out.row(out.rows() - 1), out.cols());
        tail += lastChunk();
        server->respond(connId, std::move(tail), !keep_alive);
    } else {
        server->respond(connId,
                        serializeResponse(200, headers,
                                          encodeTensorBody(out),
                                          keep_alive),
                        !keep_alive);
    }
}

void
InferenceServer::onRequest(uint64_t connId, HttpRequest &&req)
{
    // Loop thread: keep it allocation-light and never block.
    const bool keep = req.keepAlive;

    if (req.target == "/healthz" && req.method == "GET") {
        // Three-state health. 503 on draining means a load balancer
        // polling here stops routing the moment graceful shutdown
        // begins — not after the listener closes. 503 on degraded
        // (a serving loop stalled past its watchdog budget) pulls a
        // wedged replica out of rotation while it still answers
        // cheap requests like this one.
        switch (health()) {
        case ServerHealth::Ok:
            server->respond(connId, textResponse(200, "ok\n", keep),
                            !keep);
            return;
        case ServerHealth::Degraded:
            server->respond(
                connId,
                textResponse(503, "degraded: " + healthCause() + "\n",
                             keep),
                !keep);
            return;
        case ServerHealth::Draining:
            server->respond(connId,
                            textResponse(503, "draining\n", keep),
                            !keep);
            return;
        }
        return;
    }
    if (req.target == "/v1/stats" && req.method == "GET") {
        server->respond(
            connId,
            serializeResponse(200,
                              {{"Content-Type",
                                "application/json"}},
                              statsJson(), keep),
            !keep);
        return;
    }
    if (req.target != "/v1/forward") {
        ++counters.badRequests;
        server->respond(connId,
                        textResponse(404, "unknown endpoint\n",
                                     keep),
                        !keep);
        return;
    }
    if (req.method != "POST") {
        ++counters.badRequests;
        server->respond(
            connId,
            textResponse(405, "use POST /v1/forward\n", keep),
            !keep);
        return;
    }

    ++counters.requests;

    // Optional per-request deadline: X-Mokey-Deadline-Ms is the
    // client's end-to-end budget, stamped into an absolute
    // steady-clock deadline here at admission (queueing time counts
    // against it — that is the point).
    Deadline deadline = kNoDeadline;
    if (const std::string *h = req.header("X-Mokey-Deadline-Ms")) {
        char *end = nullptr;
        const long long ms = std::strtoll(h->c_str(), &end, 10);
        if (end == h->c_str() || *end != '\0' || ms < 0) {
            ++counters.badRequests;
            server->respond(
                connId,
                textResponse(400,
                             "X-Mokey-Deadline-Ms must be a "
                             "non-negative integer\n",
                             keep),
                !keep);
            return;
        }
        // Clamp the client-controlled budget before building the
        // absolute deadline: now() + milliseconds(LLONG_MAX)
        // overflows the nanosecond representation (UB, and the
        // wrapped deadline would instantly 504). A day-long budget
        // never binds in practice, so larger values behave the same.
        constexpr long long kMaxDeadlineMs = 86400000LL; // 24h
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(
                       ms > kMaxDeadlineMs ? kMaxDeadlineMs : ms);
    }

    Tensor input;
    if (!decodeTensorBody(req.body, input) ||
        (expectCols != 0 && input.cols() != expectCols)) {
        ++counters.badRequests;
        server->respond(
            connId,
            textResponse(400,
                         "body must be uint32 rows, uint32 cols == " +
                             std::to_string(expectCols) +
                             ", rows*cols float32\n",
                         keep),
            !keep);
        return;
    }

    // Admission control: shed instead of queueing past the cap so
    // latency stays bounded and the client retries against a
    // less-loaded replica.
    const size_t depth = sched->queueDepth();
    if (depth >= cfg.maxQueueDepth) {
        // Retry-After from measured recent batch latency, not a
        // constant: a loaded 12-layer model and a toy stub tell the
        // client very different things.
        const unsigned after = retryAfterSeconds(
            sched->recentBatchSeconds(), depth, batchCapacity());
        ++counters.shed;
        server->respond(
            connId,
            serializeResponse(503,
                              {{"Content-Type", "text/plain"},
                               {"Retry-After",
                                std::to_string(after)}},
                              "overloaded, retry later\n", keep),
            !keep);
        return;
    }

    const bool accepted = sched->submit(
        std::move(input),
        [this, connId, keep](Tensor out, std::exception_ptr err) {
            completeForward(connId, keep, std::move(out), err);
        },
        deadline);
    if (!accepted) {
        // Raced a stop/drain: shed gracefully — the exact situation
        // that used to panic the whole process.
        ++counters.shed;
        server->respond(
            connId,
            textResponse(503, "shutting down\n", false), true);
    }
}

} // namespace mokey::net
