/**
 * @file
 * Epoll event-loop HTTP server core.
 *
 * One thread runs a level-triggered epoll loop over a non-blocking
 * listen socket and N keep-alive connections. Request bytes stream
 * through an incremental HttpRequestParser; each parsed request is
 * handed to the application handler *on the loop thread* together
 * with the connection id. The handler responds either inline or —
 * the serving path — asynchronously from another thread via
 * respond()/stream(), which enqueue bytes through a mutex-guarded
 * outbox and wake the loop through an eventfd. The loop owns every
 * socket: no fd is ever touched off-thread.
 *
 * Requests on one connection are strictly serialized: the parser is
 * only advanced while the connection has no in-flight request, so
 * responses can never interleave out of order even for a pipelining
 * client (its later requests simply wait buffered).
 *
 * Lifecycle: start() binds and spawns the loop; beginDrain() — also
 * wired to SIGTERM when drainOnSigterm is set — stops accepting,
 * sheds newly arriving requests with 503 + Connection: close,
 * finishes and flushes every in-flight response, then exits the
 * loop. stop() is the impatient variant that closes everything
 * immediately.
 */

#ifndef MOKEY_NET_SOCKET_SERVER_HH
#define MOKEY_NET_SOCKET_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.hh"

namespace mokey::net
{

/** Listener + loop knobs. */
struct SocketServerConfig
{
    /** Bind address (loopback by default — serving pods front this
     *  with their own mesh/LB layer). */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see port()). */
    uint16_t port = 0;

    /** listen(2) backlog. */
    int backlog = 128;

    /** Accepted-connection cap; beyond it accepts are refused with
     *  an immediate close (the kernel queue must not balloon). */
    size_t maxConnections = 1024;

    /**
     * Per-client fairness: maximum concurrent connections per peer
     * address (0 = unlimited). Requests are serialized per
     * connection, so this caps how much of the admission queue any
     * single client can occupy; accepts beyond the cap are refused.
     */
    size_t maxConnectionsPerPeer = 0;

    /**
     * Parser caps (header/body byte limits). They also bound what a
     * connection may hold unparsed: past maxHeaderBytes +
     * maxBodyBytes buffered (one maximal request), the loop stops
     * reading that connection — TCP backpressure takes over — and
     * resumes once the in-flight request completes and the parser
     * drains. Without the cap a client could pump bytes for the
     * whole duration of an in-flight inference (the parser is not
     * advanced until the response completes) and balloon memory.
     */
    HttpLimits limits;

    /** Close keep-alive connections idle longer than this with no
     *  in-flight request; zero disables the sweep. */
    std::chrono::milliseconds idleTimeout{30000};

    /** Install a SIGTERM handler that triggers beginDrain(). */
    bool drainOnSigterm = false;
};

/** Loop counters (monotonic; readable from any thread). */
struct SocketServerStats
{
    uint64_t accepted = 0;         ///< connections accepted
    uint64_t refused = 0;          ///< accepts over maxConnections
    uint64_t peerRefused = 0;      ///< accepts over the per-peer cap
    uint64_t closed = 0;           ///< connections closed
    uint64_t requests = 0;         ///< requests parsed + dispatched
    uint64_t badRequests = 0;      ///< protocol errors answered
    uint64_t drainSheds = 0;       ///< requests 503'd during drain
    uint64_t idleCloses = 0;       ///< keep-alive idle timeouts
    uint64_t droppedResponses = 0; ///< responses to dead connections
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
};

/**
 * Application hook: one parsed request on connection @p connId. Runs
 * on the loop thread — do not block; either respond() inline or
 * capture connId and respond() later from another thread. Exactly
 * one respond(..., done=true) must eventually follow per request.
 */
using RequestHandler =
    std::function<void(uint64_t connId, HttpRequest &&request)>;

/** Epoll HTTP server; see file header for the threading model. */
class SocketServer
{
  public:
    explicit SocketServer(SocketServerConfig cfg, RequestHandler h);

    /** Drains (politely) and joins. */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind, listen, spawn the loop. Throws std::runtime_error on
     *  socket/bind failure. */
    void start();

    /** Bound port (after start(); resolves port 0 to the real one). */
    uint16_t port() const { return boundPort; }

    /**
     * Queue pre-serialized response bytes for @p connId and mark its
     * in-flight request complete, re-enabling request parsing on
     * that connection. Thread-safe. @p close_after flushes then
     * closes (Connection: close semantics). Returns false only once
     * the event loop has exited (drain/stop): the return value
     * reflects loop liveness, not per-connection delivery. Bytes for
     * a connection that has already closed are silently dropped on
     * the loop thread and counted in
     * SocketServerStats::droppedResponses — a synchronous existence
     * check here would race the loop thread, so there is none.
     */
    bool respond(uint64_t connId, std::string bytes,
                 bool close_after = false);

    /**
     * Queue intermediate streaming bytes (e.g. chunk frames) without
     * completing the request. Thread-safe. Finish the stream with a
     * respond() carrying the terminating bytes. Return value has the
     * same loop-liveness-only semantics as respond().
     */
    bool stream(uint64_t connId, std::string bytes);

    /** Stop accepting, shed new requests, finish+flush in-flight
     *  responses, then exit the loop. Thread- and signal-safe
     *  trigger; returns immediately. */
    void beginDrain();

    /** Block until the loop has exited (drain complete or stop()). */
    void waitDrained();

    /** Immediate shutdown: close every socket and join the loop. */
    void stop();

    /** True once the loop has exited. */
    bool finished() const { return loopDone.load(); }

    SocketServerStats stats() const;

    /** Live connection count (loop-thread value, racy read). */
    size_t connectionCount() const { return connCount.load(); }

  private:
    struct Conn
    {
        uint64_t id = 0;
        int fd = -1;
        uint32_t peerAddr = 0; ///< IPv4 peer for the fairness cap
        HttpRequestParser parser;
        std::string out;     ///< unsent response bytes
        size_t outOff = 0;   ///< flushed prefix of out
        size_t inflight = 0; ///< 0 or 1 (requests are serialized)
        bool wantClose = false;
        bool readClosed = false;
        std::chrono::steady_clock::time_point lastActive;

        explicit Conn(HttpLimits lim) : parser(lim) {}
    };

    /** One respond()/stream() payload crossing into the loop. */
    struct Post
    {
        uint64_t connId = 0;
        std::string bytes;
        bool done = false;
        bool closeAfter = false;
    };

    void loop();
    void acceptReady();
    void connReadable(Conn &c);
    void connWritable(Conn &c);
    void parseRequests(Conn &c);
    void flush(Conn &c);
    void queueBytes(Conn &c, std::string bytes);
    void closeConn(Conn &c);
    void maybeClose(Conn &c);
    void applyPosts();
    void sweepIdle();
    void enterDrain();
    void updateInterest(Conn &c);

    /**
     * Per-connection unparsed-byte ceiling: one maximal request.
     * A complete request never exceeds it (the parser 431s oversized
     * heads and 413s oversized bodies first), so pausing reads at
     * the cap can never deadlock an idle connection — next() is
     * guaranteed Ready or Error once this much is buffered.
     */
    size_t recvCap() const
    {
        return cfg.limits.maxHeaderBytes + cfg.limits.maxBodyBytes;
    }

    const SocketServerConfig cfg;
    const RequestHandler handler;

    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1;
    uint16_t boundPort = 0;

    std::thread loopThread;
    std::atomic<bool> running{false};
    std::atomic<bool> stopFlag{false};
    std::atomic<bool> drainFlag{false};
    bool draining = false; ///< loop-thread view of drainFlag
    std::atomic<bool> loopDone{false};
    std::mutex doneMu;
    std::condition_variable doneCv;

    std::mutex postMu;
    std::vector<Post> posts; ///< outbox toward the loop

    uint64_t nextConnId = 1;
    std::unordered_map<int, std::unique_ptr<Conn>> connsByFd;
    std::unordered_map<uint64_t, Conn *> connsById;
    std::unordered_map<uint32_t, size_t> peerConns;
    std::atomic<size_t> connCount{0};

    // Counters are written by the loop thread, read anywhere.
    struct
    {
        std::atomic<uint64_t> accepted{0}, refused{0},
            peerRefused{0}, closed{0},
            requests{0}, badRequests{0}, drainSheds{0},
            idleCloses{0}, droppedResponses{0}, bytesIn{0},
            bytesOut{0};
    } counters;
};

} // namespace mokey::net

#endif // MOKEY_NET_SOCKET_SERVER_HH
