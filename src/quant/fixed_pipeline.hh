/**
 * @file
 * Integer-only index-domain compute (paper §II-F).
 *
 * The float-domain indexDot() proves the algebra; this engine proves
 * the *hardware claim*: every quantity — exponent bases, per-tensor
 * scaling coefficients, outlier centroids, accumulators — is a
 * two's-complement fixed-point integer. Histogram counters stay exact
 * integers; everything else is snapped to 16 b formats chosen per
 * Eq. 7/8, multiplied in wide integers, and rounded back. The final
 * output activation lands in the target layer's own 16 b format,
 * ready for the on-the-fly re-quantizer.
 */

#ifndef MOKEY_QUANT_FIXED_PIPELINE_HH
#define MOKEY_QUANT_FIXED_PIPELINE_HH

#include <array>
#include <cstdint>

#include "common/fixed_point.hh"
#include "quant/index_matmul.hh"
#include "quant/quantized_tensor.hh"

namespace mokey
{

/** Integer vector constants (fixed-point SoA2, exact PoM2). */
struct FixedVectorConstants
{
    int64_t soa2Raw = 0; ///< in the engine's base format
    int32_t pom2 = 0;    ///< exact integer count
};

/**
 * Fixed-point index-domain dot-product engine for one (activation,
 * weight) dictionary pair.
 *
 * Construction precomputes the 16 b power table and the eight 16 b
 * scaling coefficients; dotRaw() then runs entirely on integers.
 */
class FixedIndexEngine
{
  public:
    /**
     * @param dict_a  activation-side dictionary
     * @param dict_w  weight-side dictionary
     * @param out_fmt fixed-point format of the produced activations
     */
    FixedIndexEngine(const TensorDictionary &dict_a,
                     const TensorDictionary &dict_w,
                     FixedFormat out_fmt);

    /** Format the power table is held in. */
    const FixedFormat &baseFormat() const { return baseFmt; }

    /** Output activation format. */
    const FixedFormat &outputFormat() const { return outFmt; }

    /** Integer vector constants for @p n codes. */
    FixedVectorConstants vectorConstants(const QCode *codes,
                                         size_t n) const;

    /**
     * Integer-only dot product; returns the raw output in
     * outputFormat().
     */
    int64_t dotRaw(const QCode *a, const QCode *w, size_t k,
                   const FixedVectorConstants &ca,
                   const FixedVectorConstants &cw,
                   IndexMatmulStats *stats = nullptr) const;

    /** Convenience: dotRaw() decoded to a double. */
    double dot(const QCode *a, const QCode *w, size_t k,
               const FixedVectorConstants &ca,
               const FixedVectorConstants &cw,
               IndexMatmulStats *stats = nullptr) const;

  private:
    const TensorDictionary &dictA;
    const TensorDictionary &dictW;
    FixedFormat baseFmt; ///< format of a^e entries
    FixedFormat outFmt;
    FixedFormat accFmt;  ///< wide accumulation format

    std::array<int64_t, kMaxSumExponents> powRaw{};

    /** A 16 b fixed-point scalar coefficient with its own format. */
    struct Coeff
    {
        int64_t raw;
        FixedFormat fmt;
    };
    Coeff cSoi;  ///< sA sW
    Coeff cB;    ///< sA sW b
    Coeff cBB;   ///< sA sW b^2
    Coeff cAm;   ///< sA mW
    Coeff cAmB;  ///< sA mW b
    Coeff cWm;   ///< sW mA
    Coeff cWmB;  ///< sW mA b
    Coeff cMm;   ///< mA mW

    /** Outlier centroids and means snapped to operand formats. */
    std::vector<int64_t> otARaw;
    std::vector<int64_t> otWRaw;
    std::vector<int64_t> gARaw; ///< 16 gaussian centroids of A
    std::vector<int64_t> gWRaw;
    int64_t meanARaw;
    int64_t meanWRaw;

    static Coeff makeCoeff(double v);

    /** term = sum_raw(frac_sum) * coeff -> accFmt raw. */
    int64_t term(int64_t sum_raw, int frac_sum, const Coeff &c) const;

    int64_t decodeRaw(QCode q, bool is_a) const;
};

/**
 * Integer-only GEMM: out = A (M x K) * Wt^T, Wt (N x K); the result
 * tensor holds the decoded doubles of the 16 b fixed outputs.
 *
 * Engine construction and the per-column constants run once per
 * call; output row bands then fan out across the executor on
 * @p lane like the float/index engines. Every output element is an
 * independent integer computation, so results are bit-identical for
 * any thread count and lane assignment — pinned against
 * fixedIndexMatmulTransBScalar().
 */
Tensor fixedIndexMatmulTransB(const QuantizedTensor &a,
                              const QuantizedTensor &wt,
                              FixedFormat out_fmt,
                              IndexMatmulStats *stats = nullptr,
                              Lane lane = {});

/**
 * The same per-element kernel run entirely on the calling thread;
 * exists so parity tests can pin the parallel path bit-for-bit.
 */
Tensor fixedIndexMatmulTransBScalar(const QuantizedTensor &a,
                                    const QuantizedTensor &wt,
                                    FixedFormat out_fmt,
                                    IndexMatmulStats *stats = nullptr);

} // namespace mokey

#endif // MOKEY_QUANT_FIXED_PIPELINE_HH
