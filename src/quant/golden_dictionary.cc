#include "quant/golden_dictionary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mokey
{

GoldenDictionary
GoldenDictionary::generate(const GoldenDictionaryConfig &cfg)
{
    MOKEY_ASSERT(cfg.entries >= 2 && cfg.entries % 2 == 0,
                 "golden dictionary needs an even entry count");
    MOKEY_ASSERT(cfg.samples >= cfg.entries, "too few samples");
    MOKEY_ASSERT(cfg.repeats >= 1, "need at least one trial");

    std::vector<double> avg(cfg.entries, 0.0);
    for (size_t trial = 0; trial < cfg.repeats; ++trial) {
        Rng rng(cfg.seed + trial * 0x9e3779b9ull);
        const auto samples = rng.gaussianVector(cfg.samples, 0.0, 1.0);
        const auto res = agglomerative1d(samples, cfg.entries,
                                         cfg.linkage);
        MOKEY_ASSERT(res.centroids.size() == cfg.entries,
                     "clustering returned %zu centroids",
                     res.centroids.size());
        for (size_t i = 0; i < cfg.entries; ++i)
            avg[i] += res.centroids[i];
    }
    for (auto &c : avg)
        c /= static_cast<double>(cfg.repeats);

    return fromCentroids(std::move(avg));
}

GoldenDictionary
GoldenDictionary::fromCentroids(std::vector<double> sorted)
{
    MOKEY_ASSERT(std::is_sorted(sorted.begin(), sorted.end()),
                 "centroids must be sorted");
    MOKEY_ASSERT(sorted.size() % 2 == 0, "entry count must be even");
    GoldenDictionary gd;
    gd.full = std::move(sorted);
    gd.symmetrize();
    return gd;
}

void
GoldenDictionary::symmetrize()
{
    // Fold mirrored pairs: the j-th magnitude averages the j-th
    // centroid above zero with the j-th below zero.
    const size_t h = full.size() / 2;
    halfMagnitudes.assign(h, 0.0);
    for (size_t j = 0; j < h; ++j)
        halfMagnitudes[j] = 0.5 * (full[h + j] - full[h - 1 - j]);
    MOKEY_ASSERT(std::is_sorted(halfMagnitudes.begin(),
                                halfMagnitudes.end()),
                 "half magnitudes not monotone");
    MOKEY_ASSERT(halfMagnitudes.front() >= 0.0,
                 "negative magnitude after symmetrization");
}

} // namespace mokey
