#include "quant/quantizer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace mokey
{

Quantizer::Quantizer(ExpDictionary exp) : expDict(std::move(exp)) {}

TensorDictionary
Quantizer::buildDictionary(const Tensor &t,
                           const TensorDictConfig &cfg) const
{
    return TensorDictionary::build(expDict, t.raw(), cfg);
}

TensorDictionary
Quantizer::buildDictionaryFromSamples(const std::vector<float> &samples,
                                      const TensorDictConfig &cfg) const
{
    return TensorDictionary::build(expDict, samples, cfg);
}

QuantizedTensor
Quantizer::encode(const Tensor &t, const TensorDictionary &dict,
                  Lane lane) const
{
    QuantizedTensor q(t.rows(), t.cols(), dict);
    const size_t cols = t.cols();
    QCode *codes = q.raw().data();
    parallelFor(lane, 0, t.rows(),
                std::max<size_t>(1, 2048 / (cols + 1)),
                [&](size_t r) {
                    const float *src = t.row(r);
                    QCode *dst = codes + r * cols;
                    for (size_t c = 0; c < cols; ++c)
                        dst[c] = encodeValue(src[c], dict);
                });
    return q;
}

QCode
Quantizer::encodeValue(double v, const TensorDictionary &dict) const
{
    if (dict.isOutlierValue(v) && !dict.outlierCentroids().empty()) {
        return QCode::outlier(
            static_cast<uint8_t>(dict.nearestOutlierIndex(v)));
    }
    // Gaussian path: normalize to sigma units, pick the nearest
    // exponential magnitude.
    const double u = (v - dict.mean()) / dict.scale();
    const bool negative = u < 0.0;
    const size_t idx = dict.exp().nearestIndex(std::abs(u));
    return QCode::gaussian(negative, static_cast<uint8_t>(idx));
}

QCode
Quantizer::encodeComparatorLadder(double v,
                                  const TensorDictionary &dict) const
{
    const auto &lad = dict.ladder();
    MOKEY_ASSERT(!lad.empty(), "empty comparator ladder");

    // Fig. 7: the value is compared against every (sorted) centroid;
    // the comparator outputs form a run of 0s then 1s. The leading-1
    // position selects centroid CH; the entry before it is CL. Two
    // subtractions pick the closer one. The ladder is sorted, so the
    // leading-one detect is a binary search rather than a linear
    // sweep of all h + |OT| comparators.
    const auto it = std::lower_bound(
        lad.begin(), lad.end(), v,
        [](const TensorDictionary::LadderEntry &e, double x) {
            return e.value < x;
        });
    const size_t leading_one =
        static_cast<size_t>(it - lad.begin());

    size_t pick;
    if (leading_one == lad.size()) {
        pick = lad.size() - 1; // above every centroid
    } else if (leading_one == 0) {
        pick = 0; // below every centroid
    } else {
        const double d_hi = lad[leading_one].value - v;
        const double d_lo = v - lad[leading_one - 1].value;
        pick = (d_lo <= d_hi) ? leading_one - 1 : leading_one;
    }

    const auto &e = lad[pick];
    if (e.isOutlier)
        return QCode::outlier(e.index);
    return QCode::gaussian(e.negative, e.index);
}

double
Quantizer::decode(QCode code, const TensorDictionary &dict)
{
    if (code.isOutlier())
        return dict.outlierValue(code.outlierIndex());
    return dict.gaussianValue(code.negative(), code.index());
}

} // namespace mokey
