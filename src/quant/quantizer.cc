#include "quant/quantizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mokey
{

Quantizer::Quantizer(ExpDictionary exp) : expDict(std::move(exp)) {}

LadderSpec
LadderSpec::from(const TensorDictionary &dict)
{
    const ExpDictionary &exp = dict.exp();
    const size_t h = exp.indexCount();
    MOKEY_ASSERT(h >= 1 && h <= 8,
                 "ladder of %zu magnitudes exceeds the 8-entry "
                 "kernel table", h);
    LadderSpec spec;
    spec.h = h;
    for (size_t i = 0; i < 8; ++i) {
        spec.mags[i] = exp.magnitude(std::min(i, h - 1));
        spec.foldMags[i] = i < h ? exp.magnitude(i) : 0.0;
    }
    spec.mean = dict.mean();
    spec.scale = dict.scale();
    spec.cut = dict.outlierCentroids().empty()
        ? std::numeric_limits<double>::infinity()
        : dict.outlierCut();
    spec.dict = &dict;
    return spec;
}

size_t
LadderSpec::encodeRow(const float *src, size_t n, uint8_t *ix,
                      int8_t *th, double *mg,
                      std::vector<CodePlanes::Outlier> &ot) const
{
    const size_t n_ot =
        encodeLadder(src, n, mags, h, mean, scale, cut, ix, th, mg);
    if (n_ot == 0)
        return 0;
    // Resolve the rare outlier lanes scalar (the OPP side): the
    // kernel marked them with the zero-sign / zero-mag convention,
    // which doubles as the scan key.
    ot.reserve(ot.size() + n_ot);
    size_t found = 0;
    for (size_t c = 0; c < n && found < n_ot; ++c) {
        const bool is_ot = th ? th[c] == 0 : mg[c] == 0.0;
        if (!is_ot)
            continue;
        const double v = src[c];
        const size_t oi = dict->nearestOutlierIndex(v);
        ot.push_back({static_cast<uint32_t>(c),
                      static_cast<uint8_t>(oi),
                      dict->outlierValue(oi)});
        ++found;
    }
    return n_ot;
}

TensorDictionary
Quantizer::buildDictionary(const Tensor &t,
                           const TensorDictConfig &cfg) const
{
    return TensorDictionary::build(expDict, t.raw(), cfg);
}

TensorDictionary
Quantizer::buildDictionaryFromSamples(const std::vector<float> &samples,
                                      const TensorDictConfig &cfg) const
{
    return TensorDictionary::build(expDict, samples, cfg);
}

QuantizedTensor
Quantizer::encode(const Tensor &t, const TensorDictionary &dict,
                  Lane lane) const
{
    QuantizedTensor q(t.rows(), t.cols(), dict);
    const size_t cols = t.cols();
    QCode *codes = q.raw().data();
    parallelFor(lane, 0, t.rows(),
                std::max<size_t>(1, 2048 / (cols + 1)),
                [&](size_t r) {
                    const float *src = t.row(r);
                    QCode *dst = codes + r * cols;
                    for (size_t c = 0; c < cols; ++c)
                        dst[c] = encodeValue(src[c], dict);
                });
    return q;
}

QuantizedTensor
Quantizer::encodeToPlanes(const Tensor &t,
                          const TensorDictionary &dict, PlaneSet sets,
                          Lane lane) const
{
    const size_t rows = t.rows(), cols = t.cols();
    const bool wbytes = planeSetCovers(sets, PlaneSet::Bytes);
    const bool wmag = planeSetCovers(sets, PlaneSet::Mag);
    MOKEY_ASSERT(wbytes || wmag,
                 "encodeToPlanes needs at least one dense plane set");

    auto p = std::make_shared<CodePlanes>();
    p->rows = rows;
    p->cols = cols;
    p->sets = sets;
    if (wbytes) {
        p->index.resize(rows * cols);
        p->theta.resize(rows * cols);
    }
    if (wmag)
        p->mag.resize(rows * cols);

    // Ladder constants hoisted once (LadderSpec): magnitudes padded
    // to the kernel's 8-entry table; a dictionary without an outlier
    // table gets an infinite cut, mirroring encodeValue()'s
    // fall-through to the Gaussian path.
    const LadderSpec lad = LadderSpec::from(dict);
    if (wmag)
        p->magRowSum.resize(rows);
    if (wbytes)
        p->byteRowSum.resize(rows);

    // Outliers land in per-row buffers stitched in row order below,
    // so the sidecar is identical for every chunking. The fused walk
    // is roughly an order of magnitude cheaper per element than the
    // scalar encode(), hence the coarser grain.
    std::vector<std::vector<CodePlanes::Outlier>> row_ot(rows);
    parallelFor(
        lane, 0, rows, std::max<size_t>(1, 8192 / (cols + 1)),
        [&](size_t r) {
            const float *src = t.row(r);
            uint8_t *ix =
                wbytes ? p->index.data() + r * cols : nullptr;
            int8_t *th =
                wbytes ? p->theta.data() + r * cols : nullptr;
            double *mg = wmag ? p->mag.data() + r * cols : nullptr;
            lad.encodeRow(src, cols, ix, th, mg, row_ot[r]);
            // Fold the pairing-independent row terms (SoA2 + b*PoM2)
            // into the same walk, in each engine's own arithmetic
            // order, so no GEMM ever recomputes them.
            if (wmag)
                p->magRowSum[r] = magPlaneRowSum(mg, cols);
            if (wbytes)
                p->byteRowSum[r] =
                    bytePlaneRowSum(ix, th, cols, lad.foldMags);
        });

    p->rowStart.assign(rows + 1, 0);
    size_t total = 0;
    for (size_t r = 0; r < rows; ++r) {
        total += row_ot[r].size();
        p->rowStart[r + 1] = static_cast<uint32_t>(total);
    }
    p->outliers.reserve(total);
    for (size_t r = 0; r < rows; ++r)
        p->outliers.insert(p->outliers.end(), row_ot[r].begin(),
                           row_ot[r].end());
#ifndef NDEBUG
    // Same invariant derivePlanes() asserts: outlier slots must
    // carry the zero-index/zero-sign convention the branch-free
    // engines rely on.
    if (wbytes) {
        for (size_t r = 0; r < rows; ++r) {
            for (size_t i = 0; i < p->outlierCount(r); ++i) {
                const uint32_t c = p->outlierRow(r)[i].col;
                MOKEY_ASSERT(p->indexRow(r)[c] == 0 &&
                                 p->thetaRow(r)[c] == 0,
                             "fused outlier slot (%zu, %u) violates "
                             "the zero-index/zero-sign plane "
                             "convention", r, c);
            }
        }
    }
#endif
    return QuantizedTensor::fromPlanes(std::move(p), dict);
}

QCode
Quantizer::encodeValue(double v, const TensorDictionary &dict) const
{
    if (dict.isOutlierValue(v) && !dict.outlierCentroids().empty()) {
        return QCode::outlier(
            static_cast<uint8_t>(dict.nearestOutlierIndex(v)));
    }
    // Gaussian path: normalize to sigma units, pick the nearest
    // exponential magnitude.
    const double u = (v - dict.mean()) / dict.scale();
    const bool negative = u < 0.0;
    const size_t idx = dict.exp().nearestIndex(std::abs(u));
    return QCode::gaussian(negative, static_cast<uint8_t>(idx));
}

QCode
Quantizer::encodeComparatorLadder(double v,
                                  const TensorDictionary &dict) const
{
    const auto &lad = dict.ladder();
    MOKEY_ASSERT(!lad.empty(), "empty comparator ladder");

    // Fig. 7: the value is compared against every (sorted) centroid;
    // the comparator outputs form a run of 0s then 1s. The leading-1
    // position selects centroid CH; the entry before it is CL. Two
    // subtractions pick the closer one. The ladder is sorted, so the
    // leading-one detect is a binary search rather than a linear
    // sweep of all h + |OT| comparators.
    const auto it = std::lower_bound(
        lad.begin(), lad.end(), v,
        [](const TensorDictionary::LadderEntry &e, double x) {
            return e.value < x;
        });
    const size_t leading_one =
        static_cast<size_t>(it - lad.begin());

    size_t pick;
    if (leading_one == lad.size()) {
        pick = lad.size() - 1; // above every centroid
    } else if (leading_one == 0) {
        pick = 0; // below every centroid
    } else {
        const double d_hi = lad[leading_one].value - v;
        const double d_lo = v - lad[leading_one - 1].value;
        pick = (d_lo <= d_hi) ? leading_one - 1 : leading_one;
    }

    const auto &e = lad[pick];
    if (e.isOutlier)
        return QCode::outlier(e.index);
    return QCode::gaussian(e.negative, e.index);
}

double
Quantizer::decode(QCode code, const TensorDictionary &dict)
{
    if (code.isOutlier())
        return dict.outlierValue(code.outlierIndex());
    return dict.gaussianValue(code.negative(), code.index());
}

} // namespace mokey
