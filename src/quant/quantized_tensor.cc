#include "quant/quantized_tensor.hh"

#include <algorithm>
#include <mutex>

#include "common/logging.hh"

namespace mokey
{

QCode
QCode::gaussian(bool negative, uint8_t index)
{
    MOKEY_ASSERT(index <= idxMask, "gaussian index %u out of range",
                 index);
    return QCode{static_cast<uint8_t>(
        (negative ? signBit : 0) | index)};
}

QCode
QCode::outlier(uint8_t index)
{
    MOKEY_ASSERT(index <= 0xf, "outlier index %u out of range", index);
    return QCode{static_cast<uint8_t>(otlBit | index)};
}

QuantizedTensor::QuantizedTensor() : nRows(0), nCols(0) {}

QuantizedTensor::QuantizedTensor(size_t rows, size_t cols,
                                 TensorDictionary d)
    : nRows(rows), nCols(cols), codes(rows * cols, QCode{0}),
      dict(std::move(d))
{
}

const CodePlanes &
QuantizedTensor::planes() const
{
    // Concurrent const readers (two threads GEMMing with one shared
    // weight tensor) may race to build: the cache pointer is only
    // touched through atomic loads/stores, and a mutex makes the
    // build itself single-flight. The mutexes are striped by tensor
    // address so concurrent lanes building planes of *different*
    // tensors do not serialize on one process-wide lock. Mutation
    // during a concurrent planes() call remains the caller's bug.
    auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (cached)
        return *cached;

    static std::mutex build_mus[8];
    std::mutex &build_mu =
        build_mus[(reinterpret_cast<uintptr_t>(this) >> 4) & 7];
    std::lock_guard<std::mutex> lk(build_mu);
    cached = std::atomic_load_explicit(&planesCache,
                                       std::memory_order_acquire);
    if (cached)
        return *cached;

    auto p = std::make_shared<CodePlanes>();
    p->rows = nRows;
    p->cols = nCols;
    p->index.resize(codes.size());
    p->theta.resize(codes.size());
    p->mag.resize(codes.size());
    p->rowStart.assign(nRows + 1, 0);
    for (size_t r = 0; r < nRows; ++r) {
        const QCode *src = codes.data() + r * nCols;
        uint8_t *idx = p->index.data() + r * nCols;
        int8_t *th = p->theta.data() + r * nCols;
        double *mg = p->mag.data() + r * nCols;
        for (size_t c = 0; c < nCols; ++c) {
            const QCode q = src[c];
            if (q.isOutlier()) {
                idx[c] = 0;
                th[c] = 0;
                mg[c] = 0.0;
                p->outliers.push_back(
                    {static_cast<uint32_t>(c),
                     dict.outlierValue(q.outlierIndex())});
            } else {
                idx[c] = q.index();
                th[c] = static_cast<int8_t>(q.theta());
                mg[c] = q.theta() * dict.exp().magnitude(q.index());
            }
        }
        p->rowStart[r + 1] =
            static_cast<uint32_t>(p->outliers.size());
    }
    std::atomic_store_explicit(&planesCache,
                               std::shared_ptr<const CodePlanes>(p),
                               std::memory_order_release);
    return *p;
}

const CodePlanes &
QuantizedTensor::pinPlanes() const
{
    pinnedFlag.store(true, std::memory_order_relaxed);
    return planes();
}

void
QuantizedTensor::unpinPlanes() const
{
    pinnedFlag.store(false, std::memory_order_relaxed);
    dropPlanes();
}

PlanesFootprint
QuantizedTensor::planesFootprint() const
{
    PlanesFootprint f;
    f.pinned = planesPinned();
    f.codeBytes = codes.size() * sizeof(QCode);
    f.deriveElements = codes.size();
    const auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (!cached)
        return f;
    f.resident = true;
    f.outlierEntries = cached->outliers.size();
    f.planeBytes =
        cached->index.size() * sizeof(uint8_t) +
        cached->theta.size() * sizeof(int8_t) +
        cached->mag.size() * sizeof(double) +
        cached->rowStart.size() * sizeof(uint32_t) +
        cached->outliers.size() * sizeof(CodePlanes::Outlier);
    return f;
}

Tensor
QuantizedTensor::decode() const
{
    Tensor t(nRows, nCols);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(r, c) = static_cast<float>(decodeAt(r, c));
    return t;
}

double
QuantizedTensor::decodeAt(size_t r, size_t c) const
{
    const QCode q = at(r, c);
    if (q.isOutlier())
        return dict.outlierValue(q.outlierIndex());
    return dict.gaussianValue(q.negative(), q.index());
}

double
QuantizedTensor::outlierFraction() const
{
    if (codes.empty())
        return 0.0;
    size_t n = 0;
    for (const QCode q : codes)
        n += q.isOutlier();
    return static_cast<double>(n) / static_cast<double>(codes.size());
}

namespace
{

/** Same decode behaviour, i.e. safe to mix in one batched GEMM. */
bool
sameDictionary(const TensorDictionary &a, const TensorDictionary &b)
{
    return a.exp().a() == b.exp().a() && a.exp().b() == b.exp().b() &&
        a.exp().indexCount() == b.exp().indexCount() &&
        a.mean() == b.mean() && a.scale() == b.scale() &&
        a.outlierCentroids() == b.outlierCentroids();
}

} // anonymous namespace

QuantizedTensor
concatQuantizedRows(const std::vector<const QuantizedTensor *> &parts)
{
    MOKEY_ASSERT(!parts.empty(), "concat of zero quantized tensors");
    const size_t cols = parts[0]->cols();
    size_t rows = 0;
    for (const QuantizedTensor *p : parts) {
        MOKEY_ASSERT(p->cols() == cols,
                     "concat width mismatch: %zu vs %zu", p->cols(),
                     cols);
        MOKEY_ASSERT(sameDictionary(p->dictionary(),
                                    parts[0]->dictionary()),
                     "concat of tensors with different dictionaries");
        rows += p->rows();
    }

    QuantizedTensor out(rows, cols, parts[0]->dictionary());
    QCode *dst = out.raw().data();
    for (const QuantizedTensor *p : parts) {
        std::copy(p->raw().begin(), p->raw().end(), dst);
        dst += p->size();
    }
    return out;
}

size_t
QuantizedTensor::packedFootprintBits() const
{
    // Fig. 5: 4 b per value plus, per group of 64 values, a 7 b
    // outlier count and 6 b per outlier position.
    const size_t groups = (codes.size() + 63) / 64;
    size_t ot = 0;
    for (const QCode q : codes)
        ot += q.isOutlier();
    return codes.size() * 4 + groups * 7 + ot * 6;
}

} // namespace mokey
