#include "quant/quantized_tensor.hh"

#include <algorithm>
#include <mutex>

#include "common/logging.hh"

namespace mokey
{

QCode
QCode::gaussian(bool negative, uint8_t index)
{
    MOKEY_ASSERT(index <= idxMask, "gaussian index %u out of range",
                 index);
    return QCode{static_cast<uint8_t>(
        (negative ? signBit : 0) | index)};
}

QCode
QCode::outlier(uint8_t index)
{
    MOKEY_ASSERT(index <= 0xf, "outlier index %u out of range", index);
    return QCode{static_cast<uint8_t>(otlBit | index)};
}

QuantizedTensor::QuantizedTensor() : nRows(0), nCols(0) {}

QuantizedTensor::QuantizedTensor(size_t rows, size_t cols,
                                 TensorDictionary d)
    : nRows(rows), nCols(cols), codes(rows * cols, QCode{0}),
      dict(std::move(d))
{
}

std::shared_ptr<const CodePlanes>
QuantizedTensor::planesShared(PlaneSet need) const
{
    // Concurrent const readers (two threads GEMMing with one shared
    // weight tensor) may race to build: the cache pointer is only
    // touched through atomic loads/stores, and a mutex makes the
    // build itself single-flight. The mutexes are striped by tensor
    // address so concurrent lanes building planes of *different*
    // tensors do not serialize on one process-wide lock. Mutation
    // during a concurrent planes() call remains the caller's bug.
    auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (cached && planeSetCovers(cached->sets, need))
        return cached;

    static std::mutex build_mus[8];
    std::mutex &build_mu =
        build_mus[(reinterpret_cast<uintptr_t>(this) >> 4) & 7];
    std::lock_guard<std::mutex> lk(build_mu);
    cached = std::atomic_load_explicit(&planesCache,
                                       std::memory_order_acquire);
    if (cached && planeSetCovers(cached->sets, need))
        return cached;

    // Upgrade, never downgrade: a rebuild keeps every plane set the
    // displaced cache already carried, so alternating engines on one
    // tensor converges to the union instead of thrashing rebuilds.
    const PlaneSet sets =
        cached ? (cached->sets | need) : need;
    const bool want_bytes = planeSetCovers(sets, PlaneSet::Bytes);
    const bool want_mag = planeSetCovers(sets, PlaneSet::Mag);

    auto p = std::make_shared<CodePlanes>();
    p->rows = nRows;
    p->cols = nCols;
    p->sets = sets;
    // Keep the view we displace alive: references handed out by
    // planes() before this upgrade must survive until the codes are
    // mutated (dropPlanes releases the chain).
    p->displaced = cached;
    if (want_bytes) {
        p->index.resize(codes.size());
        p->theta.resize(codes.size());
    }
    if (want_mag)
        p->mag.resize(codes.size());
    p->rowStart.assign(nRows + 1, 0);
    for (size_t r = 0; r < nRows; ++r) {
        const QCode *src = codes.data() + r * nCols;
        uint8_t *idx = want_bytes ? p->index.data() + r * nCols
                                  : nullptr;
        int8_t *th = want_bytes ? p->theta.data() + r * nCols
                                : nullptr;
        double *mg = want_mag ? p->mag.data() + r * nCols : nullptr;
        for (size_t c = 0; c < nCols; ++c) {
            const QCode q = src[c];
            if (q.isOutlier()) {
                if (want_bytes) {
                    idx[c] = 0;
                    th[c] = 0;
                }
                if (want_mag)
                    mg[c] = 0.0;
                p->outliers.push_back(
                    {static_cast<uint32_t>(c),
                     dict.outlierValue(q.outlierIndex())});
            } else {
                if (want_bytes) {
                    idx[c] = q.index();
                    th[c] = static_cast<int8_t>(q.theta());
                }
                if (want_mag)
                    mg[c] =
                        q.theta() * dict.exp().magnitude(q.index());
            }
        }
        p->rowStart[r + 1] =
            static_cast<uint32_t>(p->outliers.size());
#ifndef NDEBUG
        // The branch-free counting loop depends on outlier slots
        // carrying (index 0, theta 0) so their sign product — and
        // with it every histogram contribution — vanishes. Enforce
        // the convention where the planes are derived instead of
        // assuming it downstream.
        if (want_bytes) {
            for (size_t c = 0; c < nCols; ++c) {
                if (src[c].isOutlier())
                    MOKEY_ASSERT(idx[c] == 0 && th[c] == 0,
                                 "outlier slot (%zu, %zu) violates "
                                 "the zero-index/zero-sign plane "
                                 "convention", r, c);
            }
        }
#endif
    }
    std::atomic_store_explicit(&planesCache,
                               std::shared_ptr<const CodePlanes>(p),
                               std::memory_order_release);
    return p;
}

const CodePlanes &
QuantizedTensor::planes(PlaneSet need) const
{
    // The reference stays valid until the codes are next mutated:
    // the cache keeps the view alive, and a concurrent plane-set
    // upgrade retains the view it displaces (CodePlanes::displaced)
    // rather than freeing it under outstanding references.
    return *planesShared(need);
}

const CodePlanes &
QuantizedTensor::pinPlanes(PlaneSet need) const
{
    pinnedFlag.store(true, std::memory_order_relaxed);
    return planes(need);
}

void
QuantizedTensor::unpinPlanes() const
{
    pinnedFlag.store(false, std::memory_order_relaxed);
    dropPlanes();
}

PlanesFootprint
QuantizedTensor::planesFootprint() const
{
    PlanesFootprint f;
    f.pinned = planesPinned();
    f.codeBytes = codes.size() * sizeof(QCode);
    f.deriveElements = codes.size();
    const auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (!cached)
        return f;
    const auto bytes_of = [](const CodePlanes &p) {
        return p.index.size() * sizeof(uint8_t) +
            p.theta.size() * sizeof(int8_t) +
            p.mag.size() * sizeof(double) +
            p.rowStart.size() * sizeof(uint32_t) +
            p.outliers.size() * sizeof(CodePlanes::Outlier);
    };
    f.resident = true;
    f.bytesResident = planeSetCovers(cached->sets, PlaneSet::Bytes);
    f.magResident = planeSetCovers(cached->sets, PlaneSet::Mag);
    f.outlierEntries = cached->outliers.size();
    f.planeBytes = bytes_of(*cached);
    // Views displaced by upgrades stay resident for reference
    // safety; report them so engine-switch memory cost is visible.
    for (auto d = cached->displaced; d; d = d->displaced)
        f.retiredBytes += bytes_of(*d);
    return f;
}

Tensor
QuantizedTensor::decode() const
{
    Tensor t(nRows, nCols);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(r, c) = static_cast<float>(decodeAt(r, c));
    return t;
}

double
QuantizedTensor::decodeAt(size_t r, size_t c) const
{
    const QCode q = at(r, c);
    if (q.isOutlier())
        return dict.outlierValue(q.outlierIndex());
    return dict.gaussianValue(q.negative(), q.index());
}

double
QuantizedTensor::outlierFraction() const
{
    if (codes.empty())
        return 0.0;
    size_t n = 0;
    for (const QCode q : codes)
        n += q.isOutlier();
    return static_cast<double>(n) / static_cast<double>(codes.size());
}

namespace
{

/** Same decode behaviour, i.e. safe to mix in one batched GEMM. */
bool
sameDictionary(const TensorDictionary &a, const TensorDictionary &b)
{
    return a.exp().a() == b.exp().a() && a.exp().b() == b.exp().b() &&
        a.exp().indexCount() == b.exp().indexCount() &&
        a.mean() == b.mean() && a.scale() == b.scale() &&
        a.outlierCentroids() == b.outlierCentroids();
}

} // anonymous namespace

QuantizedTensor
concatQuantizedRows(const std::vector<const QuantizedTensor *> &parts)
{
    MOKEY_ASSERT(!parts.empty(), "concat of zero quantized tensors");
    const size_t cols = parts[0]->cols();
    size_t rows = 0;
    for (const QuantizedTensor *p : parts) {
        MOKEY_ASSERT(p->cols() == cols,
                     "concat width mismatch: %zu vs %zu", p->cols(),
                     cols);
        MOKEY_ASSERT(sameDictionary(p->dictionary(),
                                    parts[0]->dictionary()),
                     "concat of tensors with different dictionaries");
        rows += p->rows();
    }

    QuantizedTensor out(rows, cols, parts[0]->dictionary());
    QCode *dst = out.raw().data();
    for (const QuantizedTensor *p : parts) {
        std::copy(p->raw().begin(), p->raw().end(), dst);
        dst += p->size();
    }
    return out;
}

size_t
QuantizedTensor::packedFootprintBits() const
{
    // Fig. 5: 4 b per value plus, per group of 64 values, a 7 b
    // outlier count and 6 b per outlier position.
    const size_t groups = (codes.size() + 63) / 64;
    size_t ot = 0;
    for (const QCode q : codes)
        ot += q.isOutlier();
    return codes.size() * 4 + groups * 7 + ot * 6;
}

} // namespace mokey
