#include "quant/quantized_tensor.hh"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mokey
{

double
magPlaneRowSum(const double *mg, size_t n)
{
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c)
        sum += mg[c];
    return sum;
}

double
bytePlaneRowSum(const uint8_t *ix, const int8_t *th, size_t n,
                const double *mags)
{
    // 8-entry histogram contract of signedIndexHistogram; indexes
    // beyond the dictionary never occur, so those buckets stay 0 and
    // the zero-padded table contributes exact zeros.
    int32_t h[8];
    signedIndexHistogram(ix, th, n, h);
    double sum = 0.0;
    for (size_t i = 0; i < 8; ++i)
        sum += h[i] * mags[i];
    return sum;
}

namespace
{

/** Zero-padded 8-entry magnitude table for the byte-plane fold. */
void
foldMagTable(const ExpDictionary &exp, double *mags)
{
    for (size_t i = 0; i < 8; ++i)
        mags[i] = 0.0;
    for (size_t i = 0; i < exp.indexCount(); ++i)
        mags[i] = exp.magnitude(i);
}

/** Fill the per-row fold sums for every materialized plane set. */
void
fillRowSums(CodePlanes &p, const ExpDictionary &exp)
{
    if (!p.mag.empty()) {
        p.magRowSum.resize(p.rows);
        for (size_t r = 0; r < p.rows; ++r)
            p.magRowSum[r] = magPlaneRowSum(p.magRow(r), p.cols);
    }
    if (!p.index.empty()) {
        double mags[8];
        foldMagTable(exp, mags);
        p.byteRowSum.resize(p.rows);
        for (size_t r = 0; r < p.rows; ++r)
            p.byteRowSum[r] =
                bytePlaneRowSum(p.indexRow(r), p.thetaRow(r), p.cols,
                                mags);
    }
}

} // anonymous namespace

QCode
QCode::gaussian(bool negative, uint8_t index)
{
    MOKEY_ASSERT(index <= idxMask, "gaussian index %u out of range",
                 index);
    return QCode{static_cast<uint8_t>(
        (negative ? signBit : 0) | index)};
}

QCode
QCode::outlier(uint8_t index)
{
    MOKEY_ASSERT(index <= 0xf, "outlier index %u out of range", index);
    return QCode{static_cast<uint8_t>(otlBit | index)};
}

QuantizedTensor::QuantizedTensor() : nRows(0), nCols(0) {}

QuantizedTensor::QuantizedTensor(size_t rows, size_t cols,
                                 TensorDictionary d)
    : nRows(rows), nCols(cols), codes(rows * cols, QCode{0}),
      dict(std::move(d))
{
}

QuantizedTensor
QuantizedTensor::fromPlanes(std::shared_ptr<const CodePlanes> planes,
                            TensorDictionary d)
{
    MOKEY_ASSERT(planes != nullptr, "fromPlanes with no planes");
    MOKEY_ASSERT(!planes->index.empty() || !planes->mag.empty() ||
                     planes->rows * planes->cols == 0,
                 "fromPlanes needs at least one dense plane to "
                 "materialize codes from");
    QuantizedTensor q;
    q.nRows = planes->rows;
    q.nCols = planes->cols;
    q.dict = std::move(d);
    std::atomic_store_explicit(
        &q.planesCache,
        std::shared_ptr<const CodePlanes>(std::move(planes)),
        std::memory_order_release);
    q.codesReady.store(false, std::memory_order_relaxed);
    return q;
}

void
QuantizedTensor::materializeCodes() const
{
    // Single-flight like the planes build, with its own stripe set
    // so a planes upgrade that needs the codes (planesShared ->
    // ensureCodes) can never self-deadlock on one mutex.
    static std::mutex code_mus[8];
    std::mutex &mu =
        code_mus[(reinterpret_cast<uintptr_t>(this) >> 4) & 7];
    std::lock_guard<std::mutex> lk(mu);
    if (codesReady.load(std::memory_order_acquire))
        return;

    const auto p = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    MOKEY_ASSERT(p != nullptr,
                 "planes-first tensor lost its planes view");
    const bool from_bytes = planeSetCovers(p->sets, PlaneSet::Bytes);
    std::vector<QCode> out(nRows * nCols, QCode{0});
    for (size_t r = 0; r < nRows; ++r) {
        QCode *dst = out.data() + r * nCols;
        if (from_bytes) {
            const uint8_t *ix = p->indexRow(r);
            const int8_t *th = p->thetaRow(r);
            for (size_t c = 0; c < nCols; ++c)
                dst[c] = QCode::gaussian(th[c] < 0, ix[c]);
        } else {
            // Invert the mag plane: entries are exact copies of
            // +/- dictionary magnitudes, so the nearest-index lookup
            // recovers the original index bit-exactly (the table is
            // strictly increasing, distance zero wins).
            const double *mg = p->magRow(r);
            for (size_t c = 0; c < nCols; ++c) {
                if (mg[c] == 0.0)
                    continue; // outlier slot, sidecar fills it below
                const bool neg = mg[c] < 0.0;
                const size_t i =
                    dict.exp().nearestIndex(std::abs(mg[c]));
                MOKEY_ASSERT(dict.exp().magnitude(i) ==
                                 std::abs(mg[c]),
                             "mag plane entry (%zu, %zu) is not a "
                             "dictionary magnitude", r, c);
                dst[c] = QCode::gaussian(neg, static_cast<uint8_t>(i));
            }
        }
        const CodePlanes::Outlier *ot = p->outlierRow(r);
        const size_t n_ot = p->outlierCount(r);
        for (size_t i = 0; i < n_ot; ++i)
            dst[ot[i].col] = QCode::outlier(ot[i].index);
    }
    codes = std::move(out);
    codesReady.store(true, std::memory_order_release);
}

std::shared_ptr<const CodePlanes>
QuantizedTensor::planesShared(PlaneSet need) const
{
    // Concurrent const readers (two threads GEMMing with one shared
    // weight tensor) may race to build: the cache pointer is only
    // touched through atomic loads/stores, and a mutex makes the
    // build itself single-flight. The mutexes are striped by tensor
    // address so concurrent lanes building planes of *different*
    // tensors do not serialize on one process-wide lock. Mutation
    // during a concurrent planes() call remains the caller's bug.
    auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (cached && planeSetCovers(cached->sets, need))
        return cached;

    static std::mutex build_mus[8];
    std::mutex &build_mu =
        build_mus[(reinterpret_cast<uintptr_t>(this) >> 4) & 7];
    std::lock_guard<std::mutex> lk(build_mu);
    cached = std::atomic_load_explicit(&planesCache,
                                       std::memory_order_acquire);
    if (cached && planeSetCovers(cached->sets, need))
        return cached;

    // Upgrade, never downgrade: a rebuild keeps every plane set the
    // displaced cache already carried, so alternating engines on one
    // tensor converges to the union instead of thrashing rebuilds.
    // The rebuild walks the code array, which a planes-first tensor
    // materializes here first (its own single-flight lock; never the
    // one held now).
    ensureCodes();
    const PlaneSet sets =
        cached ? (cached->sets | need) : need;
    const bool want_bytes = planeSetCovers(sets, PlaneSet::Bytes);
    const bool want_mag = planeSetCovers(sets, PlaneSet::Mag);

    auto p = std::make_shared<CodePlanes>();
    p->rows = nRows;
    p->cols = nCols;
    p->sets = sets;
    // Keep the view we displace alive: references handed out by
    // planes() before this upgrade must survive until the codes are
    // mutated (dropPlanes releases the chain).
    p->displaced = cached;
    if (want_bytes) {
        p->index.resize(codes.size());
        p->theta.resize(codes.size());
    }
    if (want_mag)
        p->mag.resize(codes.size());
    p->rowStart.assign(nRows + 1, 0);
    for (size_t r = 0; r < nRows; ++r) {
        const QCode *src = codes.data() + r * nCols;
        uint8_t *idx = want_bytes ? p->index.data() + r * nCols
                                  : nullptr;
        int8_t *th = want_bytes ? p->theta.data() + r * nCols
                                : nullptr;
        double *mg = want_mag ? p->mag.data() + r * nCols : nullptr;
        for (size_t c = 0; c < nCols; ++c) {
            const QCode q = src[c];
            if (q.isOutlier()) {
                if (want_bytes) {
                    idx[c] = 0;
                    th[c] = 0;
                }
                if (want_mag)
                    mg[c] = 0.0;
                p->outliers.push_back(
                    {static_cast<uint32_t>(c), q.outlierIndex(),
                     dict.outlierValue(q.outlierIndex())});
            } else {
                if (want_bytes) {
                    idx[c] = q.index();
                    th[c] = static_cast<int8_t>(q.theta());
                }
                if (want_mag)
                    mg[c] =
                        q.theta() * dict.exp().magnitude(q.index());
            }
        }
        p->rowStart[r + 1] =
            static_cast<uint32_t>(p->outliers.size());
#ifndef NDEBUG
        // The branch-free counting loop depends on outlier slots
        // carrying (index 0, theta 0) so their sign product — and
        // with it every histogram contribution — vanishes. Enforce
        // the convention where the planes are derived instead of
        // assuming it downstream.
        if (want_bytes) {
            for (size_t c = 0; c < nCols; ++c) {
                if (src[c].isOutlier())
                    MOKEY_ASSERT(idx[c] == 0 && th[c] == 0,
                                 "outlier slot (%zu, %zu) violates "
                                 "the zero-index/zero-sign plane "
                                 "convention", r, c);
            }
        }
#endif
    }
    fillRowSums(*p, dict.exp());
    std::atomic_store_explicit(&planesCache,
                               std::shared_ptr<const CodePlanes>(p),
                               std::memory_order_release);
    return p;
}

const CodePlanes &
QuantizedTensor::planes(PlaneSet need) const
{
    // The reference stays valid until the codes are next mutated:
    // the cache keeps the view alive, and a concurrent plane-set
    // upgrade retains the view it displaces (CodePlanes::displaced)
    // rather than freeing it under outstanding references.
    return *planesShared(need);
}

const CodePlanes &
QuantizedTensor::pinPlanes(PlaneSet need) const
{
    pinnedFlag.store(true, std::memory_order_relaxed);
    return planes(need);
}

void
QuantizedTensor::unpinPlanes() const
{
    // For a planes-first tensor the cached planes are the source of
    // truth: rescue the codes before releasing the view.
    ensureCodes();
    pinnedFlag.store(false, std::memory_order_relaxed);
    dropPlanes();
}

PlanesFootprint
QuantizedTensor::planesFootprint() const
{
    PlanesFootprint f;
    f.pinned = planesPinned();
    // Resident code bytes: zero for a planes-first tensor whose
    // codes were never materialized (the planes are its only
    // storage); the rebuild pass count is shape-based either way.
    // The ready flag gates the read — a concurrent const reader may
    // be materializing (move-assigning) the vector right now.
    f.codeBytes = codesReady.load(std::memory_order_acquire)
        ? codes.size() * sizeof(QCode)
        : 0;
    f.deriveElements = size();
    const auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    if (!cached)
        return f;
    const auto bytes_of = [](const CodePlanes &p) {
        return p.index.size() * sizeof(uint8_t) +
            p.theta.size() * sizeof(int8_t) +
            p.mag.size() * sizeof(double) +
            p.rowStart.size() * sizeof(uint32_t) +
            p.outliers.size() * sizeof(CodePlanes::Outlier) +
            (p.magRowSum.size() + p.byteRowSum.size()) *
                sizeof(double);
    };
    f.resident = true;
    f.bytesResident = planeSetCovers(cached->sets, PlaneSet::Bytes);
    f.magResident = planeSetCovers(cached->sets, PlaneSet::Mag);
    f.outlierEntries = cached->outliers.size();
    f.planeBytes = bytes_of(*cached);
    // Views displaced by upgrades stay resident for reference
    // safety; report them so engine-switch memory cost is visible.
    for (auto d = cached->displaced; d; d = d->displaced)
        f.retiredBytes += bytes_of(*d);
    return f;
}

Tensor
QuantizedTensor::decode() const
{
    Tensor t(nRows, nCols);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(r, c) = static_cast<float>(decodeAt(r, c));
    return t;
}

double
QuantizedTensor::decodeAt(size_t r, size_t c) const
{
    const QCode q = at(r, c);
    if (q.isOutlier())
        return dict.outlierValue(q.outlierIndex());
    return dict.gaussianValue(q.negative(), q.index());
}

double
QuantizedTensor::outlierFraction() const
{
    if (size() == 0)
        return 0.0;
    // The resident sidecar already knows the count; only a tensor
    // with neither planes nor codes has to materialize.
    const auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    size_t n = 0;
    if (cached) {
        n = cached->outliers.size();
    } else {
        ensureCodes();
        for (const QCode q : codes)
            n += q.isOutlier();
    }
    return static_cast<double>(n) / static_cast<double>(size());
}

namespace
{

/** Same decode behaviour, i.e. safe to mix in one batched GEMM. */
bool
sameDictionary(const TensorDictionary &a, const TensorDictionary &b)
{
    return a.exp().a() == b.exp().a() && a.exp().b() == b.exp().b() &&
        a.exp().indexCount() == b.exp().indexCount() &&
        a.mean() == b.mean() && a.scale() == b.scale() &&
        a.outlierCentroids() == b.outlierCentroids();
}

} // anonymous namespace

QuantizedTensor
concatQuantizedRows(const std::vector<const QuantizedTensor *> &parts)
{
    MOKEY_ASSERT(!parts.empty(), "concat of zero quantized tensors");
    const size_t cols = parts[0]->cols();
    size_t rows = 0;
    for (const QuantizedTensor *p : parts) {
        MOKEY_ASSERT(p->cols() == cols,
                     "concat width mismatch: %zu vs %zu", p->cols(),
                     cols);
        MOKEY_ASSERT(sameDictionary(p->dictionary(),
                                    parts[0]->dictionary()),
                     "concat of tensors with different dictionaries");
        rows += p->rows();
    }

    QuantizedTensor out(rows, cols, parts[0]->dictionary());
    QCode *dst = out.raw().data();
    for (const QuantizedTensor *p : parts) {
        std::copy(p->raw().begin(), p->raw().end(), dst);
        dst += p->size();
    }
    return out;
}

size_t
QuantizedTensor::packedFootprintBits() const
{
    // Fig. 5: 4 b per value plus, per group of 64 values, a 7 b
    // outlier count and 6 b per outlier position. Accounting only —
    // the sidecar count is enough, no need to materialize codes.
    const size_t groups = (size() + 63) / 64;
    const auto cached = std::atomic_load_explicit(
        &planesCache, std::memory_order_acquire);
    size_t ot = 0;
    if (cached) {
        ot = cached->outliers.size();
    } else {
        ensureCodes();
        for (const QCode q : codes)
            ot += q.isOutlier();
    }
    return size() * 4 + groups * 7 + ot * 6;
}

} // namespace mokey
