#include "quant/quantized_tensor.hh"

#include "common/logging.hh"

namespace mokey
{

QCode
QCode::gaussian(bool negative, uint8_t index)
{
    MOKEY_ASSERT(index <= idxMask, "gaussian index %u out of range",
                 index);
    return QCode{static_cast<uint8_t>(
        (negative ? signBit : 0) | index)};
}

QCode
QCode::outlier(uint8_t index)
{
    MOKEY_ASSERT(index <= 0xf, "outlier index %u out of range", index);
    return QCode{static_cast<uint8_t>(otlBit | index)};
}

QuantizedTensor::QuantizedTensor() : nRows(0), nCols(0) {}

QuantizedTensor::QuantizedTensor(size_t rows, size_t cols,
                                 TensorDictionary d)
    : nRows(rows), nCols(cols), codes(rows * cols, QCode{0}),
      dict(std::move(d))
{
}

Tensor
QuantizedTensor::decode() const
{
    Tensor t(nRows, nCols);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(r, c) = static_cast<float>(decodeAt(r, c));
    return t;
}

double
QuantizedTensor::decodeAt(size_t r, size_t c) const
{
    const QCode q = at(r, c);
    if (q.isOutlier())
        return dict.outlierValue(q.outlierIndex());
    return dict.gaussianValue(q.negative(), q.index());
}

double
QuantizedTensor::outlierFraction() const
{
    if (codes.empty())
        return 0.0;
    size_t n = 0;
    for (const QCode q : codes)
        n += q.isOutlier();
    return static_cast<double>(n) / static_cast<double>(codes.size());
}

size_t
QuantizedTensor::packedFootprintBits() const
{
    // Fig. 5: 4 b per value plus, per group of 64 values, a 7 b
    // outlier count and 6 b per outlier position.
    const size_t groups = (codes.size() + 63) / 64;
    size_t ot = 0;
    for (const QCode q : codes)
        ot += q.isOutlier();
    return codes.size() * 4 + groups * 7 + ot * 6;
}

} // namespace mokey
