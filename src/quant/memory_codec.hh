/**
 * @file
 * The DRAM-friendly packed container (paper §III-A, Fig. 5).
 *
 * Off-chip, every value is a 4 b index (1 b sign + 3 b index for
 * Gaussian codes, or a 4 b outlier-dictionary index). Which indexes
 * are outliers is carried by a second, much smaller stream: per group
 * of 64 values, an outlier count followed by one 6 b in-group
 * position per outlier. Both streams are read sequentially, which is
 * what makes the container DRAM-friendly. On-chip the codes expand to
 * the 5 b (isOtl, sign, index) form.
 */

#ifndef MOKEY_QUANT_MEMORY_CODEC_HH
#define MOKEY_QUANT_MEMORY_CODEC_HH

#include <cstdint>
#include <vector>

#include "common/parallel.hh"
#include "quant/quantized_tensor.hh"

namespace mokey
{

/** Little-endian LSB-first bit stream writer. */
class BitWriter
{
  public:
    /** Append the low @p bits bits of @p value. */
    void put(uint64_t value, unsigned bits);

    /**
     * Append another writer's whole stream at the current bit
     * position (byte-aligned appends are a bulk copy). This is what
     * lets the parallel codec pack independent group bands into
     * private writers and stitch them into one bit-exact stream.
     */
    void append(const BitWriter &o);

    /** Finished byte vector (final partial byte zero-padded). */
    const std::vector<uint8_t> &bytes() const { return buf; }

    /** Number of bits written. */
    size_t bitCount() const { return nBits; }

  private:
    std::vector<uint8_t> buf;
    size_t nBits = 0;
};

/** Reader matching BitWriter's layout. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes);

    /** Read @p bits bits; reading past the end is a panic. */
    uint64_t get(unsigned bits);

    /** Advance @p bits without decoding (band-start seeks). */
    void skip(size_t bits);

    /** Bits consumed so far. */
    size_t position() const { return pos; }

  private:
    const std::vector<uint8_t> &buf;
    size_t pos;
};

/** The two packed streams of Fig. 5. */
struct PackedTensor
{
    std::vector<uint8_t> values;     ///< 4 b indexes, dense
    std::vector<uint8_t> otPointers; ///< count + 6 b positions/group
    size_t count = 0;                ///< number of packed codes
    size_t rows = 0;
    size_t cols = 0;

    /** Total container size in bits (both streams). */
    size_t totalBits() const;

    /** Compression ratio against @p baseline_bits_per_value. */
    double compressionRatio(size_t baseline_bits_per_value) const;
};

/** Values per pointer-stream group (Fig. 5 uses 64). */
constexpr size_t kCodecGroupSize = 64;

/** Bits for the per-group outlier count (0..64 needs 7). */
constexpr unsigned kCodecCountBits = 7;

/** Bits for an in-group outlier position (0..63). */
constexpr unsigned kCodecPosBits = 6;

/**
 * Pack a quantized tensor into the DRAM container.
 *
 * Bands of whole pointer-stream groups are encoded concurrently on
 * the executor (each band into private bit streams) and stitched in
 * group order, so the output is bit-identical to packTensorScalar()
 * for every thread count and lane — each group's encoding depends
 * only on its own 64 codes. Small tensors run inline.
 */
PackedTensor packTensor(const QuantizedTensor &q, Lane lane = {});

/**
 * Unpack a DRAM container back into 5 b codes.
 *
 * A sequential prescan of the (count, positions) stream finds each
 * band's bit offset — the per-group counts make the pointer stream
 * self-delimiting — then bands decode concurrently into disjoint
 * code ranges. Bit-identical to unpackTensorScalar() for every
 * thread count and lane.
 *
 * @param p    the packed streams
 * @param dict the dictionary the codes decode under (copied into the
 *             result tensor)
 */
QuantizedTensor unpackTensor(const PackedTensor &p,
                             const TensorDictionary &dict,
                             Lane lane = {});

/** Single-threaded pack (the bit-parity pin for packTensor). */
PackedTensor packTensorScalar(const QuantizedTensor &q);

/** Single-threaded unpack (the bit-parity pin for unpackTensor). */
QuantizedTensor unpackTensorScalar(const PackedTensor &p,
                                   const TensorDictionary &dict);

} // namespace mokey

#endif // MOKEY_QUANT_MEMORY_CODEC_HH
