#include "quant/index_matmul.hh"

#include <cmath>

#include "common/logging.hh"

namespace mokey
{

void
CrfState::clear()
{
    soi.fill(0);
    soa1.fill(0);
    sow1.fill(0);
    pom1 = 0;
}

double
IndexMatmulStats::outlierPairFraction() const
{
    const uint64_t total = gaussianPairs + outlierPairs;
    if (total == 0)
        return 0.0;
    return static_cast<double>(outlierPairs) /
        static_cast<double>(total);
}

void
IndexMatmulStats::merge(const IndexMatmulStats &o)
{
    gaussianPairs += o.gaussianPairs;
    outlierPairs += o.outlierPairs;
}

VectorConstants
vectorConstants(const QCode *codes, size_t n, const ExpDictionary &exp)
{
    VectorConstants c;
    for (size_t i = 0; i < n; ++i) {
        const QCode q = codes[i];
        if (q.isOutlier())
            continue;
        const double p = exp.power(q.index());
        if (q.negative()) {
            c.soa2 -= p;
            c.pom2 -= 1.0;
        } else {
            c.soa2 += p;
            c.pom2 += 1.0;
        }
    }
    return c;
}

namespace
{

/** Decoded centroid of a code (no fixed-point snapping). */
double
decodeCode(QCode q, const TensorDictionary &d)
{
    if (q.isOutlier())
        return d.outlierValue(q.outlierIndex());
    return d.gaussianValue(q.negative(), q.index());
}

} // anonymous namespace

double
indexDot(const QCode *a, const TensorDictionary &dict_a,
         const QCode *w, const TensorDictionary &dict_w, size_t k,
         const VectorConstants &ca, const VectorConstants &cw,
         IndexMatmulStats *stats, CrfState *crf_out)
{
    const ExpDictionary &exp = dict_a.exp();
    MOKEY_ASSERT(exp.a() == dict_w.exp().a() &&
                 exp.b() == dict_w.exp().b(),
                 "operands use different exponential dictionaries");
    const size_t h = exp.indexCount();
    MOKEY_ASSERT(h <= kMaxGaussianIndexes,
                 "index space %zu exceeds CRF capacity", h);

    CrfState crf;
    double ot_acc = 0.0;
    uint64_t g_pairs = 0, ot_pairs = 0;

    const double m_a = dict_a.mean(), m_w = dict_w.mean();

    for (size_t i = 0; i < k; ++i) {
        const QCode qa = a[i], qw = w[i];
        if (qa.isOutlier() || qw.isOutlier()) {
            // OPP path: one real MAC plus the exact correction for
            // what the precomputed terms already counted.
            const double av = decodeCode(qa, dict_a);
            const double wv = decodeCode(qw, dict_w);
            double corr;
            if (qa.isOutlier() && qw.isOutlier())
                corr = m_a * m_w;
            else if (qa.isOutlier())
                corr = m_a * wv;
            else
                corr = m_w * av;
            ot_acc += av * wv - corr;
            ++ot_pairs;
            continue;
        }
        // GPE path: add the 3 b indexes, XOR the signs, bump the
        // CRFs (Fig. 6).
        const int sign = (qa.negative() != qw.negative()) ? -1 : 1;
        crf.soi[qa.index() + qw.index()] += sign;
        crf.soa1[qa.index()] += sign;
        crf.sow1[qw.index()] += sign;
        crf.pom1 += sign;
        ++g_pairs;
    }

    // Post-processing: multiply histogram counts by their bases and
    // scale by the per-tensor constants (the OPP's serial phase).
    double soi = 0.0;
    for (size_t e = 0; e < 2 * h - 1; ++e)
        soi += crf.soi[e] * exp.power(e);
    double soa1 = 0.0, sow1 = 0.0;
    for (size_t i = 0; i < h; ++i) {
        soa1 += crf.soa1[i] * exp.power(i);
        sow1 += crf.sow1[i] * exp.power(i);
    }

    const double s_a = dict_a.scale(), s_w = dict_w.scale();
    const double b = exp.b();

    const double result =
        s_a * s_w * soi +
        s_a * s_w * b * (soa1 + sow1) +
        s_a * s_w * b * b * crf.pom1 +
        s_a * m_w * (ca.soa2 + b * ca.pom2) +
        s_w * m_a * (cw.soa2 + b * cw.pom2) +
        static_cast<double>(k) * m_a * m_w +
        ot_acc;

    if (stats) {
        stats->gaussianPairs += g_pairs;
        stats->outlierPairs += ot_pairs;
    }
    if (crf_out)
        *crf_out = crf;
    return result;
}

Tensor
indexMatmulTransB(const QuantizedTensor &a, const QuantizedTensor &wt,
                  IndexMatmulStats *stats)
{
    MOKEY_ASSERT(a.cols() == wt.cols(),
                 "index matmul reduction mismatch: %zu vs %zu",
                 a.cols(), wt.cols());
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    const ExpDictionary &exp = a.dictionary().exp();

    // Pairing-independent sums: per activation row and per weight
    // column (row of Wt). In hardware these are produced while the
    // previous layer's output is quantized (rows) and at compile time
    // (columns).
    std::vector<VectorConstants> row_c(m), col_c(n);
    for (size_t i = 0; i < m; ++i)
        row_c[i] = vectorConstants(a.row(i), k, exp);
    for (size_t j = 0; j < n; ++j)
        col_c[j] = vectorConstants(wt.row(j), k,
                                   wt.dictionary().exp());

    Tensor out(m, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            out.at(i, j) = static_cast<float>(
                indexDot(a.row(i), a.dictionary(), wt.row(j),
                         wt.dictionary(), k, row_c[i], col_c[j],
                         stats));
        }
    }
    return out;
}

Tensor
decodedMatmulTransB(const QuantizedTensor &a, const QuantizedTensor &wt)
{
    MOKEY_ASSERT(a.cols() == wt.cols(), "shape mismatch");
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    Tensor out(m, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += a.decodeAt(i, p) * wt.decodeAt(j, p);
            out.at(i, j) = static_cast<float>(acc);
        }
    }
    return out;
}

} // namespace mokey
