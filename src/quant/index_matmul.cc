#include "quant/index_matmul.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "quant/quantizer.hh"

namespace mokey
{

void
CrfState::clear()
{
    soi.fill(0);
    soa1.fill(0);
    sow1.fill(0);
    pom1 = 0;
}

void
IndexMatmulStats::add(uint64_t gaussian, uint64_t outlier)
{
    gaussianPairs.fetch_add(gaussian, std::memory_order_relaxed);
    outlierPairs.fetch_add(outlier, std::memory_order_relaxed);
}

double
IndexMatmulStats::outlierPairFraction() const
{
    const uint64_t g = gaussianPairs.load(std::memory_order_relaxed);
    const uint64_t ot = outlierPairs.load(std::memory_order_relaxed);
    if (g + ot == 0)
        return 0.0;
    return static_cast<double>(ot) / static_cast<double>(g + ot);
}

void
IndexMatmulStats::merge(const IndexMatmulStats &o)
{
    add(o.gaussianPairs.load(std::memory_order_relaxed),
        o.outlierPairs.load(std::memory_order_relaxed));
}

VectorConstants
vectorConstants(const QCode *codes, size_t n, const ExpDictionary &exp)
{
    VectorConstants c;
    for (size_t i = 0; i < n; ++i) {
        const QCode q = codes[i];
        if (q.isOutlier())
            continue;
        const double p = exp.power(q.index());
        if (q.negative()) {
            c.soa2 -= p;
            c.pom2 -= 1.0;
        } else {
            c.soa2 += p;
            c.pom2 += 1.0;
        }
    }
    return c;
}

namespace
{

/** Decoded centroid of a code (no fixed-point snapping). */
double
decodeCode(QCode q, const TensorDictionary &d)
{
    if (q.isOutlier())
        return d.outlierValue(q.outlierIndex());
    return d.gaussianValue(q.negative(), q.index());
}

} // anonymous namespace

double
indexDot(const QCode *a, const TensorDictionary &dict_a,
         const QCode *w, const TensorDictionary &dict_w, size_t k,
         const VectorConstants &ca, const VectorConstants &cw,
         IndexMatmulStats *stats, CrfState *crf_out)
{
    const ExpDictionary &exp = dict_a.exp();
    MOKEY_ASSERT(exp.a() == dict_w.exp().a() &&
                 exp.b() == dict_w.exp().b(),
                 "operands use different exponential dictionaries");
    const size_t h = exp.indexCount();
    MOKEY_ASSERT(h <= kMaxGaussianIndexes,
                 "index space %zu exceeds CRF capacity", h);

    CrfState crf;
    double ot_acc = 0.0;
    uint64_t g_pairs = 0, ot_pairs = 0;

    const double m_a = dict_a.mean(), m_w = dict_w.mean();

    for (size_t i = 0; i < k; ++i) {
        const QCode qa = a[i], qw = w[i];
        if (qa.isOutlier() || qw.isOutlier()) {
            // OPP path: one real MAC plus the exact correction for
            // what the precomputed terms already counted.
            const double av = decodeCode(qa, dict_a);
            const double wv = decodeCode(qw, dict_w);
            double corr;
            if (qa.isOutlier() && qw.isOutlier())
                corr = m_a * m_w;
            else if (qa.isOutlier())
                corr = m_a * wv;
            else
                corr = m_w * av;
            ot_acc += av * wv - corr;
            ++ot_pairs;
            continue;
        }
        // GPE path: add the 3 b indexes, XOR the signs, bump the
        // CRFs (Fig. 6).
        const int sign = (qa.negative() != qw.negative()) ? -1 : 1;
        crf.soi[qa.index() + qw.index()] += sign;
        crf.soa1[qa.index()] += sign;
        crf.sow1[qw.index()] += sign;
        crf.pom1 += sign;
        ++g_pairs;
    }

    // Post-processing: multiply histogram counts by their bases and
    // scale by the per-tensor constants (the OPP's serial phase).
    double soi = 0.0;
    for (size_t e = 0; e < 2 * h - 1; ++e)
        soi += crf.soi[e] * exp.power(e);
    double soa1 = 0.0, sow1 = 0.0;
    for (size_t i = 0; i < h; ++i) {
        soa1 += crf.soa1[i] * exp.power(i);
        sow1 += crf.sow1[i] * exp.power(i);
    }

    const double s_a = dict_a.scale(), s_w = dict_w.scale();
    const double b = exp.b();

    const double result =
        s_a * s_w * soi +
        s_a * s_w * b * (soa1 + sow1) +
        s_a * s_w * b * b * crf.pom1 +
        s_a * m_w * (ca.soa2 + b * ca.pom2) +
        s_w * m_a * (cw.soa2 + b * cw.pom2) +
        static_cast<double>(k) * m_a * m_w +
        ot_acc;

    if (stats)
        stats->add(g_pairs, ot_pairs);
    if (crf_out)
        *crf_out = crf;
    return result;
}

Tensor
indexMatmulTransBReference(const QuantizedTensor &a,
                           const QuantizedTensor &wt,
                           IndexMatmulStats *stats)
{
    MOKEY_ASSERT(a.cols() == wt.cols(),
                 "index matmul reduction mismatch: %zu vs %zu",
                 a.cols(), wt.cols());
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    const ExpDictionary &exp = a.dictionary().exp();

    // Pairing-independent sums: per activation row and per weight
    // column (row of Wt). In hardware these are produced while the
    // previous layer's output is quantized (rows) and at compile time
    // (columns).
    std::vector<VectorConstants> row_c(m), col_c(n);
    for (size_t i = 0; i < m; ++i)
        row_c[i] = vectorConstants(a.row(i), k, exp);
    for (size_t j = 0; j < n; ++j)
        col_c[j] = vectorConstants(wt.row(j), k,
                                   wt.dictionary().exp());

    Tensor out(m, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            out.at(i, j) = static_cast<float>(
                indexDot(a.row(i), a.dictionary(), wt.row(j),
                         wt.dictionary(), k, row_c[i], col_c[j],
                         stats));
        }
    }
    return out;
}

GemmConstants
gemmConstants(const TensorDictionary &da, const TensorDictionary &dw,
              size_t k)
{
    const ExpDictionary &exp = da.exp();
    MOKEY_ASSERT(exp.a() == dw.exp().a() &&
                 exp.b() == dw.exp().b(),
                 "operands use different exponential dictionaries");
    MOKEY_ASSERT(exp.indexCount() <= kMaxGaussianIndexes,
                 "index space %zu exceeds CRF capacity",
                 exp.indexCount());

    GemmConstants ctx;
    ctx.k = k;
    ctx.sA = da.scale();
    ctx.sW = dw.scale();
    ctx.mA = da.mean();
    ctx.mW = dw.mean();
    ctx.c0 = ctx.sA * ctx.sW;
    ctx.constTerm = static_cast<double>(ctx.k) * ctx.mA * ctx.mW;
    const size_t h = exp.indexCount();
    for (size_t i = 0; i < h; ++i)
        ctx.mags[i] = exp.magnitude(i);
    for (size_t ia = 0; ia < kMaxGaussianIndexes; ++ia)
        for (size_t iw = 0; iw < kMaxGaussianIndexes; ++iw)
            ctx.prod[(ia << 3) | iw] = ctx.mags[ia] * ctx.mags[iw];
    return ctx;
}

namespace
{

/**
 * Small sharded LRU behind cachedGemmConstants(). The key is the
 * complete set of value inputs to gemmConstants() — two dictionaries'
 * (scale, mean), the shared exponential dictionary's (a, b,
 * indexCount), and K — so two keys that compare equal derive
 * bit-identical constants and a collision is by construction
 * impossible to observe. Sharding by key hash keeps concurrent lanes
 * off each other's mutex; each shard is a tiny move-to-front vector
 * (attention sites produce one K per (layer, seq) — a handful of
 * live keys per serving mix).
 */
struct GemmKey
{
    double sA, mA, sW, mW, expA, expB;
    size_t h, k;

    bool operator==(const GemmKey &o) const
    {
        return sA == o.sA && mA == o.mA && sW == o.sW &&
               mW == o.mW && expA == o.expA && expB == o.expB &&
               h == o.h && k == o.k;
    }
};

class GemmConstantsCache
{
  public:
    static GemmConstantsCache &global()
    {
        static GemmConstantsCache cache;
        return cache;
    }

    GemmConstants get(const TensorDictionary &da,
                      const TensorDictionary &dw, size_t k)
    {
        const ExpDictionary &exp = da.exp();
        const GemmKey key{da.scale(), da.mean(),  dw.scale(),
                          dw.mean(),  exp.a(),    exp.b(),
                          exp.indexCount(),       k};
        Shard &shard = shards[hashKey(key) % kShards];
        {
            std::lock_guard<std::mutex> lk(shard.mu);
            for (size_t i = 0; i < shard.entries.size(); ++i) {
                if (shard.entries[i].key == key) {
                    if (i != 0)
                        std::rotate(shard.entries.begin(),
                                    shard.entries.begin() + i,
                                    shard.entries.begin() + i + 1);
                    hits.fetch_add(1, std::memory_order_relaxed);
                    return shard.entries.front().value;
                }
            }
        }
        // Derive outside the shard lock — the derivation is pure, so
        // two lanes racing the same key just both insert equal
        // values.
        const GemmConstants value = gemmConstants(da, dw, k);
        misses.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(shard.mu);
        if (shard.entries.size() >= kPerShard)
            shard.entries.pop_back();
        shard.entries.insert(shard.entries.begin(), {key, value});
        return value;
    }

    uint64_t hitCount() const
    {
        return hits.load(std::memory_order_relaxed);
    }

    uint64_t missCount() const
    {
        return misses.load(std::memory_order_relaxed);
    }

  private:
    static constexpr size_t kShards = 8;
    static constexpr size_t kPerShard = 8;

    struct Entry
    {
        GemmKey key;
        GemmConstants value;
    };

    struct Shard
    {
        std::mutex mu;
        std::vector<Entry> entries;
    };

    static size_t hashKey(const GemmKey &key)
    {
        // FNV-1a over the key bytes' value-defining fields; doubles
        // hashed by bit pattern (keys are compared by ==, so -0.0 vs
        // 0.0 landing in different shards is merely a missed hit).
        uint64_t h = 1469598103934665603ull;
        const auto mix = [&h](uint64_t v) {
            h = (h ^ v) * 1099511628211ull;
        };
        const auto mixd = [&](double d) {
            uint64_t bits;
            std::memcpy(&bits, &d, sizeof bits);
            mix(bits);
        };
        mixd(key.sA);
        mixd(key.mA);
        mixd(key.sW);
        mixd(key.mW);
        mixd(key.expA);
        mixd(key.expB);
        mix(key.h);
        mix(key.k);
        return static_cast<size_t>(h);
    }

    std::array<Shard, kShards> shards;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
};

} // anonymous namespace

GemmConstants
cachedGemmConstants(const TensorDictionary &da,
                    const TensorDictionary &dw, size_t k)
{
    return GemmConstantsCache::global().get(da, dw, k);
}

uint64_t
gemmConstantsCacheHits()
{
    return GemmConstantsCache::global().hitCount();
}

uint64_t
gemmConstantsCacheMisses()
{
    return GemmConstantsCache::global().missCount();
}

namespace
{

/**
 * One engine dot product over the mag planes and outlier sidecars.
 *
 * The GPE histogram algebra collapses exactly: a Gaussian pair's
 * online terms
 *   s_a s_w (a^(ia+iw) + b a^ia + b a^iw + b^2) * sign
 * factor into  c0 * [th_a (a^ia + b)] * [th_w (a^iw + b)], i.e. the
 * product of the two mag-plane entries — so the whole branchy
 * histogram sweep plus exp.power() post-processing becomes one
 * vectorized dot product (outlier slots hold 0 and vanish). The CRF
 * histogram model itself lives on in indexDot(), which the property
 * tests hold this engine to.
 *
 * OPP: merge the column-sorted sidecars; each entry is one real MAC
 * plus the exact correction for what the precomputed terms already
 * counted.
 *
 * noinline on purpose: a single instantiation guarantees identical
 * FP contraction for every caller, which the bit-parity guarantee
 * (scalar == tiled == any thread count) depends on.
 */
__attribute__((noinline)) double
engineDot(const GemmConstants &ctx, const double *ma,
          const CodePlanes::Outlier *oa, size_t na, const double *mw,
          const CodePlanes::Outlier *ow, size_t nw, double row_term,
          double col_term, uint64_t &ot_pairs)
{
    const double gpe = ctx.c0 * dotDD(ma, mw, ctx.k);

    double ot_acc = 0.0;
    size_t x = 0, y = 0;
    uint64_t both = 0;
    while (x < na && y < nw) {
        if (oa[x].col == ow[y].col) {
            ot_acc += oa[x].value * ow[y].value - ctx.mA * ctx.mW;
            ++both;
            ++x;
            ++y;
        } else if (oa[x].col < ow[y].col) {
            const uint32_t c = oa[x].col;
            const double wv = mw[c] * ctx.sW + ctx.mW;
            ot_acc += (oa[x].value - ctx.mA) * wv;
            ++x;
        } else {
            const uint32_t c = ow[y].col;
            const double av = ma[c] * ctx.sA + ctx.mA;
            ot_acc += (ow[y].value - ctx.mW) * av;
            ++y;
        }
    }
    for (; x < na; ++x) {
        const uint32_t c = oa[x].col;
        const double wv = mw[c] * ctx.sW + ctx.mW;
        ot_acc += (oa[x].value - ctx.mA) * wv;
    }
    for (; y < nw; ++y) {
        const uint32_t c = ow[y].col;
        const double av = ma[c] * ctx.sA + ctx.mA;
        ot_acc += (ow[y].value - ctx.mW) * av;
    }
    ot_pairs += na + nw - both;

    return gpe + row_term + col_term + ctx.constTerm + ot_acc;
}

/** Weight-tile width: ~8*kTileN*k mag-plane bytes stay L2-resident. */
constexpr size_t kTileN = 32;

Tensor
engineMatmul(const QuantizedTensor &a, const QuantizedTensor &wt,
             IndexMatmulStats *stats, bool tiled_parallel,
             Lane lane = {})
{
    MOKEY_ASSERT(a.cols() == wt.cols(),
                 "index matmul reduction mismatch: %zu vs %zu",
                 a.cols(), wt.cols());
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    const GemmConstants ctx =
        cachedGemmConstants(a.dictionary(), wt.dictionary(), k);

    // Materialize both plane views on this thread before fanning
    // out; hold the owning pointers so a concurrent plane-set
    // upgrade on a shared tensor cannot free them mid-GEMM.
    const auto pa_sp = a.planesShared(PlaneSet::Mag);
    const auto pw_sp = wt.planesShared(PlaneSet::Mag);
    const CodePlanes &pa = *pa_sp;
    const CodePlanes &pw = *pw_sp;

    // Pairing-independent sums folded straight into per-row/-column
    // scalar terms of the reconstruction. The seed's SoA2 + b*PoM2
    // is exactly the mag-plane row sum:
    //   sum th (a^i) + b sum th  =  sum th (a^i + b).
    // Folded per call on purpose — this layer-at-a-time path is the
    // frozen baseline the fused graph walk (which reads the planes'
    // precomputed magRowSum) is benchmarked against; the shared
    // helper guarantees the arithmetic order matches bit for bit.
    std::vector<double> row_term(m), col_term(n);
    const auto fold = [k](const CodePlanes &p, size_t r) {
        return magPlaneRowSum(p.magRow(r), k);
    };
    // The scalar path must honour its contract of never touching the
    // pool, so the fold loops are serial there too; per-element
    // results are identical either way.
    const auto foldRows = [&](size_t i) {
        row_term[i] = ctx.sA * ctx.mW * fold(pa, i);
    };
    const auto foldCols = [&](size_t j) {
        col_term[j] = ctx.sW * ctx.mA * fold(pw, j);
    };
    if (tiled_parallel) {
        parallelFor(lane, 0, m, 16, foldRows);
        parallelFor(lane, 0, n, 16, foldCols);
    } else {
        for (size_t i = 0; i < m; ++i)
            foldRows(i);
        for (size_t j = 0; j < n; ++j)
            foldCols(j);
    }

    Tensor out(m, n);
    const auto band = [&](size_t lo, size_t hi) {
        uint64_t ot_pairs = 0;
        // Tile over the weight rows so a kTileN-row plane block is
        // reused by every activation row of the band.
        for (size_t jb = 0; jb < n; jb += kTileN) {
            const size_t jhi = std::min(jb + kTileN, n);
            for (size_t i = lo; i < hi; ++i) {
                const double *ma = pa.magRow(i);
                const CodePlanes::Outlier *oa = pa.outlierRow(i);
                const size_t na = pa.outlierCount(i);
                float *orow = out.row(i);
                for (size_t j = jb; j < jhi; ++j) {
                    orow[j] = static_cast<float>(engineDot(
                        ctx, ma, oa, na, pw.magRow(j),
                        pw.outlierRow(j), pw.outlierCount(j),
                        row_term[i], col_term[j], ot_pairs));
                }
            }
        }
        if (stats) {
            const uint64_t pairs =
                static_cast<uint64_t>(hi - lo) * n * k;
            stats->add(pairs - ot_pairs, ot_pairs);
        }
    };

    if (tiled_parallel)
        parallelForRange(lane, 0, m, 1, band);
    else
        band(0, m);
    return out;
}

/**
 * One counting-engine dot product over the byte planes and outlier
 * sidecars — the paper's GPE/OPP dataflow run literally:
 *
 * GPE: accumulate the signed 64-bin histogram of joint (ia, iw)
 * index counts (pairHistogram: 3 b index adds + theta-XOR signs in
 * hardware; SIMD bucket adds here), then post-process with ONE
 * multiply per dictionary pair — the 64-entry dot against the
 * decoded magnitude products. Because theta is 0 at outlier slots,
 * outlier pairs vanish from the histogram by construction (the
 * convention planes() asserts). The histogram phase is exact
 * integer arithmetic; the collapse is a fixed-order loop, so every
 * output element is a deterministic function of the codes alone.
 *
 * OPP: identical sidecar merge to the mag engine, with the Gaussian
 * partner decoded from its byte planes (theta * mags[idx] * s + m).
 *
 * noinline for the same reason as engineDot: one instantiation =
 * one FP contraction order for every caller.
 */
__attribute__((noinline)) double
countingDot(const GemmConstants &cc, const uint8_t *ia,
            const int8_t *ta, const CodePlanes::Outlier *oa,
            size_t na, const uint8_t *iw, const int8_t *tw,
            const CodePlanes::Outlier *ow, size_t nw,
            double row_term, double col_term, uint64_t &ot_pairs)
{
    const GemmConstants &ctx = cc;

    int32_t hist[kMaxGaussianIndexes * kMaxGaussianIndexes];
    pairHistogram(ia, ta, iw, tw, ctx.k, hist);
    double gsum = 0.0;
    for (size_t b = 0; b < cc.prod.size(); ++b)
        gsum += hist[b] * cc.prod[b];
    const double gpe = ctx.c0 * gsum;

    double ot_acc = 0.0;
    size_t x = 0, y = 0;
    uint64_t both = 0;
    while (x < na && y < nw) {
        if (oa[x].col == ow[y].col) {
            ot_acc += oa[x].value * ow[y].value - ctx.mA * ctx.mW;
            ++both;
            ++x;
            ++y;
        } else if (oa[x].col < ow[y].col) {
            const uint32_t c = oa[x].col;
            const double wv =
                tw[c] * cc.mags[iw[c]] * ctx.sW + ctx.mW;
            ot_acc += (oa[x].value - ctx.mA) * wv;
            ++x;
        } else {
            const uint32_t c = ow[y].col;
            const double av =
                ta[c] * cc.mags[ia[c]] * ctx.sA + ctx.mA;
            ot_acc += (ow[y].value - ctx.mW) * av;
            ++y;
        }
    }
    for (; x < na; ++x) {
        const uint32_t c = oa[x].col;
        const double wv = tw[c] * cc.mags[iw[c]] * ctx.sW + ctx.mW;
        ot_acc += (oa[x].value - ctx.mA) * wv;
    }
    for (; y < nw; ++y) {
        const uint32_t c = ow[y].col;
        const double av = ta[c] * cc.mags[ia[c]] * ctx.sA + ctx.mA;
        ot_acc += (ow[y].value - ctx.mW) * av;
    }
    ot_pairs += na + nw - both;

    return gpe + row_term + col_term + ctx.constTerm + ot_acc;
}

Tensor
countingMatmul(const QuantizedTensor &a, const QuantizedTensor &wt,
               IndexMatmulStats *stats, bool tiled_parallel,
               Lane lane = {})
{
    MOKEY_ASSERT(a.cols() == wt.cols(),
                 "index matmul reduction mismatch: %zu vs %zu",
                 a.cols(), wt.cols());
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    const GemmConstants cc =
        cachedGemmConstants(a.dictionary(), wt.dictionary(), k);
    const GemmConstants &ctx = cc;

    // Byte planes only: 2 B per element resident, never the 8 B mag
    // plane. Owning pointers guard against concurrent upgrades.
    const auto pa_sp = a.planesShared(PlaneSet::Bytes);
    const auto pw_sp = wt.planesShared(PlaneSet::Bytes);
    const CodePlanes &pa = *pa_sp;
    const CodePlanes &pw = *pw_sp;

    // Pairing-independent row/column terms from the per-row signed
    // index histogram: sum theta (a^i + b) = sum_i h[i] * mags[i].
    // Per-call folds for the same reason as the mag engine: this is
    // the frozen baseline; the fused walk reads byteRowSum instead.
    std::vector<double> row_term(m), col_term(n);
    const auto fold = [&cc, k](const CodePlanes &p, size_t r) {
        return bytePlaneRowSum(p.indexRow(r), p.thetaRow(r), k,
                               cc.mags.data());
    };
    const auto foldRows = [&](size_t i) {
        row_term[i] = ctx.sA * ctx.mW * fold(pa, i);
    };
    const auto foldCols = [&](size_t j) {
        col_term[j] = ctx.sW * ctx.mA * fold(pw, j);
    };
    if (tiled_parallel) {
        parallelFor(lane, 0, m, 16, foldRows);
        parallelFor(lane, 0, n, 16, foldCols);
    } else {
        for (size_t i = 0; i < m; ++i)
            foldRows(i);
        for (size_t j = 0; j < n; ++j)
            foldCols(j);
    }

    Tensor out(m, n);
    const auto band = [&](size_t lo, size_t hi) {
        uint64_t ot_pairs = 0;
        // Same weight-row tiling as the mag engine; a kTileN-row
        // byte-plane block is 2*kTileN*k bytes — 4x more rows stay
        // cache-resident than with mag planes.
        for (size_t jb = 0; jb < n; jb += kTileN) {
            const size_t jhi = std::min(jb + kTileN, n);
            for (size_t i = lo; i < hi; ++i) {
                const uint8_t *ia = pa.indexRow(i);
                const int8_t *ta = pa.thetaRow(i);
                const CodePlanes::Outlier *oa = pa.outlierRow(i);
                const size_t na = pa.outlierCount(i);
                float *orow = out.row(i);
                for (size_t j = jb; j < jhi; ++j) {
                    orow[j] = static_cast<float>(countingDot(
                        cc, ia, ta, oa, na, pw.indexRow(j),
                        pw.thetaRow(j), pw.outlierRow(j),
                        pw.outlierCount(j), row_term[i],
                        col_term[j], ot_pairs));
                }
            }
        }
        if (stats) {
            const uint64_t pairs =
                static_cast<uint64_t>(hi - lo) * n * k;
            stats->add(pairs - ot_pairs, ot_pairs);
        }
    };

    if (tiled_parallel)
        parallelForRange(lane, 0, m, 1, band);
    else
        band(0, m);
    return out;
}

} // anonymous namespace

Tensor
indexMatmulTransB(const QuantizedTensor &a, const QuantizedTensor &wt,
                  IndexMatmulStats *stats, Lane lane)
{
    faultPoint(FaultSite::EngineDispatch);
    if (resolveIndexEngine(a, wt) == IndexEngine::Count)
        return countingMatmul(a, wt, stats, true, lane);
    return engineMatmul(a, wt, stats, true, lane);
}

Tensor
indexMatmulTransBScalar(const QuantizedTensor &a,
                        const QuantizedTensor &wt,
                        IndexMatmulStats *stats)
{
    if (resolveIndexEngine(a, wt) == IndexEngine::Count)
        return countingMatmul(a, wt, stats, false);
    return engineMatmul(a, wt, stats, false);
}

Tensor
indexMatmulTransBMag(const QuantizedTensor &a,
                     const QuantizedTensor &wt,
                     IndexMatmulStats *stats, Lane lane)
{
    return engineMatmul(a, wt, stats, true, lane);
}

Tensor
indexMatmulTransBMagScalar(const QuantizedTensor &a,
                           const QuantizedTensor &wt,
                           IndexMatmulStats *stats)
{
    return engineMatmul(a, wt, stats, false);
}

Tensor
indexMatmulTransBCounting(const QuantizedTensor &a,
                          const QuantizedTensor &wt,
                          IndexMatmulStats *stats, Lane lane)
{
    return countingMatmul(a, wt, stats, true, lane);
}

Tensor
indexMatmulTransBCountingScalar(const QuantizedTensor &a,
                                const QuantizedTensor &wt,
                                IndexMatmulStats *stats)
{
    return countingMatmul(a, wt, stats, false);
}

std::vector<Tensor>
indexMatmulTransBBatched(const std::vector<const QuantizedTensor *> &as,
                         const QuantizedTensor &wt,
                         IndexMatmulStats *stats, Lane lane)
{
    if (as.empty())
        return {};
    if (as.size() == 1)
        return {indexMatmulTransB(*as[0], wt, stats, lane)};

    const QuantizedTensor stacked = concatQuantizedRows(as);
    const Tensor out = indexMatmulTransB(stacked, wt, stats, lane);

    // Split the stacked output back into per-request tensors. Each
    // output row was produced by exactly the codes of its own
    // request, so the rows equal the standalone results bit for bit.
    std::vector<Tensor> parts;
    parts.reserve(as.size());
    size_t r0 = 0;
    for (const QuantizedTensor *a : as) {
        Tensor t(a->rows(), out.cols());
        std::memcpy(t.data(), out.row(r0),
                    a->rows() * out.cols() * sizeof(float));
        parts.push_back(std::move(t));
        r0 += a->rows();
    }
    return parts;
}

FusedGemmOut
indexMatmulTransBFused(const QuantizedTensor &a,
                       const QuantizedTensor &wt, IndexEngine engine,
                       const FusedRowEpilogue &epilogue,
                       const TensorDictionary *outDict,
                       PlaneSet outSets, bool keepDense,
                       const GemmConstants *constants,
                       IndexMatmulStats *stats, Lane lane)
{
    MOKEY_ASSERT(a.cols() == wt.cols(),
                 "index matmul reduction mismatch: %zu vs %zu",
                 a.cols(), wt.cols());
    MOKEY_ASSERT(engine != IndexEngine::Auto,
                 "fused GEMM needs a resolved engine "
                 "(resolveIndexEngine per site)");
    MOKEY_ASSERT(outDict != nullptr || keepDense,
                 "fused GEMM would discard its output");
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    const GemmConstants ctx = constants
        ? *constants
        : cachedGemmConstants(a.dictionary(), wt.dictionary(), k);
    MOKEY_ASSERT(ctx.k == k, "hoisted constants built for K=%zu, "
                 "GEMM has K=%zu", ctx.k, k);

    const bool mag_eng = engine == IndexEngine::Mag;
    const PlaneSet need =
        mag_eng ? PlaneSet::Mag : PlaneSet::Bytes;
    const auto pa_sp = a.planesShared(need);
    const auto pw_sp = wt.planesShared(need);
    const CodePlanes &pa = *pa_sp;
    const CodePlanes &pw = *pw_sp;

    // The tentpole saving: the pairing-independent SoA2 + b*PoM2
    // folds were computed once when these planes were encoded or
    // derived, in this engine's own arithmetic order — here they
    // collapse to one multiply per row/column instead of an O(k)
    // re-fold per GEMM call (the column fold alone is ~half the
    // work of an m=1 decode GEMM).
    const std::vector<double> &a_sum =
        mag_eng ? pa.magRowSum : pa.byteRowSum;
    const std::vector<double> &w_sum =
        mag_eng ? pw.magRowSum : pw.byteRowSum;
    MOKEY_ASSERT(a_sum.size() == m && w_sum.size() == n,
                 "planes lack their precomputed fold sums");
    std::vector<double> row_term(m), col_term(n);
    for (size_t i = 0; i < m; ++i)
        row_term[i] = ctx.sA * ctx.mW * a_sum[i];
    for (size_t j = 0; j < n; ++j)
        col_term[j] = ctx.sW * ctx.mA * w_sum[j];

    FusedGemmOut out;
    if (keepDense)
        out.dense = Tensor(m, n);

    const bool obytes =
        outDict && planeSetCovers(outSets, PlaneSet::Bytes);
    const bool omag =
        outDict && planeSetCovers(outSets, PlaneSet::Mag);
    LadderSpec lad;
    std::shared_ptr<CodePlanes> op;
    std::vector<std::vector<CodePlanes::Outlier>> row_ot;
    if (outDict) {
        MOKEY_ASSERT(obytes || omag,
                     "fused encode needs a dense plane set");
        lad = LadderSpec::from(*outDict);
        op = std::make_shared<CodePlanes>();
        op->rows = m;
        op->cols = n;
        op->sets = outSets;
        if (obytes) {
            op->index.resize(m * n);
            op->theta.resize(m * n);
            op->byteRowSum.resize(m);
        }
        if (omag) {
            op->mag.resize(m * n);
            op->magRowSum.resize(m);
        }
        row_ot.resize(m);
    }

    const auto band = [&](size_t lo, size_t hi) {
        uint64_t ot_pairs = 0;
        // Without a dense output the band's rows live in a transient
        // band-local buffer: encoded planes leave the band, the
        // floats never leave this thread.
        std::vector<float> buf;
        if (!keepDense)
            buf.resize((hi - lo) * n);
        const auto rowAt = [&](size_t i) {
            return keepDense ? out.dense.row(i)
                             : buf.data() + (i - lo) * n;
        };
        // Identical tiled engine loops (and identical noinline dot
        // kernels) to the layer-at-a-time path — only the source of
        // the row/column terms differs, and those are bit-equal.
        for (size_t jb = 0; jb < n; jb += kTileN) {
            const size_t jhi = std::min(jb + kTileN, n);
            for (size_t i = lo; i < hi; ++i) {
                float *orow = rowAt(i);
                const CodePlanes::Outlier *oa = pa.outlierRow(i);
                const size_t na = pa.outlierCount(i);
                if (mag_eng) {
                    const double *ma = pa.magRow(i);
                    for (size_t j = jb; j < jhi; ++j) {
                        orow[j] = static_cast<float>(engineDot(
                            ctx, ma, oa, na, pw.magRow(j),
                            pw.outlierRow(j), pw.outlierCount(j),
                            row_term[i], col_term[j], ot_pairs));
                    }
                } else {
                    const uint8_t *ia = pa.indexRow(i);
                    const int8_t *ta = pa.thetaRow(i);
                    for (size_t j = jb; j < jhi; ++j) {
                        orow[j] = static_cast<float>(countingDot(
                            ctx, ia, ta, oa, na, pw.indexRow(j),
                            pw.thetaRow(j), pw.outlierRow(j),
                            pw.outlierCount(j), row_term[i],
                            col_term[j], ot_pairs));
                    }
                }
            }
        }
        // Epilogue + re-quantization while the rows are band-warm:
        // the plane-to-plane handoff of the fused graph.
        for (size_t i = lo; i < hi; ++i) {
            float *vals = rowAt(i);
            if (epilogue)
                epilogue(i, vals, n);
            if (outDict) {
                uint8_t *ix =
                    obytes ? op->index.data() + i * n : nullptr;
                int8_t *th =
                    obytes ? op->theta.data() + i * n : nullptr;
                double *mg =
                    omag ? op->mag.data() + i * n : nullptr;
                lad.encodeRow(vals, n, ix, th, mg, row_ot[i]);
                if (omag)
                    op->magRowSum[i] = magPlaneRowSum(mg, n);
                if (obytes)
                    op->byteRowSum[i] =
                        bytePlaneRowSum(ix, th, n, lad.foldMags);
            }
        }
        if (stats) {
            const uint64_t pairs =
                static_cast<uint64_t>(hi - lo) * n * k;
            stats->add(pairs - ot_pairs, ot_pairs);
        }
    };
    parallelForRange(lane, 0, m, 1, band);

    if (outDict) {
        // Row-order sidecar stitch, identical to encodeToPlanes().
        op->rowStart.assign(m + 1, 0);
        size_t total = 0;
        for (size_t r = 0; r < m; ++r) {
            total += row_ot[r].size();
            op->rowStart[r + 1] = static_cast<uint32_t>(total);
        }
        op->outliers.reserve(total);
        for (size_t r = 0; r < m; ++r)
            op->outliers.insert(op->outliers.end(),
                                row_ot[r].begin(), row_ot[r].end());
#ifndef NDEBUG
        if (obytes) {
            for (size_t r = 0; r < m; ++r) {
                for (size_t i = 0; i < op->outlierCount(r); ++i) {
                    const uint32_t c = op->outlierRow(r)[i].col;
                    MOKEY_ASSERT(op->indexRow(r)[c] == 0 &&
                                     op->thetaRow(r)[c] == 0,
                                 "fused outlier slot (%zu, %u) "
                                 "violates the zero-index/zero-sign "
                                 "plane convention", r, c);
                }
            }
        }
#endif
        out.planes =
            QuantizedTensor::fromPlanes(std::move(op), *outDict);
    }
    return out;
}

Tensor
decodedMatmulTransB(const QuantizedTensor &a, const QuantizedTensor &wt)
{
    MOKEY_ASSERT(a.cols() == wt.cols(), "shape mismatch");
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();
    Tensor out(m, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += a.decodeAt(i, p) * wt.decodeAt(j, p);
            out.at(i, j) = static_cast<float>(acc);
        }
    }
    return out;
}

} // namespace mokey
