#include "quant/engine.hh"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace mokey
{

namespace
{

IndexEngine
engineFromEnv()
{
    const char *env = std::getenv("MOKEY_ENGINE");
    if (env == nullptr || *env == '\0')
        return IndexEngine::Mag;
    std::string s(env);
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (s == "mag")
        return IndexEngine::Mag;
    if (s == "count" || s == "counting")
        return IndexEngine::Count;
    fatal("MOKEY_ENGINE must be 'mag' or 'count', got '%s'", env);
}

std::atomic<IndexEngine> &
engineSlot()
{
    static std::atomic<IndexEngine> slot{engineFromEnv()};
    return slot;
}

} // anonymous namespace

IndexEngine
indexEngine()
{
    return engineSlot().load(std::memory_order_relaxed);
}

void
setIndexEngine(IndexEngine engine)
{
    engineSlot().store(engine, std::memory_order_relaxed);
}

const char *
indexEngineName(IndexEngine engine)
{
    return engine == IndexEngine::Mag ? "mag" : "count";
}

PlaneSet
enginePlaneSet(IndexEngine engine)
{
    return engine == IndexEngine::Mag ? PlaneSet::Mag
                                      : PlaneSet::Bytes;
}

} // namespace mokey
