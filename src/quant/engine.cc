#include "quant/engine.hh"

#include <atomic>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"

namespace mokey
{

namespace
{

IndexEngine
engineFromEnv()
{
    const std::string s = lowercasedEnv("MOKEY_ENGINE");
    if (s.empty())
        return IndexEngine::Mag;
    if (s == "mag")
        return IndexEngine::Mag;
    if (s == "count" || s == "counting")
        return IndexEngine::Count;
    if (s == "auto")
        return IndexEngine::Auto;
    fatal("MOKEY_ENGINE must be 'mag', 'count' or 'auto', got '%s'",
          s.c_str());
}

std::atomic<IndexEngine> &
engineSlot()
{
    static std::atomic<IndexEngine> slot{engineFromEnv()};
    return slot;
}

} // anonymous namespace

IndexEngine
indexEngine()
{
    return engineSlot().load(std::memory_order_relaxed);
}

void
setIndexEngine(IndexEngine engine)
{
    engineSlot().store(engine, std::memory_order_relaxed);
}

const char *
indexEngineName(IndexEngine engine)
{
    switch (engine) {
    case IndexEngine::Mag:
        return "mag";
    case IndexEngine::Count:
        return "count";
    case IndexEngine::Auto:
        return "auto";
    }
    return "?";
}

PlaneSet
enginePlaneSet(IndexEngine engine)
{
    return engine == IndexEngine::Mag ? PlaneSet::Mag
                                      : PlaneSet::Bytes;
}

IndexEngine
autoEngineChoice(size_t aRows, size_t wRows, size_t k,
                 const PlanesFootprint &weight)
{
    const size_t mag_stream_bytes =
        (aRows + wRows) * k * sizeof(double);
    if (mag_stream_bytes > kAutoMagBudgetBytes)
        return IndexEngine::Count;
    if (weight.resident && weight.magResident)
        return IndexEngine::Mag;
    return IndexEngine::Count;
}

IndexEngine
resolveIndexEngine(const QuantizedTensor &a, const QuantizedTensor &wt)
{
    const IndexEngine e = indexEngine();
    if (e != IndexEngine::Auto)
        return e;
    return autoEngineChoice(a.rows(), wt.rows(), a.cols(),
                            wt.planesFootprint());
}

PlaneSet
weightPlaneSet(IndexEngine engine, size_t wRows, size_t k)
{
    if (engine != IndexEngine::Auto)
        return enginePlaneSet(engine);
    // Pin mag only when this weight's own plane leaves room for an
    // activation-side stream of similar K inside the budget;
    // otherwise serving GEMMs will route to counting anyway, so the
    // byte planes are the right residents.
    return wRows * k * sizeof(double) * 2 <= kAutoMagBudgetBytes
        ? PlaneSet::Mag
        : PlaneSet::Bytes;
}

} // namespace mokey
