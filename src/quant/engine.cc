#include "quant/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace mokey
{

namespace
{

IndexEngine
engineFromEnv()
{
    const std::string s = lowercasedEnv("MOKEY_ENGINE");
    if (s.empty())
        return IndexEngine::Mag;
    if (s == "mag")
        return IndexEngine::Mag;
    if (s == "count" || s == "counting")
        return IndexEngine::Count;
    if (s == "auto")
        return IndexEngine::Auto;
    fatal("MOKEY_ENGINE must be 'mag', 'count' or 'auto', got '%s'",
          s.c_str());
}

std::atomic<IndexEngine> &
engineSlot()
{
    static std::atomic<IndexEngine> slot{engineFromEnv()};
    return slot;
}

std::atomic<bool> &
calibrateSlot()
{
    static std::atomic<bool> slot{envFlag("MOKEY_CALIBRATE", false)};
    return slot;
}

/** 0 = unresolved; re-resolved lazily after setAutoMagBudgetBytes(0)
 * or a calibration flip. */
std::atomic<size_t> &
budgetSlot()
{
    static std::atomic<size_t> slot{0};
    return slot;
}

/** Best-of-reps ns for one sumD sweep over @p buf. */
double
probeSweepNs(const std::vector<double> &buf)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    double sink = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
        const auto t0 = clock::now();
        sink += sumD(buf.data(), buf.size());
        const auto t1 = clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count();
        best = std::min(best, ns);
    }
    // Keep the sweeps alive past the optimizer.
    if (sink == 0.12345)
        inform("calibration probe sink %f", sink);
    return best;
}

} // anonymous namespace

IndexEngine
indexEngine()
{
    return engineSlot().load(std::memory_order_relaxed);
}

void
setIndexEngine(IndexEngine engine)
{
    engineSlot().store(engine, std::memory_order_relaxed);
}

const char *
indexEngineName(IndexEngine engine)
{
    switch (engine) {
    case IndexEngine::Mag:
        return "mag";
    case IndexEngine::Count:
        return "count";
    case IndexEngine::Auto:
        return "auto";
    }
    return "?";
}

PlaneSet
enginePlaneSet(IndexEngine engine)
{
    return engine == IndexEngine::Mag ? PlaneSet::Mag
                                      : PlaneSet::Bytes;
}

bool
engineCalibration()
{
    return calibrateSlot().load(std::memory_order_relaxed);
}

void
setEngineCalibration(bool on)
{
    const bool was =
        calibrateSlot().exchange(on, std::memory_order_relaxed);
    // The budget depends on the flag: force a lazy re-resolve so a
    // test flipping calibration does not keep a stale choice.
    if (was != on)
        budgetSlot().store(0, std::memory_order_relaxed);
}

size_t
calibrateMagBudget()
{
    // Cached per process: the cliff is a property of the host, and
    // re-probing mid-run would let timing noise flip engine choices.
    static const size_t cached = [] {
        // Streamed-read bandwidth at growing working sets. The
        // smallest size is comfortably cache-resident on anything
        // this library targets; the budget becomes the largest size
        // whose bandwidth holds >= 60% of that reference — i.e. the
        // last size before the DRAM cliff.
        constexpr size_t kProbeMiB[] = {2, 6, 12, 24, 48};
        constexpr double kKeepFraction = 0.60;
        double ref_gbps = 0.0;
        size_t pick = kProbeMiB[0] << 20;
        for (const size_t mib : kProbeMiB) {
            const size_t doubles = (mib << 20) / sizeof(double);
            std::vector<double> buf(doubles, 1.0);
            const double ns = probeSweepNs(buf);
            const double gbps =
                static_cast<double>(mib << 20) / ns; // B/ns == GB/s
            if (ref_gbps == 0.0)
                ref_gbps = gbps;
            if (gbps >= kKeepFraction * ref_gbps)
                pick = mib << 20;
            else
                break;
        }
        const size_t clamped = std::min<size_t>(
            std::max<size_t>(pick, 4u << 20), 64u << 20);
        inform("engine calibration: mag budget %zu MiB",
               clamped >> 20);
        return clamped;
    }();
    return cached;
}

size_t
autoMagBudgetBytes()
{
    const size_t v = budgetSlot().load(std::memory_order_relaxed);
    if (v != 0)
        return v;
    const size_t resolved = engineCalibration()
        ? calibrateMagBudget()
        : kAutoMagBudgetBytes;
    budgetSlot().store(resolved, std::memory_order_relaxed);
    return resolved;
}

void
setAutoMagBudgetBytes(size_t bytes)
{
    budgetSlot().store(bytes, std::memory_order_relaxed);
}

IndexEngine
autoEngineChoice(size_t aRows, size_t wRows, size_t k,
                 const PlanesFootprint &weight, size_t budget)
{
    if (budget == 0)
        budget = autoMagBudgetBytes();
    const size_t mag_stream_bytes =
        (aRows + wRows) * k * sizeof(double);
    if (mag_stream_bytes > budget)
        return IndexEngine::Count;
    if (weight.resident && weight.magResident)
        return IndexEngine::Mag;
    return IndexEngine::Count;
}

IndexEngine
resolveIndexEngine(const QuantizedTensor &a, const QuantizedTensor &wt)
{
    const IndexEngine e = indexEngine();
    if (e != IndexEngine::Auto)
        return e;
    return autoEngineChoice(a.rows(), wt.rows(), a.cols(),
                            wt.planesFootprint());
}

PlaneSet
weightPlaneSet(IndexEngine engine, size_t wRows, size_t k)
{
    if (engine != IndexEngine::Auto)
        return enginePlaneSet(engine);
    // Pin mag only when this weight's own plane leaves room for an
    // activation-side stream of similar K inside the budget;
    // otherwise serving GEMMs will route to counting anyway, so the
    // byte planes are the right residents.
    return wRows * k * sizeof(double) * 2 <= autoMagBudgetBytes()
        ? PlaneSet::Mag
        : PlaneSet::Bytes;
}

} // namespace mokey
