/**
 * @file
 * Per-tensor dictionary pair (paper §II-C, §II-E).
 *
 * Each tensor gets (a) a Gaussian dictionary — the shared exponential
 * dictionary scaled by the tensor's standard deviation and shifted by
 * its mean — and (b) a small outlier dictionary of 16 b fixed-point
 * centroids covering the tail beyond the Gaussian range. Generation is
 * non-iterative for the Gaussian part (a linear transform of the
 * Golden Dictionary); outlier centroids come from clustering the few
 * tail samples seen during profiling (weights: exact tail).
 */

#ifndef MOKEY_QUANT_TENSOR_DICTIONARY_HH
#define MOKEY_QUANT_TENSOR_DICTIONARY_HH

#include <cstddef>
#include <vector>

#include "common/fixed_point.hh"
#include "quant/exp_dictionary.hh"

namespace mokey
{

/** Tuning knobs for per-tensor dictionary generation. */
struct TensorDictConfig
{
    /**
     * Outlier cut in units of the *extrapolated next* exponential
     * step: a value is an outlier when |v - m| / s exceeds the
     * midpoint of a^(h-1)+b and a^h+b. 1.0 is the default midpoint;
     * larger values shrink the outlier set.
     */
    double otCutScale = 1.0;

    /** Maximum outlier-dictionary entries (paper: 16). */
    size_t otEntries = 16;

    /** Total fixed-point width used for centroids (paper: 16). */
    int fixedBits = 16;
};

/**
 * The per-tensor quantization dictionary.
 *
 * Gaussian codes decode to  theta * (a^i + b) * s + m ; outlier codes
 * decode to an entry of the outlier centroid table. Centroids are
 * snapped to the tensor's 16 b fixed-point format so the whole
 * pipeline stays in the integer domain (§II-F).
 */
class TensorDictionary
{
  public:
    TensorDictionary();

    /**
     * Build from the values of a tensor (weights: exact; activations:
     * pass profiled samples).
     *
     * @param exp  the shared fitted exponential dictionary
     * @param values tensor values or profiled samples
     * @param cfg  generation knobs
     */
    static TensorDictionary build(const ExpDictionary &exp,
                                  const std::vector<float> &values,
                                  const TensorDictConfig &cfg = {});

    /** The shared exponential dictionary parameters. */
    const ExpDictionary &exp() const { return expDict; }

    /** Tensor mean (the shift of the linear transform). */
    double mean() const { return m; }

    /** Tensor standard deviation (the scale of the transform). */
    double scale() const { return s; }

    /** Outlier threshold on |v - mean|. */
    double outlierCut() const { return cut; }

    /** True when |v - mean| is beyond the Gaussian range. */
    bool isOutlierValue(double v) const;

    /** Decoded value of Gaussian code (negative, index). */
    double gaussianValue(bool negative, size_t index) const;

    /** Outlier centroid table (sorted ascending; may be empty). */
    const std::vector<double> &outlierCentroids() const { return ot; }

    /** Value of outlier-dictionary entry @p index. */
    double outlierValue(size_t index) const;

    /** Nearest outlier-dictionary index for @p v. */
    size_t nearestOutlierIndex(double v) const;

    /** Fixed-point format all centroids are snapped to. */
    const FixedFormat &fixedFormat() const { return fmt; }

    /**
     * All 16 Gaussian centroids plus all outlier centroids, sorted —
     * the comparator ladder of the output quantizer (Fig. 7). Each
     * entry also records the code it stands for.
     */
    struct LadderEntry
    {
        double value;
        bool isOutlier;
        bool negative;
        uint8_t index;
    };
    const std::vector<LadderEntry> &ladder() const { return lad; }

    /** Metadata footprint in bits (dictionaries + constants). */
    size_t metadataBits() const;

  private:
    ExpDictionary expDict;
    double m;
    double s;
    double cut;
    std::vector<double> ot;
    FixedFormat fmt;
    std::vector<LadderEntry> lad;

    void buildLadder();
};

} // namespace mokey

#endif // MOKEY_QUANT_TENSOR_DICTIONARY_HH
