#include "quant/tensor_dictionary.hh"

#include <algorithm>
#include <cmath>

#include "clustering/agglomerative1d.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace mokey
{

TensorDictionary::TensorDictionary()
    : expDict(1.179, -0.977, 8), m(0.0), s(1.0), cut(0.0),
      fmt{16, 12}
{
    buildLadder();
}

TensorDictionary
TensorDictionary::build(const ExpDictionary &exp,
                        const std::vector<float> &values,
                        const TensorDictConfig &cfg)
{
    MOKEY_ASSERT(!values.empty(), "dictionary from an empty tensor");

    TensorDictionary d;
    d.expDict = exp;

    RunningStats st;
    st.addAll(values);
    d.m = st.mean();
    d.s = st.stddev();
    if (d.s <= 0.0)
        d.s = 1e-6; // degenerate constant tensor

    // Outlier cut: midway between the outermost Gaussian magnitude
    // and the extrapolated next exponential step (both in sigma
    // units), optionally scaled.
    const size_t h = exp.indexCount();
    const double outer = exp.magnitude(h - 1);
    const double next = std::pow(exp.a(), static_cast<double>(h)) +
        exp.b();
    d.cut = d.s * (outer + cfg.otCutScale * 0.5 * (next - outer));

    // Collect the tail and cluster it into the outlier dictionary.
    std::vector<float> tail;
    for (float v : values) {
        if (d.isOutlierValue(v))
            tail.push_back(v);
    }
    if (!tail.empty()) {
        const size_t k = std::min(cfg.otEntries, tail.size());
        const auto res = agglomerative1d(tail, k);
        d.ot = res.centroids;
    }

    // Record the tensor's 16 b fixed-point format (Eq. 7/8). The
    // float-domain dictionary keeps analytic centroids; only the
    // fixed-point pipeline (§II-F) snaps values to this format.
    d.fmt = FixedFormat::forRange(cfg.fixedBits, st.min(), st.max());

    d.buildLadder();
    return d;
}

bool
TensorDictionary::isOutlierValue(double v) const
{
    return std::abs(v - m) > cut;
}

double
TensorDictionary::gaussianValue(bool negative, size_t index) const
{
    const double mag = expDict.magnitude(index);
    return (negative ? -mag : mag) * s + m;
}

double
TensorDictionary::outlierValue(size_t index) const
{
    MOKEY_ASSERT(index < ot.size(), "outlier index %zu out of range",
                 index);
    return ot[index];
}

size_t
TensorDictionary::nearestOutlierIndex(double v) const
{
    MOKEY_ASSERT(!ot.empty(), "no outlier dictionary");
    return nearestCentroid(ot, v);
}

void
TensorDictionary::buildLadder()
{
    lad.clear();
    const size_t h = expDict.indexCount();
    for (size_t i = 0; i < h; ++i) {
        lad.push_back({gaussianValue(true, i), false, true,
                       static_cast<uint8_t>(i)});
        lad.push_back({gaussianValue(false, i), false, false,
                       static_cast<uint8_t>(i)});
    }
    for (size_t i = 0; i < ot.size(); ++i)
        lad.push_back({ot[i], true, false, static_cast<uint8_t>(i)});
    std::sort(lad.begin(), lad.end(),
              [](const LadderEntry &a, const LadderEntry &b) {
                  return a.value < b.value;
              });
}

size_t
TensorDictionary::metadataBits() const
{
    // G dictionary: h magnitudes (16 b each, signs implicit);
    // OT dictionary: up to 16 centroids at 16 b;
    // constants: mean, scale, cut, format (16 b each).
    const size_t bits_per = static_cast<size_t>(fmt.totalBits);
    return expDict.indexCount() * bits_per + ot.size() * bits_per +
        4 * bits_per;
}

} // namespace mokey
