/**
 * @file
 * Index-domain matrix multiply (paper §II-D, Fig. 4, Eqs. 1-6).
 *
 * This is Mokey's central idea: because every Gaussian-dictionary
 * value has the form  theta * (a^int + b) * s + m , a dot product over
 * two quantized tensors decomposes into
 *
 *   sA sW  SoI  + sA sW b (SoA1 + SoW1) + sA sW b^2 PoM1   (online)
 * + sA mW (SoA2 + b PoM2)                                  (per row)
 * + sW mA (SoW2 + b PoM3)                                  (per col)
 * + K mA mW                                                (constant)
 *
 * where the online terms are *integer histograms* over summed indexes
 * — 3 b additions and counter increments instead of FP16 MACs. Pairs
 * touching an outlier bypass the histograms: the OPP looks up both
 * centroids, multiplies once, and applies an exact correction for the
 * contribution the precomputed terms already counted:
 *
 *   A gaussian, W outlier : add  A*W - mW*A
 *   A outlier,  W gaussian: add  A*W - mA*W
 *   both outliers         : add  A*W - mA*mW
 *
 * With these corrections the index-domain result equals the
 * decode-then-multiply reference *exactly* (up to FP rounding), which
 * the property tests assert.
 */

#ifndef MOKEY_QUANT_INDEX_MATMUL_HH
#define MOKEY_QUANT_INDEX_MATMUL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/parallel.hh"
#include "quant/engine.hh"
#include "quant/quantized_tensor.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/** Maximum Gaussian index count supported by the fixed-size CRFs. */
constexpr size_t kMaxGaussianIndexes = 8;

/** Maximum summed-exponent entries (a^0 .. a^14 for 4 b codes). */
constexpr size_t kMaxSumExponents = 2 * kMaxGaussianIndexes - 1;

/**
 * Per-GEMM constants: the 6-term reconstruction of indexDot() folded
 * into scalars plus the decoded dictionary tables the counting
 * engine's histograms collapse against. A pure function of the two
 * dictionaries and K, so a serving graph hoists one per weight site
 * (GraphPlan) instead of re-deriving it on every call.
 */
struct GemmConstants
{
    size_t k = 0;
    double sA = 0.0, sW = 0.0; ///< per-tensor scales
    double mA = 0.0, mW = 0.0; ///< per-tensor means
    double c0 = 0.0;           ///< s_a * s_w
    double constTerm = 0.0;    ///< k * m_a * m_w
    /** Unscaled magnitudes a^i + b, zero beyond indexCount(). */
    std::array<double, kMaxGaussianIndexes> mags{};
    /** prod[(ia << 3) | iw] = mags[ia] * mags[iw]. */
    std::array<double, kMaxGaussianIndexes * kMaxGaussianIndexes>
        prod{};
};

/** Derive the constants of one (dict_a, dict_w, K) GEMM site. */
GemmConstants gemmConstants(const TensorDictionary &da,
                            const TensorDictionary &dw, size_t k);

/**
 * Cached variant for GEMMs whose dictionaries are not known at graph
 * planning time — the attention act×act products, whose K is the
 * sequence length and whose activation dictionaries change per
 * profile. Backed by a small sharded LRU keyed on the exact value
 * inputs of gemmConstants() (dictionary scale/mean, exponential
 * dictionary parameters, K), so a hit returns bit-identical constants
 * to a fresh derivation by construction. Safe to call from concurrent
 * lanes.
 */
GemmConstants cachedGemmConstants(const TensorDictionary &da,
                                  const TensorDictionary &dw,
                                  size_t k);

/** Cumulative cachedGemmConstants() hits (monotonic; for tests and
 *  stats). */
uint64_t gemmConstantsCacheHits();

/** Cumulative cachedGemmConstants() misses (monotonic). */
uint64_t gemmConstantsCacheMisses();

/**
 * The per-output-activation histogram state — a software model of
 * the GPE's four Counter Register Files (Fig. 6).
 */
struct CrfState
{
    std::array<int32_t, kMaxSumExponents> soi{};  ///< 15-entry CRF
    std::array<int32_t, kMaxGaussianIndexes> soa1{}; ///< 8-entry CRF
    std::array<int32_t, kMaxGaussianIndexes> sow1{}; ///< 8-entry CRF
    int32_t pom1 = 0;                              ///< 1-entry CRF

    /** Reset all counters to zero. */
    void clear();
};

/** Precomputed pairing-independent sums for one vector of codes. */
struct VectorConstants
{
    double soa2 = 0.0; ///< sum of theta * a^idx over Gaussian codes
    double pom2 = 0.0; ///< sum of theta over Gaussian codes
};

/**
 * Aggregate counters reported by a matmul run.
 *
 * The counters are atomic so several GEMMs may accumulate into one
 * shared stats object concurrently — the batched serving path runs
 * attention heads of independent requests on the pool, all feeding
 * the pipeline's single accumulator. Kernels accumulate privately
 * and publish once per band via add()/merge(), so the atomics stay
 * off the per-pair hot path.
 */
struct IndexMatmulStats
{
    std::atomic<uint64_t> gaussianPairs{0};
    std::atomic<uint64_t> outlierPairs{0};

    IndexMatmulStats() = default;
    IndexMatmulStats(const IndexMatmulStats &o)
        : gaussianPairs(o.gaussianPairs.load(std::memory_order_relaxed)),
          outlierPairs(o.outlierPairs.load(std::memory_order_relaxed))
    {
    }
    IndexMatmulStats &
    operator=(const IndexMatmulStats &o)
    {
        if (this != &o) {
            gaussianPairs.store(
                o.gaussianPairs.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            outlierPairs.store(
                o.outlierPairs.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        return *this;
    }

    /** Thread-safe accumulation of a privately counted band. */
    void add(uint64_t gaussian, uint64_t outlier);

    /** Fraction of multiply pairs routed to the OPP. */
    double outlierPairFraction() const;

    void merge(const IndexMatmulStats &o);
};

/**
 * Precompute the SoA2/PoM2-style sums for @p n codes (done "while
 * quantizing the previous layer's output" in hardware).
 */
VectorConstants vectorConstants(const QCode *codes, size_t n,
                                const ExpDictionary &exp);

/**
 * One index-domain dot product of length @p k.
 *
 * @param a      activation codes
 * @param dict_a activation dictionary
 * @param w      weight codes
 * @param dict_w weight dictionary
 * @param k      reduction length
 * @param ca     precomputed constants for @p a (vectorConstants)
 * @param cw     precomputed constants for @p w
 * @param stats  optional pair-count accumulator
 * @param crf    optional: receives the final CRF histograms
 */
double indexDot(const QCode *a, const TensorDictionary &dict_a,
                const QCode *w, const TensorDictionary &dict_w,
                size_t k, const VectorConstants &ca,
                const VectorConstants &cw,
                IndexMatmulStats *stats = nullptr,
                CrfState *crf = nullptr);

/**
 * Index-domain GEMM: out = A (M x K) * Wt^T where Wt is (N x K).
 *
 * Both operands are quantized; the result is the full-precision
 * output activation tensor ready for on-the-fly re-quantization.
 *
 * This is the production entry point: it dispatches to the engine
 * selected by resolveIndexEngine() — the fixed MOKEY_ENGINE /
 * setIndexEngine() choice, or, under MOKEY_ENGINE=auto, a per-GEMM
 * decision from K and the weight-side plane residency:
 *
 *  - indexMatmulTransBMag(): streams the dense double magnitude
 *    planes branch-free (GPE collapses to one vectorized dot);
 *  - indexMatmulTransBCounting(): streams the 2-byte index/theta
 *    planes and SIMD-accumulates per-pair signed histograms — the
 *    paper's counting dataflow, 4x fewer streamed bytes/element.
 *
 * Both merge-iterate the per-row outlier sidecars (OPP), tile the
 * output for cache reuse, and split row bands across the executor
 * on @p lane. Per-output-element arithmetic order is fixed within
 * an engine, so results are bit-identical for every thread count
 * and lane assignment, and identical to indexMatmulTransBScalar()
 * under the same engine selection.
 */
Tensor indexMatmulTransB(const QuantizedTensor &a,
                         const QuantizedTensor &wt,
                         IndexMatmulStats *stats = nullptr,
                         Lane lane = {});

/** The magnitude-plane engine, explicitly (ignores the selector). */
Tensor indexMatmulTransBMag(const QuantizedTensor &a,
                            const QuantizedTensor &wt,
                            IndexMatmulStats *stats = nullptr,
                            Lane lane = {});

/**
 * The counting engine, explicitly (ignores the selector): for each
 * (activation row, weight row) pair the GPE accumulates a signed
 * integer histogram over the joint 3 b x 3 b index space from the
 * uint8 index / int8 theta byte planes (simd.hh pairHistogram), then
 * collapses it with one 64-entry dot against the decoded dictionary
 * products — one multiply per dictionary pair instead of one per
 * element, exactly the paper's multiplier-free dataflow. The
 * histogram phase is exact integer arithmetic, so it is identical
 * on every ISA; only the fixed-order collapse is FP. Streams 2 B
 * per element where the mag engine streams 8 B, and only requires
 * the byte planes (PlaneSet::Bytes) to be materialized.
 */
Tensor indexMatmulTransBCounting(const QuantizedTensor &a,
                                 const QuantizedTensor &wt,
                                 IndexMatmulStats *stats = nullptr,
                                 Lane lane = {});

/** Counting-engine scalar path (single thread, bit-parity pin). */
Tensor indexMatmulTransBCountingScalar(const QuantizedTensor &a,
                                       const QuantizedTensor &wt,
                                       IndexMatmulStats *stats =
                                           nullptr);

/**
 * Batched index-domain GEMM for multi-request serving: every
 * activation block multiplies the same weight tensor, so the row
 * spaces are stacked into one engine invocation (B x T rows) that
 * shares a single weight-side CodePlanes derivation, one per-column
 * constant fold, and one pool fan-out — the per-request costs the
 * batch scheduler exists to amortize.
 *
 * All blocks must share the activation dictionary (one serving
 * dictionary per tensor id). Returns one output tensor per block, in
 * order, each bit-identical to indexMatmulTransB() on that block
 * alone.
 */
std::vector<Tensor>
indexMatmulTransBBatched(const std::vector<const QuantizedTensor *> &as,
                         const QuantizedTensor &wt,
                         IndexMatmulStats *stats = nullptr,
                         Lane lane = {});

/**
 * The selected engine's scalar path: the same per-element kernel as
 * indexMatmulTransB() run entirely on the calling thread (dispatches
 * on resolveIndexEngine() like the parallel entry point). Exists so
 * parity tests can pin the parallel path bit-for-bit under either
 * engine.
 */
Tensor indexMatmulTransBScalar(const QuantizedTensor &a,
                               const QuantizedTensor &wt,
                               IndexMatmulStats *stats = nullptr);

/** Magnitude-engine scalar path (bit-parity pin for Mag). */
Tensor indexMatmulTransBMagScalar(const QuantizedTensor &a,
                                  const QuantizedTensor &wt,
                                  IndexMatmulStats *stats = nullptr);

/**
 * The seed scalar algorithm — one indexDot() per output element,
 * branching per code pair. Kept as the algebra reference the engine
 * is validated (and benchmarked) against.
 */
Tensor indexMatmulTransBReference(const QuantizedTensor &a,
                                  const QuantizedTensor &wt,
                                  IndexMatmulStats *stats = nullptr);

/** Reference: decode both operands and multiply in float. */
Tensor decodedMatmulTransB(const QuantizedTensor &a,
                           const QuantizedTensor &wt);

/**
 * Per-row epilogue of a fused GEMM: transform row @p i's @p n output
 * values in place (bias, activation, residual, normalization, ...).
 * Called once per output row, from pool threads; rows are disjoint,
 * so captured state must be read-only or row-indexed.
 */
using FusedRowEpilogue =
    std::function<void(size_t i, float *vals, size_t n)>;

/** What a fused GEMM hands the next graph node. */
struct FusedGemmOut
{
    /** The output re-encoded as planes (empty unless outDict). */
    QuantizedTensor planes;
    /** The float output (empty unless keepDense). */
    Tensor dense;
};

/**
 * Plane-to-plane fused GEMM: the engine kernel of
 * indexMatmulTransB(), with the epilogue and the next layer's
 * activation quantization chained into the same row-band walk.
 *
 * Per band: run the exact tiled engine loops (identical noinline
 * engineDot/countingDot calls, reading the planes' precomputed
 * per-row fold sums instead of re-folding the SoA2 + b*PoM2 terms
 * per call), then, while the band's rows are still cache-warm, apply
 * @p epilogue and encode each row straight into the output planes
 * with the same comparator-ladder walk Quantizer::encodeToPlanes()
 * runs (shared LadderSpec::encodeRow) — no intermediate float tensor
 * unless @p keepDense asks for one.
 *
 * Every output value, encoded plane byte, and outlier entry is
 * bit-identical to the unfused sequence
 *   indexMatmulTransB* -> epilogue -> encodeToPlanes
 * for every thread count and lane, which the graph-fusion parity
 * tests pin.
 *
 * @param engine    resolved engine (Auto is a contract violation —
 *                  resolve per site first, see resolveIndexEngine())
 * @param epilogue  optional per-row output transform
 * @param outDict   when set, re-encode the output against this
 *                  dictionary into planes (the fused A->B handoff)
 * @param outSets   plane sets to materialize for the output
 * @param keepDense also materialize the float output tensor (needed
 *                  when the float values feed non-GEMM consumers)
 * @param constants optional hoisted gemmConstants() for this site
 */
FusedGemmOut indexMatmulTransBFused(
    const QuantizedTensor &a, const QuantizedTensor &wt,
    IndexEngine engine, const FusedRowEpilogue &epilogue,
    const TensorDictionary *outDict, PlaneSet outSets,
    bool keepDense, const GemmConstants *constants = nullptr,
    IndexMatmulStats *stats = nullptr, Lane lane = {});

} // namespace mokey

#endif // MOKEY_QUANT_INDEX_MATMUL_HH
