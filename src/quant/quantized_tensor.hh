/**
 * @file
 * Quantized codes and code containers.
 *
 * Every quantized value is a 5 b code (paper §III-A): one bit selects
 * the Gaussian vs the outlier dictionary, one bit is the sign (used
 * only for Gaussian codes), and three bits index the dictionary. In
 * memory the codes live in the 4 b DRAM container of Fig. 5; inside
 * the library we keep the expanded 5 b form, exactly as the paper
 * suggests for on-chip storage.
 */

#ifndef MOKEY_QUANT_QUANTIZED_TENSOR_HH
#define MOKEY_QUANT_QUANTIZED_TENSOR_HH

#include <cstdint>
#include <vector>

#include "quant/tensor_dictionary.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/** A single 5 b quantized code. */
struct QCode
{
    uint8_t raw; ///< bit 4: isOtl, bit 3: sign, bits 2..0: index

    static constexpr uint8_t otlBit = 1u << 4;
    static constexpr uint8_t signBit = 1u << 3;
    static constexpr uint8_t idxMask = 0x7;

    /** Make a Gaussian-dictionary code. */
    static QCode gaussian(bool negative, uint8_t index);

    /** Make an outlier-dictionary code (4 b outlier index). */
    static QCode outlier(uint8_t index);

    bool isOutlier() const { return raw & otlBit; }

    /** Sign of a Gaussian code: true when negative. */
    bool negative() const { return raw & signBit; }

    /** Sign as a +1/-1 integer (Gaussian codes only). */
    int theta() const { return negative() ? -1 : 1; }

    /** 3 b Gaussian index. */
    uint8_t index() const { return raw & idxMask; }

    /** 4 b outlier-dictionary index (sign bit reused as bit 3). */
    uint8_t outlierIndex() const { return raw & 0xf; }

    bool operator==(const QCode &o) const = default;
};

/** A quantized matrix: codes plus the dictionary that decodes them. */
class QuantizedTensor
{
  public:
    QuantizedTensor();
    QuantizedTensor(size_t rows, size_t cols, TensorDictionary dict);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return codes.size(); }

    QCode &at(size_t r, size_t c) { return codes[r * nCols + c]; }
    QCode at(size_t r, size_t c) const { return codes[r * nCols + c]; }

    QCode *row(size_t r) { return codes.data() + r * nCols; }
    const QCode *row(size_t r) const { return codes.data() + r * nCols; }

    const std::vector<QCode> &raw() const { return codes; }
    std::vector<QCode> &raw() { return codes; }

    const TensorDictionary &dictionary() const { return dict; }

    /** Expand every code back to its centroid value. */
    Tensor decode() const;

    /** Decoded value of the code at (r, c). */
    double decodeAt(size_t r, size_t c) const;

    /** Fraction of codes that index the outlier dictionary. */
    double outlierFraction() const;

    /** Memory footprint in the 4 b + pointer DRAM container. */
    size_t packedFootprintBits() const;

  private:
    size_t nRows;
    size_t nCols;
    std::vector<QCode> codes;
    TensorDictionary dict;
};

} // namespace mokey

#endif // MOKEY_QUANT_QUANTIZED_TENSOR_HH
