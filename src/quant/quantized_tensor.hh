/**
 * @file
 * Quantized codes and code containers.
 *
 * Every quantized value is a 5 b code (paper §III-A): one bit selects
 * the Gaussian vs the outlier dictionary, one bit is the sign (used
 * only for Gaussian codes), and three bits index the dictionary. In
 * memory the codes live in the 4 b DRAM container of Fig. 5; inside
 * the library we keep the expanded 5 b form, exactly as the paper
 * suggests for on-chip storage.
 */

#ifndef MOKEY_QUANT_QUANTIZED_TENSOR_HH
#define MOKEY_QUANT_QUANTIZED_TENSOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "quant/tensor_dictionary.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/** A single 5 b quantized code. */
struct QCode
{
    uint8_t raw; ///< bit 4: isOtl, bit 3: sign, bits 2..0: index

    static constexpr uint8_t otlBit = 1u << 4;
    static constexpr uint8_t signBit = 1u << 3;
    static constexpr uint8_t idxMask = 0x7;

    /** Make a Gaussian-dictionary code. */
    static QCode gaussian(bool negative, uint8_t index);

    /** Make an outlier-dictionary code (4 b outlier index). */
    static QCode outlier(uint8_t index);

    bool isOutlier() const { return raw & otlBit; }

    /** Sign of a Gaussian code: true when negative. */
    bool negative() const { return raw & signBit; }

    /** Sign as a +1/-1 integer (Gaussian codes only). */
    int theta() const { return negative() ? -1 : 1; }

    /** 3 b Gaussian index. */
    uint8_t index() const { return raw & idxMask; }

    /** 4 b outlier-dictionary index (sign bit reused as bit 3). */
    uint8_t outlierIndex() const { return raw & 0xf; }

    bool operator==(const QCode &o) const { return raw == o.raw; }
};

/**
 * Which dense planes of a CodePlanes view are materialized. The two
 * engines stream different encodings of the same codes: the counting
 * engine reads the 2-byte (index, theta) byte planes, the magnitude
 * engine reads the 8-byte mag plane. Deriving only what the active
 * engine touches is the difference between 2 B and 10 B of resident
 * plane memory per element (see planesFootprint()).
 */
enum class PlaneSet : unsigned
{
    Bytes = 1u,       ///< uint8 index + int8 theta planes
    Mag = 2u,         ///< double signed-magnitude plane
    All = Bytes | Mag ///< everything (tests, mixed-engine use)
};

constexpr PlaneSet
operator|(PlaneSet a, PlaneSet b)
{
    return static_cast<PlaneSet>(static_cast<unsigned>(a) |
                                 static_cast<unsigned>(b));
}

/** True when @p have covers every plane in @p need. */
constexpr bool
planeSetCovers(PlaneSet have, PlaneSet need)
{
    return (static_cast<unsigned>(have) &
            static_cast<unsigned>(need)) ==
        static_cast<unsigned>(need);
}

/**
 * The execution-friendly view of a quantized matrix: the GPE/OPP
 * split of Fig. 6 made structural.
 *
 * The dense planes cover *every* element: Gaussian codes carry their
 * 3 b index and a +/-1 sign; outlier positions carry index 0 and
 * sign 0, so a branch-free inner loop can stream them and have their
 * histogram contributions vanish — the counting engine's inner loop
 * relies on that invariant (it is asserted when planes are derived
 * in debug builds, see quantized_tensor.cc). Only the planes named
 * by @c sets are materialized; the outlier sidecar is always built.
 * The outlier pairs live in a per-row sidecar of (column, decoded
 * centroid) entries sorted by column — short lists the OPP path
 * merge-iterates.
 */
struct CodePlanes
{
    size_t rows = 0;
    size_t cols = 0;
    PlaneSet sets = PlaneSet::All; ///< planes actually materialized

    std::vector<uint8_t> index; ///< Gaussian index plane (0 at outliers)
    std::vector<int8_t> theta;  ///< +1/-1 sign plane (0 at outliers)

    /**
     * Signed unscaled magnitude plane: theta * (a^index + b), 0.0 at
     * outliers. The engine's workhorse: the entire GPE histogram
     * algebra for a pair of rows collapses exactly to
     * s_a*s_w * dot(magA, magW) (see index_matmul.cc), and a
     * Gaussian code decodes as mag * scale + mean.
     */
    std::vector<double> mag;

    /**
     * One sidecar entry: an outlier's column, its outlier-dictionary
     * code index, and its decoded centroid value. The engines read
     * only (col, value); the index is what lets a planes-first
     * tensor (fromPlanes) materialize exact 5 b codes on demand.
     */
    struct Outlier
    {
        uint32_t col;
        uint8_t index;
        double value;
    };
    std::vector<Outlier> outliers;  ///< all rows, concatenated
    std::vector<uint32_t> rowStart; ///< rows+1 offsets into outliers

    /**
     * Precomputed pairing-independent fold terms, one per row — the
     * SoA2 + b*PoM2 sums of the reconstruction, in each engine's own
     * arithmetic order so consumers read instead of recompute:
     *
     *  - magRowSum[r]  = serial in-order sum of the mag-plane row
     *    (present iff the mag plane is), exactly the mag engine's
     *    per-row fold;
     *  - byteRowSum[r] = signed-index-histogram collapse of the byte
     *    planes against the dictionary magnitudes (present iff the
     *    byte planes are), exactly the counting engine's fold.
     *
     * Every plane builder fills them (derivation, the fused
     * activation encoder, the fused GEMM epilogue), so for pinned
     * weights the per-column GEMM fold — O(N*K) per call in the
     * layer-at-a-time path — collapses to one array read.
     */
    std::vector<double> magRowSum;
    std::vector<double> byteRowSum;

    /**
     * The view this one replaced on a plane-set upgrade. Keeping it
     * alive means a planes() reference taken before a concurrent
     * upgrade stays valid until the codes are next mutated (which
     * drops the whole chain). Upgrades converge to the union after
     * one step, so at most one stale view is ever retained.
     */
    std::shared_ptr<const CodePlanes> displaced;

    const uint8_t *indexRow(size_t r) const
    {
        return index.data() + r * cols;
    }
    const int8_t *thetaRow(size_t r) const
    {
        return theta.data() + r * cols;
    }
    const double *magRow(size_t r) const
    {
        return mag.data() + r * cols;
    }
    const Outlier *outlierRow(size_t r) const
    {
        return outliers.data() + rowStart[r];
    }
    size_t outlierCount(size_t r) const
    {
        return rowStart[r + 1] - rowStart[r];
    }
};

/**
 * The mag engine's pairing-independent row fold: serial in-order sum
 * of one mag-plane row (outlier slots hold 0.0 and vanish). Kept as
 * a plain serial loop on purpose — the precomputed CodePlanes row
 * sums and the per-call GEMM folds must share one arithmetic order
 * for the fused and layer-at-a-time paths to stay bit-identical.
 */
double magPlaneRowSum(const double *mg, size_t n);

/**
 * The counting engine's pairing-independent row fold: signed
 * per-index histogram of one byte-plane row collapsed against the
 * 8-entry magnitude table (@p mags zero-padded past the dictionary's
 * indexCount). Integer histogram + fixed-order 8-term collapse, so
 * the result is a deterministic function of the codes alone.
 */
double bytePlaneRowSum(const uint8_t *ix, const int8_t *th, size_t n,
                       const double *mags);

/**
 * Byte accounting for a tensor's CodePlanes view: what the derived
 * planes cost to keep resident versus what re-deriving them costs —
 * the trade pinPlanes() exists to decide explicitly.
 */
struct PlanesFootprint
{
    bool pinned = false;   ///< pin flag set on this tensor
    bool resident = false; ///< planes currently materialized
    bool bytesResident = false; ///< index/theta byte planes built
    bool magResident = false;   ///< double mag plane built
    size_t codeBytes = 0;  ///< expanded 5 b codes (1 B each)
    size_t planeBytes = 0; ///< resident planes + sidecars
    /**
     * Bytes held by views displaced by plane-set upgrades and kept
     * alive for outstanding references (CodePlanes::displaced).
     * Nonzero after an engine switch on a never-mutated (e.g.
     * pinned-weight) tensor; unpinPlanes() + pinPlanes() reclaims
     * it once no stale references remain.
     */
    size_t retiredBytes = 0;
    size_t outlierEntries = 0; ///< sidecar entries across all rows
    size_t deriveElements = 0; ///< codes walked by one rebuild

    /** Plane memory per code byte (the cost of keeping them). */
    double expansionRatio() const
    {
        return codeBytes != 0
            ? static_cast<double>(planeBytes) /
                static_cast<double>(codeBytes)
            : 0.0;
    }
};

/** A quantized matrix: codes plus the dictionary that decodes them. */
class QuantizedTensor
{
  public:
    QuantizedTensor();
    QuantizedTensor(size_t rows, size_t cols, TensorDictionary dict);

    /**
     * Planes-first construction: adopt an already-derived CodePlanes
     * view (the fused activation encoder's output) without ever
     * materializing the 5 b code array. The codes stay lazy — they
     * are rebuilt exactly (from the byte planes, or by inverting the
     * mag plane, plus the sidecar's outlier indexes) only when a
     * code-domain consumer (pack, decode, raw(), mutation) asks.
     * The execution engines stream planes, so the serving path never
     * pays for codes it does not read.
     */
    static QuantizedTensor
    fromPlanes(std::shared_ptr<const CodePlanes> planes,
               TensorDictionary dict);

    // Copying is a const read of the source, so callers may copy a
    // shared tensor while another thread builds its planes() or
    // materializes its lazy codes: the cache pointer travels through
    // the same atomics the build uses, and the codes are copied only
    // when the source's ready flag says they are stable (otherwise
    // the copy re-materializes from the shared planes on first use).
    // Declaring these suppresses the implicit moves; moves are
    // mutations (never safe under concurrent readers) and are
    // spelled out below.
    QuantizedTensor(const QuantizedTensor &o) : QuantizedTensor()
    {
        *this = o;
    }
    QuantizedTensor &
    operator=(const QuantizedTensor &o)
    {
        if (this != &o) {
            nRows = o.nRows;
            nCols = o.nCols;
            dict = o.dict;
            planesCache = std::atomic_load_explicit(
                &o.planesCache, std::memory_order_acquire);
            pinnedFlag.store(
                o.pinnedFlag.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            if (o.codesReady.load(std::memory_order_acquire)) {
                codes = o.codes;
                codesReady.store(true, std::memory_order_relaxed);
            } else {
                codes.clear();
                codesReady.store(false, std::memory_order_relaxed);
            }
        }
        return *this;
    }
    // Moves are mutations (never safe under concurrent readers), so
    // they may handle the cache and flags non-atomically; they are
    // spelled out only because the atomic members suppress the
    // defaults.
    QuantizedTensor(QuantizedTensor &&o) noexcept
        : nRows(o.nRows), nCols(o.nCols), codes(std::move(o.codes)),
          dict(std::move(o.dict)),
          planesCache(std::move(o.planesCache)),
          pinnedFlag(o.pinnedFlag.load(std::memory_order_relaxed)),
          codesReady(o.codesReady.load(std::memory_order_relaxed))
    {
    }
    QuantizedTensor &
    operator=(QuantizedTensor &&o) noexcept
    {
        if (this != &o) {
            nRows = o.nRows;
            nCols = o.nCols;
            codes = std::move(o.codes);
            dict = std::move(o.dict);
            planesCache = std::move(o.planesCache);
            pinnedFlag.store(
                o.pinnedFlag.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            codesReady.store(
                o.codesReady.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        return *this;
    }

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return nRows * nCols; }

    QCode &at(size_t r, size_t c)
    {
        ensureCodes();
        dropPlanes();
        return codes[r * nCols + c];
    }
    QCode at(size_t r, size_t c) const
    {
        ensureCodes();
        return codes[r * nCols + c];
    }

    QCode *row(size_t r)
    {
        ensureCodes();
        dropPlanes();
        return codes.data() + r * nCols;
    }
    const QCode *row(size_t r) const
    {
        ensureCodes();
        return codes.data() + r * nCols;
    }

    const std::vector<QCode> &raw() const
    {
        ensureCodes();
        return codes;
    }
    std::vector<QCode> &raw()
    {
        ensureCodes();
        dropPlanes();
        return codes;
    }

    /** True when the 5 b code array is materialized (false only for
     * a fromPlanes() tensor no code consumer has touched yet). */
    bool codesMaterialized() const
    {
        return codesReady.load(std::memory_order_acquire);
    }

    const TensorDictionary &dictionary() const { return dict; }

    /**
     * The dense-plane + outlier-sidecar view, built on first use and
     * cached until the codes are next mutated (any non-const
     * accessor drops the cache). Only the planes in @p need are
     * guaranteed materialized: an engine that streams byte planes
     * never pays for (or keeps) the 8 B/element mag plane. A request
     * for planes the cache lacks rebuilds it as the union of old and
     * new sets, so repeated mixed-engine use converges instead of
     * thrashing. Concurrent const callers are safe (the build is
     * single-flight behind atomics); mutating the tensor while
     * another thread reads planes() is not.
     */
    const CodePlanes &planes(PlaneSet need = PlaneSet::All) const;

    /**
     * Like planes(), but returns the owning pointer. Engines hold
     * this for the duration of a GEMM so a concurrent plane-set
     * upgrade (which swaps the cache pointer) can never free the
     * view mid-kernel.
     */
    std::shared_ptr<const CodePlanes>
    planesShared(PlaneSet need = PlaneSet::All) const;

    /**
     * Build the planes now (if absent) and pin them: an explicit
     * statement that this tensor's planes should stay resident —
     * weights that every forward pass multiplies against. Pass the
     * active engine's enginePlaneSet() to keep only what it streams.
     * The pin (and the built planes) survives copies; mutation still
     * drops the stale planes (correctness first), and the retained
     * pin makes the next planes() rebuild them. Returns the planes.
     */
    const CodePlanes &pinPlanes(PlaneSet need = PlaneSet::All) const;

    /**
     * Clear the pin and release this tensor's cached planes so the
     * memory can be reclaimed (copies keep their own references).
     * Like mutation, not safe while another thread holds a planes()
     * reference into this object.
     */
    void unpinPlanes() const;

    /** True after pinPlanes() (copies inherit the flag). */
    bool planesPinned() const
    {
        return pinnedFlag.load(std::memory_order_relaxed);
    }

    /**
     * Byte accounting: resident plane memory versus the re-derive
     * cost unpinning trades it for. resident/planeBytes reflect the
     * current cache state; pass counts are exact either way.
     */
    PlanesFootprint planesFootprint() const;

    /** Expand every code back to its centroid value. */
    Tensor decode() const;

    /** Decoded value of the code at (r, c). */
    double decodeAt(size_t r, size_t c) const;

    /** Fraction of codes that index the outlier dictionary. */
    double outlierFraction() const;

    /** Memory footprint in the 4 b + pointer DRAM container. */
    size_t packedFootprintBits() const;

  private:
    size_t nRows;
    size_t nCols;
    /** 5 b codes; mutable + lazily built for fromPlanes() tensors. */
    mutable std::vector<QCode> codes;
    TensorDictionary dict;

    /**
     * Lazily built planes view. shared_ptr so copies of the tensor
     * share the (immutable) cache; a copy that later mutates its own
     * codes only resets its own pointer. Accessed only through the
     * std::atomic_* shared_ptr functions so concurrent const readers
     * are safe.
     */
    mutable std::shared_ptr<const CodePlanes> planesCache;

    /**
     * Sticky "keep planes resident" intent (travels with copies).
     * Orthogonal to the cache itself: mutation drops stale planes
     * regardless, and the flag only promises an eager rebuild was
     * requested once.
     */
    mutable std::atomic<bool> pinnedFlag{false};

    /**
     * False only for a fromPlanes() tensor whose codes have not been
     * materialized yet (the planes are then the source of truth).
     * Set with release after the codes vector is fully built, read
     * with acquire, so concurrent const readers are safe.
     */
    mutable std::atomic<bool> codesReady{true};

    /** Materialize lazy codes if needed (cheap no-op when ready). */
    void ensureCodes() const
    {
        if (!codesReady.load(std::memory_order_acquire))
            materializeCodes();
    }

    /** Single-flight code materialization from the cached planes. */
    void materializeCodes() const;

    void dropPlanes() const
    {
        std::atomic_store_explicit(
            &planesCache, std::shared_ptr<const CodePlanes>(),
            std::memory_order_release);
    }
};

/**
 * Stack several quantized matrices into one tall matrix (the batched
 * serving row space). All parts must have the same width and be
 * encoded against the same dictionary — the whole point of batching
 * is that one dictionary's setup is shared, so mismatched parts are
 * a logic error and panic.
 */
QuantizedTensor
concatQuantizedRows(const std::vector<const QuantizedTensor *> &parts);

} // namespace mokey

#endif // MOKEY_QUANT_QUANTIZED_TENSOR_HH
