/**
 * @file
 * Encoding tensors into dictionary codes (paper §II-A, Fig. 7).
 *
 * Two encode paths exist on purpose:
 *  - encode(): the reference nearest-centroid search used when
 *    preparing weights offline;
 *  - encodeComparatorLadder(): a faithful functional model of the
 *    hardware output-activation quantizer of Fig. 7 — compare the
 *    value against every centroid of the sorted combined (G + OT)
 *    dictionary, leading-one detect, pick the closer of the two
 *    straddling centroids. The ladder always returns the globally
 *    nearest centroid; the reference path may differ only for values
 *    straddling the Gaussian/outlier threshold, where both choices
 *    carry the same reconstruction error bound.
 */

#ifndef MOKEY_QUANT_QUANTIZER_HH
#define MOKEY_QUANT_QUANTIZER_HH

#include "common/parallel.hh"
#include "quant/quantized_tensor.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/**
 * The comparator-ladder constants of one dictionary, hoisted out of
 * the per-row encode loop and shared by every fused encoder —
 * Quantizer::encodeToPlanes() and the fused GEMM epilogue both run
 * the same encodeRow(), so their planes are bit-identical by
 * construction.
 */
struct LadderSpec
{
    /** Ascending magnitudes padded to the kernel's 8-entry table by
     * repeating the last real entry (what encodeLadder expects). */
    double mags[8] = {};
    /** The same table zero-padded past indexCount — the byte-plane
     * fold's collapse table (bytePlaneRowSum). */
    double foldMags[8] = {};
    size_t h = 0; ///< real magnitude entries, in [1, 8]
    double mean = 0.0;
    double scale = 1.0;
    /** Outlier threshold on |v - mean|; +inf without an OT table. */
    double cut = 0.0;
    const TensorDictionary *dict = nullptr;

    static LadderSpec from(const TensorDictionary &dict);

    /**
     * Encode one row of @p n floats: run the vectorized ladder into
     * the requested plane slices (any of @p ix / @p th / @p mg may
     * be null), then resolve the rare outlier lanes scalar,
     * appending (col, OT index, centroid) entries to @p ot in column
     * order. Returns the outlier count.
     */
    size_t encodeRow(const float *src, size_t n, uint8_t *ix,
                     int8_t *th, double *mg,
                     std::vector<CodePlanes::Outlier> &ot) const;
};

/** Quantization entry point bundling dictionary build + encode. */
class Quantizer
{
  public:
    /** @param exp the shared fitted exponential dictionary. */
    explicit Quantizer(ExpDictionary exp);

    const ExpDictionary &exp() const { return expDict; }

    /**
     * Build a per-tensor dictionary from the tensor's own values
     * (the weight path — values are statically known).
     */
    TensorDictionary buildDictionary(
        const Tensor &t, const TensorDictConfig &cfg = {}) const;

    /**
     * Build a per-tensor dictionary from profiled samples (the
     * activation path — §II-C "estimated using profiling").
     */
    TensorDictionary buildDictionaryFromSamples(
        const std::vector<float> &samples,
        const TensorDictConfig &cfg = {}) const;

    /**
     * Encode a full tensor against a prepared dictionary. Rows fan
     * out over the executor on @p lane; results are lane- and
     * thread-count-independent.
     */
    QuantizedTensor encode(const Tensor &t,
                           const TensorDictionary &dict,
                           Lane lane = {}) const;

    /**
     * Fused single-pass encode for the serving path: walk each row
     * band once and emit the index/theta/mag planes and the outlier
     * sidecars directly — no intermediate code tensor, no separate
     * derivePlanes walk. The comparator ladder runs vectorized
     * (simd.hh encodeLadder) and only the planes in @p sets are
     * materialized, so an activation headed for the counting engine
     * costs 2 B/element of writes instead of 1 B codes + 10 B
     * derived planes. The result is a planes-first QuantizedTensor
     * (fromPlanes): bit-identical planes to
     * encode(t, dict).planes(sets), with the 5 b codes themselves
     * materialized lazily only if pack/decode/tests ask. Rows fan
     * out over the executor on @p lane; results are lane- and
     * thread-count-independent.
     */
    QuantizedTensor encodeToPlanes(const Tensor &t,
                                   const TensorDictionary &dict,
                                   PlaneSet sets = PlaneSet::All,
                                   Lane lane = {}) const;

    /** Encode one value by nearest-centroid search (reference). */
    QCode encodeValue(double v, const TensorDictionary &dict) const;

    /**
     * Encode one value with the comparator-ladder semantics of
     * Fig. 7 (hardware output quantizer model).
     */
    QCode encodeComparatorLadder(double v,
                                 const TensorDictionary &dict) const;

    /** Decode helper: value of @p code under @p dict. */
    static double decode(QCode code, const TensorDictionary &dict);

  private:
    ExpDictionary expDict;
};

} // namespace mokey

#endif // MOKEY_QUANT_QUANTIZER_HH
