#include "quant/exp_dictionary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mokey
{

ExpDictionary
ExpDictionary::fit(const GoldenDictionary &gd)
{
    const auto &half = gd.half();
    const ExpFit f = fitExponential(
        std::vector<double>(half.begin(), half.end()));
    return ExpDictionary(f.a, f.b, half.size());
}

ExpDictionary::ExpDictionary(double a, double b, size_t index_count)
    : baseA(a), offsetB(b)
{
    MOKEY_ASSERT(index_count >= 1, "empty index space");
    MOKEY_ASSERT(a > 1.0, "exponential base must exceed 1 (got %f)", a);
    powers.resize(index_count);
    mags.resize(index_count);
    double p = 1.0;
    for (size_t i = 0; i < index_count; ++i) {
        powers[i] = p;
        mags[i] = p + b;
        p *= a;
    }
    MOKEY_ASSERT(mags.front() > 0.0,
                 "smallest magnitude non-positive: a=%f b=%f", a, b);
    sumPowers.resize(2 * index_count - 1);
    p = 1.0;
    for (auto &sp : sumPowers) {
        sp = p;
        p *= a;
    }
}

double
ExpDictionary::magnitude(size_t i) const
{
    MOKEY_ASSERT(i < mags.size(), "index %zu out of range", i);
    return mags[i];
}

double
ExpDictionary::power(size_t e) const
{
    MOKEY_ASSERT(e < sumPowers.size(), "exponent %zu out of range", e);
    return sumPowers[e];
}

size_t
ExpDictionary::nearestIndex(double u) const
{
    const auto it = std::lower_bound(mags.begin(), mags.end(), u);
    if (it == mags.begin())
        return 0;
    if (it == mags.end())
        return mags.size() - 1;
    const size_t hi = static_cast<size_t>(it - mags.begin());
    const size_t lo = hi - 1;
    return (u - mags[lo] <= mags[hi] - u) ? lo : hi;
}

} // namespace mokey
