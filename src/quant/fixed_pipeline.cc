#include "quant/fixed_pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace mokey
{

FixedIndexEngine::FixedIndexEngine(const TensorDictionary &dict_a,
                                   const TensorDictionary &dict_w,
                                   FixedFormat out_fmt)
    : dictA(dict_a), dictW(dict_w), outFmt(out_fmt),
      accFmt{62, 24}
{
    const ExpDictionary &exp = dictA.exp();
    MOKEY_ASSERT(exp.a() == dictW.exp().a() &&
                 exp.b() == dictW.exp().b(),
                 "operands use different exponential dictionaries");
    const size_t h = exp.indexCount();
    MOKEY_ASSERT(h <= kMaxGaussianIndexes, "index space too large");

    // 16 b format for a^0 .. a^(2h-2).
    baseFmt = FixedFormat::forRange(16, 0.0, exp.power(2 * h - 2));
    for (size_t e = 0; e < 2 * h - 1; ++e)
        powRaw[e] = toFixedRaw(exp.power(e), baseFmt);

    const double s_a = dictA.scale(), s_w = dictW.scale();
    const double m_a = dictA.mean(), m_w = dictW.mean();
    const double b = exp.b();

    cSoi = makeCoeff(s_a * s_w);
    cB = makeCoeff(s_a * s_w * b);
    cBB = makeCoeff(s_a * s_w * b * b);
    cAm = makeCoeff(s_a * m_w);
    cAmB = makeCoeff(s_a * m_w * b);
    cWm = makeCoeff(s_w * m_a);
    cWmB = makeCoeff(s_w * m_a * b);
    cMm = makeCoeff(m_a * m_w);

    // Centroid lookup tables in each operand's own 16 b format
    // (the OPP's G/OT-LUT contents).
    const auto snap_all = [h](const TensorDictionary &d,
                              std::vector<int64_t> &g,
                              std::vector<int64_t> &ot) {
        const FixedFormat &f = d.fixedFormat();
        g.resize(2 * h);
        for (size_t i = 0; i < h; ++i) {
            g[2 * i] = toFixedRaw(d.gaussianValue(false, i), f);
            g[2 * i + 1] = toFixedRaw(d.gaussianValue(true, i), f);
        }
        ot.clear();
        for (double c : d.outlierCentroids())
            ot.push_back(toFixedRaw(c, f));
    };
    snap_all(dictA, gARaw, otARaw);
    snap_all(dictW, gWRaw, otWRaw);
    meanARaw = toFixedRaw(m_a, dictA.fixedFormat());
    meanWRaw = toFixedRaw(m_w, dictW.fixedFormat());
}

FixedIndexEngine::Coeff
FixedIndexEngine::makeCoeff(double v)
{
    const double mag = std::max(std::abs(v), 1e-12);
    const FixedFormat f = FixedFormat::forRange(16, -mag, mag);
    return Coeff{toFixedRaw(v, f), f};
}

FixedVectorConstants
FixedIndexEngine::vectorConstants(const QCode *codes, size_t n) const
{
    FixedVectorConstants c;
    for (size_t i = 0; i < n; ++i) {
        const QCode q = codes[i];
        if (q.isOutlier())
            continue;
        const int64_t p = powRaw[q.index()];
        if (q.negative()) {
            c.soa2Raw -= p;
            c.pom2 -= 1;
        } else {
            c.soa2Raw += p;
            c.pom2 += 1;
        }
    }
    return c;
}

int64_t
FixedIndexEngine::term(int64_t sum_raw, int frac_sum,
                       const Coeff &c) const
{
    // (sum at frac_sum) * (coeff at c.fmt.fracBits) has
    // frac_sum + c.fmt.fracBits fractional bits; bring to accFmt.
    const int64_t prod = sum_raw * c.raw;
    return roundShift(prod,
                      frac_sum + c.fmt.fracBits - accFmt.fracBits);
}

int64_t
FixedIndexEngine::decodeRaw(QCode q, bool is_a) const
{
    if (q.isOutlier()) {
        const auto &ot = is_a ? otARaw : otWRaw;
        MOKEY_ASSERT(q.outlierIndex() < ot.size(),
                     "outlier index beyond LUT");
        return ot[q.outlierIndex()];
    }
    const auto &g = is_a ? gARaw : gWRaw;
    return g[2 * q.index() + (q.negative() ? 1 : 0)];
}

int64_t
FixedIndexEngine::dotRaw(const QCode *a, const QCode *w, size_t k,
                         const FixedVectorConstants &ca,
                         const FixedVectorConstants &cw,
                         IndexMatmulStats *stats) const
{
    const size_t h = dictA.exp().indexCount();

    CrfState crf;
    int64_t ot_acc = 0; // frac = fracA + fracW
    const int frac_a = dictA.fixedFormat().fracBits;
    const int frac_w = dictW.fixedFormat().fracBits;
    uint64_t g_pairs = 0, ot_pairs = 0;

    for (size_t i = 0; i < k; ++i) {
        const QCode qa = a[i], qw = w[i];
        if (qa.isOutlier() || qw.isOutlier()) {
            const int64_t av = decodeRaw(qa, true);
            const int64_t wv = decodeRaw(qw, false);
            int64_t corr;
            if (qa.isOutlier() && qw.isOutlier())
                corr = meanARaw * meanWRaw;
            else if (qa.isOutlier())
                corr = meanARaw * wv;
            else
                corr = meanWRaw * av;
            ot_acc += av * wv - corr;
            ++ot_pairs;
            continue;
        }
        const int sign = (qa.negative() != qw.negative()) ? -1 : 1;
        crf.soi[qa.index() + qw.index()] += sign;
        crf.soa1[qa.index()] += sign;
        crf.sow1[qw.index()] += sign;
        crf.pom1 += sign;
        ++g_pairs;
    }

    // Post-processing, all integer: weighted reductions of the CRFs
    // against the 16 b power table, then coefficient scaling into the
    // wide accumulator format.
    int64_t soi_raw = 0, soa1_raw = 0, sow1_raw = 0;
    for (size_t e = 0; e < 2 * h - 1; ++e)
        soi_raw += static_cast<int64_t>(crf.soi[e]) * powRaw[e];
    for (size_t i = 0; i < h; ++i) {
        soa1_raw += static_cast<int64_t>(crf.soa1[i]) * powRaw[i];
        sow1_raw += static_cast<int64_t>(crf.sow1[i]) * powRaw[i];
    }

    const int fb = baseFmt.fracBits;
    int64_t acc = 0;
    acc += term(soi_raw, fb, cSoi);
    acc += term(soa1_raw + sow1_raw, fb, cB);
    acc += term(crf.pom1, 0, cBB);
    acc += term(ca.soa2Raw, fb, cAm);
    acc += term(ca.pom2, 0, cAmB);
    acc += term(cw.soa2Raw, fb, cWm);
    acc += term(cw.pom2, 0, cWmB);
    acc += term(static_cast<int64_t>(k), 0, cMm);
    acc += roundShift(ot_acc, frac_a + frac_w - accFmt.fracBits);

    if (stats)
        stats->add(g_pairs, ot_pairs);

    // Land in the output activation's 16 b format, saturating.
    const int64_t out =
        roundShift(acc, accFmt.fracBits - outFmt.fracBits);
    return std::clamp(out, outFmt.rawMin(), outFmt.rawMax());
}

double
FixedIndexEngine::dot(const QCode *a, const QCode *w, size_t k,
                      const FixedVectorConstants &ca,
                      const FixedVectorConstants &cw,
                      IndexMatmulStats *stats) const
{
    return fromFixedRaw(dotRaw(a, w, k, ca, cw, stats), outFmt);
}

namespace
{

/** Weight-tile width mirroring the float/index engines. */
constexpr size_t kFixedTileN = 32;

Tensor
fixedEngineMatmul(const QuantizedTensor &a, const QuantizedTensor &wt,
                  FixedFormat out_fmt, IndexMatmulStats *stats,
                  bool parallel, Lane lane = {})
{
    MOKEY_ASSERT(a.cols() == wt.cols(), "shape mismatch");
    const size_t m = a.rows(), n = wt.rows(), k = a.cols();

    FixedIndexEngine eng(a.dictionary(), wt.dictionary(), out_fmt);

    // Vector constants are exact integers, so parallel computation
    // changes nothing; the scalar path stays serial to honour its
    // never-touch-the-pool contract.
    std::vector<FixedVectorConstants> row_c(m), col_c(n);
    const auto fold_row = [&](size_t i) {
        row_c[i] = eng.vectorConstants(a.row(i), k);
    };
    const auto fold_col = [&](size_t j) {
        col_c[j] = eng.vectorConstants(wt.row(j), k);
    };
    if (parallel) {
        parallelFor(lane, 0, m, 16, fold_row);
        parallelFor(lane, 0, n, 16, fold_col);
    } else {
        for (size_t i = 0; i < m; ++i)
            fold_row(i);
        for (size_t j = 0; j < n; ++j)
            fold_col(j);
    }

    Tensor out(m, n);
    const auto band = [&](size_t lo, size_t hi) {
        // Pair counts accumulate privately per band and publish once
        // so the shared stats atomics stay off the inner loop.
        IndexMatmulStats local;
        IndexMatmulStats *acc = stats ? &local : nullptr;
        for (size_t jb = 0; jb < n; jb += kFixedTileN) {
            const size_t jhi = std::min(jb + kFixedTileN, n);
            for (size_t i = lo; i < hi; ++i) {
                float *orow = out.row(i);
                for (size_t j = jb; j < jhi; ++j)
                    orow[j] = static_cast<float>(
                        eng.dot(a.row(i), wt.row(j), k, row_c[i],
                                col_c[j], acc));
            }
        }
        if (stats)
            stats->merge(local);
    };
    if (parallel)
        parallelForRange(lane, 0, m, 1, band);
    else
        band(0, m);
    return out;
}

} // anonymous namespace

Tensor
fixedIndexMatmulTransB(const QuantizedTensor &a,
                       const QuantizedTensor &wt, FixedFormat out_fmt,
                       IndexMatmulStats *stats, Lane lane)
{
    return fixedEngineMatmul(a, wt, out_fmt, stats, true, lane);
}

Tensor
fixedIndexMatmulTransBScalar(const QuantizedTensor &a,
                             const QuantizedTensor &wt,
                             FixedFormat out_fmt,
                             IndexMatmulStats *stats)
{
    return fixedEngineMatmul(a, wt, out_fmt, stats, false);
}

} // namespace mokey
