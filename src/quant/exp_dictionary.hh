/**
 * @file
 * The exponential dictionary (paper §II-D, Fig. 3).
 *
 * Mokey fits the positive half of the Golden Dictionary to the curve
 * a^i + b so that multiplication of two dictionary values reduces to
 * an *addition of their integer indexes* (a^i * a^j = a^(i+j)). The
 * ExpDictionary holds the fitted (a, b), evaluates centroid
 * magnitudes, and precomputes the power tables a^0..a^(2h-2) the
 * post-processing step multiplies histogram counts with.
 */

#ifndef MOKEY_QUANT_EXP_DICTIONARY_HH
#define MOKEY_QUANT_EXP_DICTIONARY_HH

#include <cstdint>
#include <vector>

#include "fit/expfit.hh"
#include "quant/golden_dictionary.hh"

namespace mokey
{

/**
 * The fitted exponential dictionary shared by all tensors.
 *
 * Index space: i in [0, indexCount) (3 b for the paper's 16-entry
 * dictionaries). The unscaled magnitude of index i is a^i + b; a full
 * code adds a sign and the per-tensor affine transform s, m.
 */
class ExpDictionary
{
  public:
    /**
     * Fit to a golden dictionary's positive half with the paper's
     * doubling weight scheme.
     */
    static ExpDictionary fit(const GoldenDictionary &gd);

    /** Construct directly from parameters (for tests and replay). */
    ExpDictionary(double a, double b, size_t index_count);

    double a() const { return baseA; }
    double b() const { return offsetB; }

    /** Number of magnitude indexes (8 for 4 b quantization). */
    size_t indexCount() const { return powers.size(); }

    /** Unscaled magnitude of index @p i: a^i + b. */
    double magnitude(size_t i) const;

    /** a^e for the summed-exponent domain e in [0, 2*(h-1)]. */
    double power(size_t e) const;

    /** Number of summed-exponent entries (15 for 4 b quantization). */
    size_t powerCount() const { return sumPowers.size(); }

    /**
     * Nearest index to an unscaled magnitude @p u >= 0
     * (binary search over the monotone magnitude table).
     */
    size_t nearestIndex(double u) const;

    /** Largest unscaled magnitude (magnitude(indexCount()-1)). */
    double maxMagnitude() const { return mags.back(); }

  private:
    double baseA;
    double offsetB;
    std::vector<double> powers;    ///< a^i, i in [0, h)
    std::vector<double> mags;      ///< a^i + b, ascending
    std::vector<double> sumPowers; ///< a^e, e in [0, 2h-1)
};

} // namespace mokey

#endif // MOKEY_QUANT_EXP_DICTIONARY_HH
