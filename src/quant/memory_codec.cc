#include "quant/memory_codec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace mokey
{

void
BitWriter::put(uint64_t value, unsigned bits)
{
    MOKEY_ASSERT(bits >= 1 && bits <= 57, "bad field width %u", bits);
    value &= (bits == 64) ? ~0ull : ((1ull << bits) - 1);
    for (unsigned i = 0; i < bits; ++i) {
        const size_t bit = nBits + i;
        if (bit / 8 >= buf.size())
            buf.push_back(0);
        if ((value >> i) & 1)
            buf[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
    nBits += bits;
}

void
BitWriter::append(const BitWriter &o)
{
    if (o.nBits == 0)
        return;
    if (nBits % 8 == 0) {
        // Aligned: the other stream's bytes drop in verbatim (its
        // final partial byte is zero-padded, exactly what put()
        // would leave behind).
        buf.insert(buf.end(), o.buf.begin(), o.buf.end());
        nBits += o.nBits;
        return;
    }
    size_t remaining = o.nBits;
    for (size_t i = 0; remaining > 0; ++i) {
        const unsigned bits =
            remaining >= 8 ? 8u : static_cast<unsigned>(remaining);
        put(o.buf[i], bits);
        remaining -= bits;
    }
}

BitReader::BitReader(const std::vector<uint8_t> &bytes)
    : buf(bytes), pos(0)
{
}

uint64_t
BitReader::get(unsigned bits)
{
    MOKEY_ASSERT(bits >= 1 && bits <= 57, "bad field width %u", bits);
    MOKEY_ASSERT(pos + bits <= buf.size() * 8,
                 "bit stream underrun at %zu", pos);
    uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
        const size_t bit = pos + i;
        if ((buf[bit / 8] >> (bit % 8)) & 1)
            v |= 1ull << i;
    }
    pos += bits;
    return v;
}

void
BitReader::skip(size_t bits)
{
    MOKEY_ASSERT(pos + bits <= buf.size() * 8,
                 "bit stream underrun at %zu", pos);
    pos += bits;
}

size_t
PackedTensor::totalBits() const
{
    return values.size() * 8 + otPointers.size() * 8;
}

double
PackedTensor::compressionRatio(size_t baseline_bits_per_value) const
{
    if (totalBits() == 0)
        return 1.0;
    return static_cast<double>(count * baseline_bits_per_value) /
        static_cast<double>(totalBits());
}

namespace
{

/**
 * Groups per parallel band. A band is 64 * 64 = 4096 codes — large
 * enough that the per-band writer/stitch overhead disappears, small
 * enough that bands outnumber workers on real tensors.
 */
constexpr size_t kCodecBandGroups = 64;

/** Encode groups [g_from, g_to) of @p codes into the two streams. */
void
packGroups(const std::vector<QCode> &codes, size_t g_from,
           size_t g_to, BitWriter &values, BitWriter &pointers)
{
    const size_t n = codes.size();
    for (size_t g = g_from * kCodecGroupSize;
         g < g_to * kCodecGroupSize && g < n; g += kCodecGroupSize) {
        const size_t end = std::min(g + kCodecGroupSize, n);
        // First pass: collect outlier positions in the group.
        std::vector<uint8_t> positions;
        for (size_t i = g; i < end; ++i) {
            if (codes[i].isOutlier())
                positions.push_back(static_cast<uint8_t>(i - g));
        }
        pointers.put(positions.size(), kCodecCountBits);
        for (uint8_t p : positions)
            pointers.put(p, kCodecPosBits);
        // Second pass: the dense 4 b value stream. A Gaussian code
        // packs (sign, index); an outlier code packs its 4 b
        // outlier-dictionary index.
        for (size_t i = g; i < end; ++i) {
            const QCode c = codes[i];
            const uint8_t nibble = c.isOutlier()
                ? c.outlierIndex()
                : static_cast<uint8_t>((c.negative() ? 8 : 0) |
                                       c.index());
            values.put(nibble, 4);
        }
    }
}

/** Decode groups [g_from, g_to) from the two streams into @p codes. */
void
unpackGroups(std::vector<QCode> &codes, size_t count, size_t g_from,
             size_t g_to, BitReader &values, BitReader &pointers)
{
    for (size_t g = g_from * kCodecGroupSize;
         g < g_to * kCodecGroupSize && g < count;
         g += kCodecGroupSize) {
        const size_t end = std::min(g + kCodecGroupSize, count);
        const auto ot_count =
            static_cast<size_t>(pointers.get(kCodecCountBits));
        std::vector<bool> is_ot(end - g, false);
        for (size_t i = 0; i < ot_count; ++i) {
            const auto pos =
                static_cast<size_t>(pointers.get(kCodecPosBits));
            MOKEY_ASSERT(pos < end - g, "outlier position %zu beyond "
                         "group", pos);
            is_ot[pos] = true;
        }
        for (size_t i = g; i < end; ++i) {
            const auto nibble =
                static_cast<uint8_t>(values.get(4));
            codes[i] = is_ot[i - g]
                ? QCode::outlier(nibble)
                : QCode::gaussian(nibble & 8,
                                  static_cast<uint8_t>(nibble & 7));
        }
    }
}

} // anonymous namespace

PackedTensor
packTensorScalar(const QuantizedTensor &q)
{
    BitWriter values, pointers;
    const auto &codes = q.raw();
    const size_t n_groups =
        (codes.size() + kCodecGroupSize - 1) / kCodecGroupSize;
    packGroups(codes, 0, n_groups, values, pointers);

    PackedTensor out;
    out.values = values.bytes();
    out.otPointers = pointers.bytes();
    out.count = codes.size();
    out.rows = q.rows();
    out.cols = q.cols();
    return out;
}

PackedTensor
packTensor(const QuantizedTensor &q, Lane lane)
{
    const auto &codes = q.raw();
    const size_t n_groups =
        (codes.size() + kCodecGroupSize - 1) / kCodecGroupSize;
    const size_t n_bands =
        (n_groups + kCodecBandGroups - 1) / kCodecBandGroups;
    if (n_bands <= 1)
        return packTensorScalar(q);

    // Each band encodes its own groups into private streams; every
    // group's encoding depends only on its own codes, so stitching
    // the bands in order reproduces the sequential bit stream
    // exactly, independent of how the executor ran the bands.
    std::vector<BitWriter> band_values(n_bands);
    std::vector<BitWriter> band_pointers(n_bands);
    parallelFor(lane, 0, n_bands, 1, [&](size_t b) {
        const size_t g_from = b * kCodecBandGroups;
        const size_t g_to =
            std::min(g_from + kCodecBandGroups, n_groups);
        packGroups(codes, g_from, g_to, band_values[b],
                   band_pointers[b]);
    });

    BitWriter values, pointers;
    for (size_t b = 0; b < n_bands; ++b) {
        values.append(band_values[b]);
        pointers.append(band_pointers[b]);
    }

    PackedTensor out;
    out.values = values.bytes();
    out.otPointers = pointers.bytes();
    out.count = codes.size();
    out.rows = q.rows();
    out.cols = q.cols();
    return out;
}

QuantizedTensor
unpackTensorScalar(const PackedTensor &p, const TensorDictionary &dict)
{
    QuantizedTensor q(p.rows, p.cols, dict);
    MOKEY_ASSERT(q.size() == p.count, "packed shape mismatch");

    BitReader values(p.values), pointers(p.otPointers);
    // One raw() call up front: the non-const accessor drops the
    // planes cache with an atomic store, far too heavy per element.
    std::vector<QCode> &codes = q.raw();
    const size_t n_groups =
        (p.count + kCodecGroupSize - 1) / kCodecGroupSize;
    unpackGroups(codes, p.count, 0, n_groups, values, pointers);
    return q;
}

QuantizedTensor
unpackTensor(const PackedTensor &p, const TensorDictionary &dict,
             Lane lane)
{
    const size_t n_groups =
        (p.count + kCodecGroupSize - 1) / kCodecGroupSize;
    const size_t n_bands =
        (n_groups + kCodecBandGroups - 1) / kCodecBandGroups;
    if (n_bands <= 1)
        return unpackTensorScalar(p, dict);

    QuantizedTensor q(p.rows, p.cols, dict);
    MOKEY_ASSERT(q.size() == p.count, "packed shape mismatch");

    // The value stream is trivially seekable (every group before the
    // last holds exactly 64 * 4 bits), but the pointer stream is
    // variable-length — a cheap sequential prescan over the 7 b
    // group counts yields each band's start bit, after which bands
    // decode concurrently into disjoint code ranges.
    std::vector<size_t> ptr_start(n_bands);
    {
        BitReader pointers(p.otPointers);
        for (size_t g = 0; g < n_groups; ++g) {
            if (g % kCodecBandGroups == 0)
                ptr_start[g / kCodecBandGroups] =
                    pointers.position();
            const auto ot_count = static_cast<size_t>(
                pointers.get(kCodecCountBits));
            pointers.skip(ot_count * kCodecPosBits);
        }
    }

    std::vector<QCode> &codes = q.raw();
    parallelFor(lane, 0, n_bands, 1, [&](size_t b) {
        const size_t g_from = b * kCodecBandGroups;
        const size_t g_to =
            std::min(g_from + kCodecBandGroups, n_groups);
        BitReader values(p.values);
        values.skip(g_from * kCodecGroupSize * 4);
        BitReader pointers(p.otPointers);
        pointers.skip(ptr_start[b]);
        unpackGroups(codes, p.count, g_from, g_to, values, pointers);
    });
    return q;
}

} // namespace mokey
