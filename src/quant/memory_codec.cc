#include "quant/memory_codec.hh"

#include "common/logging.hh"

namespace mokey
{

void
BitWriter::put(uint64_t value, unsigned bits)
{
    MOKEY_ASSERT(bits >= 1 && bits <= 57, "bad field width %u", bits);
    value &= (bits == 64) ? ~0ull : ((1ull << bits) - 1);
    for (unsigned i = 0; i < bits; ++i) {
        const size_t bit = nBits + i;
        if (bit / 8 >= buf.size())
            buf.push_back(0);
        if ((value >> i) & 1)
            buf[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
    nBits += bits;
}

BitReader::BitReader(const std::vector<uint8_t> &bytes)
    : buf(bytes), pos(0)
{
}

uint64_t
BitReader::get(unsigned bits)
{
    MOKEY_ASSERT(bits >= 1 && bits <= 57, "bad field width %u", bits);
    MOKEY_ASSERT(pos + bits <= buf.size() * 8,
                 "bit stream underrun at %zu", pos);
    uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
        const size_t bit = pos + i;
        if ((buf[bit / 8] >> (bit % 8)) & 1)
            v |= 1ull << i;
    }
    pos += bits;
    return v;
}

size_t
PackedTensor::totalBits() const
{
    return values.size() * 8 + otPointers.size() * 8;
}

double
PackedTensor::compressionRatio(size_t baseline_bits_per_value) const
{
    if (totalBits() == 0)
        return 1.0;
    return static_cast<double>(count * baseline_bits_per_value) /
        static_cast<double>(totalBits());
}

PackedTensor
packTensor(const QuantizedTensor &q)
{
    BitWriter values, pointers;

    const auto &codes = q.raw();
    const size_t n = codes.size();
    for (size_t g = 0; g < n; g += kCodecGroupSize) {
        const size_t end = std::min(g + kCodecGroupSize, n);
        // First pass: collect outlier positions in the group.
        std::vector<uint8_t> positions;
        for (size_t i = g; i < end; ++i) {
            if (codes[i].isOutlier())
                positions.push_back(static_cast<uint8_t>(i - g));
        }
        pointers.put(positions.size(), kCodecCountBits);
        for (uint8_t p : positions)
            pointers.put(p, kCodecPosBits);
        // Second pass: the dense 4 b value stream. A Gaussian code
        // packs (sign, index); an outlier code packs its 4 b
        // outlier-dictionary index.
        for (size_t i = g; i < end; ++i) {
            const QCode c = codes[i];
            const uint8_t nibble = c.isOutlier()
                ? c.outlierIndex()
                : static_cast<uint8_t>((c.negative() ? 8 : 0) |
                                       c.index());
            values.put(nibble, 4);
        }
    }

    PackedTensor out;
    out.values = values.bytes();
    out.otPointers = pointers.bytes();
    out.count = n;
    out.rows = q.rows();
    out.cols = q.cols();
    return out;
}

QuantizedTensor
unpackTensor(const PackedTensor &p, const TensorDictionary &dict)
{
    QuantizedTensor q(p.rows, p.cols, dict);
    MOKEY_ASSERT(q.size() == p.count, "packed shape mismatch");

    BitReader values(p.values), pointers(p.otPointers);
    // One raw() call up front: the non-const accessor drops the
    // planes cache with an atomic store, far too heavy per element.
    std::vector<QCode> &codes = q.raw();
    for (size_t g = 0; g < p.count; g += kCodecGroupSize) {
        const size_t end = std::min(g + kCodecGroupSize, p.count);
        const auto ot_count =
            static_cast<size_t>(pointers.get(kCodecCountBits));
        std::vector<bool> is_ot(end - g, false);
        for (size_t i = 0; i < ot_count; ++i) {
            const auto pos =
                static_cast<size_t>(pointers.get(kCodecPosBits));
            MOKEY_ASSERT(pos < end - g, "outlier position %zu beyond "
                         "group", pos);
            is_ot[pos] = true;
        }
        for (size_t i = g; i < end; ++i) {
            const auto nibble =
                static_cast<uint8_t>(values.get(4));
            codes[i] = is_ot[i - g]
                ? QCode::outlier(nibble)
                : QCode::gaussian(nibble & 8,
                                  static_cast<uint8_t>(nibble & 7));
        }
    }
    return q;
}

} // namespace mokey
