/**
 * @file
 * Runtime selection of the index-domain GEMM execution engine.
 *
 * Two engines realize the paper's index-domain algebra over the same
 * CodePlanes outlier sidecars but different dense-plane encodings:
 *
 *  - Mag   : streams the 8-byte-per-element signed magnitude plane;
 *            the whole GPE histogram algebra collapses into one
 *            vectorized double dot product. Fastest when the planes
 *            are cache-resident.
 *  - Count : the paper-faithful counting dataflow — streams the
 *            2-byte-per-element (uint8 index, int8 theta) byte
 *            planes, SIMD-accumulates a signed histogram over the
 *            joint index space per output element, then collapses it
 *            with one short dot against the decoded dictionary
 *            products. 4x fewer streamed bytes per element; the
 *            histogram phase is exact integer arithmetic.
 *
 * The active engine is chosen once per process from the MOKEY_ENGINE
 * environment variable ("mag" or "count"; default "mag") and can be
 * switched at runtime with setIndexEngine(). indexMatmulTransB() and
 * indexMatmulTransBScalar() dispatch on it, so the whole pipeline —
 * serving stack included — switches engines without a rebuild.
 */

#ifndef MOKEY_QUANT_ENGINE_HH
#define MOKEY_QUANT_ENGINE_HH

#include "quant/quantized_tensor.hh"

namespace mokey
{

/** Selectable index-domain GEMM backends. */
enum class IndexEngine
{
    Mag,   ///< magnitude-plane dot-product engine
    Count, ///< byte-plane histogram (counting) engine
};

/**
 * The engine indexMatmulTransB() currently dispatches to.
 * Initialized once from MOKEY_ENGINE (unset -> Mag; anything other
 * than "mag"/"count"/"counting" is a fatal config error).
 */
IndexEngine indexEngine();

/** Switch the process-wide engine (tests restore the prior value). */
void setIndexEngine(IndexEngine engine);

/** Human-readable engine name ("mag" / "count"). */
const char *indexEngineName(IndexEngine engine);

/**
 * The CodePlanes subset an engine streams: Mag reads the magnitude
 * plane, Count reads the index/theta byte planes. Both share the
 * outlier sidecars, which planes() always derives. Used to pin (and
 * account) exactly the bytes the active engine will touch.
 */
PlaneSet enginePlaneSet(IndexEngine engine);

} // namespace mokey

#endif // MOKEY_QUANT_ENGINE_HH
