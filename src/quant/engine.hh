/**
 * @file
 * Runtime selection of the index-domain GEMM execution engine.
 *
 * Two engines realize the paper's index-domain algebra over the same
 * CodePlanes outlier sidecars but different dense-plane encodings:
 *
 *  - Mag   : streams the 8-byte-per-element signed magnitude plane;
 *            the whole GPE histogram algebra collapses into one
 *            vectorized double dot product. Fastest when the planes
 *            are cache-resident.
 *  - Count : the paper-faithful counting dataflow — streams the
 *            2-byte-per-element (uint8 index, int8 theta) byte
 *            planes, SIMD-accumulates a signed histogram over the
 *            joint index space per output element, then collapses it
 *            with one short dot against the decoded dictionary
 *            products. 4x fewer streamed bytes per element; the
 *            histogram phase is exact integer arithmetic.
 *
 * The active engine is chosen once per process from the MOKEY_ENGINE
 * environment variable ("mag" or "count"; default "mag") and can be
 * switched at runtime with setIndexEngine(). indexMatmulTransB() and
 * indexMatmulTransBScalar() dispatch on it, so the whole pipeline —
 * serving stack included — switches engines without a rebuild.
 */

#ifndef MOKEY_QUANT_ENGINE_HH
#define MOKEY_QUANT_ENGINE_HH

#include "quant/quantized_tensor.hh"

namespace mokey
{

/** Selectable index-domain GEMM backends. */
enum class IndexEngine
{
    Mag,   ///< magnitude-plane dot-product engine
    Count, ///< byte-plane histogram (counting) engine
    Auto,  ///< per-GEMM choice from K and plane residency
};

/**
 * The engine indexMatmulTransB() currently dispatches to.
 * Initialized once from MOKEY_ENGINE (unset -> Mag; anything other
 * than "mag"/"count"/"counting"/"auto" is a fatal config error).
 * Auto defers the choice to resolveIndexEngine() per GEMM.
 */
IndexEngine indexEngine();

/** Switch the process-wide engine (tests restore the prior value). */
void setIndexEngine(IndexEngine engine);

/** Human-readable engine name ("mag" / "count" / "auto"). */
const char *indexEngineName(IndexEngine engine);

/**
 * The CodePlanes subset an engine streams: Mag reads the magnitude
 * plane, Count reads the index/theta byte planes. Both share the
 * outlier sidecars, which planes() always derives. Used to pin (and
 * account) exactly the bytes the active engine will touch. Auto maps
 * to the byte planes — the cheap, always-acceptable default when the
 * per-GEMM choice has not resolved yet.
 */
PlaneSet enginePlaneSet(IndexEngine engine);

/**
 * Streamed-mag working set above which the Auto heuristic calls a
 * GEMM DRAM-bound and routes it to the counting engine: the mag
 * engine's edge is cache residency, and 8 B/element planes that
 * spill are exactly the regime the 2 B/element byte planes exist
 * for (ROADMAP: "pick count when planes are cold or K is
 * DRAM-bound").
 */
constexpr size_t kAutoMagBudgetBytes = 12u << 20;

/**
 * Whether engine self-calibration is enabled (MOKEY_CALIBRATE,
 * default off). When on, two things change:
 *  - the Auto mag budget comes from a measured cache probe
 *    (calibrateMagBudget) instead of the hand-tuned constant;
 *  - the fused graph path's first iterations time mag-vs-count per
 *    weight site and pin each site's engine for the rest of the run
 *    (see QuantizedTransformer::enginePins()).
 * Off by default because the timing-derived choices, while always
 * correct, are host-dependent — parity tests want the pure decision
 * table.
 */
bool engineCalibration();

/** Flip calibration at runtime (tests restore the prior value). */
void setEngineCalibration(bool on);

/**
 * Measure the host's streamed-read cache cliff once per process: a
 * tiny timed probe (sumD over growing buffers) finds the largest
 * working set that still streams at near-cache bandwidth, which is
 * exactly the regime where the 8 B/element mag planes win. Result
 * is clamped to [4 MiB, 64 MiB] and cached; takes a few ms on the
 * first call.
 */
size_t calibrateMagBudget();

/**
 * The Auto heuristic's byte budget actually in force: the
 * compile-time default, the calibrated probe result (when
 * MOKEY_CALIBRATE is on), or a setAutoMagBudgetBytes() override.
 * Resolved lazily on first use and cached per process.
 */
size_t autoMagBudgetBytes();

/** Override the budget (tests); 0 re-resolves default/calibrated. */
void setAutoMagBudgetBytes(size_t bytes);

/**
 * The MOKEY_ENGINE=auto decision table, as a pure function so the
 * unit tests can pin it:
 *
 *  1. (aRows + wRows) * k mag-plane bytes over the budget -> Count
 *     (K is DRAM-bound: stream 2 B/element, not 8);
 *  2. weight mag plane resident (pinned warm) -> Mag (fastest when
 *     cache-resident and already paid for);
 *  3. otherwise (weight planes cold, or only byte planes resident)
 *     -> Count (deriving/streaming byte planes is 4x cheaper than
 *     materializing mag).
 *
 * @param aRows  activation rows (M)
 * @param wRows  weight rows (N; the transposed operand)
 * @param k      reduction length
 * @param weight the weight tensor's current planesFootprint()
 * @param budget mag-stream byte budget; 0 (the default) reads the
 *               process budget autoMagBudgetBytes()
 */
IndexEngine autoEngineChoice(size_t aRows, size_t wRows, size_t k,
                             const PlanesFootprint &weight,
                             size_t budget = 0);

/**
 * The engine a GEMM over (a, wt) runs on: the fixed selection, or
 * the Auto decision table applied to this GEMM's shape and the
 * weight-side plane residency.
 */
IndexEngine resolveIndexEngine(const QuantizedTensor &a,
                               const QuantizedTensor &wt);

/**
 * The plane set quantizeWeights() pins for a weight under @p engine.
 * Fixed engines pin what they stream; Auto pins per weight: Mag when
 * the weight's own mag plane fits comfortably in the budget (so
 * serving GEMMs resolve to the mag engine at step 2 above), byte
 * planes otherwise (step 1 will route those GEMMs to counting).
 */
PlaneSet weightPlaneSet(IndexEngine engine, size_t wRows, size_t k);

} // namespace mokey

#endif // MOKEY_QUANT_ENGINE_HH
