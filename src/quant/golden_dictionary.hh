/**
 * @file
 * Golden Dictionary generation (paper §II-B, Fig. 2).
 *
 * The Golden Dictionary (GD) is built once, independent of any model:
 * draw a large N(0,1) sample, run agglomerative clustering down to 16
 * centroids, repeat, and average the sorted centroid sets. Because the
 * source distribution is symmetric around zero only the 8 positive
 * magnitudes need to be kept; the sign bit of each quantized code
 * supplies the other half.
 */

#ifndef MOKEY_QUANT_GOLDEN_DICTIONARY_HH
#define MOKEY_QUANT_GOLDEN_DICTIONARY_HH

#include <cstdint>
#include <vector>

#include "clustering/agglomerative1d.hh"

namespace mokey
{

/** Configuration for golden-dictionary generation. */
struct GoldenDictionaryConfig
{
    size_t samples = 50000;  ///< N(0,1) draws per trial (paper: 50 k)
    size_t entries = 16;     ///< dictionary size (paper: 16)
    size_t repeats = 5;      ///< trials averaged into the GD
    uint64_t seed = 0x600D;  ///< base PRNG seed
    Linkage linkage = Linkage::Ward;
};

/**
 * The model-independent reference dictionary.
 *
 * Holds the full sorted centroid list and the symmetrized positive
 * half used for the exponential fit.
 */
class GoldenDictionary
{
  public:
    /** Generate per the configuration (deterministic in the seed). */
    static GoldenDictionary generate(
        const GoldenDictionaryConfig &cfg = {});

    /** Build directly from an explicit centroid list (for tests). */
    static GoldenDictionary fromCentroids(std::vector<double> sorted);

    /** All centroids, sorted ascending (size = cfg.entries). */
    const std::vector<double> &centroids() const { return full; }

    /**
     * Symmetrized positive magnitudes, ascending
     * (size = entries / 2). half()[i] is the magnitude quantized
     * codes with index i map to before per-tensor scaling.
     */
    const std::vector<double> &half() const { return halfMagnitudes; }

    /** Number of full-dictionary entries. */
    size_t size() const { return full.size(); }

  private:
    std::vector<double> full;
    std::vector<double> halfMagnitudes;

    void symmetrize();
};

} // namespace mokey

#endif // MOKEY_QUANT_GOLDEN_DICTIONARY_HH
