/**
 * @file
 * Prior-work quantization baselines (paper Table IV, §V).
 *
 * Each baseline reproduces the *quantization transfer function* of a
 * published method — what matters for comparing task-performance
 * degradation and footprint. All of them implement a common
 * interface: quantize-dequantize a weight or activation tensor and
 * report the bits each tensor class occupies.
 *
 *  - Q8BERT:      symmetric per-tensor uniform int8, weights + acts
 *  - I-BERT:      uniform int8 with percentile clipping (integer-only
 *                 inference)
 *  - Q-BERT:      group-wise 4 b weights (128-column groups), 8 b acts
 *  - GOBO:        3 b dictionary weights via iterative k-means +
 *                 FP32 outliers; activations untouched
 *  - TernaryBERT: 2 b {-w, 0, +w} per-row weights, 8 b acts
 *  - Mokey:       this library (4 b / 4 b), for the same interface
 */

#ifndef MOKEY_QUANT_BASELINES_HH
#define MOKEY_QUANT_BASELINES_HH

#include <memory>
#include <string>
#include <vector>

#include "quant/quantizer.hh"
#include "tensor/tensor.hh"

namespace mokey
{

/** Common interface for quantization methods under comparison. */
class BaselineQuantizer
{
  public:
    virtual ~BaselineQuantizer() = default;

    /** Method name as it appears in Table IV. */
    virtual std::string name() const = 0;

    /** Quantize-dequantize a weight tensor. */
    virtual Tensor quantizeWeights(const Tensor &w) const = 0;

    /** Quantize-dequantize an activation tensor. */
    virtual Tensor quantizeActivations(const Tensor &a) const = 0;

    /** Average bits per weight (including outlier overheads). */
    virtual double weightBits() const = 0;

    /** Average bits per activation. */
    virtual double activationBits() const = 0;

    /** True when inference needs no floating-point units. */
    virtual bool integerCompute() const = 0;

    /** True for post-training methods (no fine-tuning). */
    virtual bool postTraining() const = 0;

    /**
     * Total-footprint compression vs FP32 for a workload with
     * @p weight_values weights and @p act_values activations.
     */
    double compressionRatio(size_t weight_values,
                            size_t act_values) const;
};

/** FP32 passthrough (the "baseline" row). */
std::unique_ptr<BaselineQuantizer> makeFp32Baseline();

/** Q8BERT-style symmetric per-tensor int8. */
std::unique_ptr<BaselineQuantizer> makeQ8Bert();

/** I-BERT-style int8 with percentile clipping. */
std::unique_ptr<BaselineQuantizer> makeIBert();

/** Q-BERT-style group-wise 4 b weights / 8 b activations. */
std::unique_ptr<BaselineQuantizer> makeQBert(size_t group = 128);

/** GOBO-style 3 b dictionary weights, FP32 activations. */
std::unique_ptr<BaselineQuantizer> makeGobo(double outlier_frac = 0.001);

/** TernaryBERT-style 2 b weights / 8 b activations. */
std::unique_ptr<BaselineQuantizer> makeTernaryBert();

/** Mokey wrapped in the same interface (4 b / 4 b). */
std::unique_ptr<BaselineQuantizer> makeMokeyBaseline(
    const Quantizer &q);

/** All Table IV rows in paper order. */
std::vector<std::unique_ptr<BaselineQuantizer>> makeTable4Lineup(
    const Quantizer &q);

} // namespace mokey

#endif // MOKEY_QUANT_BASELINES_HH
