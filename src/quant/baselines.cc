#include "quant/baselines.hh"

#include <algorithm>
#include <cmath>

#include "clustering/kmeans1d.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace mokey
{

double
BaselineQuantizer::compressionRatio(size_t weight_values,
                                    size_t act_values) const
{
    const double fp32 =
        32.0 * static_cast<double>(weight_values + act_values);
    const double quant =
        weightBits() * static_cast<double>(weight_values) +
        activationBits() * static_cast<double>(act_values);
    return fp32 / quant;
}

namespace
{

/** Uniform symmetric quantize-dequantize with a given max range. */
Tensor
uniformQuant(const Tensor &t, int bits, double max_abs)
{
    const double levels = std::ldexp(1.0, bits - 1) - 1.0;
    const double s = max_abs > 0.0 ? max_abs / levels : 1.0;
    Tensor out(t.rows(), t.cols());
    for (size_t i = 0; i < t.size(); ++i) {
        const double q = std::nearbyint(t.raw()[i] / s);
        out.raw()[i] = static_cast<float>(
            std::clamp(q, -levels, levels) * s);
    }
    return out;
}

double
maxAbs(const Tensor &t)
{
    double mx = 0.0;
    for (float v : t.raw())
        mx = std::max(mx, std::abs(static_cast<double>(v)));
    return mx;
}

class Fp32Baseline : public BaselineQuantizer
{
  public:
    std::string name() const override { return "FP32 Baseline"; }
    Tensor quantizeWeights(const Tensor &w) const override { return w; }
    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        return a;
    }
    double weightBits() const override { return 32.0; }
    double activationBits() const override { return 32.0; }
    bool integerCompute() const override { return false; }
    bool postTraining() const override { return true; }
};

class Q8Bert : public BaselineQuantizer
{
  public:
    std::string name() const override { return "Q8BERT"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        return uniformQuant(w, 8, maxAbs(w));
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        return uniformQuant(a, 8, maxAbs(a));
    }

    double weightBits() const override { return 8.0; }
    double activationBits() const override { return 8.0; }
    bool integerCompute() const override { return false; }
    bool postTraining() const override { return false; }
};

class IBert : public BaselineQuantizer
{
  public:
    std::string name() const override { return "I-BERT"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        return uniformQuant(w, 8, maxAbs(w));
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        // Percentile clipping tames activation tails.
        const double hi = quantile(a.raw(), 0.9995);
        const double lo = quantile(a.raw(), 0.0005);
        return uniformQuant(a, 8, std::max(std::abs(hi),
                                           std::abs(lo)));
    }

    double weightBits() const override { return 8.0; }
    double activationBits() const override { return 8.0; }
    bool integerCompute() const override { return true; }
    bool postTraining() const override { return false; }
};

class QBert : public BaselineQuantizer
{
  public:
    explicit QBert(size_t group) : groupCols(group) {}

    std::string name() const override { return "Q-BERT"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        // Group-wise uniform 4 b: each run of groupCols columns in a
        // row shares a scale.
        Tensor out(w.rows(), w.cols());
        const double levels = 7.0;
        for (size_t r = 0; r < w.rows(); ++r) {
            for (size_t g0 = 0; g0 < w.cols(); g0 += groupCols) {
                const size_t g1 = std::min(g0 + groupCols, w.cols());
                double mx = 0.0;
                for (size_t c = g0; c < g1; ++c)
                    mx = std::max(mx, std::abs(
                        static_cast<double>(w.at(r, c))));
                const double s = mx > 0.0 ? mx / levels : 1.0;
                for (size_t c = g0; c < g1; ++c) {
                    const double q =
                        std::nearbyint(w.at(r, c) / s);
                    out.at(r, c) = static_cast<float>(
                        std::clamp(q, -levels, levels) * s);
                }
            }
        }
        return out;
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        return uniformQuant(a, 8, maxAbs(a));
    }

    double weightBits() const override { return 4.0; }
    double activationBits() const override { return 8.0; }
    bool integerCompute() const override { return false; }
    bool postTraining() const override { return false; }

  private:
    size_t groupCols;
};

class Gobo : public BaselineQuantizer
{
  public:
    explicit Gobo(double outlier_frac) : otFrac(outlier_frac) {}

    std::string name() const override { return "GOBO"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        // Split off the |v| tail as FP32 outliers, k-means the rest
        // into 8 centroids (3 b).
        std::vector<float> mags(w.raw());
        for (auto &v : mags)
            v = std::abs(v);
        const double cut =
            quantile(mags, std::max(0.0, 1.0 - otFrac));

        std::vector<float> bulk;
        bulk.reserve(w.size());
        for (float v : w.raw()) {
            if (std::abs(v) <= cut)
                bulk.push_back(v);
        }
        Tensor out(w.rows(), w.cols());
        if (bulk.empty()) {
            out.raw() = w.raw();
            return out;
        }
        const auto km = kmeans1d(bulk, std::min<size_t>(8,
                                                        bulk.size()));
        for (size_t i = 0; i < w.size(); ++i) {
            const float v = w.raw()[i];
            if (std::abs(v) > cut) {
                out.raw()[i] = v; // outliers stay FP32
            } else {
                out.raw()[i] = static_cast<float>(
                    km.centroids[nearestCentroid(km.centroids, v)]);
            }
        }
        return out;
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        return a; // GOBO leaves activations in floating point
    }

    double
    weightBits() const override
    {
        // 3 b codes plus FP32 storage for the outlier fraction.
        return 3.0 + otFrac * 32.0;
    }

    double activationBits() const override { return 32.0; }
    bool integerCompute() const override { return false; }
    bool postTraining() const override { return true; }

  private:
    double otFrac;
};

class TernaryBert : public BaselineQuantizer
{
  public:
    std::string name() const override { return "TernaryBERT"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        // Per-row TWN-style ternarization: threshold 0.7 * mean|w|,
        // magnitude = mean of the surviving |w|.
        Tensor out(w.rows(), w.cols());
        for (size_t r = 0; r < w.rows(); ++r) {
            double mean_abs = 0.0;
            for (size_t c = 0; c < w.cols(); ++c)
                mean_abs += std::abs(
                    static_cast<double>(w.at(r, c)));
            mean_abs /= static_cast<double>(w.cols());
            const double thr = 0.7 * mean_abs;
            double mag = 0.0;
            size_t n = 0;
            for (size_t c = 0; c < w.cols(); ++c) {
                if (std::abs(static_cast<double>(w.at(r, c))) > thr) {
                    mag += std::abs(static_cast<double>(w.at(r, c)));
                    ++n;
                }
            }
            mag = n ? mag / static_cast<double>(n) : 0.0;
            for (size_t c = 0; c < w.cols(); ++c) {
                const double v = w.at(r, c);
                out.at(r, c) = static_cast<float>(
                    std::abs(v) > thr ? (v > 0 ? mag : -mag) : 0.0);
            }
        }
        return out;
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        return uniformQuant(a, 8, maxAbs(a));
    }

    double weightBits() const override { return 2.0; }
    double activationBits() const override { return 8.0; }
    bool integerCompute() const override { return false; }
    bool postTraining() const override { return false; }
};

class MokeyBaseline : public BaselineQuantizer
{
  public:
    explicit MokeyBaseline(const Quantizer &q) : quantizer(q) {}

    std::string name() const override { return "Mokey"; }

    Tensor
    quantizeWeights(const Tensor &w) const override
    {
        const auto dict = quantizer.buildDictionary(w);
        return quantizer.encode(w, dict).decode();
    }

    Tensor
    quantizeActivations(const Tensor &a) const override
    {
        const auto dict = quantizer.buildDictionary(a);
        return quantizer.encode(a, dict).decode();
    }

    // 4 b codes plus the Fig. 5 pointer-stream overhead at the
    // paper's average outlier rates.
    double weightBits() const override { return 4.0 + 7.0 / 64.0 +
            0.015 * 6.0; }
    double activationBits() const override { return 4.0 + 7.0 / 64.0 +
            0.045 * 6.0; }
    bool integerCompute() const override { return true; }
    bool postTraining() const override { return true; }

  private:
    const Quantizer &quantizer;
};

} // anonymous namespace

std::unique_ptr<BaselineQuantizer>
makeFp32Baseline()
{
    return std::make_unique<Fp32Baseline>();
}

std::unique_ptr<BaselineQuantizer>
makeQ8Bert()
{
    return std::make_unique<Q8Bert>();
}

std::unique_ptr<BaselineQuantizer>
makeIBert()
{
    return std::make_unique<IBert>();
}

std::unique_ptr<BaselineQuantizer>
makeQBert(size_t group)
{
    return std::make_unique<QBert>(group);
}

std::unique_ptr<BaselineQuantizer>
makeGobo(double outlier_frac)
{
    return std::make_unique<Gobo>(outlier_frac);
}

std::unique_ptr<BaselineQuantizer>
makeTernaryBert()
{
    return std::make_unique<TernaryBert>();
}

std::unique_ptr<BaselineQuantizer>
makeMokeyBaseline(const Quantizer &q)
{
    return std::make_unique<MokeyBaseline>(q);
}

std::vector<std::unique_ptr<BaselineQuantizer>>
makeTable4Lineup(const Quantizer &q)
{
    std::vector<std::unique_ptr<BaselineQuantizer>> v;
    v.push_back(makeFp32Baseline());
    v.push_back(makeQ8Bert());
    v.push_back(makeIBert());
    v.push_back(makeQBert());
    v.push_back(makeGobo());
    v.push_back(makeTernaryBert());
    v.push_back(makeMokeyBaseline(q));
    return v;
}

} // namespace mokey
