/**
 * @file
 * Cycle-level model of one Mokey tile (paper §III-B, Fig. 6).
 *
 * A tile is 8 cascaded Gaussian PEs sharing one outlier /
 * post-processing unit. Per cycle each un-held GPE consumes a group
 * of up to 8 (activation, weight) pairs; Gaussian pairs bump the
 * CRFs immediately, outlier pairs must pass through the OPP. The
 * serial leading-one detector grants the OPP to the lowest-indexed
 * GPE with a pending outlier; every other GPE with pending outliers
 * asserts hold and stalls its input channel.
 *
 * This model is driven with real code streams (from quantized
 * tensors) or synthetic outlier patterns, and is used to validate
 * the analytic throughput model inside the accelerator simulator.
 */

#ifndef MOKEY_SIM_GPE_HH
#define MOKEY_SIM_GPE_HH

#include <cstdint>
#include <vector>

#include "sim/crf.hh"

namespace mokey
{

/** One multiply pair presented to the tile. */
struct PairEvent
{
    bool isOutlier;
    uint8_t sumIndex;   ///< idxA + idxW (Gaussian pairs)
    uint8_t idxA;
    uint8_t idxW;
    int8_t sign;        ///< +1 / -1
};

/** Tile configuration. */
struct TileConfig
{
    size_t gpes = 8;           ///< GPEs per tile
    size_t lanesPerGpe = 8;    ///< pairs consumed per GPE per cycle
    size_t oppPerCycle = 2;    ///< outlier MACs the OPP retires/cycle
    unsigned counterBits = 8;  ///< CRF counter width
    size_t postprocessCycles = 33; ///< serial CRF scan per output
};

/** Outcome of a tile run. */
struct TileResult
{
    uint64_t cycles = 0;          ///< total cycles including stalls
    uint64_t holdCycles = 0;      ///< GPE-cycles lost to hold
    uint64_t oppBusyCycles = 0;   ///< cycles the OPP serviced outliers
    uint64_t crfDrains = 0;       ///< mid-reduction CRF drains
    uint64_t pairsProcessed = 0;
    uint64_t outlierPairs = 0;

    /** Pairs retired per cycle. */
    double throughput() const;
};

/** Cycle-level simulator for one tile. */
class TileSim
{
  public:
    explicit TileSim(const TileConfig &cfg = {});

    /**
     * Run one reduction: each GPE receives its own pair stream
     * (streams may differ in length; shorter ones idle at the end).
     * Post-processing for @p outputs output activations is appended
     * serially at the end.
     */
    TileResult run(const std::vector<std::vector<PairEvent>> &streams,
                   size_t outputs) const;

    /**
     * Convenience: synthetic streams of @p pairs_per_gpe pairs with
     * Bernoulli(@p outlier_prob) outliers.
     */
    TileResult runSynthetic(size_t pairs_per_gpe, double outlier_prob,
                            size_t outputs, uint64_t seed) const;

    const TileConfig &config() const { return cfg; }

    /**
     * Analytic throughput estimate (pairs/cycle for the whole tile)
     * for the given outlier-pair probability — the closed form the
     * accelerator simulator uses. The cycle model validates it.
     */
    double analyticThroughput(double outlier_prob) const;

  private:
    TileConfig cfg;
};

} // namespace mokey

#endif // MOKEY_SIM_GPE_HH
