/**
 * @file
 * Energy and area models (paper §IV-B).
 *
 * The paper's per-operation numbers come from post-layout synthesis
 * at 65 nm / 1 GHz plus CACTI for SRAMs. We cannot run Synopsys
 * tooling here, so per-op constants are calibrated to the published
 * aggregates (Tables II and III): an FP16 tensor-core lane burns
 * ~7.7 pJ/MAC all-in, a Mokey Gaussian pair ~2.85 pJ (the paper's
 * "2.7x less energy" per unit), buffer areas reproduce the Table III
 * area rows, and DRAM energy per bit is set so the published
 * off-chip/compute energy split (~82 % at 256 KB) holds. The *model
 * structure* (how energy scales with traffic, capacity, width) is
 * what the experiments exercise; the constants anchor it to the
 * paper's technology point.
 */

#ifndef MOKEY_SIM_ENERGY_MODEL_HH
#define MOKEY_SIM_ENERGY_MODEL_HH

#include <cstddef>
#include <cstdint>

namespace mokey
{

/** Technology constants, all per-op energies in pJ. */
struct EnergyModel
{
    // Compute.
    double fp16MacPj = 7.7;       ///< tensor-core lane, all-in
    double goboOpPj = 4.6;        ///< GOBO FP16 accumulate lane
    double mokeyGaussPairPj = 2.85; ///< GPE index add + CRF bump
    double mokeyOutlierMacPj = 8.5; ///< OPP LUT + 16 b MAC
    double mokeyPostprocessPj = 12.0; ///< per output activation

    // Memory.
    double dramPjPerBit = 60.0;   ///< DDR4 incl. background power

    /**
     * On-chip buffer read/write energy per bit, CACTI-like scaling:
     * grows with the square root of capacity.
     *
     * @param capacity_bytes buffer capacity
     */
    double sramPjPerBit(size_t capacity_bytes) const;
};

/**
 * Buffer area model calibrated to Table III.
 *
 * Area = interface overhead (proportional to the datapath width the
 * buffer must feed) + capacity-proportional cell area. Mokey's 5 b
 * interfaces shrink the overhead term by ~6x.
 */
struct SramAreaModel
{
    double overheadMm2;   ///< width-dependent fixed term
    double mm2PerMb;      ///< cell-array slope

    double area(size_t capacity_bytes) const;

    /** Wide 16 b-interface buffers (Tensor Cores, GOBO). */
    static SramAreaModel wideInterface();

    /** Narrow 5 b-interface buffers (Mokey). */
    static SramAreaModel narrowInterface();
};

} // namespace mokey

#endif // MOKEY_SIM_ENERGY_MODEL_HH
