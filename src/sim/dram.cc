#include "sim/dram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mokey
{

void
DramResult::merge(const DramResult &o)
{
    cycles += o.cycles;
    energyJ += o.energyJ;
    bursts += o.bursts;
    rowActivations += o.rowActivations;
}

DramModel::DramModel(const DramConfig &config) : cfg(config)
{
    MOKEY_ASSERT(cfg.channels >= 1 && cfg.banksPerChannel >= 1,
                 "degenerate DRAM geometry");
}

DramResult
DramModel::stream(uint64_t bytes, size_t streams) const
{
    DramResult r;
    if (bytes == 0)
        return r;
    streams = std::max<size_t>(streams, 1);

    r.bursts = (bytes + cfg.burstBytes - 1) / cfg.burstBytes;

    // A single stream walks rows sequentially: one activation per
    // row. Interleaved streams ping-pong at DMA-chunk granularity;
    // whenever the round-robin returns to a stream whose row was
    // closed by a bank conflict, a fresh activation is due. With
    // more streams than open-row slots per bank group this degrades
    // towards one activation per chunk — the regime DRAMSIM3
    // reports for multi-tensor tiled GEMM traffic.
    uint64_t activations;
    if (streams == 1) {
        activations = (bytes + cfg.rowBytes - 1) / cfg.rowBytes;
    } else {
        const uint64_t chunks =
            (bytes + cfg.chunkBytes - 1) / cfg.chunkBytes;
        // A fraction of chunk switches land on a still-open row.
        const double reopen_prob = std::min(
            1.0, static_cast<double>(streams) / 3.0);
        activations = static_cast<uint64_t>(std::ceil(
            static_cast<double>(chunks) * reopen_prob));
    }
    r.rowActivations = activations;

    // Timing: burst transfers pipeline at peak bandwidth; row
    // activations expose tRP + tRCD + tCL, partially hidden by
    // bank-level parallelism.
    const double burst_cycles =
        static_cast<double>(bytes) / cfg.peakBytesPerCycle;
    const double row_overhead =
        static_cast<double>(r.rowActivations) *
        (cfg.tRp + cfg.tRcd + cfg.tCl) / cfg.rowMissOverlap;
    r.cycles = burst_cycles + row_overhead;

    const double bits = static_cast<double>(bytes) * 8.0;
    r.energyJ =
        (bits * (cfg.readWritePjPerBit + cfg.backgroundPjPerBit) +
         static_cast<double>(r.rowActivations) * cfg.activatePj) *
        1e-12;
    return r;
}

double
DramModel::effectiveBandwidth(size_t streams) const
{
    const uint64_t probe = 64ull * 1024 * 1024;
    const DramResult r = stream(probe, streams);
    return static_cast<double>(probe) / r.cycles;
}

} // namespace mokey
