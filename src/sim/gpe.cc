#include "sim/gpe.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mokey
{

double
TileResult::throughput() const
{
    return cycles ? static_cast<double>(pairsProcessed) /
        static_cast<double>(cycles) : 0.0;
}

TileSim::TileSim(const TileConfig &config) : cfg(config)
{
    MOKEY_ASSERT(cfg.gpes >= 1 && cfg.lanesPerGpe >= 1 &&
                 cfg.oppPerCycle >= 1, "degenerate tile");
}

TileResult
TileSim::run(const std::vector<std::vector<PairEvent>> &streams,
             size_t outputs) const
{
    MOKEY_ASSERT(streams.size() <= cfg.gpes,
                 "%zu streams for %zu GPEs", streams.size(),
                 cfg.gpes);

    struct GpeState
    {
        size_t next = 0;                ///< stream cursor
        std::deque<PairEvent> pending;  ///< outliers awaiting OPP
        CrfSim soi{15, 8};
        CrfSim soa1{8, 8};
        CrfSim sow1{8, 8};
        CrfSim pom1{1, 8};
    };
    std::vector<GpeState> gpes(streams.size());
    for (size_t g = 0; g < gpes.size(); ++g) {
        gpes[g].soi = CrfSim(15, cfg.counterBits);
        gpes[g].soa1 = CrfSim(8, cfg.counterBits);
        gpes[g].sow1 = CrfSim(8, cfg.counterBits);
        gpes[g].pom1 = CrfSim(1, cfg.counterBits);
    }

    TileResult res;
    auto all_done = [&]() {
        for (size_t g = 0; g < gpes.size(); ++g) {
            if (gpes[g].next < streams[g].size() ||
                !gpes[g].pending.empty())
                return false;
        }
        return true;
    };

    while (!all_done()) {
        ++res.cycles;

        // Phase 1: every un-held GPE consumes its next group.
        for (size_t g = 0; g < gpes.size(); ++g) {
            GpeState &st = gpes[g];
            if (!st.pending.empty()) {
                ++res.holdCycles; // channel stalled this cycle
                continue;
            }
            const size_t take = std::min(
                cfg.lanesPerGpe, streams[g].size() - st.next);
            for (size_t i = 0; i < take; ++i) {
                const PairEvent &e = streams[g][st.next + i];
                if (e.isOutlier) {
                    st.pending.push_back(e);
                    ++res.outlierPairs;
                } else {
                    uint64_t d = 0;
                    d += st.soi.bump(e.sumIndex, e.sign);
                    d += st.soa1.bump(e.idxA, e.sign);
                    d += st.sow1.bump(e.idxW, e.sign);
                    d += st.pom1.bump(0, e.sign);
                    res.crfDrains += d;
                }
            }
            st.next += take;
            res.pairsProcessed += take;
        }

        // Phase 2: the OPP drains outliers, lowest-index GPE first
        // (the serial leading-one detector).
        size_t capacity = cfg.oppPerCycle;
        bool busy = false;
        for (size_t g = 0; g < gpes.size() && capacity > 0; ++g) {
            while (capacity > 0 && !gpes[g].pending.empty()) {
                gpes[g].pending.pop_front();
                --capacity;
                busy = true;
            }
        }
        if (busy)
            ++res.oppBusyCycles;
    }

    // Post-processing: one serial CRF scan per output activation,
    // plus mid-reduction drains that went through the same port.
    res.cycles += (outputs + res.crfDrains) * cfg.postprocessCycles;
    return res;
}

TileResult
TileSim::runSynthetic(size_t pairs_per_gpe, double outlier_prob,
                      size_t outputs, uint64_t seed) const
{
    Rng rng(seed);
    std::vector<std::vector<PairEvent>> streams(cfg.gpes);
    for (auto &s : streams) {
        s.reserve(pairs_per_gpe);
        for (size_t i = 0; i < pairs_per_gpe; ++i) {
            PairEvent e;
            e.isOutlier = rng.uniform() < outlier_prob;
            e.idxA = static_cast<uint8_t>(rng.uniformInt(8));
            e.idxW = static_cast<uint8_t>(rng.uniformInt(8));
            e.sumIndex = static_cast<uint8_t>(e.idxA + e.idxW);
            e.sign = rng.uniform() < 0.5 ? 1 : -1;
            s.push_back(e);
        }
    }
    return run(streams, outputs);
}

double
TileSim::analyticThroughput(double outlier_prob) const
{
    const double peak =
        static_cast<double>(cfg.gpes * cfg.lanesPerGpe);
    if (outlier_prob <= 0.0)
        return peak;
    // The OPP retires oppPerCycle outliers per cycle; once the
    // arrival rate peak * p exceeds that, holds throttle the tile to
    // the rate the OPP can sustain.
    const double opp_limited =
        static_cast<double>(cfg.oppPerCycle) / outlier_prob;
    return std::min(peak, opp_limited);
}

} // namespace mokey
