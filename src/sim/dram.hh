/**
 * @file
 * A DDR4-3200 dual-channel DRAM timing and energy model — the
 * DRAMSIM3 substitute (see DESIGN.md).
 *
 * The accelerator workloads stream large tensors sequentially, so
 * the model is organized around *streams*: a stream of consecutive
 * bursts enjoys row-buffer hits; interleaving several streams (the
 * quantized-value stream plus the OT-pointer stream of Fig. 5, or
 * tile fetches from different tensors) costs periodic row misses.
 * Timing parameters follow DDR4-3200 (tCK = 0.625 ns against a 1 GHz
 * accelerator clock; we express everything in accelerator cycles).
 */

#ifndef MOKEY_SIM_DRAM_HH
#define MOKEY_SIM_DRAM_HH

#include <cstddef>
#include <cstdint>

namespace mokey
{

/** DDR4-3200 dual-channel configuration. */
struct DramConfig
{
    size_t channels = 2;
    size_t banksPerChannel = 16;
    size_t rowBytes = 8192;      ///< row-buffer size per bank
    size_t burstBytes = 64;      ///< one BL8 x64 access
    double peakBytesPerCycle = 51.2; ///< 2 ch x 25.6 GB/s at 1 GHz

    // Latencies in accelerator cycles (1 ns each).
    double tRcd = 14.0; ///< activate-to-read
    double tRp = 14.0;  ///< precharge
    double tCl = 14.0;  ///< CAS
    double tBurst = 2.5; ///< data transfer of one burst at peak BW

    /**
     * Bytes a tile engine fetches from one stream before switching
     * to another (DMA chunk). Interleaved streams break row
     * locality at this granularity — the effect that makes tiled
     * GEMM traffic run far below peak bandwidth in DRAMSIM3 too.
     * The 64 B default (one burst per switch) together with
     * rowMissOverlap = 2 yields ~8 % of peak bandwidth under
     * multi-stream load, which is what the paper's Table II cycle
     * counts imply for its DRAMSIM3 configuration.
     */
    size_t chunkBytes = 64;

    /**
     * How many row activations the bank-level parallelism can
     * overlap with data transfer.
     */
    double rowMissOverlap = 2.0;

    double activatePj = 909.0; ///< energy per row activation
    double readWritePjPerBit = 12.0; ///< IO + array access
    double backgroundPjPerBit = 48.0; ///< refresh/standby amortized
};

/** Result of streaming a block of traffic through the model. */
struct DramResult
{
    double cycles = 0.0;
    double energyJ = 0.0;
    uint64_t bursts = 0;
    uint64_t rowActivations = 0;

    void merge(const DramResult &o);
};

/** Stream-oriented DDR4 model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = {});

    const DramConfig &config() const { return cfg; }

    /**
     * Cost of transferring @p bytes split across @p streams
     * concurrently interleaved sequential streams.
     *
     * Each stream walks rows sequentially: one activation per row,
     * then row-hit bursts. Interleaving @p streams across the
     * available banks adds conflict misses once streams outnumber
     * banks.
     *
     * @param bytes   total payload
     * @param streams number of concurrent sequential streams
     */
    DramResult stream(uint64_t bytes, size_t streams = 1) const;

    /**
     * Effective bandwidth (bytes/cycle) for the given stream count —
     * peak derated by row-miss overhead.
     */
    double effectiveBandwidth(size_t streams = 1) const;

  private:
    DramConfig cfg;
};

} // namespace mokey

#endif // MOKEY_SIM_DRAM_HH
