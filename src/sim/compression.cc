#include "sim/compression.hh"

#include <cmath>

#include "common/logging.hh"

namespace mokey
{

std::vector<EvalPoint>
paperLineup()
{
    // §IV: GLUE tasks use sequence length 128; SQuAD uses 384.
    std::vector<EvalPoint> pts;
    const auto add = [&](const ModelConfig &cfg, const char *task,
                         size_t seq, double w_ot, double a_ot) {
        EvalPoint p;
        p.label = cfg.name + "/" + task;
        p.workload = modelWorkload(cfg, seq);
        p.rates = OutlierRates{w_ot, a_ot};
        pts.push_back(std::move(p));
    };
    // Outlier rates from Table I.
    add(bertBase(), "MNLI", 128, 0.016, 0.045);
    add(bertLarge(), "MNLI", 128, 0.0151, 0.04);
    add(bertLarge(), "STS-B", 128, 0.0151, 0.025);
    add(bertLarge(), "SQuAD", 384, 0.0154, 0.017);
    add(robertaLarge(), "MNLI", 128, 0.0148, 0.041);
    add(robertaLarge(), "STS-B", 128, 0.0148, 0.044);
    add(robertaLarge(), "SQuAD", 384, 0.0148, 0.029);
    add(debertaXl(), "MNLI", 128, 0.012, 0.043);
    return pts;
}

std::vector<size_t>
paperBufferSweep()
{
    return {256 * 1024, 512 * 1024, 1024 * 1024, 2048 * 1024,
            4096 * 1024};
}

double
Comparison::speedup() const
{
    return base.totalCycles / test.totalCycles;
}

double
Comparison::relativeEnergy() const
{
    return base.totalJ / test.totalJ;
}

double
Comparison::energyEfficiency() const
{
    return speedup() * relativeEnergy();
}

std::vector<Comparison>
sweepComparison(const MachineConfig &base_m, const MachineConfig &test_m,
                const std::vector<EvalPoint> &points,
                const std::vector<size_t> &buffers)
{
    std::vector<Comparison> out;
    for (const auto &p : points) {
        for (size_t buf : buffers) {
            Comparison c;
            c.label = p.label;
            c.bufferBytes = buf;
            c.base = simulate(base_m, p.workload, buf, p.rates);
            c.test = simulate(test_m, p.workload, buf, p.rates);
            out.push_back(std::move(c));
        }
    }
    return out;
}

namespace
{

double
geomean(const std::vector<Comparison> &cs, size_t buffer_bytes,
        double (Comparison::*fn)() const)
{
    double log_sum = 0.0;
    size_t n = 0;
    for (const auto &c : cs) {
        if (c.bufferBytes != buffer_bytes)
            continue;
        log_sum += std::log((c.*fn)());
        ++n;
    }
    MOKEY_ASSERT(n > 0, "no comparisons at this buffer size");
    return std::exp(log_sum / static_cast<double>(n));
}

} // anonymous namespace

double
geomeanSpeedup(const std::vector<Comparison> &cs, size_t buffer_bytes)
{
    return geomean(cs, buffer_bytes, &Comparison::speedup);
}

double
geomeanRelativeEnergy(const std::vector<Comparison> &cs,
                      size_t buffer_bytes)
{
    return geomean(cs, buffer_bytes, &Comparison::relativeEnergy);
}

double
geomeanEnergyEff(const std::vector<Comparison> &cs, size_t buffer_bytes)
{
    return geomean(cs, buffer_bytes, &Comparison::energyEfficiency);
}

std::string
bufferLabel(size_t bytes)
{
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        return std::to_string(bytes / (1024 * 1024)) + "MB";
    return std::to_string(bytes / 1024) + "KB";
}

} // namespace mokey
