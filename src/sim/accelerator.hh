/**
 * @file
 * The three evaluated machines (paper §IV-B/C): an FP16 Tensor-Cores
 * accelerator, the GOBO accelerator, and the Mokey accelerator —
 * plus Mokey-as-compression variants of the Tensor-Cores baseline
 * (§IV-D). All share one simulation core: the dataflow tiler for
 * traffic, the DDR4 model for memory time/energy, an analytic
 * compute-throughput model (validated against the cycle-level
 * TileSim for Mokey), and the calibrated energy/area models.
 */

#ifndef MOKEY_SIM_ACCELERATOR_HH
#define MOKEY_SIM_ACCELERATOR_HH

#include <string>

#include "model/workload.hh"
#include "sim/dataflow.hh"
#include "sim/dram.hh"
#include "sim/energy_model.hh"
#include "sim/gpe.hh"

namespace mokey
{

/** Machine description. */
struct MachineConfig
{
    std::string name;
    size_t lanes;            ///< MAC-equivalent lanes
    double computeAreaMm2;   ///< post-layout compute area
    double lanePj;           ///< energy per lane-op (non-index)
    StorageBits bits;        ///< storage widths
    bool indexCompute = false; ///< Mokey GPE/OPP path
    TileConfig tile;         ///< tile organization (index machines)
    SramAreaModel bufArea = SramAreaModel::wideInterface();
    EnergyModel energy;

    /** Tiles in the machine (index machines). */
    size_t tiles() const;
};

/** The FP16 Tensor-Cores baseline: 2048 lanes, 16 b everywhere. */
MachineConfig tensorCoresMachine();

/** GOBO: 2560 lanes, 3 b (+outliers) weights, FP16 activations. */
MachineConfig goboMachine();

/** Mokey: 3072 lanes (384 GPEs), 4 b off-chip / 5 b on-chip. */
MachineConfig mokeyMachine();

/** Tensor Cores + Mokey compression off-chip only (Fig. 14 "OC"). */
MachineConfig tensorCoresMokeyOffChip();

/** Tensor Cores + Mokey compression off- and on-chip ("OC+ON"). */
MachineConfig tensorCoresMokeyOnChip();

/** Simulation outcome for one (machine, workload, buffer) point. */
struct RunResult
{
    double computeCycles = 0.0;
    double memCycles = 0.0;
    double totalCycles = 0.0;
    double overlapFraction = 0.0; ///< compute/memory overlap achieved

    double trafficBytes = 0.0;
    bool actResident = false;

    double dramJ = 0.0;
    double sramJ = 0.0;
    double computeJ = 0.0;
    double totalJ = 0.0;

    double bufferAreaMm2 = 0.0;
    double computeAreaMm2 = 0.0;
    double totalAreaMm2 = 0.0;
};

/** Outlier rates feeding the index-compute throughput model. */
struct OutlierRates
{
    double weight = 0.015;     ///< paper Table I average
    double activation = 0.045;

    /** Pair probability for a (weight, activation) GEMM. */
    double weightActPair() const;

    /** Pair probability for an (activation, activation) GEMM. */
    double actActPair() const;
};

/**
 * Simulate one inference of @p w on @p machine with
 * @p buffer_bytes of on-chip buffering.
 */
RunResult simulate(const MachineConfig &machine, const Workload &w,
                   size_t buffer_bytes,
                   const OutlierRates &rates = {});

} // namespace mokey

#endif // MOKEY_SIM_ACCELERATOR_HH
