#include "sim/dataflow.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"

namespace mokey
{

TileDecision
tileGemm(const GemmOp &op, const StorageBits &bits, double buffer_bits,
         bool act_resident)
{
    MOKEY_ASSERT(buffer_bits > 0.0, "no buffer");
    const double bits_b =
        op.weightStatic ? bits.onChipW : bits.onChipA;
    const double traffic_b =
        op.weightStatic ? bits.offChipW : bits.offChipA;

    const double m = static_cast<double>(op.m);
    const double n = static_cast<double>(op.n);
    const double k = static_cast<double>(op.k);
    const double reps = static_cast<double>(op.repeats);

    const double a_store = m * k * bits.onChipA;
    const double b_store = k * n * bits_b;
    const double avail = buffer_bits / 2.0; // double buffering

    // Strategy A: hold a row-tile of A, stream B once per row-tile.
    const double tm =
        std::clamp(std::floor(avail / (k * bits.onChipA)), 1.0, m);
    const double fetches_b_sA = std::ceil(m / tm);
    // Strategy B: hold a column-tile of B, stream A once per tile.
    const double tn =
        std::clamp(std::floor(avail / (k * bits_b)), 1.0, n);
    const double fetches_a_sB = std::ceil(n / tn);

    TileDecision d;
    const double a_traffic_once = m * k * bits.offChipA;
    const double b_traffic_once = k * n * traffic_b;
    const double out_traffic = m * n * bits.offChipA;

    const double traffic_sA =
        (act_resident ? 0.0 : a_traffic_once + out_traffic) +
        b_traffic_once * fetches_b_sA;
    const double traffic_sB =
        (act_resident ? 0.0 : a_traffic_once * fetches_a_sB +
         out_traffic) +
        b_traffic_once;

    if (traffic_sA <= traffic_sB) {
        d.weightFetches = fetches_b_sA;
        d.actFetches = 1.0;
        d.trafficBits = traffic_sA * reps;
        d.tileBits = std::min(avail, tm * k * bits.onChipA) +
            std::min(avail, b_store);
    } else {
        d.weightFetches = 1.0;
        d.actFetches = fetches_a_sB;
        d.trafficBits = traffic_sB * reps;
        d.tileBits = std::min(avail, tn * k * bits_b) +
            std::min(avail, a_store);
    }
    d.tileBits = std::min(d.tileBits, buffer_bits);
    return d;
}

double
maxLayerActivationBits(const Workload &w, double bits_per_act)
{
    // Group ops by their "L<i>." prefix and sum activation values
    // (inputs of act x act GEMMs plus every output).
    std::map<std::string, double> per_layer;
    for (const auto &op : w.ops) {
        const auto dot = op.name.find('.');
        const std::string layer = op.name.substr(0, dot);
        double vals = static_cast<double>(op.outValues()) +
            static_cast<double>(op.aValues());
        if (!op.weightStatic)
            vals += static_cast<double>(op.bValues());
        per_layer[layer] += vals * bits_per_act;
    }
    double mx = 0.0;
    for (const auto &kv : per_layer)
        mx = std::max(mx, kv.second);
    return mx;
}

WorkloadTraffic
tileWorkload(const Workload &w, const StorageBits &bits,
             size_t buffer_bytes)
{
    const double buffer_bits =
        static_cast<double>(buffer_bytes) * 8.0;
    const double act_ws = maxLayerActivationBits(w, bits.onChipA);

    WorkloadTraffic t;
    t.actResident = act_ws <= buffer_bits / 2.0;
    const double weight_buffer =
        t.actResident ? buffer_bits - act_ws : buffer_bits / 2.0;

    double tile_sum = 0.0;
    for (const auto &op : w.ops) {
        const TileDecision d =
            tileGemm(op, bits, weight_buffer, t.actResident);
        t.totalBits += d.trafficBits;
        const double b_traffic = static_cast<double>(op.bValues()) *
            (op.weightStatic ? bits.offChipW : bits.offChipA) *
            d.weightFetches;
        if (op.weightStatic)
            t.weightBits += b_traffic;
        else
            t.activationBits += b_traffic;
        t.activationBits += d.trafficBits - b_traffic;
        tile_sum += d.tileBits;
    }
    // Spilled activations' layer hand-off traffic is already
    // charged by the per-GEMM A/out terms above.
    t.avgTileBits = w.ops.empty()
        ? 0.0
        : tile_sum / static_cast<double>(w.ops.size());
    return t;
}

} // namespace mokey
