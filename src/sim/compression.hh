/**
 * @file
 * Evaluation sweep helpers (paper §IV-C/D).
 *
 * The paper's figures all share one shape: for each model/task pair
 * and each on-chip buffer capacity (256 KB .. 4 MB), run two machines
 * and report a ratio (speedup or relative energy). This module
 * provides the model lineup, the buffer sweep, and the ratio
 * plumbing so every bench binary reduces to "pick machines, print".
 */

#ifndef MOKEY_SIM_COMPRESSION_HH
#define MOKEY_SIM_COMPRESSION_HH

#include <string>
#include <vector>

#include "sim/accelerator.hh"

namespace mokey
{

/** One evaluated model/task point (Figs. 9-15 x-axis groups). */
struct EvalPoint
{
    std::string label;   ///< e.g. "BERT-Large/SQuAD"
    Workload workload;
    OutlierRates rates;
};

/** The paper's model/task lineup with its sequence lengths. */
std::vector<EvalPoint> paperLineup();

/** The paper's buffer capacities: 256 KB, 512 KB, 1 MB, 2 MB, 4 MB. */
std::vector<size_t> paperBufferSweep();

/** One (point, buffer) comparison of two machines. */
struct Comparison
{
    std::string label;
    size_t bufferBytes;
    RunResult base;
    RunResult test;

    double speedup() const;        ///< base cycles / test cycles
    double relativeEnergy() const; ///< base J / test J

    /**
     * Performance-per-joule ratio — the metric of Figs. 11/13/15
     * (it equals speedup x relativeEnergy, which reproduces the
     * paper's "one to two orders of magnitude" claims that plain
     * energy ratios cannot).
     */
    double energyEfficiency() const;
};

/**
 * Run @p test and @p base over every point and buffer size.
 */
std::vector<Comparison> sweepComparison(
    const MachineConfig &base, const MachineConfig &test,
    const std::vector<EvalPoint> &points,
    const std::vector<size_t> &buffers);

/** Geometric mean of a selector over comparisons with one buffer. */
double geomeanSpeedup(const std::vector<Comparison> &cs,
                      size_t buffer_bytes);
double geomeanRelativeEnergy(const std::vector<Comparison> &cs,
                             size_t buffer_bytes);
double geomeanEnergyEff(const std::vector<Comparison> &cs,
                        size_t buffer_bytes);

/** Pretty-print helper: "256KB", "4MB". */
std::string bufferLabel(size_t bytes);

} // namespace mokey

#endif // MOKEY_SIM_COMPRESSION_HH
