#include "sim/energy_model.hh"

#include <cmath>

namespace mokey
{

double
EnergyModel::sramPjPerBit(size_t capacity_bytes) const
{
    // 0.05 pJ/bit at 512 KB, sqrt scaling with capacity (longer
    // word/bit lines), floored for tiny buffers.
    const double ref = 512.0 * 1024.0;
    const double s =
        std::sqrt(static_cast<double>(capacity_bytes) / ref);
    return 0.05 * (s < 0.25 ? 0.25 : s);
}

double
SramAreaModel::area(size_t capacity_bytes) const
{
    const double mb =
        static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
    return overheadMm2 + mm2PerMb * mb;
}

SramAreaModel
SramAreaModel::wideInterface()
{
    // Calibrated to Table III Tensor Cores: 13.2 / 16.8 / 24.7 mm^2
    // at 256 KB / 512 KB / 1 MB.
    return SramAreaModel{9.4, 15.2};
}

SramAreaModel
SramAreaModel::narrowInterface()
{
    // Calibrated to Table III Mokey: 4.7 / 8.0 / 14.6 mm^2.
    return SramAreaModel{1.4, 13.2};
}

} // namespace mokey
