/**
 * @file
 * Counter Register File model (paper Fig. 6, right).
 *
 * Each GPE accumulates its four summations in small CRFs (15x8,
 * 8x8, 8x8, 1x8: entries x counter bits). The paper leaves one
 * detail implicit: a 4096-deep reduction can push a counter past the
 * +-2^(w-1) range of an 8 b up/down counter. We resolve it the way
 * the serial post-processing port naturally allows: when a counter
 * nears saturation the GPE drains the CRF through the
 * post-processing path mid-reduction (a partial weighted reduction),
 * which preserves the running sum exactly. CrfSim counts how often
 * that happens so the tile model can charge the extra cycles.
 */

#ifndef MOKEY_SIM_CRF_HH
#define MOKEY_SIM_CRF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mokey
{

/** One up/down counter register file with drain-on-saturation. */
class CrfSim
{
  public:
    /**
     * @param entries      counter count (15, 8, or 1)
     * @param counter_bits width of each counter (paper: 8)
     */
    CrfSim(size_t entries, unsigned counter_bits);

    /**
     * Increment (+1) or decrement (-1) entry @p addr.
     *
     * @return true when the access forced a drain first
     */
    bool bump(size_t addr, int sign);

    /** Counter value at @p addr (post-drain residue). */
    int32_t at(size_t addr) const { return counters.at(addr); }

    /**
     * Exact running totals including everything drained so far —
     * what post-processing ultimately reduces.
     */
    int64_t total(size_t addr) const;

    /** Number of mid-reduction drains triggered. */
    uint64_t drains() const { return drainCount; }

    /** Entries in this CRF. */
    size_t size() const { return counters.size(); }

    /** Reset counters and drained accumulators. */
    void clear();

  private:
    std::vector<int32_t> counters;
    std::vector<int64_t> drained;
    int32_t maxMag;
    uint64_t drainCount;

    void drain();
};

} // namespace mokey

#endif // MOKEY_SIM_CRF_HH
