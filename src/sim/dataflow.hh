/**
 * @file
 * Tiled-GEMM dataflow optimizer (paper §IV-B: "the dataflow for all
 * designs is optimized to minimize the number of off-chip
 * transactions").
 *
 * For each GEMM the tiler picks the orientation (hold-A-stream-B vs
 * hold-B-stream-A) that minimizes off-chip traffic given the on-chip
 * buffer share available, with half the buffer reserved for double
 * buffering. Capacity is evaluated at *on-chip* storage width and
 * traffic at *off-chip* storage width — the distinction that makes
 * Mokey's compression (4 b off-chip / 5 b on-chip) and the
 * memory-compression plug-in modes (Figs. 14/15) fall out of one
 * model.
 */

#ifndef MOKEY_SIM_DATAFLOW_HH
#define MOKEY_SIM_DATAFLOW_HH

#include <cstdint>

#include "model/workload.hh"

namespace mokey
{

/** Storage widths (bits per value, fractional allowed). */
struct StorageBits
{
    double offChipW = 16.0; ///< weight traffic width
    double offChipA = 16.0; ///< activation traffic width
    double onChipW = 16.0;  ///< weight buffer width
    double onChipA = 16.0;  ///< activation buffer width
};

/** Traffic decision for one GEMM. */
struct TileDecision
{
    double trafficBits = 0.0;   ///< off-chip bits moved
    double weightFetches = 1.0; ///< times the B operand is fetched
    double actFetches = 1.0;    ///< times the A operand is fetched
    double tileBits = 0.0;      ///< resident working set (on-chip)
};

/**
 * Tile one GEMM.
 *
 * @param op           the GEMM
 * @param bits         storage widths
 * @param buffer_bits  on-chip bits available to this GEMM's tiles
 * @param act_resident activations live on-chip (no A/out traffic)
 */
TileDecision tileGemm(const GemmOp &op, const StorageBits &bits,
                      double buffer_bits, bool act_resident);

/** Aggregate traffic for a whole workload. */
struct WorkloadTraffic
{
    double totalBits = 0.0;
    double weightBits = 0.0;
    double activationBits = 0.0;
    double avgTileBits = 0.0;
    bool actResident = false;

    double totalBytes() const { return totalBits / 8.0; }
};

/**
 * Tile every GEMM of @p w against a buffer of @p buffer_bytes.
 *
 * Activations are held resident when the largest per-layer
 * activation working set fits in half the buffer; the weight tiles
 * get whatever activations don't use.
 */
WorkloadTraffic tileWorkload(const Workload &w, const StorageBits &bits,
                             size_t buffer_bytes);

/** Largest per-layer activation working set in bits. */
double maxLayerActivationBits(const Workload &w, double bits_per_act);

} // namespace mokey

#endif // MOKEY_SIM_DATAFLOW_HH
