#include "sim/crf.hh"

#include "common/logging.hh"

namespace mokey
{

CrfSim::CrfSim(size_t entries, unsigned counter_bits)
    : counters(entries, 0), drained(entries, 0),
      maxMag((1 << (counter_bits - 1)) - 1), drainCount(0)
{
    MOKEY_ASSERT(entries >= 1, "empty CRF");
    MOKEY_ASSERT(counter_bits >= 2 && counter_bits <= 31,
                 "bad counter width %u", counter_bits);
}

bool
CrfSim::bump(size_t addr, int sign)
{
    MOKEY_ASSERT(addr < counters.size(), "CRF address %zu out of "
                 "range", addr);
    MOKEY_ASSERT(sign == 1 || sign == -1, "bad sign");
    bool drained_now = false;
    if ((sign > 0 && counters[addr] >= maxMag) ||
        (sign < 0 && counters[addr] <= -maxMag)) {
        drain();
        drained_now = true;
    }
    counters[addr] += sign;
    return drained_now;
}

int64_t
CrfSim::total(size_t addr) const
{
    return drained.at(addr) + counters.at(addr);
}

void
CrfSim::drain()
{
    for (size_t i = 0; i < counters.size(); ++i) {
        drained[i] += counters[i];
        counters[i] = 0;
    }
    ++drainCount;
}

void
CrfSim::clear()
{
    std::fill(counters.begin(), counters.end(), 0);
    std::fill(drained.begin(), drained.end(), 0);
    drainCount = 0;
}

} // namespace mokey
