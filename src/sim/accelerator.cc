#include "sim/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mokey
{

size_t
MachineConfig::tiles() const
{
    const size_t per_tile = tile.gpes * tile.lanesPerGpe;
    return std::max<size_t>(1, lanes / per_tile);
}

double
OutlierRates::weightActPair() const
{
    return 1.0 - (1.0 - weight) * (1.0 - activation);
}

double
OutlierRates::actActPair() const
{
    return 1.0 - (1.0 - activation) * (1.0 - activation);
}

namespace
{

/** Mokey's 4 b + OT-pointer off-chip width (Fig. 5). */
constexpr double kMokeyOffChipBits = 4.0 + 7.0 / 64.0 + 0.03 * 6.0;

/** Mokey's expanded 5 b on-chip width (§III-A). */
constexpr double kMokeyOnChipBits = 5.0;

} // anonymous namespace

MachineConfig
tensorCoresMachine()
{
    MachineConfig m;
    m.name = "Tensor Cores";
    m.lanes = 2048;
    m.computeAreaMm2 = 16.1;
    m.lanePj = m.energy.fp16MacPj;
    m.bits = StorageBits{16, 16, 16, 16};
    m.bufArea = SramAreaModel::wideInterface();
    return m;
}

MachineConfig
goboMachine()
{
    MachineConfig m;
    m.name = "GOBO";
    m.lanes = 2560;
    m.computeAreaMm2 = 15.9;
    m.lanePj = m.energy.goboOpPj;
    // Weights: 3 b codes + dictionary/outlier overhead (~0.25 b);
    // activations stay FP16 on and off chip.
    m.bits = StorageBits{3.25, 16, 3.25, 16};
    m.bufArea = SramAreaModel::wideInterface();
    return m;
}

MachineConfig
mokeyMachine()
{
    MachineConfig m;
    m.name = "Mokey";
    m.lanes = 3072;
    m.computeAreaMm2 = 14.8;
    m.lanePj = m.energy.mokeyGaussPairPj;
    m.bits = StorageBits{kMokeyOffChipBits, kMokeyOffChipBits,
                         kMokeyOnChipBits, kMokeyOnChipBits};
    m.indexCompute = true;
    // The OPP's lookup + MAC path retires four outlier pairs per
    // cycle — the rate needed to sustain the paper's published
    // compute-cycle totals at the Table I outlier rates.
    m.tile.oppPerCycle = 4;
    m.bufArea = SramAreaModel::narrowInterface();
    return m;
}

MachineConfig
tensorCoresMokeyOffChip()
{
    MachineConfig m = tensorCoresMachine();
    m.name = "Tensor Cores + Mokey OC";
    // Values travel compressed, expand to FP16 on arrival.
    m.bits.offChipW = kMokeyOffChipBits;
    m.bits.offChipA = kMokeyOffChipBits;
    return m;
}

MachineConfig
tensorCoresMokeyOnChip()
{
    MachineConfig m = tensorCoresMokeyOffChip();
    m.name = "Tensor Cores + Mokey OC+ON";
    // Values also stay compressed (5 b) inside the buffers and
    // expand through LUTs at the compute units.
    m.bits.onChipW = kMokeyOnChipBits;
    m.bits.onChipA = kMokeyOnChipBits;
    return m;
}

RunResult
simulate(const MachineConfig &machine, const Workload &w,
         size_t buffer_bytes, const OutlierRates &rates)
{
    MOKEY_ASSERT(buffer_bytes >= 1024, "buffer too small to model");
    RunResult r;

    // --- Memory side: tile, then stream the traffic.
    const WorkloadTraffic traffic =
        tileWorkload(w, machine.bits, buffer_bytes);
    r.trafficBytes = traffic.totalBytes();
    r.actResident = traffic.actResident;

    const DramModel dram;
    // Two streams for plain tensors; Mokey adds the OT-pointer
    // stream (Fig. 5).
    const size_t streams = machine.indexCompute ? 3 : 2;
    const DramResult dr = dram.stream(
        static_cast<uint64_t>(r.trafficBytes), streams);
    r.memCycles = dr.cycles;
    r.dramJ = dr.energyJ;

    // --- Compute side.
    const EnergyModel &em = machine.energy;
    double outputs = 0.0;
    for (const auto &op : w.ops)
        outputs += static_cast<double>(op.outValues());

    if (!machine.indexCompute) {
        const double macs = static_cast<double>(w.totalMacs());
        r.computeCycles = macs / static_cast<double>(machine.lanes);
        r.computeJ = macs * machine.lanePj * 1e-12;
    } else {
        const TileSim tile_model(machine.tile);
        const double tiles =
            static_cast<double>(machine.tiles());
        double cycles = 0.0, gauss = 0.0, otl = 0.0;
        for (const auto &op : w.ops) {
            const double p = op.weightStatic
                ? rates.weightActPair()
                : rates.actActPair();
            const double macs = static_cast<double>(op.macs());
            const double tput =
                tile_model.analyticThroughput(p) * tiles;
            cycles += macs / tput;
            gauss += macs * (1.0 - p);
            otl += macs * p;
        }
        // Post-processing serializes through the OPP; double-buffered
        // CRFs overlap ~80 % of it with the next accumulation.
        const double pp_cycles = outputs *
            static_cast<double>(machine.tile.postprocessCycles) /
            tiles * 0.2;
        r.computeCycles = cycles + pp_cycles;
        r.computeJ =
            (gauss * em.mokeyGaussPairPj +
             otl * em.mokeyOutlierMacPj +
             outputs * em.mokeyPostprocessPj) * 1e-12;
    }

    // --- SRAM energy: operand fetches (with PE-array reuse ~2x)
    // plus fill traffic through the buffer.
    const double operand_bits =
        static_cast<double>(w.totalMacs()) *
        (machine.bits.onChipA + machine.bits.onChipW) / 2.0;
    const double fill_bits = r.trafficBytes * 8.0 *
        (machine.bits.onChipA / machine.bits.offChipA);
    r.sramJ = (operand_bits + fill_bits) *
        em.sramPjPerBit(buffer_bytes) * 1e-12;

    // --- Overlap: compute/memory overlap improves as each GEMM's
    // full operand set approaches on-chip residency (more prefetch
    // slack for double buffering), and suffers while activations
    // spill.
    const double buffer_bits =
        static_cast<double>(buffer_bytes) * 8.0;
    double residency = 0.0;
    for (const auto &op : w.ops) {
        const double operand_set =
            static_cast<double>(op.aValues()) *
                machine.bits.onChipA +
            static_cast<double>(op.bValues()) *
                (op.weightStatic ? machine.bits.onChipW
                                 : machine.bits.onChipA);
        residency += std::min(1.0, buffer_bits / operand_set);
    }
    residency /= static_cast<double>(w.ops.size());
    r.overlapFraction = std::clamp(
        0.15 + 0.85 * residency * (traffic.actResident ? 1.0 : 0.75),
        0.1, 0.985);

    const double hi = std::max(r.computeCycles, r.memCycles);
    const double lo = std::min(r.computeCycles, r.memCycles);
    r.totalCycles = hi + (1.0 - r.overlapFraction) * lo;

    r.totalJ = r.dramJ + r.sramJ + r.computeJ;

    // --- Area.
    r.bufferAreaMm2 = machine.bufArea.area(buffer_bytes);
    r.computeAreaMm2 = machine.computeAreaMm2;
    r.totalAreaMm2 = r.bufferAreaMm2 + r.computeAreaMm2;
    return r;
}

} // namespace mokey
