/**
 * @file
 * 1-D k-means (Lloyd's algorithm) on sorted data.
 *
 * GOBO — the prior work Mokey compares against — selects its weight
 * centroids with an iterative k-means-like search (§V). We implement
 * it as the centroid selector of the GOBO baseline quantizer, and as
 * the foil for the agglomerative-vs-k-means ablation the paper argues
 * for in §II-B (k-means depends on initialization; agglomerative does
 * not).
 */

#ifndef MOKEY_CLUSTERING_KMEANS1D_HH
#define MOKEY_CLUSTERING_KMEANS1D_HH

#include <cstdint>
#include <vector>

#include "clustering/agglomerative1d.hh"

namespace mokey
{

/**
 * Run Lloyd's k-means on 1-D values.
 *
 * Initialization places centroids at evenly spaced quantiles of the
 * sorted data (deterministic); pass a seed to jitter the
 * initialization instead, which exposes k-means' initialization
 * sensitivity.
 *
 * @param values    input samples
 * @param k         cluster count
 * @param max_iters iteration cap
 * @param seed      0 for deterministic quantile init; otherwise
 *                  jittered init derived from the seed
 */
ClusterResult kmeans1d(const std::vector<float> &values, size_t k,
                       size_t max_iters = 100, uint64_t seed = 0);

} // namespace mokey

#endif // MOKEY_CLUSTERING_KMEANS1D_HH
