#include "clustering/agglomerative1d.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"

namespace mokey
{

namespace
{

/** A live cluster in the doubly linked merge list. */
struct Cluster
{
    double sum;     ///< sum of member values
    double sumSq;   ///< sum of squared member values
    size_t n;       ///< member count
    long prev;      ///< index of left neighbour, -1 at the edge
    long next;      ///< index of right neighbour, -1 at the edge
    size_t version; ///< bumped on every merge for lazy invalidation

    double mean() const { return sum / static_cast<double>(n); }
};

/** Candidate merge between a cluster and its right neighbour. */
struct Candidate
{
    double cost;
    size_t left;
    size_t leftVersion;
    size_t right;
    size_t rightVersion;

    bool
    operator>(const Candidate &o) const
    {
        return cost > o.cost;
    }
};

double
mergeCost(const Cluster &a, const Cluster &b, Linkage linkage)
{
    const double d = a.mean() - b.mean();
    switch (linkage) {
      case Linkage::Ward:
        return static_cast<double>(a.n) * static_cast<double>(b.n) /
            static_cast<double>(a.n + b.n) * d * d;
      case Linkage::Centroid:
        return std::abs(d);
    }
    panic("unknown linkage");
}

} // anonymous namespace

ClusterResult
agglomerative1d(const std::vector<float> &values, size_t k,
                Linkage linkage)
{
    MOKEY_ASSERT(!values.empty(), "clustering an empty set");
    MOKEY_ASSERT(k >= 1 && k <= values.size(),
                 "cluster count %zu out of range", k);

    std::vector<float> sorted(values);
    std::sort(sorted.begin(), sorted.end());

    std::vector<Cluster> clusters(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
        const double v = sorted[i];
        clusters[i] = Cluster{
            v, v * v, 1,
            static_cast<long>(i) - 1,
            i + 1 < sorted.size() ? static_cast<long>(i) + 1 : -1,
            0,
        };
    }

    std::priority_queue<Candidate, std::vector<Candidate>,
                        std::greater<>> heap;
    for (size_t i = 0; i + 1 < clusters.size(); ++i) {
        heap.push(Candidate{
            mergeCost(clusters[i], clusters[i + 1], linkage),
            i, 0, i + 1, 0,
        });
    }

    size_t live = clusters.size();
    std::vector<bool> dead(clusters.size(), false);

    while (live > k) {
        MOKEY_ASSERT(!heap.empty(), "merge heap exhausted early");
        const Candidate c = heap.top();
        heap.pop();
        if (dead[c.left] || dead[c.right] ||
            clusters[c.left].version != c.leftVersion ||
            clusters[c.right].version != c.rightVersion) {
            continue; // stale candidate
        }

        Cluster &l = clusters[c.left];
        Cluster &r = clusters[c.right];
        l.sum += r.sum;
        l.sumSq += r.sumSq;
        l.n += r.n;
        l.next = r.next;
        ++l.version;
        dead[c.right] = true;
        if (r.next >= 0)
            clusters[static_cast<size_t>(r.next)].prev =
                static_cast<long>(c.left);
        --live;

        if (l.prev >= 0) {
            const auto p = static_cast<size_t>(l.prev);
            heap.push(Candidate{
                mergeCost(clusters[p], l, linkage),
                p, clusters[p].version, c.left, l.version,
            });
        }
        if (l.next >= 0) {
            const auto nx = static_cast<size_t>(l.next);
            heap.push(Candidate{
                mergeCost(l, clusters[nx], linkage),
                c.left, l.version, nx, clusters[nx].version,
            });
        }
    }

    ClusterResult res;
    res.inertia = 0.0;
    for (size_t i = 0; i < clusters.size(); ++i) {
        if (dead[i])
            continue;
        const Cluster &c = clusters[i];
        const double mean = c.mean();
        res.centroids.push_back(mean);
        res.sizes.push_back(c.n);
        res.inertia += c.sumSq - c.sum * mean;
    }
    // The linked-list order is the sorted order already, but make the
    // contract explicit.
    MOKEY_ASSERT(std::is_sorted(res.centroids.begin(),
                                res.centroids.end()),
                 "centroids not sorted");
    return res;
}

size_t
nearestCentroid(const std::vector<double> &centroids, double v)
{
    MOKEY_ASSERT(!centroids.empty(), "no centroids");
    const auto it =
        std::lower_bound(centroids.begin(), centroids.end(), v);
    if (it == centroids.begin())
        return 0;
    if (it == centroids.end())
        return centroids.size() - 1;
    const size_t hi = static_cast<size_t>(it - centroids.begin());
    const size_t lo = hi - 1;
    return (v - centroids[lo] <= centroids[hi] - v) ? lo : hi;
}

} // namespace mokey
