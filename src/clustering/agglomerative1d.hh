/**
 * @file
 * Exact agglomerative (hierarchical) clustering for 1-D data.
 *
 * The paper builds its Golden Dictionary by running agglomerative
 * clustering over 50,000 N(0,1) samples (§II-B). The generic algorithm
 * is O(n^2) memory / O(n^3) time — the very cost the paper works
 * around. For one-dimensional data, however, the two closest clusters
 * under Ward (or centroid) linkage are always *adjacent in sorted
 * order*, so the full hierarchy can be built by merging neighbours
 * with a lazy min-heap in O(n log n) time and O(n) memory. This is an
 * exact substitute, not an approximation.
 */

#ifndef MOKEY_CLUSTERING_AGGLOMERATIVE1D_HH
#define MOKEY_CLUSTERING_AGGLOMERATIVE1D_HH

#include <cstddef>
#include <vector>

namespace mokey
{

/** Linkage criterion for agglomerative merging. */
enum class Linkage
{
    Ward,     ///< minimize within-cluster variance increase
    Centroid, ///< merge clusters with nearest centroids
};

/** Result of a clustering run. */
struct ClusterResult
{
    /** Cluster centroids (means), sorted ascending. */
    std::vector<double> centroids;

    /** Number of source points in each cluster (same order). */
    std::vector<size_t> sizes;

    /** Sum of squared distances of points to their centroid. */
    double inertia = 0.0;

    /**
     * Refinement iterations actually executed (Lloyd sweeps for
     * kmeans1d; 0 for the non-iterative agglomerative path).
     */
    size_t iterations = 0;
};

/**
 * Cluster 1-D values into @p k clusters by agglomerative merging.
 *
 * @param values  input samples (unsorted is fine; copied internally)
 * @param k       target cluster count, 1 <= k <= values.size()
 * @param linkage merge criterion
 */
ClusterResult agglomerative1d(const std::vector<float> &values, size_t k,
                              Linkage linkage = Linkage::Ward);

/**
 * Map each value to the index of its nearest centroid.
 *
 * @param centroids sorted ascending centroid list
 * @param v         value to assign
 * @return index into @p centroids of the closest entry
 */
size_t nearestCentroid(const std::vector<double> &centroids, double v);

} // namespace mokey

#endif // MOKEY_CLUSTERING_AGGLOMERATIVE1D_HH
