#include "clustering/kmeans1d.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mokey
{

ClusterResult
kmeans1d(const std::vector<float> &values, size_t k, size_t max_iters,
         uint64_t seed)
{
    MOKEY_ASSERT(!values.empty(), "k-means on an empty set");
    MOKEY_ASSERT(k >= 1 && k <= values.size(),
                 "cluster count %zu out of range", k);

    std::vector<float> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();

    // Prefix sums for O(1) segment means.
    std::vector<double> prefix(n + 1, 0.0), prefixSq(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + sorted[i];
        prefixSq[i + 1] = prefixSq[i] +
            static_cast<double>(sorted[i]) * sorted[i];
    }

    std::vector<double> centroids(k);
    for (size_t j = 0; j < k; ++j) {
        const double q = (static_cast<double>(j) + 0.5) /
            static_cast<double>(k);
        auto idx = static_cast<size_t>(q * static_cast<double>(n - 1));
        centroids[j] = sorted[idx];
    }
    if (seed != 0) {
        Rng rng(seed);
        const double span = sorted.back() - sorted.front();
        for (auto &c : centroids)
            c += rng.uniform(-0.05, 0.05) * span;
        std::sort(centroids.begin(), centroids.end());
    }

    // In 1-D an assignment is a set of k contiguous segments whose
    // boundaries sit at midpoints between consecutive centroids.
    // Convergence is declared once no centroid moves more than a
    // span-relative tolerance. The exact != compare used before kept
    // near-converged runs iterating long past the useful region —
    // on 20k Gaussian samples with k=16 it needs ~230 sweeps (so the
    // default 100-iteration cap always burned out) while 1e-4 of the
    // span lands within ~1% of the fully converged inertia in less
    // than half that.
    const double conv_tol =
        1e-4 * (static_cast<double>(sorted.back()) - sorted.front());
    std::vector<size_t> bounds(k + 1);
    size_t iters_run = 0;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        bounds[0] = 0;
        bounds[k] = n;
        for (size_t j = 1; j < k; ++j) {
            const double cut = 0.5 * (centroids[j - 1] + centroids[j]);
            bounds[j] = static_cast<size_t>(
                std::lower_bound(sorted.begin(), sorted.end(), cut) -
                sorted.begin());
            bounds[j] = std::max(bounds[j], bounds[j - 1]);
        }

        bool changed = false;
        for (size_t j = 0; j < k; ++j) {
            const size_t lo = bounds[j], hi = bounds[j + 1];
            if (lo == hi)
                continue; // keep an empty cluster's centroid in place
            const double mean = (prefix[hi] - prefix[lo]) /
                static_cast<double>(hi - lo);
            if (std::abs(mean - centroids[j]) > conv_tol)
                changed = true;
            centroids[j] = mean;
        }
        std::sort(centroids.begin(), centroids.end());
        ++iters_run;
        if (!changed)
            break;
    }

    ClusterResult res;
    res.iterations = iters_run;
    res.inertia = 0.0;
    bounds[0] = 0;
    bounds[k] = n;
    for (size_t j = 1; j < k; ++j) {
        const double cut = 0.5 * (centroids[j - 1] + centroids[j]);
        bounds[j] = static_cast<size_t>(
            std::lower_bound(sorted.begin(), sorted.end(), cut) -
            sorted.begin());
        bounds[j] = std::max(bounds[j], bounds[j - 1]);
    }
    for (size_t j = 0; j < k; ++j) {
        const size_t lo = bounds[j], hi = bounds[j + 1];
        res.centroids.push_back(centroids[j]);
        res.sizes.push_back(hi - lo);
        if (lo == hi)
            continue;
        const double seg = prefixSq[hi] - prefixSq[lo];
        const double sum = prefix[hi] - prefix[lo];
        res.inertia += seg - 2.0 * centroids[j] * sum +
            centroids[j] * centroids[j] * static_cast<double>(hi - lo);
    }
    return res;
}

} // namespace mokey
