/**
 * @file
 * Deterministic fault injection for chaos testing the serving stack.
 *
 * A fault SITE is a named seam in production code (engine dispatch,
 * forwardStep, the scheduler dispatch loops, socket read/write).
 * Each site can be armed with a firing rate and a seed; an armed
 * site fires pseudo-randomly but DETERMINISTICALLY: the k-th check
 * of a site fires iff a seeded hash of k lands under the rate, so
 * the exact fault pattern of a run is a pure function of
 * (seed, rate, check order) and a test can predict — not just
 * observe — which requests fail.
 *
 * Sites are armed either programmatically (tests, the bench chaos
 * phase) or from the environment:
 *
 *   MOKEY_FAULT=<site>:<rate>:<seed>[,<site>:<rate>:<seed>...]
 *
 * e.g. MOKEY_FAULT=engine:0.1:42 fires the engine-dispatch throw on
 * ~10% of GEMM dispatches, deterministically for seed 42. Rate is a
 * decimal in (0, 1]; seed is a non-negative integer. A malformed
 * spec is a fatal config error naming the variable (the same
 * contract as every other MOKEY_* knob).
 *
 * Cost when unset: every seam compiles to one relaxed atomic load
 * and a predicted-not-taken branch (faultFire() below) — no locks,
 * no clock reads, no allocation.
 *
 * What each site does when it fires:
 *   engine     indexMatmulTransB() dispatch throws
 *   step       QuantizedTransformer::forwardStep() throws
 *   stepdelay  forwardStep() sleeps ~2 ms (latency, not failure)
 *   sched      scheduler dispatch/step loop sleeps ~2 ms
 *   sockread   socket server recv() artificially short (7 bytes)
 *   sockwrite  socket server send() artificially short (3 bytes)
 *   sockreset  socket server drops the connection on read-ready
 *
 * Throw sites (engine, step, sockreset) fail requests; delay/short
 * sites only perturb timing and I/O boundaries and must never change
 * any result byte.
 */

#ifndef MOKEY_COMMON_FAULT_HH
#define MOKEY_COMMON_FAULT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace mokey
{

/** The named seams fault injection can perturb. */
enum class FaultSite : size_t {
    EngineDispatch, ///< "engine": index GEMM dispatch throws
    StepThrow,      ///< "step": forwardStep throws
    StepDelay,      ///< "stepdelay": forwardStep sleeps
    SchedDelay,     ///< "sched": scheduler loop sleeps
    SockRead,       ///< "sockread": short socket read
    SockWrite,      ///< "sockwrite": short socket write
    SockReset,      ///< "sockreset": connection dropped on read
    Count_
};

inline constexpr size_t kFaultSiteCount =
    static_cast<size_t>(FaultSite::Count_);

namespace detail
{
/** True while ANY site is armed — the only state the hot path
 *  reads. Lives in fault.cc; do not touch directly. */
extern std::atomic<bool> g_faultsArmed;
} // namespace detail

/** One relaxed load: false (the common case) means every site is
 *  disarmed and faultFire() short-circuits. */
inline bool
faultsArmed()
{
    return detail::g_faultsArmed.load(std::memory_order_relaxed);
}

/**
 * Per-site deterministic injector. Production code uses the free
 * helpers below; tests may construct private instances to exercise
 * the spec parser without touching the process-wide singleton.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** The process-wide injector (MOKEY_FAULT arms it at startup). */
    static FaultInjector &instance();

    /**
     * Arm sites from a spec string (the MOKEY_FAULT grammar above).
     * Throws std::invalid_argument on junk — the env path converts
     * that into a fatal config error.
     */
    void configure(const std::string &spec);

    /** Arm one site: fire on ~rate of checks, seeded. */
    void arm(FaultSite site, double rate, uint64_t seed);

    /** Disarm every site and reset counters (tests, bench phases). */
    void disarm();

    /** True when this injector has any armed site. */
    bool armed() const;

    /** True when @p site is armed. */
    bool armed(FaultSite site) const;

    /**
     * Count one check of @p site; true when the fault fires. The
     * per-site check counter makes the fire pattern deterministic:
     * check k fires iff wouldFire(rate, seed, k).
     */
    bool shouldFire(FaultSite site);

    /** Fires so far at @p site (tests map faults to failures). */
    uint64_t fired(FaultSite site) const;

    /** Checks so far at @p site. */
    uint64_t checks(FaultSite site) const;

    /**
     * The pure firing predicate: would check number @p n (0-based)
     * of a site armed with (@p rate, @p seed) fire? Exposed so tests
     * can PREDICT the fault pattern instead of observing it.
     */
    static bool wouldFire(double rate, uint64_t seed, uint64_t n);

    /** Canonical spec name of @p site ("engine", "sockread", ...). */
    static const char *name(FaultSite site);

    /** Parse a spec site name; false when unknown. */
    static bool parseSite(const std::string &name, FaultSite &out);

  private:
    struct Site
    {
        std::atomic<bool> on{false};
        std::atomic<uint64_t> thresh{0}; ///< fire when hash32 < this
        std::atomic<uint64_t> seed{0};
        std::atomic<uint64_t> nChecks{0};
        std::atomic<uint64_t> nFired{0};
    };

    std::array<Site, kFaultSiteCount> sites;
};

/**
 * Throw-type seam: when @p site is armed and fires, throws
 * std::runtime_error("injected fault: <site>"). No-op otherwise.
 */
void faultThrowIfFired(FaultSite site); // fault.cc (throws)

inline void
faultPoint(FaultSite site)
{
    if (faultsArmed())
        faultThrowIfFired(site);
}

/** Delay-type seam: when armed and fired, sleeps ~2 ms. */
void faultDelayIfFired(FaultSite site); // fault.cc (sleeps)

inline void
faultDelayPoint(FaultSite site)
{
    if (faultsArmed())
        faultDelayIfFired(site);
}

/** Boolean seam (I/O shortening): true when armed and fired. */
inline bool
faultFire(FaultSite site)
{
    return faultsArmed() &&
           FaultInjector::instance().shouldFire(site);
}

} // namespace mokey

#endif // MOKEY_COMMON_FAULT_HH
