/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic parts of the reproduction (golden-dictionary sample
 * draws, synthetic model weights, synthetic task inputs) flow through
 * this generator so every experiment is bit-reproducible from a seed.
 */

#ifndef MOKEY_COMMON_RNG_HH
#define MOKEY_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mokey
{

/**
 * xoshiro256** generator with Gaussian sampling.
 *
 * Small, fast, and fully deterministic across platforms (unlike
 * std::normal_distribution, whose output is implementation-defined).
 */
class Rng
{
  public:
    /** Construct from a 64 b seed (SplitMix64-expanded to state). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64 b value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal draw (Box-Muller, cached pair). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Draw @p n samples from N(mean, stddev^2).
     *
     * @param n      number of samples
     * @param mean   distribution mean
     * @param stddev distribution standard deviation
     */
    std::vector<float> gaussianVector(size_t n, double mean,
                                      double stddev);

  private:
    uint64_t state[4];
    double cachedGaussian;
    bool hasCachedGaussian;
};

} // namespace mokey

#endif // MOKEY_COMMON_RNG_HH
