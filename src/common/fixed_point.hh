/**
 * @file
 * Fixed-point number formats and conversions (paper §II-F).
 *
 * Mokey runs inference entirely in the integer domain. Per layer it
 * chooses the number of fractional bits as
 *
 *     frac = b - ceil(log2(max - min))          (Eq. 7)
 *
 * and converts floats with
 *
 *     fx = round(fl * 2^frac) / 2^frac          (Eq. 8)
 *
 * FixedFormat captures (total bits, fractional bits); values are held
 * as int64 raw integers scaled by 2^frac and saturate on overflow.
 */

#ifndef MOKEY_COMMON_FIXED_POINT_HH
#define MOKEY_COMMON_FIXED_POINT_HH

#include <cstdint>

namespace mokey
{

/**
 * A two's-complement fixed-point format.
 *
 * Encodes values in the range
 * [-2^(total-1), 2^(total-1) - 1] / 2^frac.
 */
struct FixedFormat
{
    int totalBits; ///< total width, including the sign bit
    int fracBits;  ///< bits to the right of the binary point

    /**
     * Choose a format per Eq. 7 for values spanning [minV, maxV].
     *
     * @param total_bits total width in bits (e.g. 16)
     * @param min_v      smallest value that must be representable
     * @param max_v      largest value that must be representable
     */
    static FixedFormat forRange(int total_bits, double min_v,
                                double max_v);

    /** Largest representable value. */
    double maxValue() const;

    /** Smallest (most negative) representable value. */
    double minValue() const;

    /** Value of one least-significant step. */
    double resolution() const;

    /** Raw integer bounds for this width. */
    int64_t rawMax() const;
    int64_t rawMin() const;

    bool operator==(const FixedFormat &o) const
    {
        return totalBits == o.totalBits && fracBits == o.fracBits;
    }
};

/** Convert a float to its raw fixed-point integer, saturating. */
int64_t toFixedRaw(double v, const FixedFormat &fmt);

/** Convert a raw fixed-point integer back to a float. */
double fromFixedRaw(int64_t raw, const FixedFormat &fmt);

/** Round-trip a float through the format (Eq. 8 with saturation). */
double quantizeToFixed(double v, const FixedFormat &fmt);

/**
 * Multiply two raw fixed-point numbers, producing a raw value in
 * the given output format (rounding, saturating).
 */
int64_t fixedMul(int64_t a, const FixedFormat &fa,
                 int64_t b, const FixedFormat &fb,
                 const FixedFormat &fout);

/**
 * Re-scale a raw value between formats (rounding, saturating).
 */
int64_t fixedRescale(int64_t raw, const FixedFormat &from,
                     const FixedFormat &to);

/**
 * Round-to-nearest right shift; @p shift may be negative (a
 * two's-complement left shift). The single rounding primitive every
 * fixed-point path shares — callers must not grow private copies,
 * or their rounding semantics will drift.
 */
int64_t roundShift(int64_t v, int shift);

} // namespace mokey

#endif // MOKEY_COMMON_FIXED_POINT_HH
