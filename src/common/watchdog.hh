/**
 * @file
 * Stall watchdog: liveness monitoring for the serving stack's
 * long-running loops (scheduler dispatch/step threads, the lane
 * executor's workers).
 *
 * Each monitored loop registers a named Task and then heartbeats:
 * beat() at the top of every iteration/wave ("alive and busy"),
 * idle() before parking on a condition variable ("not expected to
 * beat"). A busy task whose last beat is older than its budget is
 * STALLED — wedged inside an engine call, a deadlock, or a runaway
 * request — and the watchdog reports it, with the task name and the
 * stall age as the cause.
 *
 * A monitor thread (started lazily with the first registration)
 * polls every checkInterval, logs each ok->stalled transition once
 * (and the recovery), and counts stallEvents. Health queries
 * (healthy()/cause()) evaluate the live timestamps directly, so a
 * caller like /healthz sees a stall or a recovery immediately, not
 * one poll later.
 *
 * The per-iteration cost of a heartbeat is one clock read and one
 * relaxed atomic store — cheap enough for every scheduler iteration
 * and executor wave.
 *
 * Knobs: MOKEY_WATCHDOG_MS is the default stall budget for tasks
 * registered without an explicit one (default 2000 ms).
 */

#ifndef MOKEY_COMMON_WATCHDOG_HH
#define MOKEY_COMMON_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mokey
{

/** Process-wide stall monitor; loops register Tasks and heartbeat. */
class Watchdog
{
    struct Slot;

  public:
    /**
     * RAII handle to one monitored loop: registered busy, must
     * beat() within its budget or go idle(); unregisters on
     * destruction. Movable, not copyable.
     */
    class Task
    {
      public:
        Task() = default;
        Task(Task &&other) noexcept { *this = std::move(other); }
        Task &operator=(Task &&other) noexcept;
        ~Task();

        Task(const Task &) = delete;
        Task &operator=(const Task &) = delete;

        /** Alive and busy: restart the stall clock. */
        void beat();

        /** Parked (waiting for work): no beats expected. The next
         *  beat() flips back to busy. */
        void idle();

        bool valid() const { return wd != nullptr; }

      private:
        friend class Watchdog;
        Task(Watchdog *w, Slot *s) : wd(w), slot(s) {}
        Watchdog *wd = nullptr;
        // Direct pointer, not an index: beat()/idle() run without mu,
        // and indexing the slots vector would race with a concurrent
        // monitor() reallocating its backing array. Slot objects
        // themselves are heap-allocated and never freed before
        // Watchdog teardown, so the pointer stays valid.
        Slot *slot = nullptr;
    };

    /** One reported stall. */
    struct Stall
    {
        std::string task;
        std::chrono::milliseconds stalled{0}; ///< time since beat
    };

    Watchdog() = default;
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** The process-wide instance every production loop registers
     *  with (tests may build private ones). */
    static Watchdog &instance();

    /**
     * Register one monitored loop. @p budget <= 0 selects the
     * MOKEY_WATCHDOG_MS default. The task starts busy with a fresh
     * beat, so a loop that registers and immediately wedges is
     * caught one budget later.
     */
    Task monitor(std::string name,
                 std::chrono::milliseconds budget =
                     std::chrono::milliseconds(0));

    /** Every currently stalled task (busy past its budget),
     *  evaluated against the live timestamps. */
    std::vector<Stall> stalls() const;

    /** No task is currently stalled. */
    bool healthy() const { return stalls().empty(); }

    /** Human-readable cause: "" when healthy, else the worst stall
     *  ("continuous-scheduler stalled 3120ms"). */
    std::string cause() const;

    /** ok->stalled transitions the monitor thread has logged. */
    uint64_t stallEvents() const
    {
        return stallCount.load(std::memory_order_relaxed);
    }

    /** Monitor poll period (default 100 ms; tests shrink it). */
    void setCheckInterval(std::chrono::milliseconds interval);

  private:
    struct Slot
    {
        std::string name;                ///< guarded by mu
        std::chrono::milliseconds budget{0}; ///< guarded by mu
        bool inUse = false;              ///< guarded by mu
        std::atomic<int64_t> lastBeatNs{0};
        std::atomic<bool> idleFlag{false};
        bool loggedStall = false;        ///< monitor thread only
    };

    void release(Slot *slot);
    void monitorLoop();
    static int64_t nowNs();

    mutable std::mutex mu;
    std::vector<Slot *> slots;        ///< stable addresses, never shrink
    std::thread monitorThread;
    std::condition_variable stopCv;
    bool stopFlag = false;
    std::atomic<int64_t> intervalMs{100};
    std::atomic<uint64_t> stallCount{0};
};

} // namespace mokey

#endif // MOKEY_COMMON_WATCHDOG_HH
