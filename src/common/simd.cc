#include "common/simd.hh"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && defined(__GNUC__)
#define MOKEY_SIMD_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mokey
{

// Multi-versioned on x86-64 (resolved once per process via ifunc);
// plain -O3 code elsewhere. The loop bodies below are written so the
// compiler's vectorizer can pick the widest profitable vectors per
// clone while the lane-to-accumulator mapping stays fixed.
// Sanitizer builds get the plain code: ifunc resolvers run during
// relocation, before the sanitizer runtime is initialized, and
// crash the process pre-main (the TSan CI job hit exactly this).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define MOKEY_SIMD_CLONES                                             \
    __attribute__((target_clones("default", "avx2,fma", "avx512f")))
#else
#define MOKEY_SIMD_CLONES
#endif

// Lane reductions are written as plain in-order loops on purpose:
// GCC's SLP vectorizer keeps the accumulator arrays in vector
// registers for this form, while an explicit pairwise tree makes it
// scalarize the whole function (measured 3-4x slower). In-order
// summation is still a fixed, deterministic FP order.

MOKEY_SIMD_CLONES double
dotDD(const double *x, const double *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += x[p + l] * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += x[p] * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

MOKEY_SIMD_CLONES double
sumD(const double *x, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += x[p + l];
    for (; p < n; ++p)
        acc[p % 16] += x[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

MOKEY_SIMD_CLONES double
dotFD(const float *x, const float *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += static_cast<double>(x[p + l]) * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += static_cast<double>(x[p]) * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

// 8 lanes per output, not 16: two 16-lane accumulator sets would
// need all vector registers and spill (measured 3.5x slower).
MOKEY_SIMD_CLONES void
dotFD2(const float *x, const float *y0, const float *y1, size_t n,
       double *r0, double *r1)
{
    double acc0[8] = {};
    double acc1[8] = {};
    size_t p = 0;
    for (; p + 8 <= n; p += 8) {
        for (size_t l = 0; l < 8; ++l) {
            const double xv = x[p + l];
            acc0[l] += xv * y0[p + l];
            acc1[l] += xv * y1[p + l];
        }
    }
    for (; p < n; ++p) {
        const double xv = x[p];
        acc0[p % 8] += xv * y0[p];
        acc1[p % 8] += xv * y1[p];
    }
    double s0 = 0.0, s1 = 0.0;
    for (size_t l = 0; l < 8; ++l) {
        s0 += acc0[l];
        s1 += acc1[l];
    }
    *r0 = s0;
    *r1 = s1;
}

// ---- byte-plane histogram kernels (counting engine) -----------------
//
// All variants produce bit-identical integer histograms (integer
// adds commute exactly), so unlike the FP dots the runtime dispatch
// below is free to pick any body on any call. The bucket scatter is
// split across two interleaved histograms to break the
// store-to-load dependency when neighbouring codes hit one bucket;
// merging them is an exact integer sum.

namespace
{

MOKEY_SIMD_CLONES void
pairHistogramGeneric(const uint8_t *ia, const int8_t *ta,
                     const uint8_t *iw, const int8_t *tw, size_t n,
                     int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    // Tile the key/sign precompute so it auto-vectorizes; only the
    // scatter stays scalar.
    constexpr size_t kTile = 256;
    uint8_t key[kTile];
    int8_t sg[kTile];
    for (size_t base = 0; base < n; base += kTile) {
        const size_t len = std::min(kTile, n - base);
        for (size_t c = 0; c < len; ++c) {
            key[c] = static_cast<uint8_t>(
                ((ia[base + c] & 7u) << 3) | (iw[base + c] & 7u));
            sg[c] = static_cast<int8_t>(ta[base + c] * tw[base + c]);
        }
        size_t c = 0;
        for (; c + 2 <= len; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
        if (c < len)
            h0[key[c]] += sg[c];
    }
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

MOKEY_SIMD_CLONES void
signedIndexHistogramGeneric(const uint8_t *idx, const int8_t *th,
                            size_t n, int32_t *hist)
{
    int32_t h0[8] = {};
    int32_t h1[8] = {};
    size_t c = 0;
    for (; c + 2 <= n; c += 2) {
        h0[idx[c] & 7u] += th[c];
        h1[idx[c + 1] & 7u] += th[c + 1];
    }
    if (c < n)
        h0[idx[c] & 7u] += th[c];
    for (int b = 0; b < 8; ++b)
        hist[b] = h0[b] + h1[b];
}

#ifdef MOKEY_SIMD_X86_DISPATCH

// Explicit target attributes + __builtin_cpu_supports dispatch, not
// target_clones: no ifunc resolver, so these stay enabled under the
// sanitizers (and under clang, which lacks the clones attribute
// here) and the sanitizer CI jobs actually instrument them.

__attribute__((target("avx2"))) void
pairHistogramAvx2(const uint8_t *ia, const int8_t *ta,
                  const uint8_t *iw, const int8_t *tw, size_t n,
                  int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    alignas(32) uint8_t key[32];
    alignas(32) int8_t sg[32];
    const __m256i low3 = _mm256_set1_epi8(0x07);
    const __m256i hi3 = _mm256_set1_epi8(0x38);
    size_t p = 0;
    for (; p + 32 <= n; p += 32) {
        const __m256i via = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ia + p));
        const __m256i viw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(iw + p));
        const __m256i vta = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ta + p));
        const __m256i vtw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tw + p));
        // key = (ia << 3) | iw, per byte (the 16 b shift never
        // crosses a byte because indexes are 3 b and masked).
        const __m256i vkey = _mm256_or_si256(
            _mm256_and_si256(_mm256_slli_epi16(via, 3), hi3),
            _mm256_and_si256(viw, low3));
        // theta product over {-1, 0, +1} is exactly vpsignb.
        const __m256i vsg = _mm256_sign_epi8(vta, vtw);
        _mm256_store_si256(reinterpret_cast<__m256i *>(key), vkey);
        _mm256_store_si256(reinterpret_cast<__m256i *>(sg), vsg);
        for (size_t c = 0; c < 32; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
    }
    for (; p < n; ++p)
        h0[((ia[p] & 7u) << 3) | (iw[p] & 7u)] +=
            static_cast<int32_t>(ta[p]) * tw[p];
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

__attribute__((target("avx512f,avx512bw"))) void
pairHistogramAvx512(const uint8_t *ia, const int8_t *ta,
                    const uint8_t *iw, const int8_t *tw, size_t n,
                    int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    alignas(64) uint8_t key[64];
    alignas(64) int8_t sg[64];
    const __m512i low3 = _mm512_set1_epi8(0x07);
    const __m512i hi3 = _mm512_set1_epi8(0x38);
    size_t p = 0;
    for (; p + 64 <= n; p += 64) {
        const __m512i via = _mm512_loadu_si512(ia + p);
        const __m512i viw = _mm512_loadu_si512(iw + p);
        const __m512i vta = _mm512_loadu_si512(ta + p);
        const __m512i vtw = _mm512_loadu_si512(tw + p);
        const __m512i vkey = _mm512_or_si512(
            _mm512_and_si512(_mm512_slli_epi16(via, 3), hi3),
            _mm512_and_si512(viw, low3));
        // No EVEX vpsignb: negate ta under the tw<0 mask, zero it
        // under the tw==0 mask — same {-1,0,+1} product.
        const __mmask64 negm = _mm512_movepi8_mask(vtw);
        const __mmask64 nzm = _mm512_test_epi8_mask(vtw, vtw);
        __m512i vsg = _mm512_mask_sub_epi8(
            vta, negm, _mm512_setzero_si512(), vta);
        vsg = _mm512_maskz_mov_epi8(nzm, vsg);
        _mm512_store_si512(key, vkey);
        _mm512_store_si512(sg, vsg);
        for (size_t c = 0; c < 64; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
    }
    for (; p < n; ++p)
        h0[((ia[p] & 7u) << 3) | (iw[p] & 7u)] +=
            static_cast<int32_t>(ta[p]) * tw[p];
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

__attribute__((target("avx2"))) void
signedIndexHistogramAvx2(const uint8_t *idx, const int8_t *th,
                         size_t n, int32_t *hist)
{
    int32_t h[8] = {};
    const __m256i low3 = _mm256_set1_epi8(0x07);
    const __m256i zero = _mm256_setzero_si256();
    size_t p = 0;
    for (; p + 32 <= n; p += 32) {
        const __m256i vi = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(idx + p)),
            low3);
        const __m256i vt = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(th + p));
        // Compare-masked popcount: per bucket, count +1 thetas minus
        // -1 thetas among the codes whose index matches.
        const auto neg = static_cast<uint32_t>(
            _mm256_movemask_epi8(vt));
        const auto nz = ~static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(vt, zero)));
        for (int b = 0; b < 8; ++b) {
            const auto m = static_cast<uint32_t>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(
                    vi, _mm256_set1_epi8(static_cast<char>(b)))));
            h[b] += __builtin_popcount(m & nz & ~neg) -
                __builtin_popcount(m & neg);
        }
    }
    for (; p < n; ++p)
        h[idx[p] & 7u] += th[p];
    for (int b = 0; b < 8; ++b)
        hist[b] = h[b];
}

__attribute__((target("avx512f,avx512bw"))) void
signedIndexHistogramAvx512(const uint8_t *idx, const int8_t *th,
                           size_t n, int32_t *hist)
{
    int32_t h[8] = {};
    const __m512i low3 = _mm512_set1_epi8(0x07);
    size_t p = 0;
    for (; p + 64 <= n; p += 64) {
        const __m512i vi = _mm512_and_si512(
            _mm512_loadu_si512(idx + p), low3);
        const __m512i vt = _mm512_loadu_si512(th + p);
        const __mmask64 neg = _mm512_movepi8_mask(vt);
        const __mmask64 nz = _mm512_test_epi8_mask(vt, vt);
        for (int b = 0; b < 8; ++b) {
            const __mmask64 m = _mm512_cmpeq_epi8_mask(
                vi, _mm512_set1_epi8(static_cast<char>(b)));
            h[b] += __builtin_popcountll(m & nz & ~neg) -
                __builtin_popcountll(m & neg);
        }
    }
    for (; p < n; ++p)
        h[idx[p] & 7u] += th[p];
    for (int b = 0; b < 8; ++b)
        hist[b] = h[b];
}

/** 2 = AVX-512BW, 1 = AVX2, 0 = generic; resolved once. */
int
x86HistogramIsa()
{
    static const int isa = [] {
        if (__builtin_cpu_supports("avx512bw"))
            return 2;
        if (__builtin_cpu_supports("avx2"))
            return 1;
        return 0;
    }();
    return isa;
}

#endif // MOKEY_SIMD_X86_DISPATCH

// ---- fused comparator-ladder encode ---------------------------------
//
// Every per-element decision is an exact double comparison and the
// one division is the correctly-rounded IEEE op, so — like the
// histogram kernels — all bodies below emit bit-identical planes and
// the runtime dispatch may pick any of them on any call.
//
// The branchless index select rests on the nesting of the boundary
// predicates P_i = (|u| - mags[i-1] > mags[i] - |u|): for a sorted
// ladder, P_i true implies P_j true for every j < i (for i below the
// straddle point the two operands have opposite signs, making the
// comparison exact), so the predicate *count* equals the index the
// scalar lower_bound + two-subtraction tie pick computes — including
// the exact-tie case, where P_i evaluates the very same expression
// ExpDictionary::nearestIndex() branches on.

/** One element of the ladder encode; shared by every tail loop. */
inline size_t
encodeLadderOne(float v_f, const double *mags, size_t h, double mean,
                double scale, double cut, uint8_t *idx, int8_t *theta,
                double *mag, size_t c)
{
    const double v = v_f;
    const double d = v - mean;
    const bool is_ot = std::abs(d) > cut;
    const double u = d / scale;
    const double au = std::abs(u);
    unsigned k = 0;
    for (size_t i = 1; i < h; ++i)
        k += (au - mags[i - 1] > mags[i] - au) ? 1u : 0u;
    const bool neg = u < 0.0;
    if (idx)
        idx[c] = is_ot ? 0 : static_cast<uint8_t>(k);
    if (theta)
        theta[c] = is_ot ? 0 : (neg ? -1 : 1);
    if (mag)
        mag[c] = is_ot ? 0.0 : (neg ? -mags[k] : mags[k]);
    return is_ot ? 1 : 0;
}

MOKEY_SIMD_CLONES size_t
encodeLadderGeneric(const float *src, size_t n, const double *mags,
                    size_t h, double mean, double scale, double cut,
                    uint8_t *idx, int8_t *theta, double *mag)
{
    size_t outliers = 0;
    for (size_t c = 0; c < n; ++c)
        outliers += encodeLadderOne(src[c], mags, h, mean, scale,
                                    cut, idx, theta, mag, c);
    return outliers;
}

#ifdef MOKEY_SIMD_X86_DISPATCH

__attribute__((target("avx2"))) size_t
encodeLadderAvx2(const float *src, size_t n, const double *mags,
                 size_t h, double mean, double scale, double cut,
                 uint8_t *idx, int8_t *theta, double *mag)
{
    const __m256d vmean = _mm256_set1_pd(mean);
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d vcut = _mm256_set1_pd(cut);
    const __m256d absmask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d signmask = _mm256_castsi256_pd(_mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL)));
    const __m256i one64 = _mm256_set1_epi64x(1);
    const __m256i two64 = _mm256_set1_epi64x(2);
    size_t outliers = 0;
    size_t p = 0;
    for (; p + 4 <= n; p += 4) {
        const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(src + p));
        const __m256d d = _mm256_sub_pd(v, vmean);
        const __m256d ad = _mm256_and_pd(d, absmask);
        const __m256d otm = _mm256_cmp_pd(ad, vcut, _CMP_GT_OQ);
        const __m256d u = _mm256_div_pd(d, vscale);
        const __m256d au = _mm256_and_pd(u, absmask);
        // Count crossed boundaries: subtracting the all-ones compare
        // mask adds one per true predicate.
        __m256i k = _mm256_setzero_si256();
        for (size_t i = 1; i < h; ++i) {
            const __m256d lo =
                _mm256_sub_pd(au, _mm256_set1_pd(mags[i - 1]));
            const __m256d hi =
                _mm256_sub_pd(_mm256_set1_pd(mags[i]), au);
            k = _mm256_sub_epi64(
                k, _mm256_castpd_si256(
                       _mm256_cmp_pd(lo, hi, _CMP_GT_OQ)));
        }
        const __m256d negm =
            _mm256_cmp_pd(u, _mm256_setzero_pd(), _CMP_LT_OQ);
        const __m256i otm64 = _mm256_castpd_si256(otm);
        if (mag) {
            // mags is padded to 8 entries, so the gather stays in
            // bounds for every k <= h-1. Sign flip is an exact xor;
            // outlier lanes collapse to +0.0.
            __m256d mg = _mm256_i64gather_pd(mags, k, 8);
            mg = _mm256_xor_pd(mg, _mm256_and_pd(negm, signmask));
            mg = _mm256_andnot_pd(otm, mg);
            _mm256_storeu_pd(mag + p, mg);
        }
        if (idx || theta) {
            const __m256i ki = _mm256_andnot_si256(otm64, k);
            // theta = 1 - 2*[negative], zeroed at outliers.
            __m256i th = _mm256_sub_epi64(
                one64,
                _mm256_and_si256(_mm256_castpd_si256(negm), two64));
            th = _mm256_andnot_si256(otm64, th);
            alignas(32) int64_t kb[4], tb[4];
            _mm256_store_si256(reinterpret_cast<__m256i *>(kb), ki);
            _mm256_store_si256(reinterpret_cast<__m256i *>(tb), th);
            for (int l = 0; l < 4; ++l) {
                if (idx)
                    idx[p + l] = static_cast<uint8_t>(kb[l]);
                if (theta)
                    theta[p + l] = static_cast<int8_t>(tb[l]);
            }
        }
        outliers += static_cast<unsigned>(
            __builtin_popcount(_mm256_movemask_pd(otm)));
    }
    for (; p < n; ++p)
        outliers += encodeLadderOne(src[p], mags, h, mean, scale,
                                    cut, idx, theta, mag, p);
    return outliers;
}

__attribute__((target("avx512f"))) size_t
encodeLadderAvx512(const float *src, size_t n, const double *mags,
                   size_t h, double mean, double scale, double cut,
                   uint8_t *idx, int8_t *theta, double *mag)
{
    const __m512d vmean = _mm512_set1_pd(mean);
    const __m512d vscale = _mm512_set1_pd(scale);
    const __m512d vcut = _mm512_set1_pd(cut);
    const __m512d magtab = _mm512_loadu_pd(mags); // 8 padded entries
    const __m512i one64 = _mm512_set1_epi64(1);
    size_t outliers = 0;
    size_t p = 0;
    for (; p + 8 <= n; p += 8) {
        const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(src + p));
        const __m512d d = _mm512_sub_pd(v, vmean);
        const __mmask8 otm = _mm512_cmp_pd_mask(
            _mm512_abs_pd(d), vcut, _CMP_GT_OQ);
        const __mmask8 keep = static_cast<__mmask8>(~otm);
        const __m512d u = _mm512_div_pd(d, vscale);
        const __m512d au = _mm512_abs_pd(u);
        __m512i k = _mm512_setzero_si512();
        for (size_t i = 1; i < h; ++i) {
            const __mmask8 m = _mm512_cmp_pd_mask(
                _mm512_sub_pd(au, _mm512_set1_pd(mags[i - 1])),
                _mm512_sub_pd(_mm512_set1_pd(mags[i]), au),
                _CMP_GT_OQ);
            k = _mm512_mask_add_epi64(k, m, k, one64);
        }
        const __mmask8 negm = _mm512_cmp_pd_mask(
            u, _mm512_setzero_pd(), _CMP_LT_OQ);
        if (mag) {
            // Table permute instead of a gather; 0 - x is the exact
            // negation for the strictly positive ladder entries.
            __m512d mg = _mm512_permutexvar_pd(k, magtab);
            mg = _mm512_mask_sub_pd(mg, negm, _mm512_setzero_pd(),
                                    mg);
            mg = _mm512_maskz_mov_pd(keep, mg);
            _mm512_storeu_pd(mag + p, mg);
        }
        if (idx)
            _mm_storel_epi64(
                reinterpret_cast<__m128i *>(idx + p),
                _mm512_cvtepi64_epi8(
                    _mm512_maskz_mov_epi64(keep, k)));
        if (theta) {
            __m512i th = _mm512_mask_sub_epi64(
                one64, negm, _mm512_setzero_si512(), one64);
            th = _mm512_maskz_mov_epi64(keep, th);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(theta + p),
                             _mm512_cvtepi64_epi8(th));
        }
        outliers +=
            static_cast<unsigned>(__builtin_popcount(otm));
    }
    for (; p < n; ++p)
        outliers += encodeLadderOne(src[p], mags, h, mean, scale,
                                    cut, idx, theta, mag, p);
    return outliers;
}

#endif // MOKEY_SIMD_X86_DISPATCH

} // anonymous namespace

void
pairHistogram(const uint8_t *ia, const int8_t *ta, const uint8_t *iw,
              const int8_t *tw, size_t n, int32_t *hist)
{
#ifdef MOKEY_SIMD_X86_DISPATCH
    const int isa = x86HistogramIsa();
    if (isa == 2)
        return pairHistogramAvx512(ia, ta, iw, tw, n, hist);
    if (isa == 1)
        return pairHistogramAvx2(ia, ta, iw, tw, n, hist);
#endif
    pairHistogramGeneric(ia, ta, iw, tw, n, hist);
}

void
signedIndexHistogram(const uint8_t *idx, const int8_t *th, size_t n,
                     int32_t *hist)
{
#ifdef MOKEY_SIMD_X86_DISPATCH
    const int isa = x86HistogramIsa();
    if (isa == 2)
        return signedIndexHistogramAvx512(idx, th, n, hist);
    if (isa == 1)
        return signedIndexHistogramAvx2(idx, th, n, hist);
#endif
    signedIndexHistogramGeneric(idx, th, n, hist);
}

size_t
encodeLadder(const float *src, size_t n, const double *mags, size_t h,
             double mean, double scale, double cut, uint8_t *idx,
             int8_t *theta, double *mag)
{
#ifdef MOKEY_SIMD_X86_DISPATCH
    // The AVX-512 body only needs the F subset, so reusing the BW
    // resolver is conservative; results are bit-identical either way.
    const int isa = x86HistogramIsa();
    if (isa == 2)
        return encodeLadderAvx512(src, n, mags, h, mean, scale, cut,
                                  idx, theta, mag);
    if (isa == 1)
        return encodeLadderAvx2(src, n, mags, h, mean, scale, cut,
                                idx, theta, mag);
#endif
    return encodeLadderGeneric(src, n, mags, h, mean, scale, cut,
                               idx, theta, mag);
}

} // namespace mokey
