#include "common/simd.hh"

#include <algorithm>

#if defined(__x86_64__) && defined(__GNUC__)
#define MOKEY_SIMD_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mokey
{

// Multi-versioned on x86-64 (resolved once per process via ifunc);
// plain -O3 code elsewhere. The loop bodies below are written so the
// compiler's vectorizer can pick the widest profitable vectors per
// clone while the lane-to-accumulator mapping stays fixed.
// Sanitizer builds get the plain code: ifunc resolvers run during
// relocation, before the sanitizer runtime is initialized, and
// crash the process pre-main (the TSan CI job hit exactly this).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define MOKEY_SIMD_CLONES                                             \
    __attribute__((target_clones("default", "avx2,fma", "avx512f")))
#else
#define MOKEY_SIMD_CLONES
#endif

// Lane reductions are written as plain in-order loops on purpose:
// GCC's SLP vectorizer keeps the accumulator arrays in vector
// registers for this form, while an explicit pairwise tree makes it
// scalarize the whole function (measured 3-4x slower). In-order
// summation is still a fixed, deterministic FP order.

MOKEY_SIMD_CLONES double
dotDD(const double *x, const double *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += x[p + l] * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += x[p] * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

MOKEY_SIMD_CLONES double
dotFD(const float *x, const float *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += static_cast<double>(x[p + l]) * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += static_cast<double>(x[p]) * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

// 8 lanes per output, not 16: two 16-lane accumulator sets would
// need all vector registers and spill (measured 3.5x slower).
MOKEY_SIMD_CLONES void
dotFD2(const float *x, const float *y0, const float *y1, size_t n,
       double *r0, double *r1)
{
    double acc0[8] = {};
    double acc1[8] = {};
    size_t p = 0;
    for (; p + 8 <= n; p += 8) {
        for (size_t l = 0; l < 8; ++l) {
            const double xv = x[p + l];
            acc0[l] += xv * y0[p + l];
            acc1[l] += xv * y1[p + l];
        }
    }
    for (; p < n; ++p) {
        const double xv = x[p];
        acc0[p % 8] += xv * y0[p];
        acc1[p % 8] += xv * y1[p];
    }
    double s0 = 0.0, s1 = 0.0;
    for (size_t l = 0; l < 8; ++l) {
        s0 += acc0[l];
        s1 += acc1[l];
    }
    *r0 = s0;
    *r1 = s1;
}

// ---- byte-plane histogram kernels (counting engine) -----------------
//
// All variants produce bit-identical integer histograms (integer
// adds commute exactly), so unlike the FP dots the runtime dispatch
// below is free to pick any body on any call. The bucket scatter is
// split across two interleaved histograms to break the
// store-to-load dependency when neighbouring codes hit one bucket;
// merging them is an exact integer sum.

namespace
{

MOKEY_SIMD_CLONES void
pairHistogramGeneric(const uint8_t *ia, const int8_t *ta,
                     const uint8_t *iw, const int8_t *tw, size_t n,
                     int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    // Tile the key/sign precompute so it auto-vectorizes; only the
    // scatter stays scalar.
    constexpr size_t kTile = 256;
    uint8_t key[kTile];
    int8_t sg[kTile];
    for (size_t base = 0; base < n; base += kTile) {
        const size_t len = std::min(kTile, n - base);
        for (size_t c = 0; c < len; ++c) {
            key[c] = static_cast<uint8_t>(
                ((ia[base + c] & 7u) << 3) | (iw[base + c] & 7u));
            sg[c] = static_cast<int8_t>(ta[base + c] * tw[base + c]);
        }
        size_t c = 0;
        for (; c + 2 <= len; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
        if (c < len)
            h0[key[c]] += sg[c];
    }
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

MOKEY_SIMD_CLONES void
signedIndexHistogramGeneric(const uint8_t *idx, const int8_t *th,
                            size_t n, int32_t *hist)
{
    int32_t h0[8] = {};
    int32_t h1[8] = {};
    size_t c = 0;
    for (; c + 2 <= n; c += 2) {
        h0[idx[c] & 7u] += th[c];
        h1[idx[c + 1] & 7u] += th[c + 1];
    }
    if (c < n)
        h0[idx[c] & 7u] += th[c];
    for (int b = 0; b < 8; ++b)
        hist[b] = h0[b] + h1[b];
}

#ifdef MOKEY_SIMD_X86_DISPATCH

// Explicit target attributes + __builtin_cpu_supports dispatch, not
// target_clones: no ifunc resolver, so these stay enabled under the
// sanitizers (and under clang, which lacks the clones attribute
// here) and the sanitizer CI jobs actually instrument them.

__attribute__((target("avx2"))) void
pairHistogramAvx2(const uint8_t *ia, const int8_t *ta,
                  const uint8_t *iw, const int8_t *tw, size_t n,
                  int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    alignas(32) uint8_t key[32];
    alignas(32) int8_t sg[32];
    const __m256i low3 = _mm256_set1_epi8(0x07);
    const __m256i hi3 = _mm256_set1_epi8(0x38);
    size_t p = 0;
    for (; p + 32 <= n; p += 32) {
        const __m256i via = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ia + p));
        const __m256i viw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(iw + p));
        const __m256i vta = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ta + p));
        const __m256i vtw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tw + p));
        // key = (ia << 3) | iw, per byte (the 16 b shift never
        // crosses a byte because indexes are 3 b and masked).
        const __m256i vkey = _mm256_or_si256(
            _mm256_and_si256(_mm256_slli_epi16(via, 3), hi3),
            _mm256_and_si256(viw, low3));
        // theta product over {-1, 0, +1} is exactly vpsignb.
        const __m256i vsg = _mm256_sign_epi8(vta, vtw);
        _mm256_store_si256(reinterpret_cast<__m256i *>(key), vkey);
        _mm256_store_si256(reinterpret_cast<__m256i *>(sg), vsg);
        for (size_t c = 0; c < 32; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
    }
    for (; p < n; ++p)
        h0[((ia[p] & 7u) << 3) | (iw[p] & 7u)] +=
            static_cast<int32_t>(ta[p]) * tw[p];
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

__attribute__((target("avx512f,avx512bw"))) void
pairHistogramAvx512(const uint8_t *ia, const int8_t *ta,
                    const uint8_t *iw, const int8_t *tw, size_t n,
                    int32_t *hist)
{
    int32_t h0[64] = {};
    int32_t h1[64] = {};
    alignas(64) uint8_t key[64];
    alignas(64) int8_t sg[64];
    const __m512i low3 = _mm512_set1_epi8(0x07);
    const __m512i hi3 = _mm512_set1_epi8(0x38);
    size_t p = 0;
    for (; p + 64 <= n; p += 64) {
        const __m512i via = _mm512_loadu_si512(ia + p);
        const __m512i viw = _mm512_loadu_si512(iw + p);
        const __m512i vta = _mm512_loadu_si512(ta + p);
        const __m512i vtw = _mm512_loadu_si512(tw + p);
        const __m512i vkey = _mm512_or_si512(
            _mm512_and_si512(_mm512_slli_epi16(via, 3), hi3),
            _mm512_and_si512(viw, low3));
        // No EVEX vpsignb: negate ta under the tw<0 mask, zero it
        // under the tw==0 mask — same {-1,0,+1} product.
        const __mmask64 negm = _mm512_movepi8_mask(vtw);
        const __mmask64 nzm = _mm512_test_epi8_mask(vtw, vtw);
        __m512i vsg = _mm512_mask_sub_epi8(
            vta, negm, _mm512_setzero_si512(), vta);
        vsg = _mm512_maskz_mov_epi8(nzm, vsg);
        _mm512_store_si512(key, vkey);
        _mm512_store_si512(sg, vsg);
        for (size_t c = 0; c < 64; c += 2) {
            h0[key[c]] += sg[c];
            h1[key[c + 1]] += sg[c + 1];
        }
    }
    for (; p < n; ++p)
        h0[((ia[p] & 7u) << 3) | (iw[p] & 7u)] +=
            static_cast<int32_t>(ta[p]) * tw[p];
    for (int b = 0; b < 64; ++b)
        hist[b] = h0[b] + h1[b];
}

__attribute__((target("avx2"))) void
signedIndexHistogramAvx2(const uint8_t *idx, const int8_t *th,
                         size_t n, int32_t *hist)
{
    int32_t h[8] = {};
    const __m256i low3 = _mm256_set1_epi8(0x07);
    const __m256i zero = _mm256_setzero_si256();
    size_t p = 0;
    for (; p + 32 <= n; p += 32) {
        const __m256i vi = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(idx + p)),
            low3);
        const __m256i vt = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(th + p));
        // Compare-masked popcount: per bucket, count +1 thetas minus
        // -1 thetas among the codes whose index matches.
        const auto neg = static_cast<uint32_t>(
            _mm256_movemask_epi8(vt));
        const auto nz = ~static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(vt, zero)));
        for (int b = 0; b < 8; ++b) {
            const auto m = static_cast<uint32_t>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(
                    vi, _mm256_set1_epi8(static_cast<char>(b)))));
            h[b] += __builtin_popcount(m & nz & ~neg) -
                __builtin_popcount(m & neg);
        }
    }
    for (; p < n; ++p)
        h[idx[p] & 7u] += th[p];
    for (int b = 0; b < 8; ++b)
        hist[b] = h[b];
}

__attribute__((target("avx512f,avx512bw"))) void
signedIndexHistogramAvx512(const uint8_t *idx, const int8_t *th,
                           size_t n, int32_t *hist)
{
    int32_t h[8] = {};
    const __m512i low3 = _mm512_set1_epi8(0x07);
    size_t p = 0;
    for (; p + 64 <= n; p += 64) {
        const __m512i vi = _mm512_and_si512(
            _mm512_loadu_si512(idx + p), low3);
        const __m512i vt = _mm512_loadu_si512(th + p);
        const __mmask64 neg = _mm512_movepi8_mask(vt);
        const __mmask64 nz = _mm512_test_epi8_mask(vt, vt);
        for (int b = 0; b < 8; ++b) {
            const __mmask64 m = _mm512_cmpeq_epi8_mask(
                vi, _mm512_set1_epi8(static_cast<char>(b)));
            h[b] += __builtin_popcountll(m & nz & ~neg) -
                __builtin_popcountll(m & neg);
        }
    }
    for (; p < n; ++p)
        h[idx[p] & 7u] += th[p];
    for (int b = 0; b < 8; ++b)
        hist[b] = h[b];
}

/** 2 = AVX-512BW, 1 = AVX2, 0 = generic; resolved once. */
int
x86HistogramIsa()
{
    static const int isa = [] {
        if (__builtin_cpu_supports("avx512bw"))
            return 2;
        if (__builtin_cpu_supports("avx2"))
            return 1;
        return 0;
    }();
    return isa;
}

#endif // MOKEY_SIMD_X86_DISPATCH

} // anonymous namespace

void
pairHistogram(const uint8_t *ia, const int8_t *ta, const uint8_t *iw,
              const int8_t *tw, size_t n, int32_t *hist)
{
#ifdef MOKEY_SIMD_X86_DISPATCH
    const int isa = x86HistogramIsa();
    if (isa == 2)
        return pairHistogramAvx512(ia, ta, iw, tw, n, hist);
    if (isa == 1)
        return pairHistogramAvx2(ia, ta, iw, tw, n, hist);
#endif
    pairHistogramGeneric(ia, ta, iw, tw, n, hist);
}

void
signedIndexHistogram(const uint8_t *idx, const int8_t *th, size_t n,
                     int32_t *hist)
{
#ifdef MOKEY_SIMD_X86_DISPATCH
    const int isa = x86HistogramIsa();
    if (isa == 2)
        return signedIndexHistogramAvx512(idx, th, n, hist);
    if (isa == 1)
        return signedIndexHistogramAvx2(idx, th, n, hist);
#endif
    signedIndexHistogramGeneric(idx, th, n, hist);
}

} // namespace mokey
