#include "common/simd.hh"

namespace mokey
{

// Multi-versioned on x86-64 (resolved once per process via ifunc);
// plain -O3 code elsewhere. The loop bodies below are written so the
// compiler's vectorizer can pick the widest profitable vectors per
// clone while the lane-to-accumulator mapping stays fixed.
// Sanitizer builds get the plain code: ifunc resolvers run during
// relocation, before the sanitizer runtime is initialized, and
// crash the process pre-main (the TSan CI job hit exactly this).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define MOKEY_SIMD_CLONES                                             \
    __attribute__((target_clones("default", "avx2,fma", "avx512f")))
#else
#define MOKEY_SIMD_CLONES
#endif

// Lane reductions are written as plain in-order loops on purpose:
// GCC's SLP vectorizer keeps the accumulator arrays in vector
// registers for this form, while an explicit pairwise tree makes it
// scalarize the whole function (measured 3-4x slower). In-order
// summation is still a fixed, deterministic FP order.

MOKEY_SIMD_CLONES double
dotDD(const double *x, const double *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += x[p + l] * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += x[p] * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

MOKEY_SIMD_CLONES double
dotFD(const float *x, const float *y, size_t n)
{
    double acc[16] = {};
    size_t p = 0;
    for (; p + 16 <= n; p += 16)
        for (size_t l = 0; l < 16; ++l)
            acc[l] += static_cast<double>(x[p + l]) * y[p + l];
    for (; p < n; ++p)
        acc[p % 16] += static_cast<double>(x[p]) * y[p];
    double sum = 0.0;
    for (size_t l = 0; l < 16; ++l)
        sum += acc[l];
    return sum;
}

// 8 lanes per output, not 16: two 16-lane accumulator sets would
// need all vector registers and spill (measured 3.5x slower).
MOKEY_SIMD_CLONES void
dotFD2(const float *x, const float *y0, const float *y1, size_t n,
       double *r0, double *r1)
{
    double acc0[8] = {};
    double acc1[8] = {};
    size_t p = 0;
    for (; p + 8 <= n; p += 8) {
        for (size_t l = 0; l < 8; ++l) {
            const double xv = x[p + l];
            acc0[l] += xv * y0[p + l];
            acc1[l] += xv * y1[p + l];
        }
    }
    for (; p < n; ++p) {
        const double xv = x[p];
        acc0[p % 8] += xv * y0[p];
        acc1[p % 8] += xv * y1[p];
    }
    double s0 = 0.0, s1 = 0.0;
    for (size_t l = 0; l < 8; ++l) {
        s0 += acc0[l];
        s1 += acc1[l];
    }
    *r0 = s0;
    *r1 = s1;
}

} // namespace mokey
