#include "common/fault.hh"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace mokey
{

namespace detail
{
std::atomic<bool> g_faultsArmed{false};
} // namespace detail

namespace
{

constexpr const char *kSiteNames[kFaultSiteCount] = {
    "engine", "step", "stepdelay", "sched",
    "sockread", "sockwrite", "sockreset"};

/** splitmix64 of the (seed, check index) pair: every bit of the
 *  output is well mixed, so thresholding the low 32 bits gives an
 *  unbiased Bernoulli stream per site. */
uint64_t
mix64(uint64_t seed, uint64_t n)
{
    uint64_t z = seed + (n + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Fire threshold on the low 32 bits; rate 1.0 maps to 2^32 (always
 *  fires) without overflowing the comparison domain. */
uint64_t
rateThreshold(double rate)
{
    return static_cast<uint64_t>(rate * 4294967296.0);
}

/** MOKEY_FAULT is parsed once, before main() runs any serving code;
 *  a junk spec is a fatal config error like every other knob. */
struct EnvArm
{
    EnvArm()
    {
        const char *env = std::getenv("MOKEY_FAULT");
        if (env == nullptr || *env == '\0')
            return;
        try {
            FaultInjector::instance().configure(env);
        } catch (const std::invalid_argument &e) {
            fatal("MOKEY_FAULT: %s", e.what());
        }
    }
} g_envArm;

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    return inj;
}

const char *
FaultInjector::name(FaultSite site)
{
    return kSiteNames[static_cast<size_t>(site)];
}

bool
FaultInjector::parseSite(const std::string &name, FaultSite &out)
{
    for (size_t i = 0; i < kFaultSiteCount; ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

bool
FaultInjector::wouldFire(double rate, uint64_t seed, uint64_t n)
{
    return (mix64(seed, n) & 0xffffffffull) < rateThreshold(rate);
}

void
FaultInjector::configure(const std::string &spec)
{
    // Parse the whole spec before arming anything: a junk entry
    // after a valid one must not leave the injector half-armed (the
    // caller catches and reports, and retrying with a fixed spec
    // should start from a clean slate).
    struct Parsed
    {
        FaultSite site;
        double rate;
        uint64_t seed;
    };
    std::vector<Parsed> parsed;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            throw std::invalid_argument(
                "empty entry in fault spec '" + spec + "'");

        const size_t c1 = entry.find(':');
        const size_t c2 =
            c1 == std::string::npos ? c1 : entry.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            throw std::invalid_argument(
                "fault spec entry '" + entry +
                "' must be <site>:<rate>:<seed>");

        const std::string siteStr = entry.substr(0, c1);
        const std::string rateStr =
            entry.substr(c1 + 1, c2 - c1 - 1);
        const std::string seedStr = entry.substr(c2 + 1);

        FaultSite site;
        if (!parseSite(siteStr, site))
            throw std::invalid_argument("unknown fault site '" +
                                        siteStr + "'");

        char *rend = nullptr;
        const double rate = std::strtod(rateStr.c_str(), &rend);
        if (rend == rateStr.c_str() || *rend != '\0' ||
            !(rate > 0.0) || rate > 1.0)
            throw std::invalid_argument(
                "fault rate '" + rateStr +
                "' must be a decimal in (0, 1]");

        // strtoull accepts a leading '-' by wrapping; reject it
        // explicitly so "engine:0.1:-1" is junk, not 2^64-1.
        char *send = nullptr;
        const unsigned long long seed =
            std::strtoull(seedStr.c_str(), &send, 10);
        if (send == seedStr.c_str() || *send != '\0' ||
            seedStr[0] == '-')
            throw std::invalid_argument(
                "fault seed '" + seedStr +
                "' must be a non-negative integer");

        parsed.push_back(Parsed{site, rate, seed});
    }
    for (const Parsed &p : parsed)
        arm(p.site, p.rate, p.seed);
}

void
FaultInjector::arm(FaultSite site, double rate, uint64_t seed)
{
    Site &s = sites[static_cast<size_t>(site)];
    s.thresh.store(rateThreshold(rate), std::memory_order_relaxed);
    s.seed.store(seed, std::memory_order_relaxed);
    s.nChecks.store(0, std::memory_order_relaxed);
    s.nFired.store(0, std::memory_order_relaxed);
    s.on.store(true, std::memory_order_release);
    if (this == &instance())
        detail::g_faultsArmed.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    for (Site &s : sites) {
        s.on.store(false, std::memory_order_release);
        s.nChecks.store(0, std::memory_order_relaxed);
        s.nFired.store(0, std::memory_order_relaxed);
    }
    if (this == &instance())
        detail::g_faultsArmed.store(false,
                                    std::memory_order_release);
}

bool
FaultInjector::armed() const
{
    for (const Site &s : sites)
        if (s.on.load(std::memory_order_acquire))
            return true;
    return false;
}

bool
FaultInjector::armed(FaultSite site) const
{
    return sites[static_cast<size_t>(site)].on.load(
        std::memory_order_acquire);
}

bool
FaultInjector::shouldFire(FaultSite site)
{
    Site &s = sites[static_cast<size_t>(site)];
    if (!s.on.load(std::memory_order_acquire))
        return false;
    const uint64_t n =
        s.nChecks.fetch_add(1, std::memory_order_relaxed);
    const bool fire =
        (mix64(s.seed.load(std::memory_order_relaxed), n) &
         0xffffffffull) < s.thresh.load(std::memory_order_relaxed);
    if (fire)
        s.nFired.fetch_add(1, std::memory_order_relaxed);
    return fire;
}

uint64_t
FaultInjector::fired(FaultSite site) const
{
    return sites[static_cast<size_t>(site)].nFired.load(
        std::memory_order_relaxed);
}

uint64_t
FaultInjector::checks(FaultSite site) const
{
    return sites[static_cast<size_t>(site)].nChecks.load(
        std::memory_order_relaxed);
}

void
faultThrowIfFired(FaultSite site)
{
    if (FaultInjector::instance().shouldFire(site))
        throw std::runtime_error(
            std::string("injected fault: ") +
            FaultInjector::name(site));
}

void
faultDelayIfFired(FaultSite site)
{
    if (FaultInjector::instance().shouldFire(site))
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

} // namespace mokey
