/**
 * @file
 * Vectorized dot-product primitives shared by the hot kernels.
 *
 * Each function carries GCC target_clones, so the binary ships
 * generic, AVX2+FMA, and AVX-512 variants and the dynamic linker
 * picks one per process at startup. Within a process the chosen
 * variant — and therefore the exact FP rounding — is fixed, which is
 * what lets the GEMM engines promise bit-identical results across
 * thread counts and tilings.
 *
 * Lane structure (and thus arithmetic order) is written out
 * explicitly: 16 independent accumulators reduced in a fixed tree.
 * The result is a pure function of the inputs and the selected ISA.
 */

#ifndef MOKEY_COMMON_SIMD_HH
#define MOKEY_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace mokey
{

/** Sum of x[i]*y[i] over doubles, 16-lane fixed-tree reduction. */
double dotDD(const double *x, const double *y, size_t n);

/**
 * Streaming sum of @p n doubles, 16-lane fixed-tree reduction. One
 * load + one add per element — the closest a kernel gets to pure
 * read bandwidth, which is what the engine-calibration probe
 * (calibrateMagBudget) times across working-set sizes to locate the
 * host's cache cliff.
 */
double sumD(const double *x, size_t n);

/** Sum of x[i]*y[i] over floats, accumulated in double. */
double dotFD(const float *x, const float *y, size_t n);

/**
 * Two dot products sharing one x stream: r0 = x . y0, r1 = x . y1.
 * The column pairing halves x loads/converts in GEMM inner loops.
 * Uses its own (8-lane) accumulation order — deterministic, but not
 * bit-matched to dotFD(); callers must route a given output through
 * the same function on every run.
 */
void dotFD2(const float *x, const float *y0, const float *y1,
            size_t n, double *r0, double *r1);

// ---- byte-plane histogram kernels (counting engine) -----------------
//
// These two kernels are the GPE of the counting engine: they stream
// the 1 B index / 1 B theta planes and accumulate *integer* signed
// histograms, so their results are exactly identical on every ISA —
// unlike the FP dots above, the dispatch may pick any variant at any
// time without breaking determinism. On x86-64 they dispatch at
// runtime (via __builtin_cpu_supports, no ifunc, sanitizer-safe) to
// AVX-512BW / AVX2 bodies that compute bucket keys and sign products
// 64/32 codes at a time (_mm*_sign_epi8 sign products, shifted-index
// bucket keys, compare-masked popcounts); elsewhere they fall back to
// a multi-versioned generic loop.

/**
 * Signed joint-index pair histogram over two byte-plane rows:
 *
 *   hist[(ia[c] & 7) << 3 | (iw[c] & 7)] += ta[c] * tw[c]
 *
 * for c in [0, n). Outlier slots carry theta 0, so their pairs add
 * nothing — exactly the "outlier contributions vanish" invariant of
 * the dense planes. @p hist must hold 64 entries; it is overwritten.
 */
void pairHistogram(const uint8_t *ia, const int8_t *ta,
                   const uint8_t *iw, const int8_t *tw, size_t n,
                   int32_t *hist);

/**
 * Signed per-index histogram of one byte-plane row:
 * hist[idx[c] & 7] += th[c] for c in [0, n). @p hist must hold 8
 * entries; it is overwritten. Collapsing it against the magnitude
 * table yields the row's pairing-independent SoA2 + b*PoM2 term.
 */
void signedIndexHistogram(const uint8_t *idx, const int8_t *th,
                          size_t n, int32_t *hist);

// ---- fused comparator-ladder encode (activation quantizer) ----------
//
// The vectorized model of the Fig. 7 output-activation quantizer:
// normalize a float row to sigma units, run the branchless
// nearest-centroid select over the sorted magnitude ladder, and write
// the code planes directly — no intermediate code tensor. Every
// decision is an exact double comparison (the division is the single
// correctly-rounded IEEE op), so the AVX-512 / AVX2 / generic bodies
// produce bit-identical planes on every ISA and, like the histogram
// kernels, dispatch at runtime via __builtin_cpu_supports (no ifunc,
// sanitizer-safe).

/**
 * Encode one row of @p n floats against a Gaussian magnitude ladder.
 *
 * Per element v (promoted to double):
 *  - outlier when |v - mean| > cut: the element's planes get the
 *    zero-index/zero-sign/zero-magnitude convention (idx 0, theta 0,
 *    mag 0.0) and only the count is reported — the caller resolves
 *    the outlier-dictionary code in its sidecar pass;
 *  - otherwise u = (v - mean) / scale, theta = sign, and the index is
 *    the nearest entry of @p mags to |u|, ties to the lower index —
 *    bit-identical to ExpDictionary::nearestIndex() because every
 *    boundary evaluates the exact scalar tie expression
 *    (|u| - mags[i-1] > mags[i] - |u|).
 *
 * @param src   the float row
 * @param n     elements in the row
 * @param mags  ascending magnitudes, padded to 8 entries (unused
 *              tail arbitrary); @p h in [1, 8] real entries
 * @param mean  dictionary mean
 * @param scale dictionary scale (> 0)
 * @param cut   outlier threshold on |v - mean|; pass +infinity when
 *              the dictionary has no outlier table
 * @param idx   uint8 index plane row, or nullptr to skip
 * @param theta int8 +1/-1 sign plane row, or nullptr to skip
 * @param mag   double signed-magnitude plane row, or nullptr to skip
 * @return number of outlier elements in the row
 */
size_t encodeLadder(const float *src, size_t n, const double *mags,
                    size_t h, double mean, double scale, double cut,
                    uint8_t *idx, int8_t *theta, double *mag);

} // namespace mokey

#endif // MOKEY_COMMON_SIMD_HH
