/**
 * @file
 * Vectorized dot-product primitives shared by the hot kernels.
 *
 * Each function carries GCC target_clones, so the binary ships
 * generic, AVX2+FMA, and AVX-512 variants and the dynamic linker
 * picks one per process at startup. Within a process the chosen
 * variant — and therefore the exact FP rounding — is fixed, which is
 * what lets the GEMM engines promise bit-identical results across
 * thread counts and tilings.
 *
 * Lane structure (and thus arithmetic order) is written out
 * explicitly: 16 independent accumulators reduced in a fixed tree.
 * The result is a pure function of the inputs and the selected ISA.
 */

#ifndef MOKEY_COMMON_SIMD_HH
#define MOKEY_COMMON_SIMD_HH

#include <cstddef>

namespace mokey
{

/** Sum of x[i]*y[i] over doubles, 16-lane fixed-tree reduction. */
double dotDD(const double *x, const double *y, size_t n);

/** Sum of x[i]*y[i] over floats, accumulated in double. */
double dotFD(const float *x, const float *y, size_t n);

/**
 * Two dot products sharing one x stream: r0 = x . y0, r1 = x . y1.
 * The column pairing halves x loads/converts in GEMM inner loops.
 * Uses its own (8-lane) accumulation order — deterministic, but not
 * bit-matched to dotFD(); callers must route a given output through
 * the same function on every run.
 */
void dotFD2(const float *x, const float *y0, const float *y1,
            size_t n, double *r0, double *r1);

} // namespace mokey

#endif // MOKEY_COMMON_SIMD_HH
