/**
 * @file
 * Tiny shared helpers for environment-variable knobs, so every knob
 * parses the same way (case-insensitive, fatal on junk) instead of
 * each site growing its own getenv/tolower/fatal block.
 */

#ifndef MOKEY_COMMON_ENV_HH
#define MOKEY_COMMON_ENV_HH

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace mokey
{

/** Lowercased value of @p name; empty when unset or empty. */
inline std::string
lowercasedEnv(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return {};
    std::string s(env);
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/**
 * Boolean env knob: unset/empty -> @p fallback; 1/on/true and
 * 0/off/false (any case) select; anything else is a fatal config
 * error naming the variable.
 */
inline bool
envFlag(const char *name, bool fallback)
{
    const std::string s = lowercasedEnv(name);
    if (s.empty())
        return fallback;
    if (s == "1" || s == "on" || s == "true")
        return true;
    if (s == "0" || s == "off" || s == "false")
        return false;
    fatal("%s must be 0/off or 1/on, got '%s'", name, s.c_str());
}

/**
 * Positive-integer env knob: unset/empty -> @p fallback; a positive
 * decimal integer selects; anything else is a fatal config error
 * naming the variable.
 */
inline size_t
envSize(const char *name, size_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        fatal("%s must be a positive integer, got '%s'", name, env);
    return static_cast<size_t>(v);
}

} // namespace mokey

#endif // MOKEY_COMMON_ENV_HH
