/**
 * @file
 * Streaming statistics and histograms.
 *
 * Mokey's per-tensor dictionary fit needs only the mean and standard
 * deviation of each tensor (paper §II-C); outlier selection needs tail
 * quantiles. RunningStats provides numerically stable single-pass
 * moments (Welford); Histogram backs the figures and the profiler.
 */

#ifndef MOKEY_COMMON_STATS_HH
#define MOKEY_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace mokey
{

/** Single-pass mean/variance/extrema accumulator (Welford). */
class RunningStats
{
  public:
    RunningStats();

    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Fold a whole range of observations. */
    void addAll(const std::vector<float> &xs);

    /** Merge another accumulator (parallel Welford combine). */
    void merge(const RunningStats &other);

    /** Number of observations folded so far. */
    size_t count() const { return n; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Population variance; 0 with fewer than two observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return minV; }

    /** Largest observation; -inf when empty. */
    double max() const { return maxV; }

  private:
    size_t n;
    double m;
    double m2;
    double minV;
    double maxV;
};

/** Exact quantile of a copy of the data (q in [0, 1], linear interp). */
double quantile(std::vector<float> values, double q);

/** Fixed-width histogram over [lo, hi] with out-of-range clamping. */
class Histogram
{
  public:
    /**
     * @param lo   low edge of the first bin
     * @param hi   high edge of the last bin (must exceed @p lo)
     * @param bins number of bins (must be positive)
     */
    Histogram(double lo, double hi, size_t bins);

    /** Record one observation (clamped into range). */
    void add(double x);

    /** Count in bin @p i. */
    size_t binCount(size_t i) const { return counts.at(i); }

    /** Center value of bin @p i. */
    double binCenter(size_t i) const;

    /** Number of bins. */
    size_t size() const { return counts.size(); }

    /** Total number of recorded observations. */
    size_t total() const { return totalN; }

  private:
    double lo;
    double hi;
    std::vector<size_t> counts;
    size_t totalN;
};

} // namespace mokey

#endif // MOKEY_COMMON_STATS_HH
