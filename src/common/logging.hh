/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a Mokey bug); aborts.
 * fatal()  — the user asked for something impossible (bad config);
 *            exits with an error code.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef MOKEY_COMMON_LOGGING_HH
#define MOKEY_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mokey
{

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...);

/** Print a formatted status message to stderr. */
void inform(const char *fmt, ...);

/**
 * Assert an internal invariant with a formatted explanation.
 * Compiled in all build types — simulator correctness depends on it.
 */
#define MOKEY_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond))                                                     \
            ::mokey::panic("assertion '%s' failed: " __VA_ARGS__, #cond);\
    } while (0)

} // namespace mokey

#endif // MOKEY_COMMON_LOGGING_HH
