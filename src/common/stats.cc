#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mokey
{

RunningStats::RunningStats()
    : n(0), m(0.0), m2(0.0),
      minV(std::numeric_limits<double>::infinity()),
      maxV(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::add(double x)
{
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    minV = std::min(minV, x);
    maxV = std::max(maxV, x);
}

void
RunningStats::addAll(const std::vector<float> &xs)
{
    for (float x : xs)
        add(x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.m - m;
    const size_t total = n + other.n;
    m2 += other.m2 +
        delta * delta * static_cast<double>(n) *
        static_cast<double>(other.n) / static_cast<double>(total);
    m += delta * static_cast<double>(other.n) /
        static_cast<double>(total);
    n = total;
    minV = std::min(minV, other.minV);
    maxV = std::max(maxV, other.maxV);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<float> values, double q)
{
    MOKEY_ASSERT(!values.empty(), "quantile of an empty set");
    MOKEY_ASSERT(q >= 0.0 && q <= 1.0, "quantile q=%f out of range", q);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo_, double hi_, size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0), totalN(0)
{
    MOKEY_ASSERT(bins > 0, "histogram needs at least one bin");
    MOKEY_ASSERT(hi > lo, "histogram range is empty");
}

void
Histogram::add(double x)
{
    const double t = (x - lo) / (hi - lo);
    auto bin = static_cast<long>(t * static_cast<double>(counts.size()));
    bin = std::clamp(bin, 0l, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<size_t>(bin)];
    ++totalN;
}

double
Histogram::binCenter(size_t i) const
{
    const double w = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * w;
}

} // namespace mokey
