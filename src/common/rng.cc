#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace mokey
{

namespace
{

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
    : cachedGaussian(0.0), hasCachedGaussian(false)
{
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 significant bits, uniform in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    MOKEY_ASSERT(n > 0, "uniformInt over an empty range");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<float>
Rng::gaussianVector(size_t n, double mean, double stddev)
{
    std::vector<float> out(n);
    for (auto &v : out)
        v = static_cast<float>(gaussian(mean, stddev));
    return out;
}

} // namespace mokey
