/**
 * @file
 * Shared-memory parallelism substrate for the compute kernels.
 *
 * One process-wide thread pool executes parallelFor() loops. Design
 * constraints, in priority order:
 *
 *  1. *Determinism.* Results must be bit-identical for any thread
 *     count. The pool therefore only hands out disjoint, contiguous
 *     chunks of the iteration space whose boundaries depend on the
 *     range and grain alone — never on timing. Callers keep each
 *     output element's computation entirely inside one iteration.
 *  2. *Nesting safety.* A parallelFor() issued from inside a worker
 *     runs inline (serially) instead of deadlocking the pool — outer
 *     loops parallelize, inner loops degrade gracefully.
 *  3. *Cheap small loops.* Ranges below the grain threshold (or a
 *     1-thread pool) bypass the pool entirely, so per-call overhead
 *     stays out of microsecond-scale kernels.
 *
 * Thread count defaults to std::thread::hardware_concurrency() and
 * can be overridden by the MOKEY_THREADS environment variable or
 * setThreadCount() (tests use the latter to sweep 1/2/N).
 */

#ifndef MOKEY_COMMON_PARALLEL_HH
#define MOKEY_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace mokey
{

/** Body signature for chunked loops: process indexes [lo, hi). */
using RangeBody = std::function<void(size_t lo, size_t hi)>;

/** Number of threads the pool currently runs (>= 1). */
size_t threadCount();

/**
 * Resize the pool to exactly @p n threads (clamped to >= 1).
 * Blocks until no loop is in flight; intended for startup and tests.
 */
void setThreadCount(size_t n);

/**
 * Run @p body over [begin, end) split into contiguous chunks.
 *
 * Chunk boundaries are a pure function of (range, grain, thread
 * count); which worker executes which chunk is unspecified, so the
 * body must only write state owned by its own indexes.
 *
 * @param begin first index
 * @param end   one past the last index
 * @param grain minimum indexes per chunk (>= 1); ranges not larger
 *              than @p grain run inline on the calling thread
 * @param body  chunk handler, called as body(lo, hi)
 */
void parallelForRange(size_t begin, size_t end, size_t grain,
                      const RangeBody &body);

/** Per-index convenience wrapper over parallelForRange(). */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t i)> &body);

} // namespace mokey

#endif // MOKEY_COMMON_PARALLEL_HH
