/**
 * @file
 * Shared-memory parallelism substrate: a multi-lane work-sharing
 * executor.
 *
 * One process-wide worker set services several *lanes*. Each lane is
 * an independent submission queue: a top-level parallelFor() tagged
 * with a Lane publishes its loop into that lane's job slot, and every
 * worker round-robins chunks across all lanes with active jobs — so N
 * concurrent callers (one per batch lane in the serving engine) make
 * progress simultaneously instead of serializing on a single FIFO.
 * Loops submitted to the *same* lane still run one at a time, in
 * submission order, which keeps each lane's view of the pool exactly
 * what the single-lane design provided.
 *
 * On top of the shared worker set sits *work stealing* (on by
 * default, see setLaneStealing): jobs hand out chunks from both ends
 * of their range, workers stay affine to one lane and front-claim its
 * chunks in order, and a thread with nothing left on its own lane
 * back-claims ("steals") chunks from the tail of the busiest other
 * active lane — including the lane *owner* while it waits for its
 * final chunks to retire elsewhere, so imbalanced lanes donate work
 * instead of idling. Per-lane steals/donated counters surface in
 * laneStats().
 *
 * Design constraints, in priority order:
 *
 *  1. *Determinism.* Results must be bit-identical for any thread
 *     count and any lane assignment. Chunk boundaries are a pure
 *     function of (range, grain, thread count) — never of timing or
 *     lanes. Only *which* worker executes a chunk, and how chunks of
 *     concurrent lanes interleave in time, is timing-dependent.
 *     Callers keep each output element's computation entirely inside
 *     one iteration.
 *  2. *Nesting safety.* A parallelFor() issued from inside a worker
 *     (or from a lane owner draining its own loop) runs inline
 *     instead of deadlocking the pool — outer loops parallelize,
 *     inner loops degrade gracefully.
 *  3. *Cheap dispatch.* Ranges below the grain threshold (or a
 *     1-thread pool) bypass the executor entirely. A submitted loop
 *     completes as soon as its iterations have all *executed* — the
 *     owner drains its own lane and never waits for worker wake-up
 *     acknowledgements, so small-loop dispatch stays cheap even when
 *     workers are parked.
 *
 * Thread count defaults to std::thread::hardware_concurrency() and
 * can be overridden by the MOKEY_THREADS environment variable or
 * setThreadCount() (tests use the latter to sweep 1/2/N). Workers
 * normally park on a condition variable when idle; persistent-wave
 * mode (setWaveSpin() / MOKEY_WAVE_US) makes them spin briefly first,
 * which trades idle CPU for lower chunk pick-up latency in
 * many-small-loop patterns.
 */

#ifndef MOKEY_COMMON_PARALLEL_HH
#define MOKEY_COMMON_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mokey
{

/** Body signature for chunked loops: process indexes [lo, hi). */
using RangeBody = std::function<void(size_t lo, size_t hi)>;

/** Number of executor lanes (lane 0 is the shared default lane). */
constexpr size_t kLaneCount = 16;

/**
 * Handle to one executor lane. Value type: copy freely, pass by
 * value. The default-constructed Lane is the shared lane 0 that all
 * untagged loops use — callers that never touch lanes get exactly
 * the old single-queue behaviour. Components that want their own
 * lane (one per scheduler dispatcher, say) take one via acquire().
 */
class Lane
{
  public:
    /** The shared default lane (id 0). */
    Lane() = default;

    /**
     * Hand out a lane in round-robin order over lanes 1..kLaneCount-1
     * (never the shared default lane). Successive acquires within a
     * window of kLaneCount-1 calls are pairwise distinct, so up to 15
     * concurrent components get private lanes before any sharing
     * starts. Sharing a lane is safe — same-lane loops serialize.
     */
    static Lane acquire();

    /** Deterministic lane for index @p i: 1 + i % (kLaneCount - 1). */
    static Lane ofIndex(size_t i);

    size_t id() const { return id_; }
    bool operator==(const Lane &o) const { return id_ == o.id_; }

  private:
    explicit Lane(size_t id) : id_(id) {}
    size_t id_ = 0;
};

/** Cumulative per-lane counters (monotonic; snapshot via laneStats). */
struct LaneStats
{
    uint64_t loops = 0;  ///< top-level loops submitted to the lane
    uint64_t chunks = 0; ///< chunks executed on behalf of the lane
    uint64_t steals = 0; ///< chunks this lane's threads stole elsewhere
    uint64_t donated = 0; ///< chunks of this lane's jobs taken by thieves
};

/** Snapshot of @p lane's counters. */
LaneStats laneStats(Lane lane);

/**
 * Work-stealing knob. When on (the default; MOKEY_STEAL overrides), a
 * worker that has drained its own lane's queue steals whole chunks
 * from the *tail* of the busiest other active lane instead of
 * round-robin sharing, and a lane owner whose range is fully claimed
 * but not yet finished assists other lanes instead of idling. Chunk
 * boundaries stay a pure function of (range, grain, thread count), so
 * results are bit-identical with stealing on or off — only the
 * chunk→thread assignment changes. Off restores the PR 3 round-robin
 * work-sharing schedule exactly.
 */
void setLaneStealing(bool on);

/** Current work-stealing setting. */
bool laneStealing();

/** Number of threads the pool currently runs (>= 1). */
size_t threadCount();

/**
 * Resize the pool to exactly @p n threads (clamped to >= 1).
 * Blocks until no loop is in flight on any lane; intended for
 * startup and tests.
 */
void setThreadCount(size_t n);

/**
 * Persistent-wave knob: idle workers spin for @p micros microseconds
 * looking for new lane jobs before parking on the condition variable.
 * 0 (the default) parks immediately. Initialized from MOKEY_WAVE_US.
 */
void setWaveSpin(size_t micros);

/** Current wave-spin window in microseconds. */
size_t waveSpin();

/**
 * Run @p body over [begin, end) split into contiguous chunks, on the
 * shared default lane.
 *
 * Chunk boundaries are a pure function of (range, grain, thread
 * count); which worker executes which chunk is unspecified, so the
 * body must only write state owned by its own indexes.
 *
 * @param begin first index
 * @param end   one past the last index
 * @param grain minimum indexes per chunk (>= 1); ranges not larger
 *              than @p grain run inline on the calling thread
 * @param body  chunk handler, called as body(lo, hi)
 */
void parallelForRange(size_t begin, size_t end, size_t grain,
                      const RangeBody &body);

/**
 * Lane-tagged variant: the loop occupies @p lane, runs concurrently
 * with loops on other lanes, and serializes (FIFO) with loops on the
 * same lane. Results are bit-identical to the default-lane variant.
 */
void parallelForRange(Lane lane, size_t begin, size_t end, size_t grain,
                      const RangeBody &body);

/** Per-index convenience wrapper over parallelForRange(). */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t i)> &body);

/** Lane-tagged per-index wrapper. */
void parallelFor(Lane lane, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t i)> &body);

} // namespace mokey

#endif // MOKEY_COMMON_PARALLEL_HH
