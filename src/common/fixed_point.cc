#include "common/fixed_point.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mokey
{

FixedFormat
FixedFormat::forRange(int total_bits, double min_v, double max_v)
{
    MOKEY_ASSERT(total_bits >= 2 && total_bits <= 62,
                 "unsupported fixed-point width %d", total_bits);
    MOKEY_ASSERT(max_v >= min_v, "inverted range");
    double span = max_v - min_v;
    if (span <= 0.0)
        span = 1e-12;
    // Eq. 7: frac = b - ceil(log2(max - min)).
    const int int_bits =
        static_cast<int>(std::ceil(std::log2(span)));
    int frac = total_bits - int_bits;
    // Keep at least one fractional bit meaningful and never exceed
    // what the mantissa of the incoming double can use.
    frac = std::clamp(frac, -62, 62);
    return FixedFormat{total_bits, frac};
}

double
FixedFormat::maxValue() const
{
    return static_cast<double>(rawMax()) * resolution();
}

double
FixedFormat::minValue() const
{
    return static_cast<double>(rawMin()) * resolution();
}

double
FixedFormat::resolution() const
{
    return std::ldexp(1.0, -fracBits);
}

int64_t
FixedFormat::rawMax() const
{
    return (int64_t{1} << (totalBits - 1)) - 1;
}

int64_t
FixedFormat::rawMin() const
{
    return -(int64_t{1} << (totalBits - 1));
}

int64_t
toFixedRaw(double v, const FixedFormat &fmt)
{
    const double scaled = std::ldexp(v, fmt.fracBits);
    const double rounded = std::nearbyint(scaled);
    const auto lo = static_cast<double>(fmt.rawMin());
    const auto hi = static_cast<double>(fmt.rawMax());
    return static_cast<int64_t>(std::clamp(rounded, lo, hi));
}

double
fromFixedRaw(int64_t raw, const FixedFormat &fmt)
{
    return std::ldexp(static_cast<double>(raw), -fmt.fracBits);
}

double
quantizeToFixed(double v, const FixedFormat &fmt)
{
    return fromFixedRaw(toFixedRaw(v, fmt), fmt);
}

namespace
{

int64_t
saturate(int64_t v, const FixedFormat &fmt)
{
    return std::clamp(v, fmt.rawMin(), fmt.rawMax());
}

} // anonymous namespace

int64_t
roundShift(int64_t v, int shift)
{
    if (shift <= 0) {
        // Two's-complement left shift via uint64_t: shifting a
        // negative int64_t is UB even when the result fits.
        return static_cast<int64_t>(static_cast<uint64_t>(v)
                                    << (-shift));
    }
    const int64_t half = int64_t{1} << (shift - 1);
    return (v + (v >= 0 ? half : half - 1)) >> shift;
}

int64_t
fixedMul(int64_t a, const FixedFormat &fa,
         int64_t b, const FixedFormat &fb,
         const FixedFormat &fout)
{
    // Product carries fa.frac + fb.frac fractional bits.
    const int64_t prod = a * b;
    const int shift = fa.fracBits + fb.fracBits - fout.fracBits;
    return saturate(roundShift(prod, shift), fout);
}

int64_t
fixedRescale(int64_t raw, const FixedFormat &from, const FixedFormat &to)
{
    return saturate(roundShift(raw, from.fracBits - to.fracBits), to);
}

} // namespace mokey
