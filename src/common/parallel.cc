#include "common/parallel.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/watchdog.hh"

namespace mokey
{

namespace
{

/** True while the current thread is executing executor work. */
thread_local bool in_worker = false;

/**
 * One in-flight loop. Heap-allocated per top-level submission and
 * held by shared_ptr: workers keep draining a snapshot safely even
 * while the lane moves on to its next loop, because an exhausted
 * job's claim word simply stops handing out chunks. The body pointer
 * is only dereferenced after a successful chunk claim, and a claim
 * can only succeed while the owner is still blocked in run() — so the
 * caller-owned closure is always alive when called.
 *
 * The range is pre-split into nChunks fixed chunks (chunk i covers
 * [begin + i*chunk, min(begin + (i+1)*chunk, end))) and claimed from
 * *both ends* through one packed CAS word: the low 32 bits count
 * front-claimed chunks (the next front chunk's index), the high 32
 * bits count back-claimed chunks (the next back chunk is
 * nChunks-1-tail). Owners and lane-affine workers walk the front in
 * order; thieves take from the tail, so a steal never contends with
 * the owner's next claim and the two walks meet exactly once. Chunk
 * boundaries stay a pure function of (range, grain, thread count) —
 * stealing only changes which thread runs a chunk, never its bounds.
 */
struct Job
{
    const RangeBody *body = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t chunk = 1;
    size_t lane = 0;
    uint32_t nChunks = 0;
    std::atomic<uint64_t> claim{0};   ///< lo32 front count, hi32 back count
    std::atomic<size_t> remaining{0}; ///< iterations not yet executed
    bool done = false;                ///< guarded by Executor::mu
};

/** Chunks of @p j not yet claimed from either end. */
inline uint32_t
unclaimedChunks(const Job &j)
{
    const uint64_t c = j.claim.load(std::memory_order_relaxed);
    const uint32_t taken =
        static_cast<uint32_t>(c) + static_cast<uint32_t>(c >> 32);
    return taken >= j.nChunks ? 0 : j.nChunks - taken;
}

/**
 * Claim one chunk of @p job from the front (owner / affine worker)
 * or the back (thief). Returns false once every chunk is claimed.
 */
inline bool
claimChunk(Job &job, bool front, size_t &lo, size_t &hi)
{
    uint64_t c = job.claim.load(std::memory_order_relaxed);
    for (;;) {
        const uint32_t head = static_cast<uint32_t>(c);
        const uint32_t tail = static_cast<uint32_t>(c >> 32);
        if (head + tail >= job.nChunks)
            return false;
        const uint64_t next =
            front ? c + 1 : c + (uint64_t(1) << 32);
        if (job.claim.compare_exchange_weak(
                c, next, std::memory_order_relaxed)) {
            const uint32_t idx =
                front ? head : job.nChunks - 1 - tail;
            lo = job.begin + static_cast<size_t>(idx) * job.chunk;
            hi = std::min(lo + job.chunk, job.end);
            return true;
        }
    }
}

/**
 * The process-wide multi-lane executor. Each lane owns a submit
 * mutex (serializing same-lane loops) and a job slot; one shared
 * worker set round-robins chunks across every active slot. Chunks
 * are claimed with per-job atomic cursors, so load balances while
 * chunk *boundaries* stay deterministic.
 */
class Executor
{
  public:
    static Executor &global()
    {
        static Executor exec;
        return exec;
    }

    /**
     * Lock-free thread count for the dispatch hot path (the mirror
     * only changes inside resize(), which excludes in-flight loops
     * by holding every submit mutex).
     */
    size_t threads()
    {
        return threadsAtomic.load(std::memory_order_relaxed);
    }

    void resize(size_t n)
    {
        if (n < 1)
            n = 1;
        // Take every lane's submit mutex (in index order — submitters
        // only ever hold one, so there is no ordering cycle): with all
        // of them held, no loop is in flight anywhere.
        for (auto &l : lanes)
            l.submit_mu.lock();
        stopWorkers();
        {
            std::lock_guard<std::mutex> lk(mu);
            spawnLocked(n - 1);
        }
        for (size_t i = lanes.size(); i-- > 0;)
            lanes[i].submit_mu.unlock();
    }

    void run(size_t lane, size_t begin, size_t end, size_t chunk,
             const RangeBody &body)
    {
        LaneState &ls = lanes[lane];
        // Same-lane loops run one at a time, in submission order.
        std::lock_guard<std::mutex> lane_lk(ls.submit_mu);

        auto job = std::make_shared<Job>();
        job->body = &body;
        job->begin = begin;
        job->end = end;
        job->chunk = chunk;
        job->lane = lane;
        job->nChunks = static_cast<uint32_t>(
            (end - begin + chunk - 1) / chunk);
        job->remaining.store(end - begin, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(mu);
            ls.job = job;
            ++activeJobs;
            activeAtomic.store(activeJobs, std::memory_order_relaxed);
        }
        ls.loops.fetch_add(1, std::memory_order_relaxed);
        cv_work.notify_all();

        // The owner drains its own lane. It must count as a worker
        // while it does: a nested parallelFor() issued from inside
        // its chunk must degrade to inline execution. Crucially the
        // loop is complete as soon as remaining hits zero — if the
        // owner claims every chunk before a parked worker wakes, it
        // returns without waiting for any worker acknowledgement.
        in_worker = true;
        while (runOneChunk(*job, /*front=*/true)) {
        }
        // Owner assist: the range is fully claimed but other threads
        // may still be crunching our final chunks. With stealing on,
        // spend that window back-claiming chunks from the busiest
        // other active lane instead of idling in cv_done — this is
        // the "imbalanced lanes donate instead of idling" path. The
        // assist ends the moment our own job retires.
        if (stealing()) {
            while (job->remaining.load(std::memory_order_relaxed) >
                   0) {
                const std::shared_ptr<Job> victim =
                    busiestOtherJob(lane);
                if (!victim)
                    break;
                if (runOneChunk(*victim, /*front=*/false))
                    countSteal(lane, victim->lane);
            }
        }
        in_worker = false;

        std::unique_lock<std::mutex> lk(mu);
        cv_done.wait(lk, [&] { return job->done; });
    }

    void setSpin(size_t micros)
    {
        spinMicros.store(micros, std::memory_order_relaxed);
    }

    size_t spin() const
    {
        return spinMicros.load(std::memory_order_relaxed);
    }

    LaneStats stats(size_t lane)
    {
        LaneStats s;
        s.loops = lanes[lane].loops.load(std::memory_order_relaxed);
        s.chunks = lanes[lane].chunks.load(std::memory_order_relaxed);
        s.steals =
            lanes[lane].steals.load(std::memory_order_relaxed);
        s.donated =
            lanes[lane].donated.load(std::memory_order_relaxed);
        return s;
    }

    void setStealing(bool on)
    {
        stealAtomic.store(on, std::memory_order_relaxed);
    }

    bool stealing() const
    {
        return stealAtomic.load(std::memory_order_relaxed);
    }

  private:
    struct LaneState
    {
        std::mutex submit_mu; ///< serializes same-lane submitters
        std::shared_ptr<Job> job; ///< guarded by Executor::mu
        std::atomic<uint64_t> loops{0};
        std::atomic<uint64_t> chunks{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> donated{0};
    };

    Executor()
    {
        size_t n = std::thread::hardware_concurrency();
        if (const char *env = std::getenv("MOKEY_THREADS")) {
            const long v = std::atol(env);
            if (v >= 1)
                n = static_cast<size_t>(v);
            else
                warn("ignoring invalid MOKEY_THREADS='%s'", env);
        }
        if (n < 1)
            n = 1;
        if (const char *env = std::getenv("MOKEY_WAVE_US")) {
            const long v = std::atol(env);
            if (v >= 0)
                spinMicros.store(static_cast<size_t>(v),
                                 std::memory_order_relaxed);
            else
                warn("ignoring invalid MOKEY_WAVE_US='%s'", env);
        }
        stealAtomic.store(envFlag("MOKEY_STEAL", true),
                          std::memory_order_relaxed);
        // Construct the watchdog singleton before any worker exists:
        // static destruction then tears the Executor (and its worker
        // Task handles) down first, so no worker ever touches a dead
        // Watchdog.
        Watchdog::instance();
        std::lock_guard<std::mutex> lk(mu);
        spawnLocked(n - 1);
    }

    ~Executor() { stopWorkers(); }

    void spawnLocked(size_t n)
    {
        workers.reserve(n);
        for (size_t t = 0; t < n; ++t)
            workers.emplace_back([this] { workerLoop(); });
        threadsAtomic.store(n + 1, std::memory_order_relaxed);
    }

    void stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
            stoppingAtomic.store(true, std::memory_order_relaxed);
        }
        cv_work.notify_all();
        for (auto &w : workers)
            w.join();
        std::lock_guard<std::mutex> lk(mu);
        workers.clear();
        stopping = false;
        stoppingAtomic.store(false, std::memory_order_relaxed);
    }

    /**
     * Claim and execute one chunk of @p job from the given end.
     * Returns false once the job's range is fully claimed (safe to
     * call on a stale job: the claim word just reports exhaustion and
     * the body is never touched).
     */
    bool runOneChunk(Job &job, bool front)
    {
        size_t lo, hi;
        if (!claimChunk(job, front, lo, hi))
            return false;
        (*job.body)(lo, hi);
        lanes[job.lane].chunks.fetch_add(1, std::memory_order_relaxed);
        // acq_rel: the finisher that observes zero must also observe
        // every other chunk's writes, so the owner (woken under mu)
        // sees the loop's complete output.
        const size_t left =
            job.remaining.fetch_sub(hi - lo,
                                    std::memory_order_acq_rel) -
            (hi - lo);
        if (left == 0)
            finishJob(job);
        return true;
    }

    /** Attribute one stolen chunk: @p thief took it for its own lane
     *  from @p victim's job. */
    void countSteal(size_t thief, size_t victim)
    {
        lanes[thief].steals.fetch_add(1, std::memory_order_relaxed);
        lanes[victim].donated.fetch_add(1,
                                        std::memory_order_relaxed);
    }

    /**
     * The active job (excluding @p lane's) with the most unclaimed
     * work, or null when every other lane is drained. Takes mu only
     * for the slot scan; the returned shared_ptr keeps the job alive
     * past the lock.
     */
    std::shared_ptr<Job> busiestOtherJob(size_t lane)
    {
        std::lock_guard<std::mutex> lk(mu);
        std::shared_ptr<Job> best;
        size_t bestWork = 0;
        for (const auto &l : lanes) {
            if (!l.job || l.job->lane == lane)
                continue;
            const size_t work =
                static_cast<size_t>(unclaimedChunks(*l.job)) *
                l.job->chunk;
            if (work > bestWork) {
                bestWork = work;
                best = l.job;
            }
        }
        return best;
    }

    /** Last chunk of @p job executed: retire it and wake its owner. */
    void finishJob(Job &job)
    {
        std::lock_guard<std::mutex> lk(mu);
        job.done = true;
        LaneState &ls = lanes[job.lane];
        if (ls.job.get() == &job)
            ls.job.reset();
        --activeJobs;
        activeAtomic.store(activeJobs, std::memory_order_relaxed);
        cv_done.notify_all();
    }

    /**
     * A lane has work this worker could claim (call with mu held).
     * An exhausted-but-unfinished job (last chunks still running on
     * other threads) is NOT claimable: cursors only advance, so a
     * worker that finds nothing claimable can park — the threads
     * holding the final chunks retire the job themselves.
     */
    bool claimableLocked() const
    {
        for (const auto &l : lanes)
            if (l.job && unclaimedChunks(*l.job) > 0)
                return true;
        return false;
    }

    /**
     * Stealing-off schedule: one chunk per lane per pass,
     * round-robin, so concurrent lanes interleave fairly instead of
     * FIFO-starving. This is the frozen PR 3 behaviour the
     * determinism tests compare stealing against.
     */
    void drainShared(std::array<std::shared_ptr<Job>, kLaneCount> &snap,
                     size_t n, Watchdog::Task &wdt)
    {
        // A false return means the job is exhausted for good — drop
        // it so later passes stop hammering its dead claim word.
        size_t live = n;
        while (live > 0) {
            wdt.beat();
            for (size_t i = 0; i < n; ++i) {
                if (snap[i] &&
                    !runOneChunk(*snap[i], /*front=*/true)) {
                    snap[i].reset();
                    --live;
                }
            }
        }
    }

    /**
     * Stealing-on schedule: stay affine to one home lane and walk its
     * chunks front-to-back (cache-friendly, contention-free against
     * thieves); once home is drained, back-claim from the busiest
     * remaining lane in the snapshot, counting each chunk as a
     * steal. The worker re-homes to its last victim at the end of the
     * pass, so a migration pays steal accounting once and then
     * becomes an affine front-walker on its new lane.
     */
    void drainStealing(
        std::array<std::shared_ptr<Job>, kLaneCount> &snap, size_t n,
        size_t &home, Watchdog::Task &wdt)
    {
        auto homeEntry = [&]() -> std::shared_ptr<Job> * {
            for (size_t i = 0; i < n; ++i)
                if (snap[i] && snap[i]->lane == home)
                    return &snap[i];
            return nullptr;
        };
        // A worker with no home yet adopts the busiest lane outright
        // — adoption is not a steal. (A worker whose home lane is
        // merely inactive this pass keeps it: its steals below are
        // attributed to the lane it last worked for.)
        if (home == kLaneCount) {
            size_t bestWork = 0;
            for (size_t i = 0; i < n; ++i) {
                if (!snap[i])
                    continue;
                const size_t work =
                    static_cast<size_t>(unclaimedChunks(*snap[i])) *
                    snap[i]->chunk;
                if (work >= bestWork) {
                    bestWork = work;
                    home = snap[i]->lane;
                }
            }
        }
        size_t lastVictim = kLaneCount;
        bool frontClaimed = false;
        for (;;) {
            wdt.beat();
            if (std::shared_ptr<Job> *he = homeEntry()) {
                if (runOneChunk(**he, /*front=*/true)) {
                    frontClaimed = true;
                    continue;
                }
                he->reset();
            }
            // Home drained: steal from the tail of the busiest
            // remaining lane in this pass's snapshot.
            std::shared_ptr<Job> *victim = nullptr;
            size_t bestWork = 0;
            for (size_t i = 0; i < n; ++i) {
                if (!snap[i])
                    continue;
                const size_t work =
                    static_cast<size_t>(unclaimedChunks(*snap[i])) *
                    snap[i]->chunk;
                if (work >= bestWork) {
                    bestWork = work;
                    victim = &snap[i];
                }
            }
            if (victim == nullptr)
                break;
            if (runOneChunk(**victim, /*front=*/false)) {
                countSteal(home, (*victim)->lane);
                lastVictim = (*victim)->lane;
            } else {
                victim->reset();
            }
        }
        if (!frontClaimed && lastVictim != kLaneCount)
            home = lastVictim;
    }

    void workerLoop()
    {
        in_worker = true;
        Watchdog::Task wdt =
            Watchdog::instance().monitor("executor-worker");
        // Sticky lane affinity for the stealing schedule; kLaneCount
        // means "no home yet".
        size_t home = kLaneCount;
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            wdt.idle();
            cv_work.wait(lk, [this] {
                return stopping || claimableLocked();
            });
            wdt.beat();
            if (stopping)
                return;

            // Snapshot the claimable slots, then drain them without
            // the lock.
            std::array<std::shared_ptr<Job>, kLaneCount> snap;
            size_t n = 0;
            for (auto &l : lanes)
                if (l.job && unclaimedChunks(*l.job) > 0)
                    snap[n++] = l.job;
            if (n > 0) {
                lk.unlock();
                if (stealing())
                    drainStealing(snap, n, home, wdt);
                else
                    drainShared(snap, n, wdt);
                lk.lock();
            }

            // Persistent-wave: spin briefly for the next loop before
            // parking, trading idle CPU for pick-up latency in
            // many-small-loop phases.
            const size_t spin_us = spin();
            if (spin_us > 0) {
                lk.unlock();
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::microseconds(spin_us);
                while (activeAtomic.load(std::memory_order_relaxed) ==
                           0 &&
                       !stoppingAtomic.load(
                           std::memory_order_relaxed) &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::yield();
                lk.lock();
            }
        }
    }

    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::vector<std::thread> workers;
    std::array<LaneState, kLaneCount> lanes;

    size_t activeJobs = 0;              ///< guarded by mu
    std::atomic<size_t> activeAtomic{0}; ///< lock-free mirror for spins
    std::atomic<size_t> threadsAtomic{1}; ///< workers + caller
    bool stopping = false;              ///< guarded by mu
    std::atomic<bool> stoppingAtomic{false};
    std::atomic<size_t> spinMicros{0};
    std::atomic<bool> stealAtomic{true};
};

} // anonymous namespace

Lane
Lane::acquire()
{
    static std::atomic<size_t> next{0};
    return Lane(1 + next.fetch_add(1, std::memory_order_relaxed) %
                        (kLaneCount - 1));
}

Lane
Lane::ofIndex(size_t i)
{
    return Lane(1 + i % (kLaneCount - 1));
}

LaneStats
laneStats(Lane lane)
{
    return Executor::global().stats(lane.id());
}

size_t
threadCount()
{
    return Executor::global().threads();
}

void
setThreadCount(size_t n)
{
    MOKEY_ASSERT(!in_worker,
                 "setThreadCount() from inside the executor");
    Executor::global().resize(n);
}

void
setWaveSpin(size_t micros)
{
    Executor::global().setSpin(micros);
}

void
setLaneStealing(bool on)
{
    Executor::global().setStealing(on);
}

bool
laneStealing()
{
    return Executor::global().stealing();
}

size_t
waveSpin()
{
    return Executor::global().spin();
}

void
parallelForRange(Lane lane, size_t begin, size_t end, size_t grain,
                 const RangeBody &body)
{
    if (begin >= end)
        return;
    if (grain < 1)
        grain = 1;
    const size_t range = end - begin;
    // Check the thread_local first: nested loops (the common case in
    // the hot kernels) must not touch the executor mutexes at all.
    if (in_worker || range <= grain) {
        body(begin, end);
        return;
    }
    Executor &exec = Executor::global();
    const size_t threads = exec.threads();
    if (threads == 1) {
        body(begin, end);
        return;
    }
    // Deterministic chunk size: split into ~4 chunks per thread for
    // load balance, but never below the caller's grain. A pure
    // function of (range, grain, thread count) — lanes never affect
    // chunk boundaries, only when each chunk runs.
    const size_t target = (range + threads * 4 - 1) / (threads * 4);
    exec.run(lane.id(), begin, end, std::max(grain, target), body);
}

void
parallelForRange(size_t begin, size_t end, size_t grain,
                 const RangeBody &body)
{
    parallelForRange(Lane{}, begin, end, grain, body);
}

void
parallelFor(Lane lane, size_t begin, size_t end, size_t grain,
            const std::function<void(size_t)> &body)
{
    parallelForRange(lane, begin, end, grain,
                     [&body](size_t lo, size_t hi) {
                         for (size_t i = lo; i < hi; ++i)
                             body(i);
                     });
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t)> &body)
{
    parallelFor(Lane{}, begin, end, grain, body);
}

} // namespace mokey
