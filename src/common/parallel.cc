#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace mokey
{

namespace
{

/** True while the current thread is executing pool work. */
thread_local bool in_worker = false;

/**
 * The process-wide pool. Workers park on a condition variable and
 * wake per loop; chunks are claimed with an atomic cursor so load
 * balances while chunk *boundaries* stay deterministic.
 */
class ThreadPool
{
  public:
    static ThreadPool &global()
    {
        static ThreadPool pool;
        return pool;
    }

    size_t threads()
    {
        std::lock_guard<std::mutex> lk(mu);
        return workers.size() + 1; // calling thread participates
    }

    void resize(size_t n)
    {
        if (n < 1)
            n = 1;
        std::lock_guard<std::mutex> run_lk(run_mu); // no loop in flight
        stopWorkers();
        std::lock_guard<std::mutex> lk(mu);
        spawnLocked(n - 1);
    }

    void run(size_t begin, size_t end, size_t grain,
             const RangeBody &body)
    {
        // One top-level loop at a time: a second outer thread would
        // otherwise clobber the in-flight job state.
        std::lock_guard<std::mutex> run_lk(run_mu);
        {
            std::unique_lock<std::mutex> lk(mu);
            job = &body;
            job_end = end;
            job_grain = grain;
            cursor.store(begin, std::memory_order_relaxed);
            pending = workers.size();
            ++generation;
        }
        cv_work.notify_all();

        // The calling thread pulls chunks too. It must count as a
        // worker while it does: a nested parallelFor() issued from
        // inside its chunk would otherwise re-enter run() and
        // overwrite the job the workers are still draining.
        in_worker = true;
        drain(body);
        in_worker = false;

        std::unique_lock<std::mutex> lk(mu);
        cv_done.wait(lk, [this] { return pending == 0; });
        job = nullptr;
    }

  private:
    ThreadPool()
    {
        size_t n = std::thread::hardware_concurrency();
        if (const char *env = std::getenv("MOKEY_THREADS")) {
            const long v = std::atol(env);
            if (v >= 1)
                n = static_cast<size_t>(v);
            else
                warn("ignoring invalid MOKEY_THREADS='%s'", env);
        }
        if (n < 1)
            n = 1;
        std::lock_guard<std::mutex> lk(mu);
        spawnLocked(n - 1);
    }

    ~ThreadPool() { stopWorkers(); }

    void spawnLocked(size_t n)
    {
        // Each worker starts already caught up to the current
        // generation: a fresh worker seeded with 0 would sail
        // through its first wait (generation is monotonically
        // bumped), find no job, and decrement the *next* loop's
        // pending count without having drained anything.
        const uint64_t gen = generation;
        workers.reserve(n);
        for (size_t t = 0; t < n; ++t)
            workers.emplace_back([this, gen] { workerLoop(gen); });
    }

    void stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
            ++generation;
        }
        cv_work.notify_all();
        for (auto &w : workers)
            w.join();
        std::lock_guard<std::mutex> lk(mu);
        workers.clear();
        stopping = false;
    }

    /** Claim and execute chunks until the loop's range is exhausted. */
    void drain(const RangeBody &body)
    {
        const size_t end = job_end, grain = job_grain;
        for (;;) {
            const size_t lo =
                cursor.fetch_add(grain, std::memory_order_relaxed);
            if (lo >= end)
                break;
            const size_t hi = std::min(lo + grain, end);
            body(lo, hi);
        }
    }

    void workerLoop(uint64_t seen)
    {
        in_worker = true;
        for (;;) {
            const RangeBody *body;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv_work.wait(lk, [this, seen] {
                    return generation != seen;
                });
                seen = generation;
                if (stopping)
                    return;
                body = job;
            }
            if (body)
                drain(*body);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (pending > 0 && --pending == 0)
                    cv_done.notify_all();
            }
        }
    }

    std::mutex run_mu; ///< serializes top-level run()/resize()
    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::vector<std::thread> workers;

    const RangeBody *job = nullptr;
    size_t job_end = 0, job_grain = 1; ///< cursor seeds the begin
    std::atomic<size_t> cursor{0};
    size_t pending = 0;
    uint64_t generation = 0;
    bool stopping = false;
};

} // anonymous namespace

size_t
threadCount()
{
    return ThreadPool::global().threads();
}

void
setThreadCount(size_t n)
{
    MOKEY_ASSERT(!in_worker, "setThreadCount() from inside the pool");
    ThreadPool::global().resize(n);
}

void
parallelForRange(size_t begin, size_t end, size_t grain,
                 const RangeBody &body)
{
    if (begin >= end)
        return;
    if (grain < 1)
        grain = 1;
    const size_t range = end - begin;
    // Check the thread_local first: nested loops (the common case in
    // the hot kernels) must not touch the pool mutex at all.
    if (in_worker || range <= grain) {
        body(begin, end);
        return;
    }
    ThreadPool &pool = ThreadPool::global();
    const size_t threads = pool.threads();
    if (threads == 1) {
        body(begin, end);
        return;
    }
    // Deterministic chunk size: split into ~4 chunks per thread for
    // load balance, but never below the caller's grain.
    const size_t target = (range + threads * 4 - 1) / (threads * 4);
    pool.run(begin, end, std::max(grain, target), body);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t)> &body)
{
    parallelForRange(begin, end, grain,
                     [&body](size_t lo, size_t hi) {
                         for (size_t i = lo; i < hi; ++i)
                             body(i);
                     });
}

} // namespace mokey
