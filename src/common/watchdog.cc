#include "common/watchdog.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace mokey
{

namespace
{

std::chrono::milliseconds
defaultBudget()
{
    // Parsed per registration so tests can vary it between
    // constructions; a getenv is noise next to spawning a thread.
    return std::chrono::milliseconds(
        envSize("MOKEY_WATCHDOG_MS", 2000));
}

} // namespace

Watchdog &
Watchdog::instance()
{
    static Watchdog wd;
    return wd;
}

int64_t
Watchdog::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopFlag = true;
    }
    stopCv.notify_all();
    if (monitorThread.joinable())
        monitorThread.join();
    for (Slot *s : slots)
        delete s;
}

Watchdog::Task &
Watchdog::Task::operator=(Task &&other) noexcept
{
    if (this != &other) {
        if (wd != nullptr)
            wd->release(slot);
        wd = other.wd;
        slot = other.slot;
        other.wd = nullptr;
    }
    return *this;
}

Watchdog::Task::~Task()
{
    if (wd != nullptr)
        wd->release(slot);
}

void
Watchdog::Task::beat()
{
    if (wd == nullptr)
        return;
    slot->lastBeatNs.store(nowNs(), std::memory_order_relaxed);
    slot->idleFlag.store(false, std::memory_order_relaxed);
}

void
Watchdog::Task::idle()
{
    if (wd == nullptr)
        return;
    slot->idleFlag.store(true, std::memory_order_relaxed);
}

Watchdog::Task
Watchdog::monitor(std::string name, std::chrono::milliseconds budget)
{
    if (budget.count() <= 0)
        budget = defaultBudget();
    std::lock_guard<std::mutex> lk(mu);
    size_t idx = slots.size();
    for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i]->inUse) {
            idx = i;
            break;
        }
    }
    if (idx == slots.size())
        slots.push_back(new Slot());
    Slot &s = *slots[idx];
    s.name = std::move(name);
    s.budget = budget;
    s.inUse = true;
    s.loggedStall = false;
    s.idleFlag.store(false, std::memory_order_relaxed);
    s.lastBeatNs.store(nowNs(), std::memory_order_relaxed);
    if (!monitorThread.joinable() && !stopFlag)
        monitorThread = std::thread([this] { monitorLoop(); });
    return Task(this, &s);
}

void
Watchdog::release(Slot *slot)
{
    std::lock_guard<std::mutex> lk(mu);
    slot->inUse = false;
}

std::vector<Watchdog::Stall>
Watchdog::stalls() const
{
    const int64_t now = nowNs();
    std::vector<Stall> out;
    std::lock_guard<std::mutex> lk(mu);
    for (const Slot *s : slots) {
        if (!s->inUse || s->idleFlag.load(std::memory_order_relaxed))
            continue;
        const int64_t ageNs =
            now - s->lastBeatNs.load(std::memory_order_relaxed);
        const auto age =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::nanoseconds(ageNs));
        if (age > s->budget)
            out.push_back(Stall{s->name, age});
    }
    return out;
}

std::string
Watchdog::cause() const
{
    const std::vector<Stall> cur = stalls();
    if (cur.empty())
        return {};
    const Stall *worst = &cur[0];
    for (const Stall &s : cur)
        if (s.stalled > worst->stalled)
            worst = &s;
    return worst->task + " stalled " +
           std::to_string(worst->stalled.count()) + "ms";
}

void
Watchdog::setCheckInterval(std::chrono::milliseconds interval)
{
    intervalMs.store(interval.count() < 1 ? 1 : interval.count(),
                     std::memory_order_relaxed);
    stopCv.notify_all();
}

void
Watchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        stopCv.wait_for(
            lk,
            std::chrono::milliseconds(
                intervalMs.load(std::memory_order_relaxed)),
            [this] { return stopFlag; });
        if (stopFlag)
            return;
        const int64_t now = nowNs();
        for (Slot *s : slots) {
            if (!s->inUse ||
                s->idleFlag.load(std::memory_order_relaxed)) {
                s->loggedStall = false;
                continue;
            }
            const int64_t ageNs =
                now - s->lastBeatNs.load(std::memory_order_relaxed);
            const auto age = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                std::chrono::nanoseconds(ageNs));
            const bool stalled = age > s->budget;
            if (stalled && !s->loggedStall) {
                s->loggedStall = true;
                stallCount.fetch_add(1, std::memory_order_relaxed);
                warn("watchdog: %s stalled for %lldms "
                     "(budget %lldms)",
                     s->name.c_str(),
                     static_cast<long long>(age.count()),
                     static_cast<long long>(s->budget.count()));
            } else if (!stalled && s->loggedStall) {
                s->loggedStall = false;
                inform("watchdog: %s recovered after a stall",
                       s->name.c_str());
            }
        }
    }
}

} // namespace mokey
