/**
 * @file
 * Tests for the dense tensor substrate and reference kernels.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace mokey
{
namespace
{

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    for (float v : t.raw())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RowMajorAddressing)
{
    Tensor t(2, 3);
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.raw()[5], 7.0f);
    EXPECT_EQ(t.row(1)[2], 7.0f);
}

TEST(Tensor, Transpose)
{
    Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
    const Tensor tt = t.transposed();
    EXPECT_EQ(tt.rows(), 3u);
    EXPECT_EQ(tt.cols(), 2u);
    EXPECT_EQ(tt.at(2, 1), 6.0f);
    EXPECT_EQ(tt.at(0, 1), 4.0f);
}

TEST(Tensor, FootprintBytes)
{
    Tensor t(10, 10);
    EXPECT_EQ(t.footprintBytes(16), 200u);
    EXPECT_EQ(t.footprintBytes(4), 50u);
    EXPECT_EQ(t.footprintBytes(5), 63u); // rounds up
}

TEST(Ops, MatmulIdentity)
{
    Tensor a(2, 2, {1, 2, 3, 4});
    Tensor eye(2, 2, {1, 0, 0, 1});
    const Tensor c = matmul(a, eye);
    EXPECT_EQ(c.at(0, 0), 1.0f);
    EXPECT_EQ(c.at(1, 1), 4.0f);
}

TEST(Ops, MatmulKnownValues)
{
    Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulTransBAgreesWithMatmul)
{
    Rng rng(71);
    Tensor a(5, 7, rng.gaussianVector(35, 0, 1));
    Tensor b(7, 4, rng.gaussianVector(28, 0, 1));
    const Tensor c1 = matmul(a, b);
    const Tensor c2 = matmulTransB(a, b.transposed());
    EXPECT_LT(maxAbsDiff(c1, c2), 1e-4);
}

TEST(Ops, AddBias)
{
    Tensor t(2, 3);
    addBias(t, {1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(1, 2), 3.0f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(73);
    Tensor t(4, 16, rng.gaussianVector(64, 0, 3));
    softmaxRows(t);
    for (size_t r = 0; r < t.rows(); ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < t.cols(); ++c) {
            sum += t.at(r, c);
            EXPECT_GE(t.at(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxStableUnderLargeInputs)
{
    Tensor t(1, 3, {1000.0f, 1000.0f, 1000.0f});
    softmaxRows(t);
    for (size_t c = 0; c < 3; ++c)
        EXPECT_NEAR(t.at(0, c), 1.0f / 3.0f, 1e-6);
}

TEST(Ops, LayerNormRowsZeroMeanUnitVar)
{
    Rng rng(79);
    Tensor t(3, 64, rng.gaussianVector(192, 5.0, 2.0));
    layerNormRows(t);
    for (size_t r = 0; r < t.rows(); ++r) {
        double mean = 0.0, var = 0.0;
        for (size_t c = 0; c < t.cols(); ++c)
            mean += t.at(r, c);
        mean /= 64.0;
        for (size_t c = 0; c < t.cols(); ++c) {
            const double d = t.at(r, c) - mean;
            var += d * d;
        }
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Ops, GeluFixedPoints)
{
    Tensor t(1, 3, {0.0f, 10.0f, -10.0f});
    gelu(t);
    EXPECT_NEAR(t.at(0, 0), 0.0f, 1e-7);
    EXPECT_NEAR(t.at(0, 1), 10.0f, 1e-4);
    EXPECT_NEAR(t.at(0, 2), 0.0f, 1e-4);
}

TEST(Ops, GeluKnownValue)
{
    Tensor t(1, 1, {1.0f});
    gelu(t);
    EXPECT_NEAR(t.at(0, 0), 0.84134f, 1e-4);
}

TEST(Ops, AddAndDiffs)
{
    Tensor a(1, 3, {1, 2, 3});
    Tensor b(1, 3, {4, 6, 8});
    const Tensor c = add(a, b);
    EXPECT_EQ(c.at(0, 2), 11.0f);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 5.0);
    EXPECT_DOUBLE_EQ(meanAbsDiff(a, b), 4.0);
}

TEST(Ops, FrobeniusNorm)
{
    Tensor a(1, 2, {3, 4});
    EXPECT_DOUBLE_EQ(frobeniusNorm(a), 5.0);
}

TEST(Ops, ScaleInPlace)
{
    Tensor a(1, 3, {1, -2, 3});
    scale(a, -2.0f);
    EXPECT_EQ(a.at(0, 0), -2.0f);
    EXPECT_EQ(a.at(0, 1), 4.0f);
    EXPECT_EQ(a.at(0, 2), -6.0f);
}

} // anonymous namespace
} // namespace mokey
