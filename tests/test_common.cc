/**
 * @file
 * Unit tests for src/common: RNG, statistics, fixed-point.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace mokey
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBounded)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng r(3);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[r.uniformInt(8)];
    for (int c : seen)
        EXPECT_GT(c, 0);
}

TEST(Rng, GaussianMomentsConverge)
{
    Rng r(11);
    RunningStats st;
    for (int i = 0; i < 200000; ++i)
        st.add(r.gaussian());
    EXPECT_NEAR(st.mean(), 0.0, 0.02);
    EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianShiftScale)
{
    Rng r(11);
    RunningStats st;
    for (int i = 0; i < 100000; ++i)
        st.add(r.gaussian(5.0, 2.0));
    EXPECT_NEAR(st.mean(), 5.0, 0.05);
    EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, GaussianVectorLengthAndMoments)
{
    Rng r(13);
    const auto v = r.gaussianVector(50000, -1.0, 0.5);
    ASSERT_EQ(v.size(), 50000u);
    RunningStats st;
    st.addAll(v);
    EXPECT_NEAR(st.mean(), -1.0, 0.02);
    EXPECT_NEAR(st.stddev(), 0.5, 0.02);
}

TEST(RunningStats, EmptyIsSane)
{
    RunningStats st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats st;
    st.add(3.5);
    EXPECT_EQ(st.count(), 1u);
    EXPECT_DOUBLE_EQ(st.mean(), 3.5);
    EXPECT_DOUBLE_EQ(st.min(), 3.5);
    EXPECT_DOUBLE_EQ(st.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm)
{
    RunningStats st;
    const std::vector<float> xs{1, 2, 3, 4, 5, 6, 7, 8};
    st.addAll(xs);
    EXPECT_DOUBLE_EQ(st.mean(), 4.5);
    // Population variance of 1..8.
    EXPECT_NEAR(st.variance(), 5.25, 1e-12);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 8.0);
}

TEST(RunningStats, MergeEqualsSinglePass)
{
    Rng r(5);
    const auto v = r.gaussianVector(10000, 2.0, 3.0);
    RunningStats whole, lo, hi;
    whole.addAll(v);
    for (size_t i = 0; i < v.size(); ++i)
        (i < 3000 ? lo : hi).add(v[i]);
    lo.merge(hi);
    EXPECT_EQ(lo.count(), whole.count());
    EXPECT_NEAR(lo.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(lo.variance(), whole.variance(), 1e-7);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Quantile, EndpointsAndMedian)
{
    const std::vector<float> v{5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Interpolates)
{
    const std::vector<float> v{0, 10};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0); // clamps into bin 0
    h.add(100.0);  // clamps into bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(FixedFormat, ForRangeMatchesEq7)
{
    // Range [0, 4): span 4 -> 2 integer bits -> 14 fractional bits.
    const auto f = FixedFormat::forRange(16, 0.0, 4.0);
    EXPECT_EQ(f.totalBits, 16);
    EXPECT_EQ(f.fracBits, 14);
}

TEST(FixedFormat, SmallRangeGainsFraction)
{
    // Span 0.25 -> -2 integer bits -> 18 fractional bits.
    const auto f = FixedFormat::forRange(16, -0.125, 0.125);
    EXPECT_EQ(f.fracBits, 18);
}

TEST(FixedFormat, ResolutionAndBounds)
{
    const FixedFormat f{16, 8};
    EXPECT_DOUBLE_EQ(f.resolution(), 1.0 / 256.0);
    EXPECT_EQ(f.rawMax(), 32767);
    EXPECT_EQ(f.rawMin(), -32768);
    EXPECT_DOUBLE_EQ(f.maxValue(), 32767.0 / 256.0);
}

TEST(FixedPoint, RoundTripWithinResolution)
{
    const FixedFormat f{16, 10};
    Rng r(99);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-30.0, 30.0);
        const double q = quantizeToFixed(v, f);
        EXPECT_NEAR(q, v, f.resolution() / 2.0 + 1e-12);
    }
}

TEST(FixedPoint, SaturatesAtBounds)
{
    const FixedFormat f{16, 8};
    EXPECT_EQ(toFixedRaw(1e9, f), f.rawMax());
    EXPECT_EQ(toFixedRaw(-1e9, f), f.rawMin());
}

TEST(FixedPoint, MulMatchesFloat)
{
    const FixedFormat fa{16, 10}, fb{16, 12}, fo{32, 16};
    Rng r(123);
    for (int i = 0; i < 1000; ++i) {
        const double a = r.uniform(-20.0, 20.0);
        const double b = r.uniform(-5.0, 5.0);
        const int64_t ra = toFixedRaw(a, fa);
        const int64_t rb = toFixedRaw(b, fb);
        const int64_t rp = fixedMul(ra, fa, rb, fb, fo);
        const double qa = fromFixedRaw(ra, fa);
        const double qb = fromFixedRaw(rb, fb);
        EXPECT_NEAR(fromFixedRaw(rp, fo), qa * qb,
                    fo.resolution());
    }
}

TEST(FixedPoint, RescalePreservesValue)
{
    const FixedFormat from{16, 12}, to{16, 8};
    const int64_t raw = toFixedRaw(3.14159, from);
    const int64_t r2 = fixedRescale(raw, from, to);
    EXPECT_NEAR(fromFixedRaw(r2, to), 3.14159, to.resolution());
}

TEST(FixedPoint, NegativeRoundingIsNearest)
{
    const FixedFormat f{16, 0};
    EXPECT_EQ(toFixedRaw(-2.5, f), -2); // nearbyint ties-to-even
    EXPECT_EQ(toFixedRaw(-2.6, f), -3);
    EXPECT_EQ(toFixedRaw(-2.4, f), -2);
}

} // anonymous namespace
} // namespace mokey
