/**
 * @file
 * Tests for the weighted exponential curve fit (Fig. 3).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fit/expfit.hh"

namespace mokey
{
namespace
{

TEST(PaperFitWeights, DoublingScheme)
{
    const auto w = paperFitWeights(8);
    ASSERT_EQ(w.size(), 8u);
    EXPECT_DOUBLE_EQ(w[0], 128.0); // 2^7 at the innermost bin
    EXPECT_DOUBLE_EQ(w[7], 1.0);   // unit weight at the outer bin
    for (size_t i = 0; i + 1 < w.size(); ++i)
        EXPECT_DOUBLE_EQ(w[i], 2.0 * w[i + 1]);
}

TEST(FitExponential, RecoversExactModel)
{
    // Data generated exactly from a^i + b must be recovered.
    const double a = 1.3, b = -0.7;
    std::vector<double> ys;
    for (int i = 0; i < 8; ++i)
        ys.push_back(std::pow(a, i) + b);
    const auto fit = fitExponential(ys);
    EXPECT_NEAR(fit.a, a, 1e-6);
    EXPECT_NEAR(fit.b, b, 1e-6);
    EXPECT_NEAR(fit.residual, 0.0, 1e-10);
}

TEST(FitExponential, EvalMatchesModel)
{
    const ExpFit f{1.2, -0.5, 0.0};
    EXPECT_DOUBLE_EQ(f.eval(0), 0.5);
    EXPECT_NEAR(f.eval(3), std::pow(1.2, 3) - 0.5, 1e-12);
}

TEST(FitExponential, RobustToNoise)
{
    Rng rng(61);
    const double a = 1.18, b = -0.95;
    std::vector<double> ys;
    for (int i = 0; i < 8; ++i)
        ys.push_back(std::pow(a, i) + b +
                     rng.uniform(-0.005, 0.005));
    const auto fit = fitExponential(ys);
    EXPECT_NEAR(fit.a, a, 0.02);
    EXPECT_NEAR(fit.b, b, 0.05);
}

TEST(FitExponential, WeightsEmphasizeInnerBins)
{
    // Perturb only the outer bin: the weighted fit should barely
    // move compared to perturbing the inner bin.
    const double a = 1.25, b = -0.8;
    std::vector<double> clean;
    for (int i = 0; i < 8; ++i)
        clean.push_back(std::pow(a, i) + b);

    auto outer = clean;
    outer[7] += 0.2;
    auto inner = clean;
    inner[0] += 0.2;

    const auto f_outer = fitExponential(outer);
    const auto f_inner = fitExponential(inner);
    const double drift_outer = std::abs(f_outer.eval(0) - clean[0]);
    const double drift_inner = std::abs(f_inner.eval(0) - clean[0]);
    EXPECT_LT(drift_outer, drift_inner);
}

TEST(FitExponential, UniformWeightsSupported)
{
    const double a = 1.5, b = 0.2;
    std::vector<double> ys;
    for (int i = 0; i < 6; ++i)
        ys.push_back(std::pow(a, i) + b);
    const auto fit = fitExponential(ys, std::vector<double>(6, 1.0));
    EXPECT_NEAR(fit.a, a, 1e-6);
    EXPECT_NEAR(fit.b, b, 1e-6);
}

TEST(FitExponential, MonotoneFitsMonotoneData)
{
    // Any reasonable dictionary half is increasing; the fitted curve
    // must be increasing too (a > 1).
    const std::vector<double> ys{0.05, 0.2, 0.45, 0.7, 1.0, 1.35,
                                 1.75, 2.2};
    const auto fit = fitExponential(ys);
    EXPECT_GT(fit.a, 1.0);
    for (int i = 0; i + 1 < 8; ++i)
        EXPECT_LT(fit.eval(i), fit.eval(i + 1));
}

} // anonymous namespace
} // namespace mokey
