/**
 * @file
 * Serving-engine tests: the batched forward pass must be
 * bit-identical to sequential forwards for every quantization mode,
 * thread count, and ragged mix of sequence lengths — batching is a
 * throughput optimization, never a numerics change — and the batch
 * scheduler must coalesce, cap, and timeout-flush exactly as
 * configured.
 */

#include <chrono>
#include <future>
#include <thread>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/scheduler.hh"
#include "tensor/ops.hh"

namespace mokey
{
namespace
{

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

void
expectBitIdentical(const Tensor &a, const Tensor &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.raw()[i], b.raw()[i]) << what << " elem=" << i;
}

class ServingFixture : public ::testing::Test
{
  protected:
    ServingFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    /** Ragged serving batch: wildly different sequence lengths. */
    std::vector<Tensor>
    raggedInputs() const
    {
        std::vector<Tensor> inputs;
        const size_t lens[] = {7, 16, 1, 12, 3};
        for (size_t i = 0; i < 5; ++i)
            inputs.push_back(model.makeInput(lens[i], 700 + i));
        return inputs;
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(ServingFixture, BatchedForwardBitIdenticalAllModesAndThreads)
{
    const auto inputs = raggedInputs();
    const size_t original = threadCount();
    for (const QuantMode mode : {QuantMode::WeightsOnly,
                                 QuantMode::WeightsAndActivations}) {
        // Sequential references, computed single-threaded.
        setThreadCount(1);
        std::vector<Tensor> refs;
        for (const Tensor &in : inputs)
            refs.push_back(pipeline.forward(in, mode));

        for (const size_t t : {1u, 2u, 5u}) {
            setThreadCount(t);
            const auto outs = pipeline.forwardBatch(inputs, mode);
            ASSERT_EQ(outs.size(), inputs.size());
            for (size_t i = 0; i < outs.size(); ++i)
                expectBitIdentical(
                    refs[i], outs[i],
                    "mode=" +
                        std::to_string(static_cast<int>(mode)) +
                        " threads=" + std::to_string(t) +
                        " req=" + std::to_string(i));
        }
    }
    setThreadCount(original);
}

TEST_F(ServingFixture, SingleSequenceBatchMatchesForward)
{
    const Tensor in = model.makeInput(9, 42);
    const auto outs = pipeline.forwardBatch(
        {in}, QuantMode::WeightsAndActivations);
    ASSERT_EQ(outs.size(), 1u);
    expectBitIdentical(
        pipeline.forward(in, QuantMode::WeightsAndActivations),
        outs[0], "single");
}

TEST_F(ServingFixture, BatchedStatsMatchSequentialStats)
{
    // The pair counters are atomics fed by concurrent head jobs;
    // batching must route exactly the same pairs as N sequential
    // forwards (determinism of the counters, not just the outputs).
    const auto inputs = raggedInputs();

    const uint64_t g0 = pipeline.matmulStats().gaussianPairs;
    const uint64_t o0 = pipeline.matmulStats().outlierPairs;
    for (const Tensor &in : inputs)
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    const uint64_t g_seq =
        pipeline.matmulStats().gaussianPairs - g0;
    const uint64_t o_seq = pipeline.matmulStats().outlierPairs - o0;

    pipeline.forwardBatch(inputs, QuantMode::WeightsAndActivations);
    const uint64_t g_batch =
        pipeline.matmulStats().gaussianPairs - g0 - g_seq;
    const uint64_t o_batch =
        pipeline.matmulStats().outlierPairs - o0 - o_seq;

    EXPECT_EQ(g_batch, g_seq);
    EXPECT_EQ(o_batch, o_seq);
}

TEST_F(ServingFixture, FloatBatchedForwardBitIdentical)
{
    const auto inputs = raggedInputs();
    const auto outs = model.forwardBatch(inputs);
    ASSERT_EQ(outs.size(), inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        expectBitIdentical(model.forward(inputs[i]), outs[i],
                           "float req=" + std::to_string(i));
}

TEST_F(ServingFixture, EmptyBatchIsEmpty)
{
    EXPECT_TRUE(pipeline
                    .forwardBatch({}, QuantMode::WeightsAndActivations)
                    .empty());
}

// ---- scheduler ------------------------------------------------------

TEST_F(ServingFixture, SchedulerResultsBitIdenticalToDirectForward)
{
    const auto inputs = raggedInputs();
    std::vector<Tensor> refs;
    for (const Tensor &in : inputs)
        refs.push_back(
            pipeline.forward(in, QuantMode::WeightsAndActivations));

    BatchSchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.flushTimeout = std::chrono::microseconds(5000);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);
    std::vector<std::future<Tensor>> futs;
    for (const Tensor &in : inputs)
        futs.push_back(sched.submit(in));
    for (size_t i = 0; i < futs.size(); ++i)
        expectBitIdentical(refs[i], futs[i].get(),
                           "sched req=" + std::to_string(i));

    const auto st = sched.stats();
    EXPECT_EQ(st.requests, inputs.size());
    EXPECT_GE(st.batches, 2u); // 5 requests, max 3 per batch
    EXPECT_EQ(st.batchedRows, 7u + 16u + 1u + 12u + 3u);
}

TEST_F(ServingFixture, SchedulerCoalescesUpToMaxBatch)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 3;
    // Generous timeout: the only way a batch dispatches quickly is
    // by filling up, so the exact counts below are robust even on a
    // heavily loaded CI runner.
    cfg.flushTimeout = std::chrono::seconds(2);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(sched.submit(model.makeInput(4, 800 + i)));
    for (auto &f : futs)
        f.get();

    const auto st = sched.stats();
    EXPECT_EQ(st.requests, 6u);
    EXPECT_EQ(st.batches, 2u);
    EXPECT_EQ(st.capacityFlushes, 2u);
    EXPECT_EQ(st.timeoutFlushes, 0u);
    for (const size_t s : sched.batchSizes())
        EXPECT_EQ(s, 3u);
}

TEST_F(ServingFixture, SchedulerTimeoutFlushesPartialBatch)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    // Long enough that both submits land inside the window even
    // when the test thread gets descheduled on a busy runner.
    cfg.flushTimeout = std::chrono::milliseconds(200);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    auto f1 = sched.submit(model.makeInput(4, 810));
    auto f2 = sched.submit(model.makeInput(4, 811));
    f1.get();
    f2.get();

    const auto st = sched.stats();
    EXPECT_EQ(st.batches, 1u);
    EXPECT_EQ(st.timeoutFlushes, 1u);
    EXPECT_EQ(st.capacityFlushes, 0u);
    ASSERT_EQ(sched.batchSizes().size(), 1u);
    EXPECT_EQ(sched.batchSizes()[0], 2u);
}

TEST_F(ServingFixture, SchedulerRespectsMaxTokens)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxTokens = 20; // requests are 8 rows: 2 per batch
    cfg.flushTimeout = std::chrono::milliseconds(100);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(sched.submit(model.makeInput(8, 820 + i)));
    for (auto &f : futs)
        f.get();

    for (const size_t s : sched.batchSizes())
        EXPECT_LE(s, 2u);
    EXPECT_GE(sched.stats().batches, 2u);
}

TEST_F(ServingFixture, SchedulerDrainFlushesImmediately)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    // Without drain() this would sit for a second before flushing.
    cfg.flushTimeout = std::chrono::seconds(1);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    const Tensor in = model.makeInput(5, 830);
    auto f = sched.submit(in);
    const auto t0 = std::chrono::steady_clock::now();
    sched.drain();
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_LT(elapsed, 0.9); // did not wait out the flush timeout
    expectBitIdentical(
        pipeline.forward(in, QuantMode::WeightsAndActivations),
        f.get(), "drain");
}

TEST_F(ServingFixture, SchedulerDestructorFlushesQueue)
{
    std::future<Tensor> f;
    {
        BatchSchedulerConfig cfg;
        cfg.maxBatch = 8;
        cfg.flushTimeout = std::chrono::seconds(1);
        BatchScheduler sched(pipeline,
                             QuantMode::WeightsAndActivations, cfg);
        f = sched.submit(model.makeInput(6, 840));
        // Destructor must flush and complete the pending request.
    }
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expectBitIdentical(
        pipeline.forward(model.makeInput(6, 840),
                         QuantMode::WeightsAndActivations),
        f.get(), "dtor");
}

TEST_F(ServingFixture, SchedulerWeightsOnlyMode)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.flushTimeout = std::chrono::milliseconds(10);
    BatchScheduler sched(pipeline, QuantMode::WeightsOnly, cfg);
    const Tensor in = model.makeInput(8, 850);
    auto f = sched.submit(in);
    expectBitIdentical(pipeline.forward(in, QuantMode::WeightsOnly),
                       f.get(), "weights-only");
}

TEST_F(ServingFixture, ConcurrentSubmittersAllServed)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.flushTimeout = std::chrono::milliseconds(5);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    // Several client threads race submissions; every future must
    // resolve to its own request's exact result.
    std::vector<std::thread> clients;
    std::vector<int> ok(4, 0);
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            const Tensor in =
                model.makeInput(3 + t, 860 + t);
            const Tensor ref = pipeline.forward(
                in, QuantMode::WeightsAndActivations);
            auto f = sched.submit(in);
            const Tensor out = f.get();
            if (out.rows() == ref.rows() &&
                out.raw() == ref.raw())
                ok[t] = 1;
        });
    }
    for (auto &c : clients)
        c.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(ok[t], 1) << "client " << t;
    EXPECT_EQ(sched.stats().requests, 4u);
}

} // anonymous namespace
} // namespace mokey
