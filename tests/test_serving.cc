/**
 * @file
 * Serving-engine tests: the batched forward pass must be
 * bit-identical to sequential forwards for every quantization mode,
 * thread count, and ragged mix of sequence lengths — batching is a
 * throughput optimization, never a numerics change — and the batch
 * scheduler must coalesce, cap, and timeout-flush exactly as
 * configured.
 */

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/scheduler.hh"
#include "tensor/ops.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

void
expectBitIdentical(const Tensor &a, const Tensor &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.raw()[i], b.raw()[i]) << what << " elem=" << i;
}

class ServingFixture : public ::testing::Test
{
  protected:
    ServingFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    /** Ragged serving batch: wildly different sequence lengths. */
    std::vector<Tensor>
    raggedInputs() const
    {
        std::vector<Tensor> inputs;
        const size_t lens[] = {7, 16, 1, 12, 3};
        for (size_t i = 0; i < 5; ++i)
            inputs.push_back(model.makeInput(lens[i], 700 + i));
        return inputs;
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(ServingFixture, BatchedForwardBitIdenticalAllModesAndThreads)
{
    const auto inputs = raggedInputs();
    const size_t original = threadCount();
    for (const QuantMode mode : {QuantMode::WeightsOnly,
                                 QuantMode::WeightsAndActivations}) {
        // Sequential references, computed single-threaded.
        setThreadCount(1);
        std::vector<Tensor> refs;
        for (const Tensor &in : inputs)
            refs.push_back(pipeline.forward(in, mode));

        for (const size_t t : {1u, 2u, 5u}) {
            setThreadCount(t);
            const auto outs = pipeline.forwardBatch(inputs, mode);
            ASSERT_EQ(outs.size(), inputs.size());
            for (size_t i = 0; i < outs.size(); ++i)
                expectBitIdentical(
                    refs[i], outs[i],
                    "mode=" +
                        std::to_string(static_cast<int>(mode)) +
                        " threads=" + std::to_string(t) +
                        " req=" + std::to_string(i));
        }
    }
    setThreadCount(original);
}

TEST_F(ServingFixture, EngineSelectorForwardBitIdenticalBothModes)
{
    // Switching the index-domain GEMM backend (MOKEY_ENGINE /
    // setIndexEngine) must never change results within an engine:
    // for each engine and each QuantMode, forward passes are
    // bit-identical across thread counts {1, 2, hw} and lanes —
    // the engines fix per-output-element arithmetic order, and
    // everything above them is already order-invariant.
    const Tensor in = model.makeInput(11, 919);
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count,
          IndexEngine::Auto}) {
        setIndexEngine(engine);
        for (const QuantMode mode :
             {QuantMode::WeightsOnly,
              QuantMode::WeightsAndActivations}) {
            setThreadCount(1);
            const Tensor ref = pipeline.forward(in, mode);
            for (const size_t t : {size_t{1}, size_t{2}, hw}) {
                setThreadCount(t);
                for (const Lane lane : {Lane{}, Lane::acquire()}) {
                    expectBitIdentical(
                        ref, pipeline.forward(in, mode, lane),
                        std::string("engine=") +
                            indexEngineName(engine) + " mode=" +
                            std::to_string(static_cast<int>(mode)) +
                            " threads=" + std::to_string(t) +
                            " lane=" + std::to_string(lane.id()));
                }
                // Batched serving path under the same engine.
                const auto outs =
                    pipeline.forwardBatch({in, in}, mode);
                ASSERT_EQ(outs.size(), 2u);
                for (const Tensor &out : outs)
                    expectBitIdentical(
                        ref, out,
                        std::string("batched engine=") +
                            indexEngineName(engine) +
                            " threads=" + std::to_string(t));
            }
        }
    }
}

TEST_F(ServingFixture, FusedEncodeForwardBitIdenticalToUnfused)
{
    // The fused single-pass activation quantizer is a perf
    // optimization, never a numerics change: forward and
    // forwardBatch outputs must match the seed encode()+derivePlanes
    // path bit-for-bit across engines x QuantModes x thread counts x
    // lanes.
    const auto inputs = raggedInputs();
    const Tensor in = model.makeInput(10, 321);
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const FusedEncodeGuard fused_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count,
          IndexEngine::Auto}) {
        setIndexEngine(engine);
        for (const QuantMode mode :
             {QuantMode::WeightsOnly,
              QuantMode::WeightsAndActivations}) {
            setFusedActEncode(false);
            setThreadCount(1);
            const Tensor ref = pipeline.forward(in, mode);
            std::vector<Tensor> brefs;
            for (const Tensor &bin : inputs)
                brefs.push_back(pipeline.forward(bin, mode));

            setFusedActEncode(true);
            for (const size_t t : {size_t{1}, size_t{2}, hw}) {
                setThreadCount(t);
                for (const Lane lane : {Lane{}, Lane::acquire()}) {
                    expectBitIdentical(
                        ref, pipeline.forward(in, mode, lane),
                        std::string("fused engine=") +
                            indexEngineName(engine) + " mode=" +
                            std::to_string(static_cast<int>(mode)) +
                            " threads=" + std::to_string(t));
                }
                const auto outs =
                    pipeline.forwardBatch(inputs, mode);
                ASSERT_EQ(outs.size(), inputs.size());
                for (size_t i = 0; i < outs.size(); ++i)
                    expectBitIdentical(
                        brefs[i], outs[i],
                        std::string("fused batch engine=") +
                            indexEngineName(engine) +
                            " threads=" + std::to_string(t) +
                            " req=" + std::to_string(i));
            }
        }
    }
}

TEST_F(ServingFixture, FusedEncodeCountersMatchUnfused)
{
    // The fused path feeds the activation outlier-rate counters from
    // the sidecar instead of a code walk; starting two fresh
    // pipelines from zero and running the same workload down each
    // path must land on the exact same cumulative fraction — and the
    // GEMM pair-routing stats must match too.
    const FusedEncodeGuard fused_guard;
    std::vector<Tensor> batch;
    for (int i = 0; i < 2; ++i)
        batch.push_back(model.makeInput(12, 300 + i));
    const Tensor in = model.makeInput(8, 333);

    auto run = [&](bool fused) {
        setFusedActEncode(fused);
        QuantizedTransformer p(model, quantizer);
        p.quantizeWeights();
        p.profileActivations(batch);
        p.forward(in, QuantMode::WeightsAndActivations);
        p.forwardBatch(batch, QuantMode::WeightsAndActivations);
        return std::tuple<double, uint64_t, uint64_t>(
            p.activationOutlierFraction(),
            p.matmulStats().gaussianPairs.load(),
            p.matmulStats().outlierPairs.load());
    };
    const auto unfused = run(false);
    const auto fused = run(true);
    EXPECT_DOUBLE_EQ(std::get<0>(fused), std::get<0>(unfused));
    EXPECT_GT(std::get<0>(fused), 0.0);
    EXPECT_EQ(std::get<1>(fused), std::get<1>(unfused));
    EXPECT_EQ(std::get<2>(fused), std::get<2>(unfused));
}

TEST_F(ServingFixture, SingleSequenceBatchMatchesForward)
{
    const Tensor in = model.makeInput(9, 42);
    const auto outs = pipeline.forwardBatch(
        {in}, QuantMode::WeightsAndActivations);
    ASSERT_EQ(outs.size(), 1u);
    expectBitIdentical(
        pipeline.forward(in, QuantMode::WeightsAndActivations),
        outs[0], "single");
}

TEST_F(ServingFixture, BatchedStatsMatchSequentialStats)
{
    // The pair counters are atomics fed by concurrent head jobs;
    // batching must route exactly the same pairs as N sequential
    // forwards (determinism of the counters, not just the outputs).
    const auto inputs = raggedInputs();

    const uint64_t g0 = pipeline.matmulStats().gaussianPairs;
    const uint64_t o0 = pipeline.matmulStats().outlierPairs;
    for (const Tensor &in : inputs)
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    const uint64_t g_seq =
        pipeline.matmulStats().gaussianPairs - g0;
    const uint64_t o_seq = pipeline.matmulStats().outlierPairs - o0;

    pipeline.forwardBatch(inputs, QuantMode::WeightsAndActivations);
    const uint64_t g_batch =
        pipeline.matmulStats().gaussianPairs - g0 - g_seq;
    const uint64_t o_batch =
        pipeline.matmulStats().outlierPairs - o0 - o_seq;

    EXPECT_EQ(g_batch, g_seq);
    EXPECT_EQ(o_batch, o_seq);
}

TEST_F(ServingFixture, FloatBatchedForwardBitIdentical)
{
    const auto inputs = raggedInputs();
    const auto outs = model.forwardBatch(inputs);
    ASSERT_EQ(outs.size(), inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        expectBitIdentical(model.forward(inputs[i]), outs[i],
                           "float req=" + std::to_string(i));
}

TEST_F(ServingFixture, EmptyBatchIsEmpty)
{
    EXPECT_TRUE(pipeline
                    .forwardBatch({}, QuantMode::WeightsAndActivations)
                    .empty());
}

// ---- scheduler ------------------------------------------------------

TEST_F(ServingFixture, SchedulerResultsBitIdenticalToDirectForward)
{
    const auto inputs = raggedInputs();
    std::vector<Tensor> refs;
    for (const Tensor &in : inputs)
        refs.push_back(
            pipeline.forward(in, QuantMode::WeightsAndActivations));

    BatchSchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.flushTimeout = std::chrono::microseconds(5000);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);
    std::vector<std::future<Tensor>> futs;
    for (const Tensor &in : inputs)
        futs.push_back(sched.submit(in));
    for (size_t i = 0; i < futs.size(); ++i)
        expectBitIdentical(refs[i], futs[i].get(),
                           "sched req=" + std::to_string(i));

    const auto st = sched.stats();
    EXPECT_EQ(st.requests, inputs.size());
    EXPECT_GE(st.batches, 2u); // 5 requests, max 3 per batch
    EXPECT_EQ(st.batchedRows, 7u + 16u + 1u + 12u + 3u);
}

TEST_F(ServingFixture, SchedulerCoalescesUpToMaxBatch)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 3;
    // Generous timeout: the only way a batch dispatches quickly is
    // by filling up, so the exact counts below are robust even on a
    // heavily loaded CI runner.
    cfg.flushTimeout = std::chrono::seconds(2);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(sched.submit(model.makeInput(4, 800 + i)));
    for (auto &f : futs)
        f.get();

    const auto st = sched.stats();
    EXPECT_EQ(st.requests, 6u);
    EXPECT_EQ(st.batches, 2u);
    EXPECT_EQ(st.capacityFlushes, 2u);
    EXPECT_EQ(st.timeoutFlushes, 0u);
    for (const size_t s : sched.batchSizes())
        EXPECT_EQ(s, 3u);
}

TEST_F(ServingFixture, SchedulerTimeoutFlushesPartialBatch)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    // Long enough that both submits land inside the window even
    // when the test thread gets descheduled on a busy runner.
    cfg.flushTimeout = std::chrono::milliseconds(200);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    auto f1 = sched.submit(model.makeInput(4, 810));
    auto f2 = sched.submit(model.makeInput(4, 811));
    f1.get();
    f2.get();

    const auto st = sched.stats();
    EXPECT_EQ(st.batches, 1u);
    EXPECT_EQ(st.timeoutFlushes, 1u);
    EXPECT_EQ(st.capacityFlushes, 0u);
    ASSERT_EQ(sched.batchSizes().size(), 1u);
    EXPECT_EQ(sched.batchSizes()[0], 2u);
}

TEST_F(ServingFixture, SchedulerRespectsMaxTokens)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxTokens = 20; // requests are 8 rows: 2 per batch
    cfg.flushTimeout = std::chrono::milliseconds(100);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(sched.submit(model.makeInput(8, 820 + i)));
    for (auto &f : futs)
        f.get();

    for (const size_t s : sched.batchSizes())
        EXPECT_LE(s, 2u);
    EXPECT_GE(sched.stats().batches, 2u);
}

TEST_F(ServingFixture, SchedulerDrainFlushesImmediately)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 8;
    // Without drain() this would sit for a second before flushing.
    cfg.flushTimeout = std::chrono::seconds(1);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    const Tensor in = model.makeInput(5, 830);
    auto f = sched.submit(in);
    const auto t0 = std::chrono::steady_clock::now();
    sched.drain();
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_LT(elapsed, 0.9); // did not wait out the flush timeout
    expectBitIdentical(
        pipeline.forward(in, QuantMode::WeightsAndActivations),
        f.get(), "drain");
}

TEST_F(ServingFixture, SchedulerDestructorFlushesQueue)
{
    std::future<Tensor> f;
    {
        BatchSchedulerConfig cfg;
        cfg.maxBatch = 8;
        cfg.flushTimeout = std::chrono::seconds(1);
        BatchScheduler sched(pipeline,
                             QuantMode::WeightsAndActivations, cfg);
        f = sched.submit(model.makeInput(6, 840));
        // Destructor must flush and complete the pending request.
    }
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expectBitIdentical(
        pipeline.forward(model.makeInput(6, 840),
                         QuantMode::WeightsAndActivations),
        f.get(), "dtor");
}

TEST_F(ServingFixture, SchedulerWeightsOnlyMode)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.flushTimeout = std::chrono::milliseconds(10);
    BatchScheduler sched(pipeline, QuantMode::WeightsOnly, cfg);
    const Tensor in = model.makeInput(8, 850);
    auto f = sched.submit(in);
    expectBitIdentical(pipeline.forward(in, QuantMode::WeightsOnly),
                       f.get(), "weights-only");
}

TEST_F(ServingFixture, SchedulerLaneCountClampsAndReports)
{
    BatchSchedulerConfig cfg;
    cfg.laneCount = 0; // invalid: clamped to one dispatcher lane
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);
    EXPECT_EQ(sched.laneCount(), 1u);
    ASSERT_EQ(sched.laneUsage().size(), 1u);
    EXPECT_NE(sched.laneUsage()[0].laneId, 0u); // private lane
}

TEST_F(ServingFixture, TwoLanesDispatchConcurrentBatches)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 1; // every request is its own micro-batch
    cfg.laneCount = 2;
    cfg.flushTimeout = std::chrono::microseconds(100);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    constexpr int kReqs = 24;
    std::vector<std::future<Tensor>> futs;
    std::vector<Tensor> ins;
    for (int i = 0; i < kReqs; ++i)
        ins.push_back(model.makeInput(2 + i % 3, 900 + i));
    for (const Tensor &in : ins)
        futs.push_back(sched.submit(in));
    for (int i = 0; i < kReqs; ++i)
        expectBitIdentical(
            pipeline.forward(ins[i],
                             QuantMode::WeightsAndActivations),
            futs[i].get(), "lane req=" + std::to_string(i));
    // Futures resolve before the dispatcher publishes its lane
    // accounting; drain() synchronizes with that publication.
    sched.drain();
    EXPECT_EQ(sched.stats().requests,
              static_cast<uint64_t>(kReqs));

    // Both dispatchers must be able to dispatch. A single wave can
    // land entirely on one lane when the other dispatcher thread
    // never gets scheduled mid-wave (single-core CI hosts — and the
    // fused encoder makes these tiny batches finish even faster),
    // so keep feeding bounded extra waves until both lanes have
    // dispatched; every response is still verified bit-identical.
    auto usage = sched.laneUsage();
    ASSERT_EQ(usage.size(), 2u);
    for (int round = 0;
         round < 50 && (usage[0].batches == 0 ||
                        usage[1].batches == 0);
         ++round) {
        std::vector<std::future<Tensor>> extra;
        for (int i = 0; i < 8; ++i)
            extra.push_back(sched.submit(ins[i]));
        for (int i = 0; i < 8; ++i)
            expectBitIdentical(
                pipeline.forward(ins[i],
                                 QuantMode::WeightsAndActivations),
                extra[i].get(),
                "extra wave req=" + std::to_string(i));
        sched.drain();
        usage = sched.laneUsage();
    }

    const auto st = sched.stats();
    EXPECT_NE(usage[0].laneId, usage[1].laneId);
    EXPECT_EQ(usage[0].batches + usage[1].batches, st.batches);
    EXPECT_EQ(usage[0].rows + usage[1].rows, st.batchedRows);
    EXPECT_GT(usage[0].batches, 0u);
    EXPECT_GT(usage[1].batches, 0u);
}

TEST_F(ServingFixture, MultiSchedulerMultiLaneStressBitIdentical)
{
    // The tentpole acceptance scenario: M concurrent schedulers x N
    // lanes each, hammered by racing clients, across pool sizes
    // (setThreadCount is the test hook for MOKEY_THREADS). Every
    // response must stay bit-identical to an unbatched sequential
    // forward of that request.
    constexpr size_t kSchedulers = 2;
    constexpr size_t kClients = 4;
    constexpr size_t kReqsPerClient = 3;

    // References computed single-threaded up front; the engine
    // guarantees bit-parity across thread counts and lanes.
    const size_t original = threadCount();
    setThreadCount(1);
    std::vector<Tensor> ins;
    std::vector<Tensor> refs;
    for (size_t c = 0; c < kClients; ++c) {
        for (size_t r = 0; r < kReqsPerClient; ++r) {
            ins.push_back(
                model.makeInput(1 + (c * kReqsPerClient + r) % 5,
                                1000 + c * 100 + r));
            refs.push_back(pipeline.forward(
                ins.back(), QuantMode::WeightsAndActivations));
        }
    }

    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());
    for (const size_t t : {size_t{1}, size_t{2}, hw}) {
        setThreadCount(t);
        BatchSchedulerConfig cfg;
        cfg.maxBatch = 3;
        cfg.laneCount = 2;
        cfg.flushTimeout = std::chrono::microseconds(500);
        std::vector<std::unique_ptr<BatchScheduler>> scheds;
        for (size_t s = 0; s < kSchedulers; ++s)
            scheds.push_back(std::make_unique<BatchScheduler>(
                pipeline, QuantMode::WeightsAndActivations, cfg));

        std::vector<std::thread> clients;
        std::vector<int> ok(kClients, 0);
        for (size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                bool good = true;
                for (size_t r = 0; r < kReqsPerClient; ++r) {
                    const size_t i = c * kReqsPerClient + r;
                    auto f =
                        scheds[c % kSchedulers]->submit(ins[i]);
                    const Tensor out = f.get();
                    good = good && out.rows() == refs[i].rows() &&
                        out.raw() == refs[i].raw();
                }
                ok[c] = good ? 1 : 0;
            });
        }
        for (auto &cl : clients)
            cl.join();
        for (size_t c = 0; c < kClients; ++c)
            EXPECT_EQ(ok[c], 1)
                << "client " << c << " threads=" << t;
        uint64_t reqs = 0;
        for (const auto &s : scheds)
            reqs += s->stats().requests;
        EXPECT_EQ(reqs, kClients * kReqsPerClient);
    }
    setThreadCount(original);
}

TEST_F(ServingFixture, ConcurrentSubmittersAllServed)
{
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.flushTimeout = std::chrono::milliseconds(5);
    BatchScheduler sched(pipeline, QuantMode::WeightsAndActivations,
                         cfg);

    // Several client threads race submissions; every future must
    // resolve to its own request's exact result.
    std::vector<std::thread> clients;
    std::vector<int> ok(4, 0);
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            const Tensor in =
                model.makeInput(3 + t, 860 + t);
            const Tensor ref = pipeline.forward(
                in, QuantMode::WeightsAndActivations);
            auto f = sched.submit(in);
            const Tensor out = f.get();
            if (out.rows() == ref.rows() &&
                out.raw() == ref.raw())
                ok[t] = 1;
        });
    }
    for (auto &c : clients)
        c.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(ok[t], 1) << "client " << t;
    EXPECT_EQ(sched.stats().requests, 4u);
}

// ---- failure paths --------------------------------------------------
//
// The two production-fatal bugs this suite pins down: a throwing
// engine used to abandon the batch's promises and std::terminate the
// process, and a submit racing shutdown used to panic through
// MOKEY_ASSERT. Both must now degrade to per-request errors.

/** Functor engine: echoes inputs, throws while poisoned. */
struct PoisonableEcho
{
    std::atomic<bool> poison{false};
    std::atomic<uint64_t> calls{0};

    BatchForwardFn
    fn()
    {
        return [this](const std::vector<Tensor> &inputs, QuantMode,
                      Lane) -> std::vector<Tensor> {
            ++calls;
            if (poison.load())
                throw std::runtime_error("poisoned batch");
            return inputs;
        };
    }
};

TEST(SchedulerFailure, ThrowingEngineFailsEveryFutureInBatch)
{
    PoisonableEcho engine;
    engine.poison = true;
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.flushTimeout = std::chrono::milliseconds(1);
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, cfg);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 3; ++i) {
        Tensor in(2, 4);
        in.raw()[0] = static_cast<float>(i);
        futs.push_back(sched.submit(std::move(in)));
    }
    for (auto &f : futs) {
        try {
            f.get();
            FAIL() << "future of a failed batch resolved";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "poisoned batch");
        }
    }
    // drain() synchronizes with the dispatcher's post-batch counter
    // restore; it would hang forever if the failed batch leaked its
    // in-flight accounting.
    sched.drain();
    EXPECT_GE(sched.stats().failedBatches, 1u);
    EXPECT_EQ(sched.queueDepth(), 0u)
        << "failed batch leaked in-flight accounting";

    // The dispatcher survived: subsequent batches serve correctly
    // on the same scheduler.
    engine.poison = false;
    Tensor in(3, 4);
    for (size_t i = 0; i < in.size(); ++i)
        in.raw()[i] = 0.5f * static_cast<float>(i);
    Tensor out = sched.submit(in).get();
    ASSERT_EQ(out.rows(), in.rows());
    EXPECT_EQ(out.raw(), in.raw());
    sched.drain();
    EXPECT_EQ(sched.queueDepth(), 0u);
}

TEST(SchedulerFailure, AlternatingFailuresDoNotPoisonNeighbors)
{
    // Interleave failing and succeeding batches: each failure is
    // scoped to exactly its own batch.
    PoisonableEcho engine;
    BatchSchedulerConfig cfg;
    cfg.maxBatch = 1;
    cfg.flushTimeout = std::chrono::microseconds(100);
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, cfg);
    for (int round = 0; round < 6; ++round) {
        engine.poison = (round % 2 == 0);
        Tensor in(1, 4);
        in.raw()[2] = static_cast<float>(round);
        auto fut = sched.submit(std::move(in));
        if (round % 2 == 0) {
            EXPECT_THROW(fut.get(), std::runtime_error)
                << "round " << round;
        } else {
            EXPECT_EQ(fut.get().raw()[2],
                      static_cast<float>(round))
                << "round " << round;
        }
    }
    sched.drain(); // synchronize with the dispatcher's counters
    const auto st = sched.stats();
    EXPECT_EQ(st.failedBatches, 3u);
    EXPECT_EQ(st.batches, 6u);
}

TEST(SchedulerFailure, WrongOutputCountFailsBatchGracefully)
{
    BatchScheduler sched(
        [](const std::vector<Tensor> &, QuantMode,
           Lane) -> std::vector<Tensor> {
            return {}; // lost every request's output
        },
        QuantMode::WeightsAndActivations, {});
    Tensor in(1, 4);
    auto fut = sched.submit(std::move(in));
    EXPECT_THROW(fut.get(), std::runtime_error);
    sched.drain(); // synchronize with the dispatcher's counters
    EXPECT_EQ(sched.stats().failedBatches, 1u);
}

TEST(SchedulerFailure, SubmitAfterStopRejectedGracefully)
{
    PoisonableEcho engine;
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, {});
    sched.stop();

    // Future path: the error arrives through the future, the
    // process lives (this used to MOKEY_ASSERT-panic).
    auto fut = sched.submit(Tensor(1, 4));
    try {
        fut.get();
        FAIL() << "submit after stop resolved";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("stopped"),
                  std::string::npos);
    }

    // Callback path: rejected synchronously, callback never fires.
    std::atomic<bool> fired{false};
    const bool accepted = sched.submit(
        Tensor(1, 4),
        [&fired](Tensor, std::exception_ptr) { fired = true; });
    EXPECT_FALSE(accepted);
    EXPECT_FALSE(fired.load());

    EXPECT_EQ(sched.stats().rejected, 2u);
    EXPECT_EQ(engine.calls.load(), 0u);
    sched.stop(); // idempotent
}

TEST(SchedulerFailure, EmptyInputRejectedGracefully)
{
    PoisonableEcho engine;
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, {});
    auto fut = sched.submit(Tensor{});
    EXPECT_THROW(fut.get(), std::runtime_error);
    EXPECT_EQ(sched.stats().rejected, 1u);
    sched.drain();
}

TEST(SchedulerFailure, CallbackSubmitDeliversResultAndError)
{
    PoisonableEcho engine;
    BatchSchedulerConfig cfg;
    cfg.flushTimeout = std::chrono::microseconds(100);
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, cfg);

    Tensor in(2, 3);
    in.raw()[5] = 42.0f;
    std::promise<Tensor> okProm;
    ASSERT_TRUE(sched.submit(
        in, [&okProm](Tensor out, std::exception_ptr err) {
            ASSERT_EQ(err, nullptr);
            okProm.set_value(std::move(out));
        }));
    EXPECT_EQ(okProm.get_future().get().raw()[5], 42.0f);

    engine.poison = true;
    std::promise<std::exception_ptr> errProm;
    ASSERT_TRUE(sched.submit(
        in, [&errProm](Tensor, std::exception_ptr err) {
            errProm.set_value(err);
        }));
    const std::exception_ptr err = errProm.get_future().get();
    ASSERT_NE(err, nullptr);
    EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
}

TEST(SchedulerFailure, ThrowingCompletionCallbackDoesNotKillDispatcher)
{
    PoisonableEcho engine;
    BatchSchedulerConfig cfg;
    cfg.flushTimeout = std::chrono::microseconds(100);
    BatchScheduler sched(engine.fn(),
                         QuantMode::WeightsAndActivations, cfg);

    std::promise<void> fired;
    ASSERT_TRUE(sched.submit(
        Tensor(1, 2), [&fired](Tensor, std::exception_ptr) {
            fired.set_value();
            throw std::runtime_error("bad callback");
        }));
    fired.get_future().get();

    // Dispatcher survived the throwing callback: normal service
    // continues.
    Tensor in(1, 2);
    in.raw()[1] = 9.0f;
    EXPECT_EQ(sched.submit(in).get().raw()[1], 9.0f);
    sched.drain();
}

} // anonymous namespace
} // namespace mokey
