/**
 * @file
 * Unit tests for the robustness primitives: the deterministic
 * FaultInjector (spec grammar, firing determinism, counters) and the
 * stall Watchdog (detection, recovery, idle exemption). Both are
 * exercised through PRIVATE instances so nothing here arms the
 * process-wide singletons or races the CI chaos sweep, which drives
 * the singletons through MOKEY_FAULT on other test binaries.
 */

#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "common/watchdog.hh"

namespace mokey
{
namespace
{

using namespace std::chrono_literals;

// ---------------------------------------------------------------
// FaultInjector: spec grammar
// ---------------------------------------------------------------

TEST(FaultSpec, ParsesEverySiteName)
{
    const char *names[] = {"engine",   "step",      "stepdelay",
                           "sched",    "sockread",  "sockwrite",
                           "sockreset"};
    for (const char *n : names) {
        FaultSite site;
        EXPECT_TRUE(FaultInjector::parseSite(n, site)) << n;
        EXPECT_STREQ(FaultInjector::name(site), n);
    }
    FaultSite site;
    EXPECT_FALSE(FaultInjector::parseSite("gpu", site));
    EXPECT_FALSE(FaultInjector::parseSite("", site));
    EXPECT_FALSE(FaultInjector::parseSite("ENGINE", site));
}

TEST(FaultSpec, ConfigureArmsSingleSite)
{
    FaultInjector fi;
    EXPECT_FALSE(fi.armed());
    fi.configure("engine:0.5:42");
    EXPECT_TRUE(fi.armed());
    EXPECT_TRUE(fi.armed(FaultSite::EngineDispatch));
    EXPECT_FALSE(fi.armed(FaultSite::StepThrow));
    fi.disarm();
    EXPECT_FALSE(fi.armed());
}

TEST(FaultSpec, ConfigureArmsMultipleSites)
{
    FaultInjector fi;
    fi.configure("engine:0.1:1,sockread:1.0:2,sched:0.25:3");
    EXPECT_TRUE(fi.armed(FaultSite::EngineDispatch));
    EXPECT_TRUE(fi.armed(FaultSite::SockRead));
    EXPECT_TRUE(fi.armed(FaultSite::SchedDelay));
    EXPECT_FALSE(fi.armed(FaultSite::SockWrite));
}

TEST(FaultSpec, JunkSpecsThrow)
{
    const char *junk[] = {
        "engine",          // missing rate+seed
        "engine:0.1",      // missing seed
        "engine:0.1:42:x", // trailing field
        "gpu:0.1:42",      // unknown site
        "engine:0:42",     // rate 0 is not "armed"
        "engine:-0.1:42",  // negative rate
        "engine:1.5:42",   // rate > 1
        "engine:abc:42",   // junk rate
        "engine:0.1:abc",  // junk seed
        "engine:0.1:-1",   // negative seed
        ",",               // empty entries
        "engine:0.1:42,",  // trailing empty entry
    };
    for (const char *spec : junk) {
        FaultInjector fi;
        EXPECT_THROW(fi.configure(spec), std::invalid_argument)
            << spec;
        EXPECT_FALSE(fi.armed()) << spec;
    }
}

// ---------------------------------------------------------------
// FaultInjector: deterministic firing
// ---------------------------------------------------------------

TEST(FaultFiring, MatchesThePurePredicate)
{
    // The k-th check of an armed site fires iff wouldFire(rate,
    // seed, k): the whole point of the design is that a test can
    // PREDICT the fault pattern, so verify prediction == observation
    // check by check.
    const double rate = 0.3;
    const uint64_t seed = 42;
    FaultInjector fi;
    fi.arm(FaultSite::StepThrow, rate, seed);
    for (uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(fi.shouldFire(FaultSite::StepThrow),
                  FaultInjector::wouldFire(rate, seed, k))
            << "check " << k;
    EXPECT_EQ(fi.checks(FaultSite::StepThrow), 1000u);
    uint64_t predicted = 0;
    for (uint64_t k = 0; k < 1000; ++k)
        predicted += FaultInjector::wouldFire(rate, seed, k) ? 1 : 0;
    EXPECT_EQ(fi.fired(FaultSite::StepThrow), predicted);
}

TEST(FaultFiring, RateOneAlwaysFiresAndRateIsRoughlyHonored)
{
    FaultInjector always;
    always.arm(FaultSite::EngineDispatch, 1.0, 7);
    for (int k = 0; k < 64; ++k)
        EXPECT_TRUE(always.shouldFire(FaultSite::EngineDispatch));

    // ~10% rate over 10k checks: the seeded hash should land within
    // a generous band (this is deterministic, not statistical — a
    // failure means the hash or threshold math changed).
    uint64_t fired = 0;
    for (uint64_t k = 0; k < 10000; ++k)
        fired += FaultInjector::wouldFire(0.10, 123, k) ? 1 : 0;
    EXPECT_GT(fired, 800u);
    EXPECT_LT(fired, 1200u);
}

TEST(FaultFiring, DifferentSeedsGiveDifferentPatterns)
{
    uint64_t differing = 0;
    for (uint64_t k = 0; k < 256; ++k)
        differing += FaultInjector::wouldFire(0.5, 1, k) !=
                             FaultInjector::wouldFire(0.5, 2, k)
                         ? 1
                         : 0;
    EXPECT_GT(differing, 0u);
}

TEST(FaultFiring, DisarmedSiteNeverFiresAndDisarmResetsCounters)
{
    FaultInjector fi;
    EXPECT_FALSE(fi.shouldFire(FaultSite::SockRead));
    fi.arm(FaultSite::SockRead, 1.0, 0);
    EXPECT_TRUE(fi.shouldFire(FaultSite::SockRead));
    EXPECT_EQ(fi.fired(FaultSite::SockRead), 1u);
    fi.disarm();
    EXPECT_FALSE(fi.shouldFire(FaultSite::SockRead));
    EXPECT_EQ(fi.fired(FaultSite::SockRead), 0u);
    EXPECT_EQ(fi.checks(FaultSite::SockRead), 0u);
}

TEST(FaultFiring, PrivateInstancesDoNotArmTheHotPath)
{
    // faultsArmed() is the production fast-path gate; only the
    // process-wide instance() may flip it. If the environment armed
    // the singleton (CI chaos sweep) this test cannot assert the
    // gate is off — skip the global half then.
    FaultInjector fi;
    fi.arm(FaultSite::EngineDispatch, 1.0, 0);
    if (!FaultInjector::instance().armed())
        EXPECT_FALSE(faultsArmed());
}

// ---------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------

TEST(WatchdogTest, FreshTaskIsHealthy)
{
    Watchdog wd;
    auto t = wd.monitor("loop", 50ms);
    EXPECT_TRUE(t.valid());
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.cause(), "");
}

TEST(WatchdogTest, BusyTaskPastBudgetStallsAndBeatRecovers)
{
    Watchdog wd;
    wd.setCheckInterval(10ms);
    auto t = wd.monitor("wedged-loop", 30ms);
    std::this_thread::sleep_for(80ms);

    // stalls() evaluates live timestamps: the stall is visible now,
    // not one monitor poll later.
    auto st = wd.stalls();
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0].task, "wedged-loop");
    EXPECT_GE(st[0].stalled.count(), 30);
    EXPECT_FALSE(wd.healthy());
    EXPECT_NE(wd.cause().find("wedged-loop"), std::string::npos);
    EXPECT_NE(wd.cause().find("stalled"), std::string::npos);

    // The monitor thread should have logged the transition by now.
    EXPECT_GE(wd.stallEvents(), 1u);

    t.beat();
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.cause(), "");
}

TEST(WatchdogTest, IdleTaskNeverStalls)
{
    Watchdog wd;
    auto t = wd.monitor("parked-loop", 20ms);
    t.idle();
    std::this_thread::sleep_for(60ms);
    EXPECT_TRUE(wd.healthy());

    // A beat flips back to busy; wedging after that is caught.
    t.beat();
    std::this_thread::sleep_for(60ms);
    EXPECT_FALSE(wd.healthy());
}

TEST(WatchdogTest, DestroyedTaskUnregisters)
{
    Watchdog wd;
    {
        auto t = wd.monitor("short-lived", 10ms);
        std::this_thread::sleep_for(40ms);
        EXPECT_FALSE(wd.healthy());
    }
    // The stalled slot died with its Task: healthy again.
    EXPECT_TRUE(wd.healthy());
}

TEST(WatchdogTest, MoveTransfersTheSlot)
{
    Watchdog wd;
    auto a = wd.monitor("mover", 20ms);
    Watchdog::Task b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    std::this_thread::sleep_for(60ms);
    EXPECT_FALSE(wd.healthy());
    b.beat();
    EXPECT_TRUE(wd.healthy());
}

TEST(WatchdogTest, WorstStallNamedInCause)
{
    Watchdog wd;
    auto young = wd.monitor("young", 20ms);
    auto old = wd.monitor("old", 20ms);
    std::this_thread::sleep_for(50ms);
    young.beat();
    std::this_thread::sleep_for(30ms);
    // Both are stalled now, but "old" has the older beat.
    ASSERT_EQ(wd.stalls().size(), 2u);
    EXPECT_NE(wd.cause().find("old"), std::string::npos);
}

} // namespace
} // namespace mokey
