/**
 * @file
 * Unit + property tests for the 1-D clustering substrate.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "clustering/agglomerative1d.hh"
#include "clustering/kmeans1d.hh"
#include "common/rng.hh"

namespace mokey
{
namespace
{

TEST(Agglomerative1d, SingleCluster)
{
    const std::vector<float> v{1, 2, 3, 4};
    const auto r = agglomerative1d(v, 1);
    ASSERT_EQ(r.centroids.size(), 1u);
    EXPECT_DOUBLE_EQ(r.centroids[0], 2.5);
    EXPECT_EQ(r.sizes[0], 4u);
}

TEST(Agglomerative1d, KEqualsNIsIdentity)
{
    const std::vector<float> v{4, 1, 3, 2};
    const auto r = agglomerative1d(v, 4);
    ASSERT_EQ(r.centroids.size(), 4u);
    EXPECT_DOUBLE_EQ(r.centroids[0], 1.0);
    EXPECT_DOUBLE_EQ(r.centroids[3], 4.0);
    EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(Agglomerative1d, ObviousTwoClusters)
{
    const std::vector<float> v{0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
    const auto r = agglomerative1d(v, 2);
    ASSERT_EQ(r.centroids.size(), 2u);
    EXPECT_NEAR(r.centroids[0], 0.1, 1e-6);
    EXPECT_NEAR(r.centroids[1], 10.1, 1e-6);
    EXPECT_EQ(r.sizes[0], 3u);
    EXPECT_EQ(r.sizes[1], 3u);
}

TEST(Agglomerative1d, CentroidsSortedAndSizesSum)
{
    Rng rng(17);
    const auto v = rng.gaussianVector(5000, 0.0, 1.0);
    const auto r = agglomerative1d(v, 16);
    ASSERT_EQ(r.centroids.size(), 16u);
    EXPECT_TRUE(std::is_sorted(r.centroids.begin(),
                               r.centroids.end()));
    size_t total = 0;
    for (size_t s : r.sizes)
        total += s;
    EXPECT_EQ(total, v.size());
}

TEST(Agglomerative1d, GaussianCentroidsRoughlySymmetric)
{
    Rng rng(23);
    const auto v = rng.gaussianVector(50000, 0.0, 1.0);
    const auto r = agglomerative1d(v, 16);
    // Mirrored magnitudes should be close for a symmetric source.
    for (size_t j = 0; j < 8; ++j) {
        const double pos = r.centroids[8 + j];
        const double neg = -r.centroids[7 - j];
        // Single-trial clustering is noisy; the golden-dictionary
        // averaging (tested in test_quant) tightens this further.
        EXPECT_NEAR(pos, neg, 0.4) << "pair " << j;
    }
}

TEST(Agglomerative1d, DenseCenterBins)
{
    // For a Gaussian, inner clusters hold more points than outer.
    Rng rng(29);
    const auto v = rng.gaussianVector(50000, 0.0, 1.0);
    const auto r = agglomerative1d(v, 16);
    const size_t inner = r.sizes[7] + r.sizes[8];
    const size_t outer = r.sizes[0] + r.sizes[15];
    EXPECT_GT(inner, outer);
}

TEST(Agglomerative1d, InertiaDecreasesWithK)
{
    Rng rng(31);
    const auto v = rng.gaussianVector(2000, 0.0, 1.0);
    double prev = agglomerative1d(v, 2).inertia;
    for (size_t k : {4u, 8u, 16u, 32u}) {
        const double cur = agglomerative1d(v, k).inertia;
        EXPECT_LT(cur, prev) << "k=" << k;
        prev = cur;
    }
}

TEST(Agglomerative1d, WardMatchesBruteForceSmall)
{
    // Brute-force greedy Ward merging on a small set must match the
    // heap implementation exactly.
    Rng rng(37);
    std::vector<float> v;
    for (int i = 0; i < 40; ++i)
        v.push_back(static_cast<float>(rng.uniform(-2.0, 2.0)));

    const auto fast = agglomerative1d(v, 5);

    // Brute force: clusters as (sum, n) pairs over sorted data.
    std::vector<float> s(v);
    std::sort(s.begin(), s.end());
    std::vector<std::pair<double, size_t>> cl;
    for (float x : s)
        cl.push_back({x, 1});
    while (cl.size() > 5) {
        size_t best = 0;
        double best_cost = 1e300;
        for (size_t i = 0; i + 1 < cl.size(); ++i) {
            const double ma = cl[i].first /
                static_cast<double>(cl[i].second);
            const double mb = cl[i + 1].first /
                static_cast<double>(cl[i + 1].second);
            const double cost = static_cast<double>(cl[i].second) *
                static_cast<double>(cl[i + 1].second) /
                static_cast<double>(cl[i].second + cl[i + 1].second) *
                (ma - mb) * (ma - mb);
            if (cost < best_cost) {
                best_cost = cost;
                best = i;
            }
        }
        cl[best].first += cl[best + 1].first;
        cl[best].second += cl[best + 1].second;
        cl.erase(cl.begin() + static_cast<long>(best) + 1);
    }
    ASSERT_EQ(fast.centroids.size(), cl.size());
    for (size_t i = 0; i < cl.size(); ++i) {
        EXPECT_NEAR(fast.centroids[i],
                    cl[i].first / static_cast<double>(cl[i].second),
                    1e-9);
    }
}

TEST(NearestCentroid, PicksClosest)
{
    const std::vector<double> c{-2.0, 0.0, 3.0};
    EXPECT_EQ(nearestCentroid(c, -5.0), 0u);
    EXPECT_EQ(nearestCentroid(c, -0.9), 1u);
    EXPECT_EQ(nearestCentroid(c, 1.6), 2u);
    EXPECT_EQ(nearestCentroid(c, 100.0), 2u);
}

TEST(NearestCentroid, TieGoesLow)
{
    const std::vector<double> c{0.0, 2.0};
    EXPECT_EQ(nearestCentroid(c, 1.0), 0u);
}

TEST(Kmeans1d, ObviousTwoClusters)
{
    const std::vector<float> v{0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
    const auto r = kmeans1d(v, 2);
    ASSERT_EQ(r.centroids.size(), 2u);
    EXPECT_NEAR(r.centroids[0], 0.1, 1e-6);
    EXPECT_NEAR(r.centroids[1], 10.1, 1e-6);
}

TEST(Kmeans1d, CentroidsSorted)
{
    Rng rng(41);
    const auto v = rng.gaussianVector(5000, 1.0, 2.0);
    const auto r = kmeans1d(v, 8);
    EXPECT_TRUE(std::is_sorted(r.centroids.begin(),
                               r.centroids.end()));
}

TEST(Kmeans1d, SeedSensitivity)
{
    // The paper's argument for agglomerative clustering: k-means
    // results depend on initialization. Different jitter seeds may
    // produce different inertia; the deterministic run must be
    // reproducible.
    Rng rng(43);
    const auto v = rng.gaussianVector(2000, 0.0, 1.0);
    const auto a = kmeans1d(v, 16);
    const auto b = kmeans1d(v, 16);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    for (size_t i = 0; i < a.centroids.size(); ++i)
        EXPECT_DOUBLE_EQ(a.centroids[i], b.centroids[i]);
}

TEST(Kmeans1d, ConvergesWellBeforeIterationCap)
{
    // Regression: the convergence check used an exact float compare
    // (mean != centroid), which needs ~230 sweeps to hit the exact
    // fixed point on this workload — past the default 100-iteration
    // cap, so every such run burned the cap. The span-relative
    // tolerance must terminate far earlier for both init schemes,
    // with a cap high enough that we measure convergence, not
    // clipping.
    Rng rng(59);
    const auto v = rng.gaussianVector(20000, 0.0, 1.0);
    const size_t cap = 1000;
    for (const uint64_t seed : {0ull, 7ull, 1234ull}) {
        const auto r = kmeans1d(v, 16, cap, seed);
        EXPECT_LT(r.iterations, 150u) << "seed " << seed;
        EXPECT_GE(r.iterations, 1u);
    }
}

TEST(Kmeans1d, IterationCapStillRespected)
{
    Rng rng(61);
    const auto v = rng.gaussianVector(5000, 0.0, 1.0);
    const auto r = kmeans1d(v, 32, 3);
    EXPECT_LE(r.iterations, 3u);
    ASSERT_EQ(r.centroids.size(), 32u);
}

TEST(Kmeans1d, InertiaNoWorseThanAgglomerativeStart)
{
    // Lloyd refinement should land near (often below) the
    // agglomerative inertia on smooth data.
    Rng rng(47);
    const auto v = rng.gaussianVector(20000, 0.0, 1.0);
    const auto km = kmeans1d(v, 16);
    const auto ac = agglomerative1d(v, 16);
    EXPECT_LT(km.inertia, ac.inertia * 1.5);
}

class ClusterCountSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ClusterCountSweep, SizesPartitionInput)
{
    Rng rng(53);
    const auto v = rng.gaussianVector(3000, 0.0, 1.0);
    const size_t k = GetParam();
    for (const auto &r : {agglomerative1d(v, k), kmeans1d(v, k)}) {
        ASSERT_EQ(r.centroids.size(), k);
        size_t total = 0;
        for (size_t s : r.sizes)
            total += s;
        EXPECT_EQ(total, v.size());
        EXPECT_TRUE(std::is_sorted(r.centroids.begin(),
                                   r.centroids.end()));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusterCountSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

} // anonymous namespace
} // namespace mokey
