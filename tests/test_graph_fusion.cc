/**
 * @file
 * Plane-to-plane layer-graph fusion tests: the fused forward walk
 * (MOKEY_GRAPH_FUSE) is a perf optimization, never a numerics change
 * — its outputs must match the layer-at-a-time path bit-for-bit
 * across engines x QuantMode x thread counts x lanes x encode paths
 * — and the self-calibrating per-site engine selection must be
 * deterministic once pinned: an enginePins() snapshot replayed via
 * pinEngines() reproduces identical engine choices and outputs.
 */

#include <string>
#include <thread>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "quant/engine.hh"
#include "tensor/ops.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

void
expectBitIdentical(const Tensor &a, const Tensor &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.raw()[i], b.raw()[i]) << what << " elem=" << i;
}

class GraphFusionFixture : public ::testing::Test
{
  protected:
    GraphFusionFixture()
        : model(tinyConfig(), 29),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 200 + i));
        pipeline.profileActivations(batch);
    }

    std::vector<Tensor>
    raggedInputs() const
    {
        std::vector<Tensor> inputs;
        const size_t lens[] = {9, 16, 1, 5};
        for (size_t i = 0; i < 4; ++i)
            inputs.push_back(model.makeInput(lens[i], 800 + i));
        return inputs;
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(GraphFusionFixture, KnobDefaults)
{
    // Unless the environment overrides them, graph fusion is on and
    // self-calibration is off (parity-first defaults).
    EXPECT_TRUE(graphFuse());
    EXPECT_FALSE(engineCalibration());
}

TEST_F(GraphFusionFixture, FusedForwardBitIdenticalToLayerAtATime)
{
    // The heart of the tentpole contract: chaining each GEMM's
    // epilogue and the next GEMM's re-quantization into the band
    // walk, reading precomputed fold sums, and hoisting the site
    // constants must all be invisible in the output bits.
    const Tensor in = model.makeInput(11, 471);
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const GraphFuseGuard graph_guard;
    const FusedEncodeGuard encode_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count, IndexEngine::Auto}) {
        setIndexEngine(engine);
        for (const QuantMode mode :
             {QuantMode::WeightsOnly,
              QuantMode::WeightsAndActivations}) {
            for (const bool fused_enc : {true, false}) {
                setFusedActEncode(fused_enc);

                setGraphFuse(false);
                setThreadCount(1);
                const Tensor ref = pipeline.forward(in, mode);

                setGraphFuse(true);
                for (const size_t t : {size_t{1}, size_t{2}, hw}) {
                    setThreadCount(t);
                    for (const Lane lane :
                         {Lane{}, Lane::acquire()}) {
                        expectBitIdentical(
                            ref, pipeline.forward(in, mode, lane),
                            std::string("engine=") +
                                indexEngineName(engine) + " mode=" +
                                std::to_string(
                                    static_cast<int>(mode)) +
                                " fused_enc=" +
                                std::to_string(fused_enc) +
                                " threads=" + std::to_string(t) +
                                " lane=" +
                                std::to_string(lane.id()));
                    }
                }
            }
        }
    }
}

TEST_F(GraphFusionFixture, FusedForwardBatchBitIdentical)
{
    // Batched serving takes the same fused walk over the stacked
    // row space; each ragged request must still come out bit-equal
    // to the unfused batch.
    const auto inputs = raggedInputs();
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const GraphFuseGuard graph_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count, IndexEngine::Auto}) {
        setIndexEngine(engine);
        setGraphFuse(false);
        setThreadCount(1);
        const auto refs = pipeline.forwardBatch(
            inputs, QuantMode::WeightsAndActivations);

        setGraphFuse(true);
        for (const size_t t : {size_t{1}, size_t{2}, hw}) {
            setThreadCount(t);
            const auto outs = pipeline.forwardBatch(
                inputs, QuantMode::WeightsAndActivations);
            ASSERT_EQ(outs.size(), refs.size());
            for (size_t i = 0; i < outs.size(); ++i)
                expectBitIdentical(
                    refs[i], outs[i],
                    std::string("engine=") + indexEngineName(engine) +
                        " threads=" + std::to_string(t) + " req=" +
                        std::to_string(i));
        }
    }
}

TEST_F(GraphFusionFixture, EnginePinsExposePerSiteProfile)
{
    // One entry per (layer, weight site), undecided until
    // calibration runs, reporting the process-wide selection.
    const auto pins = pipeline.enginePins();
    ASSERT_EQ(pins.size(), tinyConfig().layers * kGraphSiteCount);
    const char *expect[] = {"wq", "wk", "wv", "wo", "w1", "w2"};
    for (size_t i = 0; i < pins.size(); ++i) {
        EXPECT_EQ(pins[i].layer, i / kGraphSiteCount);
        EXPECT_EQ(pins[i].site, expect[i % kGraphSiteCount]);
        EXPECT_FALSE(pins[i].pinned);
        EXPECT_EQ(pins[i].engine, indexEngine());
    }
}

TEST_F(GraphFusionFixture, PinnedProfileMatchesFixedEngine)
{
    // Pinning every site to Count under MOKEY_ENGINE=auto must
    // reproduce the fixed-Count forward bit-for-bit: under Auto the
    // activation x activation GEMMs already resolve to counting, so
    // the pins decide every remaining (weight-site) GEMM.
    const Tensor in = model.makeInput(10, 913);
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const GraphFuseGuard graph_guard;
    setGraphFuse(true);
    setThreadCount(1);

    setIndexEngine(IndexEngine::Count);
    const Tensor ref =
        pipeline.forward(in, QuantMode::WeightsAndActivations);

    setIndexEngine(IndexEngine::Auto);
    auto pins = pipeline.enginePins();
    for (EnginePin &p : pins) {
        p.engine = IndexEngine::Count;
        p.pinned = true;
    }
    pipeline.pinEngines(pins);
    const auto applied = pipeline.enginePins();
    for (const EnginePin &p : applied) {
        EXPECT_TRUE(p.pinned);
        EXPECT_EQ(p.engine, IndexEngine::Count);
    }
    expectBitIdentical(
        ref, pipeline.forward(in, QuantMode::WeightsAndActivations),
        "auto+count pins vs fixed count");
}

TEST_F(GraphFusionFixture, CalibrationPinsEverySiteDeterministically)
{
    // Under MOKEY_CALIBRATE + MOKEY_ENGINE=auto, the first two fused
    // iterations profile mag vs count per site and pin the winner;
    // the pinned profile must (a) cover every site, (b) survive and
    // not drift over further forwards, and (c) replay exactly onto a
    // fresh pipeline via pinEngines(), making the calibrated choice
    // reproducible.
    const Tensor in = model.makeInput(12, 555);
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const GraphFuseGuard graph_guard;
    const CalibrateGuard calib_guard;
    setGraphFuse(true);
    setThreadCount(1);
    setIndexEngine(IndexEngine::Auto);
    setEngineCalibration(true);

    pipeline.forward(in, QuantMode::WeightsAndActivations);
    pipeline.forward(in, QuantMode::WeightsAndActivations);
    const auto pins = pipeline.enginePins();
    ASSERT_EQ(pins.size(), tinyConfig().layers * kGraphSiteCount);
    for (const EnginePin &p : pins) {
        EXPECT_TRUE(p.pinned) << "layer=" << p.layer << " " << p.site;
        EXPECT_NE(p.engine, IndexEngine::Auto);
    }

    // Further forwards run on the pinned profile: stable pins,
    // bit-identical repeated outputs.
    const Tensor a =
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    const Tensor b =
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    expectBitIdentical(a, b, "pinned forwards");
    const auto pins2 = pipeline.enginePins();
    ASSERT_EQ(pins2.size(), pins.size());
    for (size_t i = 0; i < pins.size(); ++i)
        EXPECT_EQ(pins[i].engine, pins2[i].engine) << i;

    // Replay the profile onto a second pipeline (calibration off):
    // identical engine choices, identical outputs.
    setEngineCalibration(false);
    QuantizedTransformer replay(model, quantizer);
    replay.quantizeWeights();
    std::vector<Tensor> batch;
    for (int i = 0; i < 4; ++i)
        batch.push_back(model.makeInput(16, 200 + i));
    replay.profileActivations(batch);
    replay.pinEngines(pins);
    const auto rp = replay.enginePins();
    ASSERT_EQ(rp.size(), pins.size());
    for (size_t i = 0; i < pins.size(); ++i) {
        EXPECT_TRUE(rp[i].pinned) << i;
        EXPECT_EQ(rp[i].engine, pins[i].engine) << i;
    }
    expectBitIdentical(
        a, replay.forward(in, QuantMode::WeightsAndActivations),
        "replayed profile");
}

TEST_F(GraphFusionFixture, AutoBudgetOverrideSteersDecisionTable)
{
    // The calibrated (or overridden) mag budget is what the Auto
    // decision table reads: a tiny budget routes even a small GEMM
    // to counting, a large one lets a resident mag plane win.
    const MagBudgetGuard budget_guard;
    const Tensor &src = model.weights()[0].wq;
    QuantizedTensor w =
        quantizer.encode(src, quantizer.buildDictionary(src));
    w.pinPlanes(PlaneSet::Mag);
    const auto fp = w.planesFootprint();
    ASSERT_TRUE(fp.resident && fp.magResident);

    setAutoMagBudgetBytes(1);
    EXPECT_EQ(autoMagBudgetBytes(), 1u);
    EXPECT_EQ(autoEngineChoice(4, w.rows(), w.cols(), fp),
              IndexEngine::Count);

    setAutoMagBudgetBytes(size_t{1} << 30);
    EXPECT_EQ(autoEngineChoice(4, w.rows(), w.cols(), fp),
              IndexEngine::Mag);

    // 0 re-resolves the default (constant; calibration is off).
    setAutoMagBudgetBytes(0);
    EXPECT_EQ(autoMagBudgetBytes(), kAutoMagBudgetBytes);
}

TEST_F(GraphFusionFixture, CalibratedBudgetProbeIsClampedAndCached)
{
    // The cache probe must land in the documented clamp range and be
    // stable across calls (cached per process).
    const size_t b0 = calibrateMagBudget();
    EXPECT_GE(b0, size_t{4} << 20);
    EXPECT_LE(b0, size_t{64} << 20);
    EXPECT_EQ(calibrateMagBudget(), b0);
}

} // anonymous namespace
} // namespace mokey
