/**
 * @file
 * Property tests for the index-domain GEMM (Eqs. 1-6) and the
 * integer-only pipeline (§II-F).
 *
 * The load-bearing property: the histogram decomposition plus the
 * OPP outlier corrections must reproduce the decode-then-multiply
 * reference *exactly* (to FP rounding), for any mix of Gaussian and
 * outlier codes and any tensor statistics.
 */

#include <cmath>
#include <thread>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "quant/fixed_pipeline.hh"
#include "quant/index_matmul.hh"
#include "quant/quantizer.hh"
#include "tensor/ops.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

struct Shape
{
    size_t m, n, k;
    double mean_a, std_a;
    double mean_w, std_w;
    double tail_frac;
};

class IndexMatmulProperty : public ::testing::TestWithParam<Shape>
{
  protected:
    IndexMatmulProperty() : exp(1.179, -0.977, 8), quantizer(exp) {}

    QuantizedTensor
    makeOperand(size_t rows, size_t cols, double mean, double stddev,
                double tail_frac, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<float> v =
            rng.gaussianVector(rows * cols, mean, stddev);
        const auto n_tail = static_cast<size_t>(
            tail_frac * static_cast<double>(v.size()));
        for (size_t i = 0; i < n_tail; ++i)
            v[rng.uniformInt(v.size())] = static_cast<float>(
                rng.gaussian(mean, 5.0 * stddev));
        Tensor t(rows, cols, v);
        const auto dict = quantizer.buildDictionary(t);
        return quantizer.encode(t, dict);
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_P(IndexMatmulProperty, MatchesDecodedReferenceExactly)
{
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 1000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 2000 + s.n);

    IndexMatmulStats stats;
    const Tensor fast = indexMatmulTransB(a, wt, &stats);
    const Tensor ref = decodedMatmulTransB(a, wt);

    // Tolerance scales with the magnitude of the accumulation.
    const double tol =
        1e-9 * std::max(1.0, frobeniusNorm(ref)) + 1e-6;
    EXPECT_LT(maxAbsDiff(fast, ref), tol);
    EXPECT_EQ(stats.gaussianPairs + stats.outlierPairs,
              static_cast<uint64_t>(s.m) * s.n * s.k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexMatmulProperty,
    ::testing::Values(
        Shape{4, 4, 16, 0.0, 1.0, 0.0, 0.02, 0.0},
        Shape{8, 8, 64, 0.0, 1.0, 0.0, 0.02, 0.02},
        Shape{3, 5, 33, 0.5, 0.3, -0.1, 0.05, 0.03},
        Shape{16, 8, 128, -2.0, 0.5, 1.0, 0.1, 0.05},
        Shape{1, 1, 256, 0.1, 1.5, -0.3, 0.02, 0.04},
        Shape{8, 16, 96, 3.0, 2.0, -1.5, 1.0, 0.02},
        Shape{12, 12, 48, 0.0, 0.01, 0.0, 10.0, 0.03}));

/**
 * Engine-specific coverage: the tiled/parallel kernel must be
 * bit-identical to its scalar path at every thread count, track the
 * seed reference algorithm, and keep its pair statistics invariant
 * under threading — all on deliberately outlier-heavy operands so
 * the OPP sidecar path is exercised hard.
 */
class EngineParity : public ::testing::TestWithParam<Shape>
{
  protected:
    EngineParity() : exp(1.179, -0.977, 8), quantizer(exp) {}

    QuantizedTensor
    makeOperand(size_t rows, size_t cols, double mean, double stddev,
                double tail_frac, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<float> v =
            rng.gaussianVector(rows * cols, mean, stddev);
        const auto n_tail = static_cast<size_t>(
            tail_frac * static_cast<double>(v.size()));
        for (size_t i = 0; i < n_tail; ++i)
            v[rng.uniformInt(v.size())] = static_cast<float>(
                rng.gaussian(mean, 5.0 * stddev));
        Tensor t(rows, cols, v);
        const auto dict = quantizer.buildDictionary(t);
        return quantizer.encode(t, dict);
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_P(EngineParity, TiledParallelBitIdenticalToScalar)
{
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 5000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    IndexMatmulStats scalar_stats;
    const Tensor scalar =
        indexMatmulTransBScalar(a, wt, &scalar_stats);

    const size_t original = threadCount();
    for (const size_t t : {1u, 2u, 5u}) {
        setThreadCount(t);
        IndexMatmulStats stats;
        const Tensor par = indexMatmulTransB(a, wt, &stats);
        // Bit-identical, not merely close: EXPECT_EQ on every float.
        for (size_t i = 0; i < scalar.size(); ++i)
            EXPECT_EQ(scalar.raw()[i], par.raw()[i])
                << "threads=" << t << " elem=" << i;
        EXPECT_EQ(stats.gaussianPairs, scalar_stats.gaussianPairs)
            << "threads=" << t;
        EXPECT_EQ(stats.outlierPairs, scalar_stats.outlierPairs)
            << "threads=" << t;
    }
    setThreadCount(original);
}

TEST_P(EngineParity, TracksSeedReferenceAlgorithm)
{
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 5000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    IndexMatmulStats ref_stats, eng_stats;
    const Tensor ref = indexMatmulTransBReference(a, wt, &ref_stats);
    const Tensor eng = indexMatmulTransB(a, wt, &eng_stats);

    const double tol =
        1e-9 * std::max(1.0, frobeniusNorm(ref)) + 1e-6;
    EXPECT_LT(maxAbsDiff(eng, ref), tol);
    // The engine routes exactly the same pairs to GPE vs OPP as the
    // seed per-element branch did.
    EXPECT_EQ(eng_stats.gaussianPairs, ref_stats.gaussianPairs);
    EXPECT_EQ(eng_stats.outlierPairs, ref_stats.outlierPairs);
}

TEST_P(EngineParity, FixedEngineBitIdenticalToScalar)
{
    // The fixed-point GEMM now fans out over row bands like the
    // float/index engines; being integer arithmetic, any reordering
    // bug would show up as an exact mismatch immediately.
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 7000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 8000 + s.n);
    const FixedFormat fmt{16, 8};

    IndexMatmulStats scalar_stats;
    const Tensor scalar =
        fixedIndexMatmulTransBScalar(a, wt, fmt, &scalar_stats);

    const size_t original = threadCount();
    for (const size_t t : {1u, 2u, 5u}) {
        setThreadCount(t);
        IndexMatmulStats stats;
        const Tensor par = fixedIndexMatmulTransB(a, wt, fmt, &stats);
        for (size_t i = 0; i < scalar.size(); ++i)
            EXPECT_EQ(scalar.raw()[i], par.raw()[i])
                << "threads=" << t << " elem=" << i;
        EXPECT_EQ(stats.gaussianPairs, scalar_stats.gaussianPairs)
            << "threads=" << t;
        EXPECT_EQ(stats.outlierPairs, scalar_stats.outlierPairs)
            << "threads=" << t;
    }
    setThreadCount(original);
}

TEST_P(EngineParity, BatchedGemmBitIdenticalToPerRequestCalls)
{
    // The serving entry point: stacking B activation blocks into one
    // engine invocation must reproduce each standalone product bit
    // for bit, and route exactly the same pair counts.
    const Shape s = GetParam();
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    // Ragged batch: four requests of different row counts sharing
    // one dictionary (encoded from one stacked tensor, then split).
    const size_t lens[] = {s.m, 1, std::max<size_t>(1, s.m / 2),
                           s.m + 3};
    size_t total = 0;
    for (const size_t l : lens)
        total += l;
    const auto stacked = makeOperand(total, s.k, s.mean_a, s.std_a,
                                     s.tail_frac, 5000 + s.m);
    std::vector<QuantizedTensor> blocks;
    size_t r0 = 0;
    for (const size_t l : lens) {
        QuantizedTensor b(l, s.k, stacked.dictionary());
        for (size_t r = 0; r < l; ++r)
            for (size_t c = 0; c < s.k; ++c)
                b.at(r, c) = stacked.at(r0 + r, c);
        blocks.push_back(std::move(b));
        r0 += l;
    }

    std::vector<const QuantizedTensor *> parts;
    for (const auto &b : blocks)
        parts.push_back(&b);

    // The batched entry point dispatches on the engine selector like
    // the plain one; the stacking property must hold for both.
    const EngineGuard engine_guard;
    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count}) {
        setIndexEngine(engine);
        IndexMatmulStats batch_stats;
        const auto outs =
            indexMatmulTransBBatched(parts, wt, &batch_stats);
        ASSERT_EQ(outs.size(), blocks.size());

        IndexMatmulStats seq_stats;
        for (size_t b = 0; b < blocks.size(); ++b) {
            const Tensor one =
                indexMatmulTransB(blocks[b], wt, &seq_stats);
            ASSERT_EQ(outs[b].rows(), one.rows());
            for (size_t i = 0; i < one.size(); ++i)
                EXPECT_EQ(one.raw()[i], outs[b].raw()[i])
                    << "engine=" << indexEngineName(engine)
                    << " block=" << b << " elem=" << i;
        }
        EXPECT_EQ(batch_stats.gaussianPairs, seq_stats.gaussianPairs);
        EXPECT_EQ(batch_stats.outlierPairs, seq_stats.outlierPairs);
    }
}

TEST_P(EngineParity, CountingBitIdenticalToScalarThreadsAndLanes)
{
    // The counting engine's load-bearing parity: for every thread
    // count (1, 2, hardware) and lane assignment, the byte-plane
    // histogram engine is bit-identical to indexMatmulTransBScalar
    // under the Count selection — per-output-element arithmetic
    // order is fixed, and the histogram phase is exact integers.
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 5000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    setIndexEngine(IndexEngine::Count);

    IndexMatmulStats scalar_stats;
    const Tensor scalar =
        indexMatmulTransBScalar(a, wt, &scalar_stats);

    // The selector-routed scalar path IS the counting scalar kernel.
    const Tensor explicit_scalar =
        indexMatmulTransBCountingScalar(a, wt);
    for (size_t i = 0; i < scalar.size(); ++i)
        ASSERT_EQ(scalar.raw()[i], explicit_scalar.raw()[i]);

    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());
    for (const size_t t : {size_t{1}, size_t{2}, hw}) {
        setThreadCount(t);
        for (const Lane lane : {Lane{}, Lane::acquire()}) {
            IndexMatmulStats stats;
            const Tensor par = indexMatmulTransB(a, wt, &stats, lane);
            for (size_t i = 0; i < scalar.size(); ++i)
                ASSERT_EQ(scalar.raw()[i], par.raw()[i])
                    << "threads=" << t << " lane=" << lane.id()
                    << " elem=" << i;
            EXPECT_EQ(stats.gaussianPairs,
                      scalar_stats.gaussianPairs)
                << "threads=" << t;
            EXPECT_EQ(stats.outlierPairs, scalar_stats.outlierPairs)
                << "threads=" << t;
        }
    }
}

TEST_P(EngineParity, CountingMatchesDecodedReference)
{
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 5000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    IndexMatmulStats stats;
    const Tensor count = indexMatmulTransBCounting(a, wt, &stats);
    const Tensor ref = decodedMatmulTransB(a, wt);

    const double tol =
        1e-9 * std::max(1.0, frobeniusNorm(ref)) + 1e-6;
    EXPECT_LT(maxAbsDiff(count, ref), tol);
    EXPECT_EQ(stats.gaussianPairs + stats.outlierPairs,
              static_cast<uint64_t>(s.m) * s.n * s.k);
}

TEST_P(EngineParity, CountingRoutesPairsLikeMagEngine)
{
    // Same algebra, different dataflow: both engines must route
    // exactly the same pairs to GPE vs OPP and agree numerically to
    // FP rounding.
    const Shape s = GetParam();
    const auto a = makeOperand(s.m, s.k, s.mean_a, s.std_a,
                               s.tail_frac, 5000 + s.m);
    const auto wt = makeOperand(s.n, s.k, s.mean_w, s.std_w,
                                s.tail_frac, 6000 + s.n);

    IndexMatmulStats mag_stats, count_stats;
    const Tensor mag = indexMatmulTransBMag(a, wt, &mag_stats);
    const Tensor count =
        indexMatmulTransBCounting(a, wt, &count_stats);

    EXPECT_EQ(count_stats.gaussianPairs, mag_stats.gaussianPairs);
    EXPECT_EQ(count_stats.outlierPairs, mag_stats.outlierPairs);
    const double tol =
        1e-9 * std::max(1.0, frobeniusNorm(mag)) + 1e-6;
    EXPECT_LT(maxAbsDiff(count, mag), tol);
}

INSTANTIATE_TEST_SUITE_P(
    OutlierHeavyShapes, EngineParity,
    ::testing::Values(
        Shape{16, 16, 64, 0.0, 1.0, 0.0, 0.05, 0.15},
        Shape{33, 17, 96, 0.4, 0.8, -0.2, 0.1, 0.25},
        Shape{8, 64, 128, -1.0, 2.0, 0.5, 0.5, 0.40},
        Shape{64, 8, 48, 0.0, 0.3, 0.0, 0.02, 0.0},
        Shape{5, 3, 300, 2.0, 1.0, -2.0, 0.7, 0.33}));

TEST(EngineSelector, DispatchesBothEntryPoints)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(661);
    Tensor ta(9, 80, rng.gaussianVector(720, 0.0, 1.0));
    Tensor tw(7, 80, rng.gaussianVector(560, 0.2, 0.7));
    const auto qa =
        quantizer.encode(ta, quantizer.buildDictionary(ta));
    const auto qw =
        quantizer.encode(tw, quantizer.buildDictionary(tw));

    const EngineGuard engine_guard;

    setIndexEngine(IndexEngine::Count);
    EXPECT_EQ(indexEngine(), IndexEngine::Count);
    const Tensor via_selector = indexMatmulTransB(qa, qw);
    const Tensor direct = indexMatmulTransBCounting(qa, qw);
    for (size_t i = 0; i < direct.size(); ++i)
        ASSERT_EQ(via_selector.raw()[i], direct.raw()[i]);

    setIndexEngine(IndexEngine::Mag);
    const Tensor mag_sel = indexMatmulTransB(qa, qw);
    const Tensor mag_direct = indexMatmulTransBMag(qa, qw);
    for (size_t i = 0; i < mag_direct.size(); ++i)
        ASSERT_EQ(mag_sel.raw()[i], mag_direct.raw()[i]);

    EXPECT_STREQ(indexEngineName(IndexEngine::Mag), "mag");
    EXPECT_STREQ(indexEngineName(IndexEngine::Count), "count");
    EXPECT_EQ(enginePlaneSet(IndexEngine::Mag), PlaneSet::Mag);
    EXPECT_EQ(enginePlaneSet(IndexEngine::Count), PlaneSet::Bytes);
}

TEST(EngineSelector, CountingStreamsOnlyBytePlanes)
{
    // The counting engine must not materialize the 8 B/element mag
    // plane — byte-traffic is its reason to exist.
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(663);
    Tensor ta(12, 128, rng.gaussianVector(12 * 128, 0.0, 1.0));
    Tensor tw(10, 128, rng.gaussianVector(10 * 128, 0.0, 1.0));
    const auto qa =
        quantizer.encode(ta, quantizer.buildDictionary(ta));
    const auto qw =
        quantizer.encode(tw, quantizer.buildDictionary(tw));

    indexMatmulTransBCounting(qa, qw);
    for (const QuantizedTensor *q : {&qa, &qw}) {
        const PlanesFootprint f = q->planesFootprint();
        EXPECT_TRUE(f.resident);
        EXPECT_TRUE(f.bytesResident);
        EXPECT_FALSE(f.magResident);
        EXPECT_LT(f.expansionRatio(), 4.0);
    }
}

TEST(AutoEngine, DecisionTable)
{
    // The MOKEY_ENGINE=auto heuristic as a pure decision table
    // (ROADMAP: "pick count when planes are cold or K is
    // DRAM-bound").
    PlanesFootprint cold; // nothing resident
    PlanesFootprint bytes_only;
    bytes_only.resident = true;
    bytes_only.bytesResident = true;
    PlanesFootprint mag_warm;
    mag_warm.resident = true;
    mag_warm.magResident = true;

    // Cold weight planes -> counting, regardless of shape.
    EXPECT_EQ(autoEngineChoice(16, 16, 64, cold),
              IndexEngine::Count);
    // Byte planes resident (a counting-engine pin) -> counting.
    EXPECT_EQ(autoEngineChoice(16, 16, 64, bytes_only),
              IndexEngine::Count);
    // Warm mag plane and a cache-resident working set -> mag.
    EXPECT_EQ(autoEngineChoice(16, 16, 64, mag_warm),
              IndexEngine::Mag);
    // DRAM-bound K: the streamed mag working set exceeds the budget
    // even though the mag plane is warm -> counting.
    const size_t huge_k =
        kAutoMagBudgetBytes / (2 * 64 * sizeof(double)) + 1;
    EXPECT_EQ(autoEngineChoice(64, 64, huge_k, mag_warm),
              IndexEngine::Count);
    // Exactly at the budget counts as resident.
    const size_t fit_k = kAutoMagBudgetBytes / (2 * 64 * 8);
    EXPECT_EQ(autoEngineChoice(64, 64, fit_k, mag_warm),
              IndexEngine::Mag);

    // Weight pinning policy: fixed engines pin what they stream;
    // Auto pins by the weight's own size.
    EXPECT_EQ(weightPlaneSet(IndexEngine::Mag, 4096, 4096),
              PlaneSet::Mag);
    EXPECT_EQ(weightPlaneSet(IndexEngine::Count, 16, 16),
              PlaneSet::Bytes);
    EXPECT_EQ(weightPlaneSet(IndexEngine::Auto, 64, 64),
              PlaneSet::Mag);
    const size_t big_n = kAutoMagBudgetBytes / (2 * 64 * 8) + 1;
    EXPECT_EQ(weightPlaneSet(IndexEngine::Auto, big_n, 64),
              PlaneSet::Bytes);

    EXPECT_STREQ(indexEngineName(IndexEngine::Auto), "auto");
    EXPECT_EQ(enginePlaneSet(IndexEngine::Auto), PlaneSet::Bytes);
}

TEST(AutoEngine, DispatchFollowsResolvedEngine)
{
    // Under MOKEY_ENGINE=auto the production entry point must route
    // each GEMM exactly where the decision table says: to the mag
    // engine when the weight's mag plane is warm, to counting when
    // the weight is cold — verified bit-for-bit against the explicit
    // engine entry points.
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(667);
    Tensor ta(9, 80, rng.gaussianVector(720, 0.0, 1.0));
    Tensor tw(7, 80, rng.gaussianVector(560, 0.2, 0.7));
    const auto qa =
        quantizer.encode(ta, quantizer.buildDictionary(ta));
    const auto qw =
        quantizer.encode(tw, quantizer.buildDictionary(tw));

    const EngineGuard engine_guard;
    setIndexEngine(IndexEngine::Auto);

    // Cold weight -> counting.
    EXPECT_EQ(resolveIndexEngine(qa, qw), IndexEngine::Count);
    const Tensor cold_out = indexMatmulTransB(qa, qw);
    const Tensor count_ref = indexMatmulTransBCounting(qa, qw);
    ASSERT_EQ(cold_out.raw(), count_ref.raw());

    // Pin the mag plane -> the same GEMM now resolves to mag.
    qw.pinPlanes(PlaneSet::Mag);
    EXPECT_EQ(resolveIndexEngine(qa, qw), IndexEngine::Mag);
    const Tensor warm_out = indexMatmulTransB(qa, qw);
    const Tensor mag_ref = indexMatmulTransBMag(qa, qw);
    ASSERT_EQ(warm_out.raw(), mag_ref.raw());

    // The scalar pin dispatches identically.
    ASSERT_EQ(indexMatmulTransBScalar(qa, qw).raw(),
              warm_out.raw());

    // A fixed selection bypasses the heuristic entirely.
    setIndexEngine(IndexEngine::Count);
    EXPECT_EQ(resolveIndexEngine(qa, qw), IndexEngine::Count);
}

TEST(FusedEncodeGemm, BitIdenticalToUnfusedPerEngine)
{
    // The engines consume only planes + dictionary, and the fused
    // encoder's planes are bit-identical to the derived ones — so
    // GEMMs over fused-encoded activations must match GEMMs over
    // encode()d ones bit-for-bit, per engine, across thread counts
    // and lanes.
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(669);
    Tensor ta(22, 112, rng.gaussianVector(22 * 112, 0.1, 1.2));
    Tensor tw(17, 112, rng.gaussianVector(17 * 112, 0.0, 0.4));
    for (size_t i = 0; i < ta.size(); i += 61)
        ta.raw()[i] = (i % 2) ? 8.0f : -7.5f; // force outliers
    const auto da = quantizer.buildDictionary(ta);
    const auto dw = quantizer.buildDictionary(tw);
    const auto qa_ref = quantizer.encode(ta, da);
    const auto qw = quantizer.encode(tw, dw);

    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count, IndexEngine::Auto}) {
        setIndexEngine(engine);
        setThreadCount(1);
        const Tensor ref = indexMatmulTransB(qa_ref, qw);
        for (const size_t t : {size_t{1}, size_t{2}, hw}) {
            setThreadCount(t);
            for (const Lane lane : {Lane{}, Lane::acquire()}) {
                const auto qa_fused = quantizer.encodeToPlanes(
                    ta, da,
                    enginePlaneSet(engine == IndexEngine::Auto
                                       ? IndexEngine::Count
                                       : engine),
                    lane);
                const Tensor out =
                    indexMatmulTransB(qa_fused, qw, nullptr, lane);
                ASSERT_EQ(out.raw(), ref.raw())
                    << "engine=" << indexEngineName(engine)
                    << " threads=" << t << " lane=" << lane.id();
            }
        }
    }
}

TEST(EngineDeterminism, StatsInvariantAcrossThreadCounts)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(977);
    Tensor ta(40, 120, rng.gaussianVector(4800, 0.0, 1.0));
    Tensor tw(24, 120, rng.gaussianVector(2880, 0.0, 1.0));
    const auto qa = quantizer.encode(ta, quantizer.buildDictionary(ta));
    const auto qw = quantizer.encode(tw, quantizer.buildDictionary(tw));

    const size_t original = threadCount();
    IndexMatmulStats first;
    indexMatmulTransB(qa, qw, &first);
    EXPECT_EQ(first.gaussianPairs + first.outlierPairs,
              40u * 24u * 120u);
    for (const size_t t : {1u, 3u, 8u}) {
        setThreadCount(t);
        IndexMatmulStats stats;
        indexMatmulTransB(qa, qw, &stats);
        EXPECT_EQ(stats.gaussianPairs, first.gaussianPairs);
        EXPECT_EQ(stats.outlierPairs, first.outlierPairs);
    }
    setThreadCount(original);
}

TEST(CodePlanesView, MatchesCodes)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(983);
    Tensor t(13, 57, rng.gaussianVector(13 * 57, 0.0, 1.5));
    auto q = quantizer.encode(t, quantizer.buildDictionary(t));

    // Const view only: a non-const accessor would (correctly) drop
    // the cached planes out from under the reference.
    const QuantizedTensor &cq = q;
    const CodePlanes &p = cq.planes();
    ASSERT_EQ(p.rows, cq.rows());
    ASSERT_EQ(p.cols, cq.cols());
    size_t outliers = 0;
    for (size_t r = 0; r < cq.rows(); ++r) {
        const auto *ot = p.outlierRow(r);
        size_t seen = 0;
        for (size_t c = 0; c < cq.cols(); ++c) {
            const QCode code = cq.at(r, c);
            if (code.isOutlier()) {
                EXPECT_EQ(p.thetaRow(r)[c], 0);
                ASSERT_LT(seen, p.outlierCount(r));
                EXPECT_EQ(ot[seen].col, c);
                EXPECT_DOUBLE_EQ(ot[seen].value, cq.decodeAt(r, c));
                ++seen;
            } else {
                EXPECT_EQ(p.indexRow(r)[c], code.index());
                EXPECT_EQ(p.thetaRow(r)[c], code.theta());
            }
        }
        EXPECT_EQ(seen, p.outlierCount(r));
        outliers += seen;
    }
    EXPECT_EQ(outliers, p.outliers.size());

    // Mutating the codes must invalidate the cached view.
    const size_t before = p.outliers.size();
    bool flipped = false;
    for (auto &c : q.raw()) {
        if (c.isOutlier()) {
            c = QCode::gaussian(false, 0);
            flipped = true;
            break;
        }
    }
    if (flipped)
        EXPECT_EQ(q.planes().outliers.size(), before - 1);
}

class IndexDotFixture : public ::testing::Test
{
  protected:
    IndexDotFixture() : exp(1.179, -0.977, 8), quantizer(exp) {}

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_F(IndexDotFixture, AllGaussianUsesNoOpp)
{
    Rng rng(171);
    Tensor ta(1, 64, rng.gaussianVector(64, 0.0, 1.0));
    Tensor tw(1, 64, rng.gaussianVector(64, 0.0, 1.0));
    auto da = quantizer.buildDictionary(ta);
    auto dw = quantizer.buildDictionary(tw);
    auto qa = quantizer.encode(ta, da);
    auto qw = quantizer.encode(tw, dw);
    // Clear any outliers so every pair takes the GPE path.
    for (auto &c : qa.raw())
        if (c.isOutlier())
            c = QCode::gaussian(false, 7);
    for (auto &c : qw.raw())
        if (c.isOutlier())
            c = QCode::gaussian(true, 7);

    IndexMatmulStats st;
    const auto ca = vectorConstants(qa.row(0), 64, exp);
    const auto cw = vectorConstants(qw.row(0), 64, exp);
    indexDot(qa.row(0), qa.dictionary(), qw.row(0), qw.dictionary(),
             64, ca, cw, &st);
    EXPECT_EQ(st.outlierPairs, 0u);
    EXPECT_EQ(st.gaussianPairs, 64u);
}

TEST_F(IndexDotFixture, CrfCountsAreConsistent)
{
    Rng rng(173);
    Tensor ta(1, 200, rng.gaussianVector(200, 0.0, 1.0));
    Tensor tw(1, 200, rng.gaussianVector(200, 0.0, 1.0));
    auto da = quantizer.buildDictionary(ta);
    auto dw = quantizer.buildDictionary(tw);
    auto qa = quantizer.encode(ta, da);
    auto qw = quantizer.encode(tw, dw);

    IndexMatmulStats st;
    CrfState crf;
    const auto ca = vectorConstants(qa.row(0), 200, exp);
    const auto cw = vectorConstants(qw.row(0), 200, exp);
    indexDot(qa.row(0), da, qw.row(0), dw, 200, ca, cw, &st, &crf);

    // Sum of |soi| counts can't exceed the Gaussian pair count, and
    // the total signed count must equal pom1 in every CRF.
    int64_t soi_signed = 0, abs_total = 0;
    for (int32_t c : crf.soi) {
        soi_signed += c;
        abs_total += std::abs(c);
    }
    EXPECT_LE(abs_total, static_cast<int64_t>(st.gaussianPairs));
    EXPECT_EQ(soi_signed, crf.pom1);
    int64_t soa_signed = 0, sow_signed = 0;
    for (int32_t c : crf.soa1)
        soa_signed += c;
    for (int32_t c : crf.sow1)
        sow_signed += c;
    EXPECT_EQ(soa_signed, crf.pom1);
    EXPECT_EQ(sow_signed, crf.pom1);
}

TEST_F(IndexDotFixture, VectorConstantsMatchBruteForce)
{
    Rng rng(179);
    Tensor t(1, 300, rng.gaussianVector(300, 0.3, 1.2));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    const auto c = vectorConstants(q.row(0), 300, exp);

    double soa2 = 0.0, pom2 = 0.0;
    for (size_t i = 0; i < 300; ++i) {
        const QCode code = q.at(0, i);
        if (code.isOutlier())
            continue;
        const double p = std::pow(exp.a(), code.index());
        soa2 += code.theta() * p;
        pom2 += code.theta();
    }
    EXPECT_NEAR(c.soa2, soa2, 1e-9);
    EXPECT_NEAR(c.pom2, pom2, 1e-12);
}

TEST_F(IndexDotFixture, QuantizedGemmTracksFloatGemm)
{
    // End-to-end sanity: quantize A and W, multiply in the index
    // domain, compare against the FP32 GEMM of the *original*
    // tensors — the quantization error should be small relative to
    // the output magnitude.
    Rng rng(181);
    const size_t m = 16, n = 16, k = 256;
    Tensor a(m, k, rng.gaussianVector(m * k, 0.0, 1.0));
    Tensor w(n, k, rng.gaussianVector(n * k, 0.0, 0.05));

    auto da = quantizer.buildDictionary(a);
    auto dw = quantizer.buildDictionary(w);
    const auto qa = quantizer.encode(a, da);
    const auto qw = quantizer.encode(w, dw);

    const Tensor qout = indexMatmulTransB(qa, qw);
    const Tensor fout = matmulTransB(a, w);

    const double rel = maxAbsDiff(qout, fout) /
        (frobeniusNorm(fout) /
         std::sqrt(static_cast<double>(m * n)));
    EXPECT_LT(rel, 0.5); // bounded relative error per output
    EXPECT_GT(frobeniusNorm(qout), 0.5 * frobeniusNorm(fout));
}

TEST_F(IndexDotFixture, MismatchedExpDictionariesPanic)
{
    Rng rng(191);
    Tensor t(1, 8, rng.gaussianVector(8, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);

    ExpDictionary other(1.3, -0.9, 8);
    Quantizer qz2(other);
    const auto dict2 = qz2.buildDictionary(t);
    const auto q2 = qz2.encode(t, dict2);

    const auto ca = vectorConstants(q.row(0), 8, exp);
    EXPECT_DEATH(indexDot(q.row(0), dict, q2.row(0), dict2, 8, ca,
                          ca),
                 "different exponential dictionaries");
}

class FixedPipelineProperty : public ::testing::TestWithParam<Shape>
{
  protected:
    FixedPipelineProperty() : exp(1.179, -0.977, 8), quantizer(exp) {}

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_P(FixedPipelineProperty, TracksFloatIndexDot)
{
    const Shape s = GetParam();
    Rng rng(7000 + s.k);

    Tensor ta(s.m, s.k,
              rng.gaussianVector(s.m * s.k, s.mean_a, s.std_a));
    Tensor tw(s.n, s.k,
              rng.gaussianVector(s.n * s.k, s.mean_w, s.std_w));
    auto da = quantizer.buildDictionary(ta);
    auto dw = quantizer.buildDictionary(tw);
    const auto qa = quantizer.encode(ta, da);
    const auto qw = quantizer.encode(tw, dw);

    const Tensor fl = indexMatmulTransB(qa, qw);
    // Output format sized from the float result's observed range.
    double mx = 1e-6;
    for (float v : fl.raw())
        mx = std::max(mx, std::abs(static_cast<double>(v)));
    const auto out_fmt = FixedFormat::forRange(16, -mx, mx);

    const Tensor fx = fixedIndexMatmulTransB(qa, qw, out_fmt);

    // The integer pipeline quantizes the eight scaling coefficients
    // to 16 b; partially cancelling large terms amplify that
    // rounding, so the achievable bound is a few percent of full
    // scale — consistent with 16 b fixed-point arithmetic.
    const double tol = 0.06 * mx + 2.0 * out_fmt.resolution();
    EXPECT_LT(maxAbsDiff(fx, fl), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FixedPipelineProperty,
    ::testing::Values(
        Shape{4, 4, 32, 0.0, 1.0, 0.0, 0.02, 0.0},
        Shape{8, 8, 64, 0.5, 0.3, -0.1, 0.05, 0.0},
        Shape{6, 6, 128, -1.0, 0.5, 0.5, 0.2, 0.0},
        Shape{2, 3, 512, 0.0, 2.0, 0.0, 1.0, 0.0}));

TEST_F(IndexDotFixture, FixedPipelineSaturatesGracefully)
{
    // Deliberately tiny output format: results must clamp, not wrap.
    Rng rng(193);
    Tensor ta(2, 64, rng.gaussianVector(128, 0.0, 1.0));
    Tensor tw(2, 64, rng.gaussianVector(128, 0.0, 1.0));
    auto da = quantizer.buildDictionary(ta);
    auto dw = quantizer.buildDictionary(tw);
    const auto qa = quantizer.encode(ta, da);
    const auto qw = quantizer.encode(tw, dw);

    const FixedFormat tiny{16, 20}; // max value ~0.03
    const Tensor fx = fixedIndexMatmulTransB(qa, qw, tiny);
    for (float v : fx.raw()) {
        EXPECT_LE(v, static_cast<float>(tiny.maxValue()) + 1e-9);
        EXPECT_GE(v, static_cast<float>(tiny.minValue()) - 1e-9);
    }
}

TEST_F(IndexDotFixture, FixedVectorConstantsMatchFloat)
{
    Rng rng(197);
    Tensor t(1, 256, rng.gaussianVector(256, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);

    FixedIndexEngine eng(dict, dict, FixedFormat{16, 8});
    const auto fc = eng.vectorConstants(q.row(0), 256);
    const auto flc = vectorConstants(q.row(0), 256, exp);

    const double soa2 =
        fromFixedRaw(fc.soa2Raw, eng.baseFormat());
    EXPECT_NEAR(soa2, flc.soa2, 256 * eng.baseFormat().resolution());
    EXPECT_DOUBLE_EQ(static_cast<double>(fc.pom2), flc.pom2);
}

TEST(GemmConstantsCache, HitsReturnBitIdenticalConstants)
{
    // The attention act×act hoisting path: a cached lookup must be
    // indistinguishable from a fresh derivation for every field, for
    // several (dictionary, K) combinations, repeated so the second
    // round is served from the LRU.
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(77);
    std::vector<TensorDictionary> dicts;
    for (int d = 0; d < 3; ++d) {
        Tensor t(8, 64,
                 rng.gaussianVector(8 * 64, 0.3 * d, 1.0 + d));
        dicts.push_back(quantizer.buildDictionary(t));
    }

    const uint64_t h0 = gemmConstantsCacheHits();
    for (int round = 0; round < 2; ++round) {
        for (const auto &da : dicts) {
            for (const auto &dw : dicts) {
                for (const size_t k : {4u, 24u, 96u}) {
                    const GemmConstants fresh =
                        gemmConstants(da, dw, k);
                    const GemmConstants cached =
                        cachedGemmConstants(da, dw, k);
                    EXPECT_EQ(fresh.k, cached.k);
                    EXPECT_EQ(fresh.sA, cached.sA);
                    EXPECT_EQ(fresh.sW, cached.sW);
                    EXPECT_EQ(fresh.mA, cached.mA);
                    EXPECT_EQ(fresh.mW, cached.mW);
                    EXPECT_EQ(fresh.c0, cached.c0);
                    EXPECT_EQ(fresh.constTerm, cached.constTerm);
                    EXPECT_EQ(fresh.mags, cached.mags);
                    EXPECT_EQ(fresh.prod, cached.prod);
                }
            }
        }
    }
    // Round 2 re-asks for every key just inserted by round 1: at
    // least those 27 lookups must be hits.
    EXPECT_GE(gemmConstantsCacheHits() - h0, 27u);
}

TEST(GemmConstantsCache, EvictionKeepsResultsExact)
{
    // Far more live K values than the cache holds: every lookup must
    // still match a fresh derivation even while entries churn.
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer quantizer(exp);
    Rng rng(78);
    Tensor t(8, 64, rng.gaussianVector(8 * 64, 0.0, 1.0));
    const TensorDictionary dict = quantizer.buildDictionary(t);
    for (size_t k = 1; k <= 256; ++k) {
        const GemmConstants fresh = gemmConstants(dict, dict, k);
        const GemmConstants cached =
            cachedGemmConstants(dict, dict, k);
        EXPECT_EQ(fresh.constTerm, cached.constTerm) << "k=" << k;
        EXPECT_EQ(fresh.prod, cached.prod) << "k=" << k;
        EXPECT_EQ(fresh.k, cached.k) << "k=" << k;
    }
}

} // anonymous namespace
} // namespace mokey
