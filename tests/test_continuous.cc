/**
 * @file
 * Continuous-scheduler tests: iteration-level batching must be a
 * scheduling change only. Whatever join/leave schedule the step loop
 * ends up running — across engines, quantization modes, thread
 * counts, and work-stealing on or off — every response must be
 * bit-identical to a one-shot forward of that request, a poisoned
 * request must fail alone, and the two-class policy must meter
 * prefill work exactly as configured.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "model/config.hh"
#include "model/continuous_scheduler.hh"
#include "model/pipeline.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

void
expectBitIdentical(const Tensor &a, const Tensor &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.raw()[i], b.raw()[i]) << what << " elem=" << i;
}

/** Restores the work-stealing knob even when an assertion bails. */
struct StealGuard
{
    bool prior = laneStealing();
    ~StealGuard() { setLaneStealing(prior); }
};

class ContinuousFixture : public ::testing::Test
{
  protected:
    ContinuousFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    /** Ragged serving mix: decode-sized and prefill-sized requests
     *  interleaved, so both classes are exercised. */
    std::vector<Tensor>
    raggedInputs() const
    {
        std::vector<Tensor> inputs;
        const size_t lens[] = {7, 1, 16, 2, 12, 1, 3, 9};
        for (size_t i = 0; i < 8; ++i)
            inputs.push_back(model.makeInput(lens[i], 700 + i));
        return inputs;
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(ContinuousFixture, BitIdenticalAcrossEnginesModesAndThreads)
{
    const auto inputs = raggedInputs();
    const EngineGuard engine_guard;
    const ThreadCountGuard thread_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    for (const IndexEngine engine :
         {IndexEngine::Mag, IndexEngine::Count, IndexEngine::Auto}) {
        setIndexEngine(engine);
        for (const QuantMode mode :
             {QuantMode::WeightsOnly,
              QuantMode::WeightsAndActivations}) {
            // One-shot references, computed single-threaded.
            setThreadCount(1);
            std::vector<Tensor> refs;
            for (const Tensor &in : inputs)
                refs.push_back(pipeline.forward(in, mode));

            for (const size_t t : {size_t{1}, size_t{2}, hw}) {
                setThreadCount(t);
                // Small maxBatch + tight chunk budget force real
                // join/leave churn and prefill deferrals: requests
                // enter the running batch as slots free up and at
                // different layers.
                ContinuousSchedulerConfig cfg;
                cfg.maxBatch = 3;
                cfg.decodeMaxRows = 2;
                cfg.chunkTokens = 16;
                ContinuousScheduler sched(pipeline, mode, cfg);
                std::vector<std::future<Tensor>> futs;
                for (const Tensor &in : inputs)
                    futs.push_back(sched.submit(Tensor(in)));
                for (size_t i = 0; i < futs.size(); ++i)
                    expectBitIdentical(
                        refs[i], futs[i].get(),
                        std::string("engine=") +
                            indexEngineName(engine) + " mode=" +
                            std::to_string(static_cast<int>(mode)) +
                            " threads=" + std::to_string(t) +
                            " req=" + std::to_string(i));
                // Futures resolve before the step thread merges
                // its counters; drain() orders the snapshot.
                sched.drain();
                const auto st = sched.stats();
                EXPECT_EQ(st.completed, inputs.size());
                EXPECT_EQ(st.failedRequests, 0u);
            }
        }
    }
}

TEST_F(ContinuousFixture, StaggeredJoinsStayBitIdentical)
{
    // Requests arriving while earlier ones are mid-pass join the
    // running batch at layer 0 — co-batched groups then mix layers
    // and classes — and every response still matches the one-shot
    // forward bit for bit, with stealing both off and on.
    const auto inputs = raggedInputs();
    const QuantMode mode = QuantMode::WeightsAndActivations;
    const ThreadCountGuard thread_guard;
    const StealGuard steal_guard;
    setThreadCount(1);
    std::vector<Tensor> refs;
    for (const Tensor &in : inputs)
        refs.push_back(pipeline.forward(in, mode));
    setThreadCount(4);

    for (const bool steal : {false, true}) {
        setLaneStealing(steal);
        ContinuousSchedulerConfig cfg;
        cfg.maxBatch = 4;
        cfg.decodeMaxRows = 2;
        cfg.chunkTokens = 12;
        ContinuousScheduler sched(pipeline, mode, cfg);
        std::vector<std::future<Tensor>> futs;
        for (size_t i = 0; i < inputs.size(); ++i) {
            futs.push_back(sched.submit(Tensor(inputs[i])));
            if (i % 3 == 2)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
        }
        for (size_t i = 0; i < futs.size(); ++i)
            expectBitIdentical(refs[i], futs[i].get(),
                               "steal=" + std::to_string(steal) +
                                   " req=" + std::to_string(i));
    }
}

/** Step stub: adds 1 to every element per layer; throws on requests
 *  whose first element carries the poison marker. */
struct StubStep
{
    static constexpr float kPoison = 1e6f;

    std::atomic<uint64_t> calls{0};

    Tensor
    operator()(size_t, const Tensor &stacked,
               const std::vector<size_t> &starts, QuantMode, Lane)
    {
        ++calls;
        for (size_t s = 0; s + 1 < starts.size(); ++s)
            if (stacked.at(starts[s], 0) >= kPoison)
                throw std::runtime_error("poisoned request");
        Tensor out(stacked.rows(), stacked.cols());
        for (size_t i = 0; i < stacked.size(); ++i)
            out.raw()[i] = stacked.raw()[i] + 1.0f;
        return out;
    }
};

Tensor
constTensor(size_t rows, size_t cols, float v)
{
    Tensor t(rows, cols);
    for (size_t i = 0; i < t.size(); ++i)
        t.raw()[i] = v;
    return t;
}

TEST(ContinuousScheduling, PoisonedRequestFailsAloneMidStream)
{
    constexpr size_t kSteps = 3;
    constexpr float kBlock = 100.0f;
    StubStep stub;
    std::atomic<bool> release{false};
    ContinuousSchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.decodeMaxRows = 2;
    ContinuousScheduler sched(
        [&stub, &release](size_t l, const Tensor &x,
                          const std::vector<size_t> &s, QuantMode m,
                          Lane ln) {
            // The blocker request parks the step loop until the
            // test has queued the whole wave, so the wave is
            // admitted together and stacks into one group.
            if (x.at(0, 0) >= kBlock &&
                x.at(0, 0) < StubStep::kPoison)
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, cfg);

    auto blocker = sched.submit(constTensor(1, 4, kBlock));
    // Good requests around the poisoned one, same decode class and
    // (once admitted together) the same layer, so they stack into
    // one group and the group throw must be isolated by individual
    // retries.
    auto good0 = sched.submit(constTensor(2, 4, 1.0f));
    auto bad = sched.submit(constTensor(2, 4, StubStep::kPoison));
    auto good1 = sched.submit(constTensor(2, 4, 5.0f));
    release.store(true);

    EXPECT_EQ(blocker.get().raw()[0], kBlock + kSteps);
    const Tensor out0 = good0.get();
    EXPECT_EQ(out0.raw()[0], 1.0f + kSteps);
    EXPECT_THROW(bad.get(), std::runtime_error);
    const Tensor out1 = good1.get();
    EXPECT_EQ(out1.raw()[0], 5.0f + kSteps);

    // The scheduler keeps serving after the poison.
    auto after = sched.submit(constTensor(1, 4, 2.0f));
    EXPECT_EQ(after.get().raw()[0], 2.0f + kSteps);

    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.completed, 4u);
    EXPECT_EQ(st.failedRequests, 1u);
    EXPECT_GE(st.isolationRetries, 2u)
        << "the group throw was not isolated by individual retries";
    EXPECT_EQ(sched.queueDepth(), 0u);
}

TEST(ContinuousScheduling, ChunkBudgetDefersPrefillButNeverStarves)
{
    constexpr size_t kSteps = 4;
    constexpr float kBlock = 100.0f;
    StubStep stub;
    std::atomic<bool> release{false};
    ContinuousSchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.decodeMaxRows = 2;
    cfg.chunkTokens = 8; // one 8-row prefill per iteration
    ContinuousScheduler sched(
        [&stub, &release](size_t l, const Tensor &x,
                          const std::vector<size_t> &s, QuantMode m,
                          Lane ln) {
            if (x.at(0, 0) >= kBlock)
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, cfg);

    // Two 8-row prefills compete for an 8-row budget; decodes ride
    // along with priority. The blocker keeps the step loop parked
    // until the whole mix is queued, so both prefills are
    // co-resident from the first scheduling decision on.
    auto blocker = sched.submit(constTensor(1, 4, kBlock));
    std::vector<std::future<Tensor>> futs;
    futs.push_back(sched.submit(constTensor(8, 4, 1.0f)));
    futs.push_back(sched.submit(constTensor(8, 4, 2.0f)));
    futs.push_back(sched.submit(constTensor(1, 4, 3.0f)));
    futs.push_back(sched.submit(constTensor(1, 4, 4.0f)));
    release.store(true);
    EXPECT_EQ(blocker.get().raw()[0], kBlock + kSteps);
    for (size_t i = 0; i < futs.size(); ++i) {
        const Tensor out = futs[i].get();
        EXPECT_EQ(out.raw()[0],
                  static_cast<float>(i + 1) + kSteps)
            << "req=" << i;
    }
    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.completed, 5u);
    EXPECT_GE(st.prefillDeferrals, 1u)
        << "budget never held a prefill back";
    EXPECT_GE(st.decodeSteps, 1u);
    EXPECT_GE(st.prefillSteps, 2u * kSteps)
        << "deferred prefills must still advance every layer";
    EXPECT_EQ(st.failedRequests, 0u);
}

TEST(ContinuousScheduling, DecodePriorityOffMeltsClasses)
{
    constexpr size_t kSteps = 2;
    StubStep stub;
    ContinuousSchedulerConfig cfg;
    cfg.decodeMaxRows = 2;
    cfg.decodePriority = false;
    ContinuousScheduler sched(
        [&stub](size_t l, const Tensor &x,
                const std::vector<size_t> &s, QuantMode m, Lane ln) {
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, cfg);

    auto small = sched.submit(constTensor(1, 4, 1.0f));
    auto large = sched.submit(constTensor(16, 4, 2.0f));
    EXPECT_EQ(small.get().raw()[0], 1.0f + kSteps);
    EXPECT_EQ(large.get().raw()[0], 2.0f + kSteps);
    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.decodeSteps, 0u)
        << "priority off must leave a single class";
    EXPECT_GE(st.prefillSteps, 1u);
}

TEST(ContinuousScheduling, RejectsStoppedAndEmptySubmits)
{
    StubStep stub;
    ContinuousScheduler sched(
        [&stub](size_t l, const Tensor &x,
                const std::vector<size_t> &s, QuantMode m, Lane ln) {
            return stub(l, x, s, m, ln);
        },
        2, QuantMode::WeightsAndActivations, {});

    auto empty = sched.submit(Tensor{});
    EXPECT_THROW(empty.get(), std::runtime_error);

    // Queued work still completes across stop() (shutdown flush).
    auto queued = sched.submit(constTensor(1, 4, 7.0f));
    sched.stop();
    EXPECT_EQ(queued.get().raw()[0], 9.0f);

    auto late = sched.submit(constTensor(1, 4, 1.0f));
    EXPECT_THROW(late.get(), std::runtime_error);
    EXPECT_FALSE(sched.submit(constTensor(1, 4, 1.0f),
                              [](Tensor, std::exception_ptr) {}));
    const auto st = sched.stats();
    EXPECT_EQ(st.rejected, 3u);
    EXPECT_EQ(st.completed, 1u);
}

TEST(ContinuousScheduling, EnvKnobsOverrideConfig)
{
    StubStep stub;
    const auto make = [&stub] {
        ContinuousSchedulerConfig cfg;
        cfg.chunkTokens = 128;
        cfg.decodePriority = true;
        return ContinuousScheduler(
            [&stub](size_t l, const Tensor &x,
                    const std::vector<size_t> &s, QuantMode m,
                    Lane ln) { return stub(l, x, s, m, ln); },
            2, QuantMode::WeightsAndActivations, cfg);
    };

    ::setenv("MOKEY_CHUNK_TOKENS", "48", 1);
    ::setenv("MOKEY_DECODE_PRIORITY", "off", 1);
    {
        const auto sched = make();
        EXPECT_EQ(sched.config().chunkTokens, 48u);
        EXPECT_FALSE(sched.config().decodePriority);
    }
    ::unsetenv("MOKEY_CHUNK_TOKENS");
    ::unsetenv("MOKEY_DECODE_PRIORITY");
    {
        const auto sched = make();
        EXPECT_EQ(sched.config().chunkTokens, 128u);
        EXPECT_TRUE(sched.config().decodePriority);
    }
}

TEST_F(ContinuousFixture, DeadlineParityStaggeredDeadlines)
{
    // The acceptance bar for the deadline layer: requests carrying
    // deadlines they comfortably meet must produce BIT-IDENTICAL
    // outputs to a run with no deadlines at all (the bookkeeping may
    // not perturb scheduling results), while requests whose deadline
    // already passed resolve to DeadlineExpired without burning a
    // full pass.
    const auto inputs = raggedInputs();
    const QuantMode mode = QuantMode::WeightsAndActivations;
    const ThreadCountGuard thread_guard;
    setThreadCount(1);
    std::vector<Tensor> refs;
    for (const Tensor &in : inputs)
        refs.push_back(pipeline.forward(in, mode));
    setThreadCount(4);

    ContinuousSchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.decodeMaxRows = 2;
    cfg.chunkTokens = 16;
    ContinuousScheduler sched(pipeline, mode, cfg);

    const auto now = std::chrono::steady_clock::now();
    const Deadline generous = now + std::chrono::minutes(1);
    const Deadline passed = now - std::chrono::milliseconds(1);

    std::vector<std::future<Tensor>> futs;
    std::vector<std::future<Tensor>> doomed;
    for (size_t i = 0; i < inputs.size(); ++i) {
        futs.push_back(sched.submit(Tensor(inputs[i]), generous));
        if (i % 3 == 0)
            doomed.push_back(
                sched.submit(model.makeInput(4, 900 + i), passed));
    }
    for (size_t i = 0; i < futs.size(); ++i)
        expectBitIdentical(refs[i], futs[i].get(),
                           "deadline parity req=" +
                               std::to_string(i));
    for (auto &f : doomed)
        EXPECT_THROW(f.get(), DeadlineExpired);

    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.completed, inputs.size());
    EXPECT_EQ(st.expiredRequests, doomed.size());
    EXPECT_EQ(st.failedRequests, 0u);
    EXPECT_EQ(sched.queueDepth(), 0u);
}

TEST(ContinuousDeadline, ExpiredQueuedRequestDroppedEvenWhenFull)
{
    // maxBatch 1: the blocker owns the only slot, so the expired
    // request can never be admitted — the join loop must drop it
    // from the QUEUE (the "even when the batch is full" path).
    constexpr size_t kSteps = 3;
    constexpr float kBlock = 100.0f;
    StubStep stub;
    std::atomic<bool> release{false};
    ContinuousSchedulerConfig cfg;
    cfg.maxBatch = 1;
    ContinuousScheduler sched(
        [&stub, &release](size_t l, const Tensor &x,
                          const std::vector<size_t> &s, QuantMode m,
                          Lane ln) {
            if (x.at(0, 0) >= kBlock)
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, cfg);

    auto blocker = sched.submit(constTensor(1, 4, kBlock));
    auto expired = sched.submit(
        constTensor(1, 4, 1.0f),
        std::chrono::steady_clock::now() -
            std::chrono::milliseconds(1));
    release.store(true);

    EXPECT_EQ(blocker.get().raw()[0], kBlock + kSteps);
    EXPECT_THROW(expired.get(), DeadlineExpired);

    // The scheduler keeps serving after the expiry.
    auto after = sched.submit(constTensor(1, 4, 2.0f));
    EXPECT_EQ(after.get().raw()[0], 2.0f + kSteps);

    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.expiredRequests, 1u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failedRequests, 0u);
    EXPECT_EQ(sched.queueDepth(), 0u);
}

TEST(ContinuousDeadline, MidFlightExpiryFreesTheSlotEarly)
{
    // A request admitted with time on the clock whose deadline
    // passes BETWEEN layer steps must stop stepping right there:
    // strictly fewer step calls than a full pass, DeadlineExpired on
    // the future, and the batch slot freed for later work.
    constexpr size_t kSteps = 6;
    StubStep stub;
    ContinuousScheduler sched(
        [&stub](size_t l, const Tensor &x,
                const std::vector<size_t> &s, QuantMode m, Lane ln) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, {});

    // 6 layers x 20 ms = 120 ms of engine time against a 50 ms
    // budget: expiry lands between rounds 2 and 3 on any machine
    // (each round costs >= 20 ms, so 6 rounds can never fit).
    auto doomed = sched.submit(
        constTensor(1, 4, 1.0f),
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(50));
    EXPECT_THROW(doomed.get(), DeadlineExpired);
    EXPECT_LT(stub.calls.load(), kSteps)
        << "an expired request burned its full pass anyway";

    auto after = sched.submit(constTensor(1, 4, 2.0f));
    EXPECT_EQ(after.get().raw()[0], 2.0f + kSteps);

    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(st.expiredRequests, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failedRequests, 0u);
    EXPECT_EQ(sched.queueDepth(), 0u);
}

TEST(ContinuousDeadline, GenerousDeadlineNeverExpires)
{
    constexpr size_t kSteps = 2;
    StubStep stub;
    ContinuousScheduler sched(
        [&stub](size_t l, const Tensor &x,
                const std::vector<size_t> &s, QuantMode m, Lane ln) {
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, {});
    auto fut = sched.submit(constTensor(2, 4, 3.0f),
                            std::chrono::steady_clock::now() +
                                std::chrono::minutes(5));
    EXPECT_EQ(fut.get().raw()[0], 3.0f + kSteps);
    sched.drain();
    EXPECT_EQ(sched.stats().expiredRequests, 0u);
}

TEST_F(ContinuousFixture, ChaosStepFaultsIsolateAndBooksBalance)
{
    // With the forwardStep throw site hot, some requests fail with
    // the injected error and the rest must still come back
    // bit-identical to the one-shot references; the books balance
    // (completed == successes, failed+expired == failures) and the
    // scheduler keeps serving afterwards. Under a CI env sweep the
    // site mix is arbitrary, so only the survival invariants hold.
    const QuantMode mode = QuantMode::WeightsAndActivations;
    const auto inputs = raggedInputs();
    // References before arming: under an env sweep the injector is
    // already hot, so ride out injected throws with a retry loop.
    std::vector<Tensor> refs;
    for (const Tensor &in : inputs) {
        for (int tries = 0;; ++tries) {
            try {
                refs.push_back(pipeline.forward(in, mode));
                break;
            } catch (const std::runtime_error &) {
                ASSERT_LT(tries, 500) << "reference forward never "
                                         "survived the env faults";
            }
        }
    }

    const FaultArmGuard guard("step:0.15:77");

    ContinuousSchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.decodeMaxRows = 2;
    ContinuousScheduler sched(pipeline, mode, cfg);
    std::vector<std::future<Tensor>> futs;
    for (const Tensor &in : inputs)
        futs.push_back(sched.submit(Tensor(in)));

    uint64_t ok = 0, failed = 0;
    for (size_t i = 0; i < futs.size(); ++i) {
        try {
            const Tensor out = futs[i].get();
            expectBitIdentical(refs[i], out,
                               "chaos req=" + std::to_string(i));
            ++ok;
        } catch (const std::runtime_error &) {
            ++failed;
        }
    }
    sched.drain();
    const auto st = sched.stats();
    EXPECT_EQ(ok + failed, inputs.size());
    EXPECT_EQ(st.completed, ok);
    EXPECT_EQ(st.failedRequests + st.expiredRequests, failed);

    // Still alive: a fresh submit eventually succeeds bit-exact
    // with faults still armed.
    for (int tries = 0;; ++tries) {
        try {
            expectBitIdentical(refs[0],
                               sched.submit(Tensor(inputs[0])).get(),
                               "chaos post-fault submit");
            break;
        } catch (const std::runtime_error &) {
            ASSERT_LT(tries, 200) << "scheduler never recovered";
        }
    }
}

TEST(ContinuousScheduling, DrainAndRecentLatencyTracking)
{
    constexpr size_t kSteps = 3;
    StubStep stub;
    ContinuousScheduler sched(
        [&stub](size_t l, const Tensor &x,
                const std::vector<size_t> &s, QuantMode m, Lane ln) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            return stub(l, x, s, m, ln);
        },
        kSteps, QuantMode::WeightsAndActivations, {});

    EXPECT_EQ(sched.recentBatchSeconds(), 0.0);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(sched.submit(constTensor(2, 4, 1.0f + i)));
    sched.drain();
    EXPECT_EQ(sched.queueDepth(), 0u);
    for (size_t i = 0; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get().raw()[0], 1.0f + i + kSteps);
    // Full-pass estimate = per-iteration EWMA x layer count.
    EXPECT_GT(sched.recentBatchSeconds(), 0.0);
    EXPECT_GE(sched.recentBatchSeconds(),
              sched.recentStepSeconds());
}

} // namespace
} // namespace mokey
