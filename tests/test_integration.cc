/**
 * @file
 * Cross-module integration tests: quantizer x codec x pipeline x
 * fixed-point engine x simulator working together, plus edge cases
 * and failure injection.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/pipeline.hh"
#include "model/tasks.hh"
#include "quant/fixed_pipeline.hh"
#include "quant/memory_codec.hh"
#include "sim/compression.hh"
#include "tensor/ops.hh"

namespace mokey
{
namespace
{

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

class IntegrationFixture : public ::testing::Test
{
  protected:
    IntegrationFixture()
        : exp(1.179, -0.977, 8), quantizer(exp)
    {
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_F(IntegrationFixture, WeightsThroughDramContainerAndBack)
{
    // Offline flow: quantize weights, pack into the DRAM container,
    // unpack, decode — must equal decoding without the container.
    Rng rng(2100);
    Tensor w(96, 96, rng.gaussianVector(96 * 96, 0.0, 0.04));
    const auto dict = quantizer.buildDictionary(w);
    const auto q = quantizer.encode(w, dict);

    const PackedTensor packed = packTensor(q);
    const QuantizedTensor back = unpackTensor(packed, dict);
    EXPECT_DOUBLE_EQ(maxAbsDiff(back.decode(), q.decode()), 0.0);
}

TEST_F(IntegrationFixture, IndexGemmSurvivesContainerRoundTrip)
{
    // GEMM on codes that travelled through the packed container
    // equals GEMM on the originals.
    Rng rng(2200);
    Tensor a(16, 128, rng.gaussianVector(16 * 128, 0.0, 1.0));
    Tensor w(16, 128, rng.gaussianVector(16 * 128, 0.0, 1.0));
    const auto qa = quantizer.encode(a, quantizer.buildDictionary(a));
    const auto qw = quantizer.encode(w, quantizer.buildDictionary(w));

    const auto qa2 = unpackTensor(packTensor(qa), qa.dictionary());
    const auto qw2 = unpackTensor(packTensor(qw), qw.dictionary());
    EXPECT_LT(maxAbsDiff(indexMatmulTransB(qa, qw),
                         indexMatmulTransB(qa2, qw2)), 1e-12);
}

TEST_F(IntegrationFixture, FixedEngineOnModelGemm)
{
    // The integer-only engine tracks the float index path on a real
    // GEMM drawn from a transformer layer.
    const Transformer model(tinyConfig(), 77);
    const Tensor x = model.makeInput(16, 5);
    const Tensor &wq = model.weights()[0].wq;

    const auto dx = quantizer.buildDictionary(x);
    const auto dw = quantizer.buildDictionary(wq);
    const auto qx = quantizer.encode(x, dx);
    const auto qw = quantizer.encode(wq, dw);

    const Tensor fl = indexMatmulTransB(qx, qw);
    double mx = 1e-6;
    for (float v : fl.raw())
        mx = std::max(mx, std::abs(static_cast<double>(v)));
    const auto fmt = FixedFormat::forRange(16, -mx, mx);
    const Tensor fx = fixedIndexMatmulTransB(qx, qw, fmt);
    // Transformer-layer dictionaries carry near-zero means, which
    // makes several 16 b coefficients tiny and lets their rounding
    // show through partially cancelling terms; ~10 % of full scale
    // is the achievable bound here.
    EXPECT_LT(maxAbsDiff(fx, fl), 0.12 * mx + 2 * fmt.resolution());
}

TEST_F(IntegrationFixture, QuantizedForwardDeterministic)
{
    const Transformer model(tinyConfig(), 88);
    QuantizedTransformer pipe(model, quantizer);
    pipe.quantizeWeights();
    std::vector<Tensor> batch;
    for (int i = 0; i < 2; ++i)
        batch.push_back(model.makeInput(8, 10 + i));
    pipe.profileActivations(batch);

    const Tensor in = model.makeInput(8, 99);
    const Tensor o1 =
        pipe.forward(in, QuantMode::WeightsAndActivations);
    const Tensor o2 =
        pipe.forward(in, QuantMode::WeightsAndActivations);
    EXPECT_DOUBLE_EQ(maxAbsDiff(o1, o2), 0.0);
}

TEST_F(IntegrationFixture, ConstantTensorDegeneratesGracefully)
{
    Tensor t(8, 8, std::vector<float>(64, 3.25f));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    const Tensor back = q.decode();
    // A constant tensor has sigma ~ 0; decode must stay near the
    // constant (no NaN/inf blowups).
    for (float v : back.raw()) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_NEAR(v, 3.25f, 0.01f);
    }
}

TEST_F(IntegrationFixture, ExtremeValuesStayFinite)
{
    Rng rng(2300);
    std::vector<float> v = rng.gaussianVector(1000, 0.0, 1.0);
    v.push_back(1e6f);
    v.push_back(-1e6f);
    Tensor t(1, v.size(), v);
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_TRUE(std::isfinite(q.decodeAt(0, i))) << i;
}

TEST_F(IntegrationFixture, ProfilingBatchMatchesTaskDistribution)
{
    const Transformer model(tinyConfig(), 99);
    const TaskEvaluator task(model, TaskKind::Span, 8, 16, 42);
    const auto b1 = task.profilingBatch(4, 7);
    const auto b2 = task.profilingBatch(4, 7);
    ASSERT_EQ(b1.size(), 4u);
    // Deterministic in the seed.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(maxAbsDiff(b1[i], b2[i]), 0.0);
    // Span inputs carry the injected mark: one row has much larger
    // norm than the others.
    for (const auto &in : b1) {
        double mx = 0.0, sum = 0.0;
        for (size_t r = 0; r < in.rows(); ++r) {
            double n = 0.0;
            for (size_t c = 0; c < in.cols(); ++c)
                n += static_cast<double>(in.at(r, c)) * in.at(r, c);
            mx = std::max(mx, n);
            sum += n;
        }
        EXPECT_GT(mx, 2.0 * sum / static_cast<double>(in.rows()));
    }
}

TEST_F(IntegrationFixture, BitReaderUnderrunPanics)
{
    BitWriter w;
    w.put(0x5, 4);
    BitReader r(w.bytes());
    r.get(4);
    EXPECT_DEATH(r.get(8), "");
}

TEST(SimulatorIntegration, AllMachinesAllPointsFinite)
{
    // Every machine simulates every lineup point at every buffer
    // size with finite, positive results and sane invariants.
    const auto pts = paperLineup();
    for (const auto &m :
         {tensorCoresMachine(), goboMachine(), mokeyMachine(),
          tensorCoresMokeyOffChip(), tensorCoresMokeyOnChip()}) {
        for (const auto &p : pts) {
            const auto r =
                simulate(m, p.workload, 512 * 1024, p.rates);
            EXPECT_GT(r.totalCycles, 0.0) << m.name << p.label;
            EXPECT_GE(r.totalCycles,
                      std::max(r.computeCycles, r.memCycles) -
                          1e-6);
            EXPECT_GT(r.totalJ, 0.0);
            EXPECT_NEAR(r.totalJ,
                        r.dramJ + r.sramJ + r.computeJ, 1e-9);
            EXPECT_GT(r.trafficBytes, 0.0);
            EXPECT_TRUE(std::isfinite(r.totalCycles));
            EXPECT_TRUE(std::isfinite(r.totalJ));
        }
    }
}

TEST(SimulatorIntegration, CompressionNeverAddsTraffic)
{
    const auto pts = paperLineup();
    for (const auto &p : pts) {
        for (size_t buf : paperBufferSweep()) {
            const auto base = simulate(tensorCoresMachine(),
                                       p.workload, buf, p.rates);
            const auto oc = simulate(tensorCoresMokeyOffChip(),
                                     p.workload, buf, p.rates);
            const auto on = simulate(tensorCoresMokeyOnChip(),
                                     p.workload, buf, p.rates);
            EXPECT_LT(oc.trafficBytes, base.trafficBytes)
                << p.label;
            EXPECT_LE(on.trafficBytes, oc.trafficBytes * 1.0001)
                << p.label;
        }
    }
}

TEST(SimulatorIntegration, LongerSequencesCostMore)
{
    const auto m = mokeyMachine();
    double prev = 0.0;
    for (size_t seq : {64, 128, 256, 512}) {
        const auto w = modelWorkload(bertLarge(), seq);
        const auto r = simulate(m, w, 1024 * 1024);
        EXPECT_GT(r.totalCycles, prev);
        prev = r.totalCycles;
    }
}

TEST(SimulatorIntegration, BiggerModelsCostMore)
{
    const auto m = tensorCoresMachine();
    const auto base = simulate(
        m, modelWorkload(bertBase(), 128), 512 * 1024);
    const auto large = simulate(
        m, modelWorkload(bertLarge(), 128), 512 * 1024);
    const auto xl = simulate(
        m, modelWorkload(debertaXl(), 128), 512 * 1024);
    EXPECT_GT(large.totalCycles, base.totalCycles);
    EXPECT_GT(xl.totalCycles, large.totalCycles);
    EXPECT_GT(xl.totalJ, large.totalJ);
}

TEST(TaskIntegration, QuantizedPipelineOnAllThreeTasks)
{
    // End-to-end: every task kind scores a quantized model within a
    // sane band of its own FP reference.
    const Transformer model(tinyConfig(), 1234);
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    for (const TaskKind kind :
         {TaskKind::Classification, TaskKind::Regression,
          TaskKind::Span}) {
        const TaskEvaluator task(model, kind, 24, 16, 99);
        QuantizedTransformer pipe(model, qz);
        pipe.quantizeWeights();
        pipe.profileActivations(task.profilingBatch(4, 55));
        const double fp = task.evaluateReference();
        const double q = task.evaluate([&](const Tensor &in) {
            return pipe.forward(
                in, QuantMode::WeightsAndActivations);
        });
        EXPECT_GT(fp, 40.0) << taskName(kind);
        EXPECT_NEAR(q, fp, 25.0) << taskName(kind);
    }
}

} // anonymous namespace
} // namespace mokey
