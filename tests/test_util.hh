/**
 * @file
 * Shared RAII guards for tests that mutate process-wide knobs: the
 * destructors restore the prior value even when an ASSERT_* bails
 * out of the test body mid-sweep, so one failing parity test cannot
 * leak an engine selection or pool size into every later test in
 * the binary.
 */

#ifndef MOKEY_TESTS_TEST_UTIL_HH
#define MOKEY_TESTS_TEST_UTIL_HH

#include <string>

#include "common/fault.hh"
#include "common/parallel.hh"
#include "model/pipeline.hh"
#include "quant/engine.hh"

namespace mokey
{

/** Restores the pool size even when an assertion fails out. */
struct ThreadCountGuard
{
    size_t prior = threadCount();
    ~ThreadCountGuard() { setThreadCount(prior); }
};

/** Restores the engine selection even when an assertion fails out. */
struct EngineGuard
{
    IndexEngine prior = indexEngine();
    ~EngineGuard() { setIndexEngine(prior); }
};

/** Restores the activation-encode path selection likewise. */
struct FusedEncodeGuard
{
    bool prior = fusedActEncode();
    ~FusedEncodeGuard() { setFusedActEncode(prior); }
};

/** Restores the graph-fusion path selection likewise. */
struct GraphFuseGuard
{
    bool prior = graphFuse();
    ~GraphFuseGuard() { setGraphFuse(prior); }
};

/** Restores the engine self-calibration flag likewise. */
struct CalibrateGuard
{
    bool prior = engineCalibration();
    ~CalibrateGuard() { setEngineCalibration(prior); }
};

/** Restores the Auto-engine mag byte budget likewise. */
struct MagBudgetGuard
{
    size_t prior = autoMagBudgetBytes();
    ~MagBudgetGuard() { setAutoMagBudgetBytes(prior); }
};

/**
 * Arms the process-wide fault injector for one test — unless the
 * environment (a CI chaos sweep via MOKEY_FAULT) already armed it,
 * in which case the env spec describes the whole binary's fault plan
 * and wins. `owned` tells the test whether its own spec is in force
 * (strong, seed-specific assertions hold) or an arbitrary env spec
 * is (only survival invariants hold).
 */
struct FaultArmGuard
{
    explicit FaultArmGuard(const std::string &spec)
    {
        if (!faultsArmed()) {
            FaultInjector::instance().configure(spec);
            owned = true;
        }
    }
    ~FaultArmGuard()
    {
        if (owned)
            FaultInjector::instance().disarm();
    }
    FaultArmGuard(const FaultArmGuard &) = delete;
    FaultArmGuard &operator=(const FaultArmGuard &) = delete;

    bool owned = false;
};

} // namespace mokey

#endif // MOKEY_TESTS_TEST_UTIL_HH
