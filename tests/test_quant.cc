/**
 * @file
 * Tests for golden/exponential/per-tensor dictionaries, the
 * quantizer, and the DRAM memory codec.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>
#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/stats.hh"
#include "quant/exp_dictionary.hh"
#include "quant/golden_dictionary.hh"
#include "quant/memory_codec.hh"
#include "quant/quantizer.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

GoldenDictionaryConfig
smallCfg()
{
    GoldenDictionaryConfig cfg;
    cfg.samples = 20000;
    cfg.repeats = 3;
    return cfg;
}

TEST(GoldenDictionary, SizeAndOrder)
{
    const auto gd = GoldenDictionary::generate(smallCfg());
    EXPECT_EQ(gd.size(), 16u);
    EXPECT_TRUE(std::is_sorted(gd.centroids().begin(),
                               gd.centroids().end()));
    EXPECT_EQ(gd.half().size(), 8u);
}

TEST(GoldenDictionary, DeterministicInSeed)
{
    const auto a = GoldenDictionary::generate(smallCfg());
    const auto b = GoldenDictionary::generate(smallCfg());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.centroids()[i], b.centroids()[i]);
}

TEST(GoldenDictionary, HalfMagnitudesCoverGaussianRange)
{
    const auto gd = GoldenDictionary::generate(smallCfg());
    // Innermost magnitude near 0, outermost around 2.1-2.4 sigma for
    // a 16-entry dictionary over N(0,1).
    EXPECT_LT(gd.half().front(), 0.3);
    EXPECT_GT(gd.half().back(), 1.8);
    EXPECT_LT(gd.half().back(), 2.8);
}

TEST(GoldenDictionary, FromCentroidsSymmetrizes)
{
    const auto gd = GoldenDictionary::fromCentroids(
        {-4.0, -3.0, -2.0, -1.0, 1.0, 2.0, 3.0, 4.0});
    ASSERT_EQ(gd.half().size(), 4u);
    EXPECT_DOUBLE_EQ(gd.half()[0], 1.0);
    EXPECT_DOUBLE_EQ(gd.half()[3], 4.0);
}

TEST(GoldenDictionary, AveragingTightensSymmetry)
{
    GoldenDictionaryConfig one = smallCfg();
    one.repeats = 1;
    GoldenDictionaryConfig many = smallCfg();
    many.repeats = 8;

    auto asym = [](const GoldenDictionary &gd) {
        double worst = 0.0;
        for (size_t j = 0; j < 8; ++j) {
            const double pos = gd.centroids()[8 + j];
            const double neg = -gd.centroids()[7 - j];
            worst = std::max(worst, std::abs(pos - neg));
        }
        return worst;
    };
    EXPECT_LE(asym(GoldenDictionary::generate(many)),
              asym(GoldenDictionary::generate(one)) + 1e-9);
}

TEST(ExpDictionary, FitNearPaperValues)
{
    // Paper: a = 1.179, b = -0.977 for the 50 k-sample GD. Our
    // exact 1-D Ward clustering lands at a ~= 1.205, b ~= -0.84 —
    // the same curve family with slightly different bin placement
    // (see EXPERIMENTS.md).
    GoldenDictionaryConfig cfg; // full-size generation
    const auto gd = GoldenDictionary::generate(cfg);
    const auto exp = ExpDictionary::fit(gd);
    EXPECT_NEAR(exp.a(), 1.179, 0.05);
    EXPECT_NEAR(exp.b(), -0.977, 0.15);
}

TEST(ExpDictionary, MagnitudesPositiveAndIncreasing)
{
    const ExpDictionary exp(1.179, -0.977, 8);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_GT(exp.magnitude(i), 0.0);
        if (i)
            EXPECT_GT(exp.magnitude(i), exp.magnitude(i - 1));
    }
}

TEST(ExpDictionary, PowerTable)
{
    const ExpDictionary exp(1.2, -0.9, 8);
    EXPECT_EQ(exp.powerCount(), 15u);
    EXPECT_DOUBLE_EQ(exp.power(0), 1.0);
    EXPECT_NEAR(exp.power(14), std::pow(1.2, 14), 1e-9);
}

TEST(ExpDictionary, NearestIndexBruteForce)
{
    const ExpDictionary exp(1.179, -0.977, 8);
    Rng rng(91);
    for (int t = 0; t < 2000; ++t) {
        const double u = rng.uniform(0.0, 3.0);
        const size_t fast = exp.nearestIndex(u);
        size_t best = 0;
        double bd = 1e300;
        for (size_t i = 0; i < 8; ++i) {
            const double d = std::abs(exp.magnitude(i) - u);
            if (d < bd) {
                bd = d;
                best = i;
            }
        }
        EXPECT_EQ(fast, best) << "u=" << u;
    }
}

class QuantFixture : public ::testing::Test
{
  protected:
    QuantFixture()
        : exp(1.179, -0.977, 8), quantizer(exp)
    {
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_F(QuantFixture, DictionaryRecoversMoments)
{
    Rng rng(101);
    Tensor t(64, 64, rng.gaussianVector(4096, 0.5, 0.2));
    const auto dict = quantizer.buildDictionary(t);
    EXPECT_NEAR(dict.mean(), 0.5, 0.02);
    EXPECT_NEAR(dict.scale(), 0.2, 0.02);
}

TEST_F(QuantFixture, GaussianOutlierRateNearPaper)
{
    // Pure Gaussian data: the cut sits around 2.4 sigma, so about
    // 1.5-2 % of values land in the outlier dictionary — the paper's
    // weight outlier rate.
    Rng rng(103);
    Tensor t(128, 128, rng.gaussianVector(16384, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    EXPECT_GT(q.outlierFraction(), 0.004);
    EXPECT_LT(q.outlierFraction(), 0.035);
}

TEST_F(QuantFixture, HeavyTailRaisesOutlierRate)
{
    // Activation-like data: Gaussian bulk plus a wider tail
    // component. The outlier rate should rise but stay small.
    Rng rng(107);
    std::vector<float> v = rng.gaussianVector(16000, 0.0, 1.0);
    for (int i = 0; i < 600; ++i)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 6.0)));
    Tensor t(1, v.size(), v);
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    EXPECT_GT(q.outlierFraction(), 0.02);
    EXPECT_LT(q.outlierFraction(), 0.09);
}

TEST_F(QuantFixture, EncodeDecodeBoundedError)
{
    Rng rng(109);
    Tensor t(32, 32, rng.gaussianVector(1024, -1.0, 0.7));
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    const Tensor back = q.decode();
    // Worst Gaussian bin half-width in value units.
    double worst_gap = 0.0;
    for (size_t i = 0; i + 1 < 8; ++i)
        worst_gap = std::max(worst_gap,
                             exp.magnitude(i + 1) - exp.magnitude(i));
    const double bound = 0.7 * worst_gap; // half-gap x sigma, slack 40%
    for (size_t i = 0; i < t.size(); ++i) {
        const double v = t.raw()[i];
        if (!dict.isOutlierValue(v)) {
            EXPECT_NEAR(back.raw()[i], v, bound)
                << "element " << i;
        }
    }
}

TEST_F(QuantFixture, OutlierValuesUseOutlierDict)
{
    Rng rng(113);
    std::vector<float> v = rng.gaussianVector(4000, 0.0, 1.0);
    v.push_back(9.0f);
    v.push_back(-8.5f);
    Tensor t(1, v.size(), v);
    const auto dict = quantizer.buildDictionary(t);
    const auto q = quantizer.encode(t, dict);
    EXPECT_TRUE(q.at(0, 4000).isOutlier());
    EXPECT_TRUE(q.at(0, 4001).isOutlier());
    // Extreme outliers decode to something in their neighbourhood.
    EXPECT_NEAR(q.decodeAt(0, 4000), 9.0, 2.0);
    EXPECT_NEAR(q.decodeAt(0, 4001), -8.5, 2.0);
}

TEST_F(QuantFixture, ComparatorLadderPicksGlobalNearest)
{
    Rng rng(127);
    std::vector<float> v = rng.gaussianVector(5000, 0.0, 1.0);
    for (int i = 0; i < 150; ++i)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 5.0)));
    Tensor t(1, v.size(), v);
    const auto dict = quantizer.buildDictionary(t);

    for (int trial = 0; trial < 3000; ++trial) {
        const double x = rng.uniform(-8.0, 8.0);
        const QCode code = quantizer.encodeComparatorLadder(x, dict);
        const double got = Quantizer::decode(code, dict);
        // Brute-force nearest over the full ladder.
        double best = 1e300;
        for (const auto &e : dict.ladder())
            best = std::min(best, std::abs(e.value - x));
        EXPECT_NEAR(std::abs(got - x), best, 1e-9) << "x=" << x;
    }
}

TEST_F(QuantFixture, LadderSortedAndComplete)
{
    Rng rng(131);
    Tensor t(1, 4096, rng.gaussianVector(4096, 0.0, 2.0));
    const auto dict = quantizer.buildDictionary(t);
    const auto &lad = dict.ladder();
    EXPECT_GE(lad.size(), 16u);
    for (size_t i = 0; i + 1 < lad.size(); ++i)
        EXPECT_LE(lad[i].value, lad[i + 1].value);
    // Every Gaussian (sign, index) pair appears exactly once.
    int count[2][8] = {};
    for (const auto &e : lad) {
        if (!e.isOutlier)
            ++count[e.negative ? 1 : 0][e.index];
    }
    for (int s = 0; s < 2; ++s)
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(count[s][i], 1);
}

TEST_F(QuantFixture, MetadataBitsTiny)
{
    Rng rng(137);
    Tensor t(256, 256, rng.gaussianVector(65536, 0.0, 1.0));
    const auto dict = quantizer.buildDictionary(t);
    // Paper: metadata "pales in comparison" with the tensor.
    EXPECT_LT(dict.metadataBits(), 16u * 16 + 16 * 16 + 4 * 16 + 1);
    EXPECT_LT(static_cast<double>(dict.metadataBits()),
              0.005 * 4.0 * 65536);
}

TEST(QCodeBits, PackingRoundTrip)
{
    for (int neg = 0; neg < 2; ++neg) {
        for (uint8_t idx = 0; idx < 8; ++idx) {
            const QCode q = QCode::gaussian(neg, idx);
            EXPECT_FALSE(q.isOutlier());
            EXPECT_EQ(q.negative(), neg == 1);
            EXPECT_EQ(q.index(), idx);
            EXPECT_EQ(q.theta(), neg ? -1 : 1);
        }
    }
    for (uint8_t idx = 0; idx < 16; ++idx) {
        const QCode q = QCode::outlier(idx);
        EXPECT_TRUE(q.isOutlier());
        EXPECT_EQ(q.outlierIndex(), idx);
    }
}

TEST(BitStream, RoundTripMixedWidths)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0x3ff, 10);
    w.put(1, 1);
    w.put(0xdead, 16);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(3), 0b101u);
    EXPECT_EQ(r.get(10), 0x3ffu);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(16), 0xdeadu);
}

TEST(BitStream, MasksHighBits)
{
    BitWriter w;
    w.put(0xff, 4); // only low 4 bits kept
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(4), 0xfu);
}

class CodecFixture : public ::testing::Test
{
  protected:
    CodecFixture() : exp(1.179, -0.977, 8), quantizer(exp) {}

    QuantizedTensor
    makeQuantized(size_t rows, size_t cols, uint64_t seed,
                  double tail_frac = 0.02)
    {
        Rng rng(seed);
        std::vector<float> v =
            rng.gaussianVector(rows * cols, 0.0, 1.0);
        const size_t n_tail =
            static_cast<size_t>(tail_frac *
                                static_cast<double>(v.size()));
        for (size_t i = 0; i < n_tail; ++i)
            v[rng.uniformInt(v.size())] =
                static_cast<float>(rng.gaussian(0.0, 5.0));
        Tensor t(rows, cols, v);
        const auto dict = quantizer.buildDictionary(t);
        return quantizer.encode(t, dict);
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_F(CodecFixture, PackUnpackIdentity)
{
    const auto q = makeQuantized(37, 53, 139); // non-multiple of 64
    const auto packed = packTensor(q);
    const auto back = unpackTensor(packed, q.dictionary());
    ASSERT_EQ(back.size(), q.size());
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(back.raw()[i].raw, q.raw()[i].raw) << "i=" << i;
}

TEST_F(CodecFixture, PackedSizeMatchesFormula)
{
    const auto q = makeQuantized(64, 64, 149);
    const auto packed = packTensor(q);
    EXPECT_EQ(packed.count, 4096u);
    // Value stream: exactly 4 b per value.
    EXPECT_EQ(packed.values.size(), 4096u / 2);
    // Pointer stream: 7 b per group + 6 b per outlier, byte-padded.
    size_t ot = 0;
    for (const auto c : q.raw())
        ot += c.isOutlier();
    const size_t expect_bits = (4096 / 64) * 7 + ot * 6;
    EXPECT_EQ(packed.otPointers.size(), (expect_bits + 7) / 8);
}

TEST_F(CodecFixture, CompressionRatioNearFourVsFp16)
{
    const auto q = makeQuantized(128, 128, 151);
    const auto packed = packTensor(q);
    const double ratio = packed.compressionRatio(16);
    // 16 b -> ~4.1 b/value with pointers: just under 4x.
    EXPECT_GT(ratio, 3.4);
    EXPECT_LT(ratio, 4.0);
}

TEST_F(CodecFixture, FootprintBitsMatchesPackedTensor)
{
    const auto q = makeQuantized(100, 64, 157);
    const auto packed = packTensor(q);
    // packedFootprintBits is the analytic formula; the container
    // only adds byte padding.
    EXPECT_LE(q.packedFootprintBits(), packed.totalBits());
    EXPECT_LT(packed.totalBits() - q.packedFootprintBits(), 16u);
}

TEST_F(CodecFixture, AllGaussianGroupHasEmptyPointers)
{
    // Force a tensor with no outliers at all.
    Rng rng(163);
    Tensor t(1, 128, rng.gaussianVector(128, 0.0, 1.0));
    auto values = t.raw();
    const auto dict = quantizer.buildDictionary(t);
    auto q = quantizer.encode(t, dict);
    for (auto &c : q.raw()) {
        if (c.isOutlier())
            c = QCode::gaussian(false, 3);
    }
    const auto packed = packTensor(q);
    // 2 groups x 7 bits = 14 bits -> 2 bytes.
    EXPECT_EQ(packed.otPointers.size(), 2u);
    const auto back = unpackTensor(packed, dict);
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_FALSE(back.raw()[i].isOutlier());
}

TEST_F(CodecFixture, RoundTripRandomShapesAndOutlierDensities)
{
    // Property: pack/unpack is the identity on the 5 b codes for any
    // shape (group-aligned or not) and any outlier density from 0 %
    // to 100 % — including the corner rows the encoder never emits
    // in practice: rows that are entirely outliers and rows with
    // none while the rest of the tensor has plenty.
    Rng rng(20260730);
    const auto dict =
        makeQuantized(4, 64, 20260731, 0.05).dictionary();

    const double densities[] = {0.0, 0.02, 0.37, 1.0};
    for (int iter = 0; iter < 32; ++iter) {
        const size_t rows = 1 + rng.uniformInt(9);
        const size_t cols = 1 + rng.uniformInt(131);
        const double density = densities[iter % 4];

        QuantizedTensor q(rows, cols, dict);
        size_t outliers = 0;
        for (size_t r = 0; r < rows; ++r) {
            // First row all-outlier, second row zero-outlier, rest
            // at the sweep density.
            const double row_density =
                (r == 0 && rows > 2) ? 1.0 :
                (r == 1 && rows > 2) ? 0.0 : density;
            for (size_t c = 0; c < cols; ++c) {
                QCode code;
                if (rng.uniform() < row_density) {
                    code = QCode::outlier(static_cast<uint8_t>(
                        rng.uniformInt(16)));
                    ++outliers;
                } else {
                    code = QCode::gaussian(
                        rng.uniform() < 0.5,
                        static_cast<uint8_t>(rng.uniformInt(8)));
                }
                q.at(r, c) = code;
            }
        }

        const auto packed = packTensor(q);
        EXPECT_EQ(packed.count, rows * cols);
        // Dense stream: exactly 4 b per value, byte-padded.
        EXPECT_EQ(packed.values.size(), (rows * cols * 4 + 7) / 8);
        // Pointer stream: 7 b per group + 6 b per outlier.
        const size_t groups = (rows * cols + 63) / 64;
        EXPECT_EQ(packed.otPointers.size(),
                  (groups * 7 + outliers * 6 + 7) / 8);

        const auto back = unpackTensor(packed, dict);
        ASSERT_EQ(back.rows(), rows);
        ASSERT_EQ(back.cols(), cols);
        for (size_t i = 0; i < q.size(); ++i)
            ASSERT_EQ(back.raw()[i].raw, q.raw()[i].raw)
                << "iter=" << iter << " i=" << i;
    }
}

TEST_F(CodecFixture, RoundTripFullyOutlierGroup)
{
    // A full group of 64 outliers exercises the widest count field
    // (64 needs all 7 bits of the group header).
    const auto dict =
        makeQuantized(2, 64, 20260733, 0.05).dictionary();
    QuantizedTensor q(2, 64, dict);
    for (size_t c = 0; c < 64; ++c) {
        q.at(0, c) = QCode::outlier(static_cast<uint8_t>(c % 16));
        q.at(1, c) = QCode::gaussian(c % 2 == 0,
                                     static_cast<uint8_t>(c % 8));
    }
    const auto packed = packTensor(q);
    const auto back = unpackTensor(packed, dict);
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(back.raw()[i].raw, q.raw()[i].raw) << "i=" << i;
}

TEST_F(CodecFixture, ParallelCodecBitIdenticalToScalar)
{
    // The band-parallel codec must reproduce the sequential bit
    // streams *exactly* — same bytes, same padding — for every
    // thread count and lane, on tensors large enough for many bands
    // (70x997 = 1091 groups) and small enough for the inline path.
    const ThreadCountGuard thread_guard;
    for (const auto &shape :
         {std::pair<size_t, size_t>{70, 997},
          std::pair<size_t, size_t>{3, 40},
          std::pair<size_t, size_t>{129, 64}}) {
        const auto q = makeQuantized(shape.first, shape.second,
                                     7000 + shape.first, 0.08);
        const auto scalar = packTensorScalar(q);

        for (const size_t t : {1u, 2u, 5u}) {
            setThreadCount(t);
            for (const Lane lane : {Lane{}, Lane::acquire()}) {
                const auto par = packTensor(q, lane);
                EXPECT_EQ(par.count, scalar.count);
                ASSERT_EQ(par.values, scalar.values)
                    << "rows=" << shape.first << " threads=" << t;
                ASSERT_EQ(par.otPointers, scalar.otPointers)
                    << "rows=" << shape.first << " threads=" << t;

                const auto seq_back =
                    unpackTensorScalar(scalar, q.dictionary());
                const auto par_back =
                    unpackTensor(scalar, q.dictionary(), lane);
                ASSERT_EQ(par_back.size(), q.size());
                for (size_t i = 0; i < q.size(); ++i) {
                    ASSERT_EQ(par_back.raw()[i].raw,
                              seq_back.raw()[i].raw)
                        << "i=" << i << " threads=" << t;
                    ASSERT_EQ(par_back.raw()[i].raw, q.raw()[i].raw)
                        << "i=" << i << " threads=" << t;
                }
            }
        }
    }
}

TEST_F(CodecFixture, ParallelCodecHandlesDenseOutliers)
{
    // Outlier-heavy streams make the pointer stream long and oddly
    // aligned, stressing the bit-level band stitch and the prescan.
    const auto dict = makeQuantized(4, 64, 9100, 0.05).dictionary();
    Rng rng(9101);
    QuantizedTensor q(64, 150, dict); // 9600 codes, 150 groups
    for (size_t r = 0; r < q.rows(); ++r)
        for (size_t c = 0; c < q.cols(); ++c)
            q.at(r, c) = rng.uniform() < 0.45
                ? QCode::outlier(
                      static_cast<uint8_t>(rng.uniformInt(16)))
                : QCode::gaussian(rng.uniform() < 0.5,
                                  static_cast<uint8_t>(
                                      rng.uniformInt(8)));

    const auto scalar = packTensorScalar(q);
    const auto par = packTensor(q);
    ASSERT_EQ(par.values, scalar.values);
    ASSERT_EQ(par.otPointers, scalar.otPointers);
    const auto back = unpackTensor(par, dict);
    for (size_t i = 0; i < q.size(); ++i)
        ASSERT_EQ(back.raw()[i].raw, q.raw()[i].raw) << "i=" << i;
}

// ---- CodePlanes plane sets ------------------------------------------

TEST_F(CodecFixture, BytePlanesBuildWithoutMag)
{
    // The counting engine's contract: byte planes on demand, never
    // paying for (or keeping) the 8 B/element mag plane.
    const QuantizedTensor q = makeQuantized(24, 96, 515, 0.05);
    const QuantizedTensor &cq = q;

    const CodePlanes &p = cq.planes(PlaneSet::Bytes);
    EXPECT_EQ(p.index.size(), q.size());
    EXPECT_EQ(p.theta.size(), q.size());
    EXPECT_TRUE(p.mag.empty());

    PlanesFootprint f = q.planesFootprint();
    EXPECT_TRUE(f.resident);
    EXPECT_TRUE(f.bytesResident);
    EXPECT_FALSE(f.magResident);
    // 2 B of planes per code byte plus sidecars: nowhere near the
    // 10x of the full view.
    EXPECT_LT(f.expansionRatio(), 4.0);

    // Outlier slots follow the zero-index/zero-sign convention the
    // branch-free counting loop relies on.
    size_t outliers = 0;
    for (size_t r = 0; r < q.rows(); ++r) {
        for (size_t c = 0; c < q.cols(); ++c) {
            if (cq.at(r, c).isOutlier()) {
                EXPECT_EQ(p.indexRow(r)[c], 0);
                EXPECT_EQ(p.thetaRow(r)[c], 0);
                ++outliers;
            }
        }
    }
    EXPECT_GT(outliers, 0u);

    // Requesting the mag plane upgrades to the union without losing
    // the byte planes.
    const CodePlanes &up = cq.planes(PlaneSet::Mag);
    EXPECT_EQ(up.mag.size(), q.size());
    EXPECT_EQ(up.index.size(), q.size());
    f = q.planesFootprint();
    EXPECT_TRUE(f.bytesResident);
    EXPECT_TRUE(f.magResident);
    EXPECT_GT(f.expansionRatio(), 9.0);
}

TEST_F(CodecFixture, MagPlanesBuildWithoutBytes)
{
    const QuantizedTensor q = makeQuantized(8, 64, 517, 0.03);
    q.planes(PlaneSet::Mag);
    const PlanesFootprint f = q.planesFootprint();
    EXPECT_TRUE(f.magResident);
    EXPECT_FALSE(f.bytesResident);
    EXPECT_GT(f.expansionRatio(), 7.0);
}

TEST_F(CodecFixture, UpgradeRetainsDisplacedViewUntilRepin)
{
    // A plane-set upgrade keeps the displaced view alive so
    // outstanding planes() references stay valid; the footprint
    // must report that retained memory, and an explicit unpin+repin
    // (the engine-switch recipe) must reclaim it.
    const QuantizedTensor q = makeQuantized(16, 64, 519, 0.03);
    q.pinPlanes(PlaneSet::Mag);
    EXPECT_EQ(q.planesFootprint().retiredBytes, 0u);

    q.planes(PlaneSet::Bytes); // upgrade: displaces the mag-only view
    PlanesFootprint f = q.planesFootprint();
    EXPECT_GT(f.retiredBytes, 0u);
    EXPECT_TRUE(f.bytesResident);
    EXPECT_TRUE(f.magResident);

    q.unpinPlanes();
    q.pinPlanes(PlaneSet::Bytes);
    f = q.planesFootprint();
    EXPECT_EQ(f.retiredBytes, 0u);
    EXPECT_TRUE(f.bytesResident);
    EXPECT_FALSE(f.magResident);
}

// ---- fused activation-quantization path -----------------------------

/** Planes equality under a given set (and sidecars always). */
void
expectPlanesEqual(const CodePlanes &a, const CodePlanes &b,
                  PlaneSet sets, const std::string &what)
{
    ASSERT_EQ(a.rows, b.rows) << what;
    ASSERT_EQ(a.cols, b.cols) << what;
    if (planeSetCovers(sets, PlaneSet::Bytes)) {
        ASSERT_EQ(a.index, b.index) << what;
        ASSERT_EQ(a.theta, b.theta) << what;
    }
    if (planeSetCovers(sets, PlaneSet::Mag)) {
        ASSERT_EQ(a.mag.size(), b.mag.size()) << what;
        for (size_t i = 0; i < a.mag.size(); ++i)
            ASSERT_EQ(a.mag[i], b.mag[i]) << what << " mag i=" << i;
    }
    ASSERT_EQ(a.rowStart, b.rowStart) << what;
    ASSERT_EQ(a.outliers.size(), b.outliers.size()) << what;
    for (size_t i = 0; i < a.outliers.size(); ++i) {
        ASSERT_EQ(a.outliers[i].col, b.outliers[i].col)
            << what << " ot i=" << i;
        ASSERT_EQ(a.outliers[i].index, b.outliers[i].index)
            << what << " ot i=" << i;
        ASSERT_EQ(a.outliers[i].value, b.outliers[i].value)
            << what << " ot i=" << i;
    }
}

class FusedEncodeFixture : public ::testing::Test
{
  protected:
    FusedEncodeFixture() : exp(1.179, -0.977, 8), quantizer(exp) {}

    /** Gaussian tensor with a sprinkling of forced outliers. */
    Tensor
    makeTensor(size_t rows, size_t cols, uint64_t seed,
               double tail_frac = 0.03)
    {
        Rng rng(seed);
        std::vector<float> v =
            rng.gaussianVector(rows * cols, 0.2, 1.1);
        const size_t n_tail = static_cast<size_t>(
            tail_frac * static_cast<double>(v.size()));
        for (size_t i = 0; i < n_tail; ++i)
            v[rng.uniformInt(v.size())] =
                static_cast<float>(rng.gaussian(0.0, 6.0));
        return Tensor(rows, cols, v);
    }

    ExpDictionary exp;
    Quantizer quantizer;
};

TEST_F(FusedEncodeFixture, PlanesBitIdenticalAcrossSetsThreadsLanes)
{
    // The tentpole contract: the one-pass fused encoder emits planes
    // bit-identical to encode() + derivePlanes for every plane set,
    // thread count, and lane — including the lazily materialized
    // codes.
    const ThreadCountGuard thread_guard;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());
    for (const auto &shape : {std::pair<size_t, size_t>{1, 1},
                              std::pair<size_t, size_t>{3, 257},
                              std::pair<size_t, size_t>{64, 96},
                              std::pair<size_t, size_t>{129, 40}}) {
        const Tensor t =
            makeTensor(shape.first, shape.second, 600 + shape.first);
        const auto dict = quantizer.buildDictionary(t);
        const auto ref = quantizer.encode(t, dict);
        const CodePlanes &rp = ref.planes(PlaneSet::All);

        for (const PlaneSet sets :
             {PlaneSet::Bytes, PlaneSet::Mag, PlaneSet::All}) {
            for (const size_t threads : {size_t{1}, size_t{2}, hw}) {
                setThreadCount(threads);
                for (const Lane lane : {Lane{}, Lane::acquire()}) {
                    const auto fused = quantizer.encodeToPlanes(
                        t, dict, sets, lane);
                    const std::string what =
                        "rows=" + std::to_string(shape.first) +
                        " sets=" +
                        std::to_string(static_cast<unsigned>(sets)) +
                        " threads=" + std::to_string(threads);
                    expectPlanesEqual(fused.planes(sets), rp, sets,
                                      what);
                    // Codes materialize lazily and exactly.
                    EXPECT_FALSE(fused.codesMaterialized()) << what;
                    ASSERT_EQ(fused.raw(), ref.raw()) << what;
                    EXPECT_TRUE(fused.codesMaterialized()) << what;
                }
            }
        }
    }
}

TEST_F(FusedEncodeFixture, AllOutlierAndOutlierFreeRows)
{
    // Corner rows the encoder rarely emits: a row that is entirely
    // outliers (sidecar as long as the row) and a row with none.
    // Profile-style dictionary from tame data (so its cut sits near
    // 2.4 sigma and has an outlier table), then encode a probe
    // tensor with engineered corner rows against it.
    Rng rng(611);
    const Tensor profile =
        makeTensor(8, 64, 6110, 0.03); // has a tail -> OT exists
    const auto dict = quantizer.buildDictionary(profile);
    ASSERT_FALSE(dict.outlierCentroids().empty());

    const size_t cols = 70;
    std::vector<float> v = rng.gaussianVector(4 * cols, 0.0, 1.0);
    for (size_t c = 0; c < cols; ++c) {
        v[0 * cols + c] = (c % 2 ? 9.5f : -8.75f) -
            static_cast<float>(c) * 0.01f; // row 0: all outliers
        v[1 * cols + c] =
            0.4f * static_cast<float>(c % 5) - 0.8f; // row 1: none
    }
    const Tensor t(4, cols, v);
    const auto ref = quantizer.encode(t, dict);
    const auto fused = quantizer.encodeToPlanes(t, dict);
    const CodePlanes &fp = fused.planes(PlaneSet::All);

    ASSERT_EQ(fp.outlierCount(0), cols);
    ASSERT_EQ(fp.outlierCount(1), 0u);
    expectPlanesEqual(fp, ref.planes(PlaneSet::All), PlaneSet::All,
                      "corner rows");
    ASSERT_EQ(fused.raw(), ref.raw());
}

TEST_F(FusedEncodeFixture, NoOutlierTableFallsBackToGaussian)
{
    // A dictionary built from tail-free data has no outlier table;
    // values beyond the cut must then take the Gaussian path (the
    // encodeValue() fall-through), clamping to the outermost index.
    Rng rng(613);
    Tensor base(8, 32, rng.gaussianVector(256, 0.0, 0.4));
    // Tame the tail so no sample crosses the cut.
    for (float &x : base.raw())
        x = std::max(-0.9f, std::min(0.9f, x));
    const auto dict = quantizer.buildDictionary(base);
    ASSERT_TRUE(dict.outlierCentroids().empty());

    Tensor probe = base;
    probe.at(0, 0) = 25.0f; // far beyond any cut
    probe.at(3, 7) = -31.5f;
    const auto ref = quantizer.encode(probe, dict);
    const auto fused = quantizer.encodeToPlanes(probe, dict);
    EXPECT_FALSE(ref.at(0, 0).isOutlier());
    expectPlanesEqual(fused.planes(PlaneSet::All),
                      ref.planes(PlaneSet::All), PlaneSet::All,
                      "no outlier table");
    ASSERT_EQ(fused.raw(), ref.raw());
}

TEST(EncodeLadderKernel, ExactTiePicksLowerIndex)
{
    // Powers-of-two magnitudes make the bin midpoints exactly
    // representable, so d_lo == d_hi is an exact FP tie — the case
    // the branchless predicate must resolve identically to the
    // scalar two-subtraction compare (ties to the lower index).
    const ExpDictionary exp(2.0, 0.0, 8); // mags 1, 2, 4, ..., 128
    double mags[8];
    for (size_t i = 0; i < 8; ++i)
        mags[i] = exp.magnitude(i);

    // Ties at every midpoint, the exact centroids, off-tie probes on
    // both sides, and enough filler to engage the vector bodies and
    // their scalar tails.
    std::vector<float> src;
    for (size_t i = 0; i + 1 < 8; ++i) {
        const float mid =
            static_cast<float>((mags[i] + mags[i + 1]) / 2.0);
        src.push_back(mid);
        src.push_back(-mid);
        src.push_back(std::nextafter(mid, 1e30f));
        src.push_back(std::nextafter(mid, 0.0f));
    }
    for (size_t i = 0; i < 8; ++i)
        src.push_back(static_cast<float>(mags[i]));
    src.push_back(0.0f);
    src.push_back(-0.0f);
    src.push_back(1000.0f); // beyond the ladder: clamps to index 7

    const size_t n = src.size();
    std::vector<uint8_t> idx(n);
    std::vector<int8_t> theta(n);
    std::vector<double> mag(n);
    const size_t ot = encodeLadder(
        src.data(), n, mags, 8, 0.0, 1.0,
        std::numeric_limits<double>::infinity(), idx.data(),
        theta.data(), mag.data());
    EXPECT_EQ(ot, 0u);

    for (size_t c = 0; c < n; ++c) {
        const double u = static_cast<double>(src[c]);
        const size_t want = exp.nearestIndex(std::abs(u));
        EXPECT_EQ(idx[c], want) << "src=" << src[c];
        EXPECT_EQ(theta[c], u < 0.0 ? -1 : 1) << "src=" << src[c];
        EXPECT_EQ(mag[c],
                  (u < 0.0 ? -1.0 : 1.0) * exp.magnitude(want))
            << "src=" << src[c];
    }
    // Spot-check the tie semantics directly: 1.5 sits exactly
    // between mags 1 and 2 -> lower index wins.
    EXPECT_EQ(exp.nearestIndex(1.5), 0u);
    EXPECT_EQ(idx[0], 0u);
}

TEST(EncodeLadderKernel, OutlierThresholdIsStrict)
{
    // |v - mean| > cut is strict: a value exactly at the cut stays
    // Gaussian, one ulp above goes to the sidecar — on both the
    // vector body and the scalar tail.
    const ExpDictionary exp(2.0, 0.0, 8);
    double mags[8];
    for (size_t i = 0; i < 8; ++i)
        mags[i] = exp.magnitude(i);
    const double cut = 4.0;
    std::vector<float> src(19, 1.0f);
    src[3] = 4.0f;                         // == cut: Gaussian
    src[7] = std::nextafter(4.0f, 1e30f);  // > cut: outlier
    src[18] = -5.0f;                       // tail element, outlier
    std::vector<uint8_t> idx(src.size());
    std::vector<int8_t> theta(src.size());
    std::vector<double> mag(src.size());
    const size_t ot =
        encodeLadder(src.data(), src.size(), mags, 8, 0.0, 1.0, cut,
                     idx.data(), theta.data(), mag.data());
    EXPECT_EQ(ot, 2u);
    EXPECT_EQ(theta[3], 1);
    EXPECT_EQ(idx[3], 2u); // |4| -> index 2 (mag 4)
    EXPECT_EQ(theta[7], 0);
    EXPECT_EQ(idx[7], 0u);
    EXPECT_EQ(mag[7], 0.0);
    EXPECT_EQ(theta[18], 0);
}

TEST_F(FusedEncodeFixture, LazyCodesFromMagOnlyPlanes)
{
    // A mag-only fused tensor reconstructs its codes by inverting
    // the mag plane (entries are exact dictionary magnitudes), plus
    // the sidecar's stored outlier indexes.
    const Tensor t = makeTensor(21, 45, 617);
    const auto dict = quantizer.buildDictionary(t);
    const auto ref = quantizer.encode(t, dict);
    const auto fused =
        quantizer.encodeToPlanes(t, dict, PlaneSet::Mag);
    EXPECT_TRUE(fused.planes(PlaneSet::Mag).index.empty());
    ASSERT_EQ(fused.raw(), ref.raw());
}

TEST_F(FusedEncodeFixture, FusedTensorPacksAndConcats)
{
    // The memory codec and row concat are code-domain consumers:
    // they must transparently materialize a fused tensor's codes and
    // produce byte-identical streams.
    const Tensor t = makeTensor(37, 53, 619);
    const auto dict = quantizer.buildDictionary(t);
    const auto ref = quantizer.encode(t, dict);
    const auto fused =
        quantizer.encodeToPlanes(t, dict, PlaneSet::Bytes);

    const auto p_ref = packTensor(ref);
    const auto p_fused = packTensor(fused);
    ASSERT_EQ(p_fused.values, p_ref.values);
    ASSERT_EQ(p_fused.otPointers, p_ref.otPointers);
    const auto back = unpackTensor(p_fused, dict);
    ASSERT_EQ(back.raw(), ref.raw());

    const auto cat = concatQuantizedRows({&fused, &ref});
    ASSERT_EQ(cat.rows(), 2 * t.rows());
    for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(cat.raw()[i], ref.raw()[i]);
        ASSERT_EQ(cat.raw()[ref.size() + i], ref.raw()[i]);
    }
}

TEST_F(FusedEncodeFixture, FusedTensorSurvivesMutationAndUnpin)
{
    // Mutation must materialize codes first (the planes are the only
    // source of truth), then drop the stale planes; unpinPlanes on a
    // never-materialized tensor likewise rescues the codes before
    // releasing the view.
    const Tensor t = makeTensor(9, 33, 621);
    const auto dict = quantizer.buildDictionary(t);
    const auto ref = quantizer.encode(t, dict);

    QuantizedTensor m = quantizer.encodeToPlanes(t, dict);
    m.at(2, 3) = QCode::gaussian(true, 5);
    EXPECT_FALSE(m.planesFootprint().resident); // stale planes gone
    QuantizedTensor expect = ref;
    expect.at(2, 3) = QCode::gaussian(true, 5);
    ASSERT_EQ(m.raw(), expect.raw());
    expectPlanesEqual(m.planes(PlaneSet::All),
                      expect.planes(PlaneSet::All), PlaneSet::All,
                      "post-mutation rebuild");

    QuantizedTensor u = quantizer.encodeToPlanes(t, dict);
    EXPECT_FALSE(u.codesMaterialized());
    u.unpinPlanes();
    EXPECT_TRUE(u.codesMaterialized());
    EXPECT_FALSE(u.planesFootprint().resident);
    ASSERT_EQ(u.raw(), ref.raw());

    // Copies of a lazy tensor stay lazy and share the planes.
    const QuantizedTensor lazy = quantizer.encodeToPlanes(t, dict);
    const QuantizedTensor copy = lazy;
    EXPECT_FALSE(copy.codesMaterialized());
    ASSERT_EQ(copy.raw(), ref.raw());
    EXPECT_FALSE(lazy.codesMaterialized()); // the copy materialized
    ASSERT_EQ(lazy.outlierFraction(), ref.outlierFraction());
}

// ---- CodePlanes pin API ---------------------------------------------

/** A small quantized tensor with a few outliers. */
QuantizedTensor
pinFixtureTensor()
{
    Rng rng(4242);
    const ExpDictionary exp(1.179, -0.977, 8);
    const Quantizer quantizer(exp);
    Tensor t(8, 32, rng.gaussianVector(8 * 32, 0.0, 1.0));
    t.at(0, 0) = 9.0f; // force an outlier or two
    t.at(5, 17) = -8.5f;
    return quantizer.encode(t, quantizer.buildDictionary(t));
}

TEST(QuantizedTensorPin, PinBuildsAndSurvivesCopies)
{
    const QuantizedTensor q = pinFixtureTensor();
    EXPECT_FALSE(q.planesPinned());
    EXPECT_FALSE(q.planesFootprint().resident);

    q.pinPlanes();
    EXPECT_TRUE(q.planesPinned());
    EXPECT_TRUE(q.planesFootprint().resident);

    // Copies inherit both the pin and the already-built planes —
    // no rebuild, no lazy first-use cost on the copy.
    const QuantizedTensor copy = q;
    EXPECT_TRUE(copy.planesPinned());
    EXPECT_TRUE(copy.planesFootprint().resident);
    QuantizedTensor assigned;
    assigned = q;
    EXPECT_TRUE(assigned.planesPinned());
    EXPECT_TRUE(assigned.planesFootprint().resident);

    // Unpinning one copy releases only that copy's reference.
    assigned.unpinPlanes();
    EXPECT_FALSE(assigned.planesPinned());
    EXPECT_FALSE(assigned.planesFootprint().resident);
    EXPECT_TRUE(q.planesFootprint().resident);
}

TEST(QuantizedTensorPin, MutationDropsPlanesButKeepsPin)
{
    QuantizedTensor q = pinFixtureTensor();
    const Tensor before = q.decode();
    q.pinPlanes();

    q.at(2, 3) = QCode::gaussian(false, 1); // mutation
    EXPECT_TRUE(q.planesPinned());
    EXPECT_FALSE(q.planesFootprint().resident); // stale planes gone

    // The retained pin is an intent: the next planes() rebuilds, and
    // the rebuilt view decodes the *mutated* codes.
    const CodePlanes &p = q.pinPlanes();
    EXPECT_TRUE(q.planesFootprint().resident);
    EXPECT_EQ(p.rows, q.rows());
    const Tensor after = q.decode();
    EXPECT_NE(before.at(2, 3), after.at(2, 3));
}

TEST(QuantizedTensorPin, FootprintAccountsPlaneBytes)
{
    const QuantizedTensor q = pinFixtureTensor();
    const size_t n = q.rows() * q.cols();

    PlanesFootprint f = q.planesFootprint();
    EXPECT_EQ(f.codeBytes, n);
    EXPECT_EQ(f.deriveElements, n);
    EXPECT_EQ(f.planeBytes, 0u); // not resident yet

    q.pinPlanes();
    f = q.planesFootprint();
    const size_t expected =
        n * (sizeof(uint8_t) + sizeof(int8_t) + sizeof(double)) +
        (q.rows() + 1) * sizeof(uint32_t) +
        f.outlierEntries * sizeof(CodePlanes::Outlier) +
        q.rows() * 2 * sizeof(double); // per-row fold sums (both sets)
    EXPECT_EQ(f.planeBytes, expected);
    EXPECT_GT(f.outlierEntries, 0u);
    // Keeping planes costs ~10x the code bytes — the number the
    // pin-vs-rederive decision weighs for large models.
    EXPECT_GT(f.expansionRatio(), 9.0);
    EXPECT_LT(f.expansionRatio(), 12.0);
}

} // anonymous namespace
} // namespace mokey
