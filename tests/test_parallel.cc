/**
 * @file
 * Tests for the thread-pool substrate: full coverage of the
 * iteration space, nesting safety, determinism, and reconfiguration.
 */

#include <atomic>
#include <gtest/gtest.h>
#include <vector>

#include "common/parallel.hh"

namespace mokey
{
namespace
{

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    for (const size_t n : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
        std::vector<std::atomic<int>> hits(n);
        parallelFor(0, n, 1, [&](size_t i) { hits[i]++; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(Parallel, RangeChunksPartitionTheRange)
{
    const size_t n = 1234;
    std::vector<std::atomic<int>> hits(n);
    parallelForRange(5, n, 10, [&](size_t lo, size_t hi) {
        ASSERT_LT(lo, hi);
        for (size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(hits[i].load(), 0);
    for (size_t i = 5; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, NestedLoopsRunInline)
{
    // Regression: the calling thread drains chunks of the outer loop
    // itself, and a nested parallelFor() from inside its chunk used
    // to re-enter the pool and clobber the in-flight job (segfault
    // under MOKEY_THREADS>1). Nested loops — whether reached on a
    // worker or on the caller — must degrade to serial execution.
    const size_t original = threadCount();
    for (const size_t t : {1u, 4u}) {
        setThreadCount(t);
        std::atomic<uint64_t> total{0};
        parallelFor(0, 32, 1, [&](size_t) {
            parallelFor(0, 100, 1,
                        [&](size_t j) { total += j; });
        });
        EXPECT_EQ(total.load(), 32u * (99u * 100u / 2u))
            << "threads=" << t;
    }
    setThreadCount(original);
}

TEST(Parallel, ThreadCountSweepIsDeterministic)
{
    // A float reduction per index (all writes disjoint) must give
    // bit-identical output for every pool size.
    const size_t n = 513;
    const auto run = [&] {
        std::vector<double> out(n);
        parallelFor(0, n, 1, [&](size_t i) {
            double acc = 0.0;
            for (size_t p = 0; p < 100; ++p)
                acc += static_cast<double>(i * 31 + p) * 1e-3;
            out[i] = acc;
        });
        return out;
    };

    const size_t original = threadCount();
    setThreadCount(1);
    const auto serial = run();
    for (const size_t t : {2u, 5u, 16u}) {
        setThreadCount(t);
        const auto par = run();
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(serial[i], par[i]) << "threads=" << t;
    }
    setThreadCount(original);
}

TEST(Parallel, SetThreadCountClampsToOne)
{
    const size_t original = threadCount();
    setThreadCount(0);
    EXPECT_EQ(threadCount(), 1u);
    std::atomic<int> hits{0};
    parallelFor(0, 10, 1, [&](size_t) { hits++; });
    EXPECT_EQ(hits.load(), 10);
    setThreadCount(original);
}

} // anonymous namespace
} // namespace mokey
